//! # metaprobe
//!
//! A production-quality Rust reproduction of *"A Probabilistic Approach
//! to Metasearching with Adaptive Probing"* (Liu, Luo, Cho, Chu — ICDE
//! 2004): probabilistic relevancy modelling and adaptive probing for
//! Hidden-Web database selection, together with every substrate the
//! system needs — a from-scratch search engine, a Hidden-Web interface
//! simulator, a synthetic corpus generator, a query-workload generator,
//! and the full experiment harness that regenerates the paper's tables
//! and figures.
//!
//! This umbrella crate re-exports the workspace members and hosts the
//! runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`). Start with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! or go straight to the paper reproduction:
//!
//! ```text
//! cargo run --release -p mp-bench --bin repro -- --quick
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`mp_core`] | the paper's contribution: EDs, RDs, expected correctness, `APro` |
//! | [`mp_stats`] | distributions, χ² tests, Poisson-binomial, samplers |
//! | [`mp_text`] | tokenization, stemming, term interning |
//! | [`mp_index`] | inverted index: boolean counts + tf-idf cosine |
//! | [`mp_corpus`] | synthetic Hidden-Web corpora with controlled term correlation |
//! | [`mp_hidden`] | the search-interface abstraction + probe accounting |
//! | [`mp_workload`] | 2-/3-term query traces with disjoint splits |
//! | [`mp_eval`] | experiment harness for every table and figure |
//! | [`mp_serve`] | concurrent, cache-backed query-serving front-end |
//! | [`mp_obs`] | zero-dependency spans + metrics over the whole pipeline |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mp_core as core;
pub use mp_corpus as corpus;
pub use mp_eval as eval;
pub use mp_hidden as hidden;
pub use mp_index as index;
pub use mp_obs as obs;
pub use mp_serve as serve;
pub use mp_stats as stats;
pub use mp_text as text;
pub use mp_workload as workload;

/// Convenience re-exports of the types most programs start from.
pub mod prelude {
    pub use mp_core::{
        AproConfig, CoreConfig, CorrectnessMetric, GreedyPolicy, IndependenceEstimator,
        Metasearcher, RelevancyDef, ShardAssignment, ShardedMetasearcher,
    };
    pub use mp_corpus::{Scenario, ScenarioConfig, ScenarioKind};
    pub use mp_hidden::{ContentSummary, HiddenWebDatabase, Mediator, SimulatedHiddenDb};
    pub use mp_serve::{ServeConfig, ServeRequest, Server};
    pub use mp_workload::{Query, QueryGenConfig, TrainTestSplit};
}
