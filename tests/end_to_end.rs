//! End-to-end integration tests: corpus → mediator → training →
//! selection → adaptive probing → fusion, across crate boundaries.

use metaprobe::prelude::*;
use mp_core::probing::RandomPolicy;
use std::sync::Arc;

fn build_metasearcher(seed: u64) -> (Metasearcher, TrainTestSplit, mp_corpus::TopicModel) {
    let scenario = Scenario::generate(ScenarioConfig::tiny(ScenarioKind::Health, seed));
    let (model, parts) = scenario.into_parts();
    let mut dbs: Vec<Arc<dyn HiddenWebDatabase>> = Vec::new();
    let mut summaries = Vec::new();
    for (spec, index) in parts {
        summaries.push(ContentSummary::cooperative(&index));
        dbs.push(Arc::new(SimulatedHiddenDb::new(spec.name, index)));
    }
    let mediator = Mediator::new(dbs, summaries);
    let split = TrainTestSplit::generate(
        &model,
        80,
        50,
        QueryGenConfig {
            window: 12,
            seed: seed ^ 0xFEED,
            ..QueryGenConfig::default()
        },
    );
    let ms = Metasearcher::train(
        mediator,
        Box::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        split.train.queries(),
        CoreConfig::default().with_threshold(10.0),
    );
    (ms, split, model)
}

#[test]
fn full_pipeline_answers_queries() {
    let (ms, split, _model) = build_metasearcher(5);
    let mut policy = GreedyPolicy;
    for query in split.test.queries().iter().take(15) {
        let result = ms.search(
            query,
            AproConfig {
                k: 2,
                threshold: 0.7,
                metric: CorrectnessMetric::Partial,
                max_probes: None,
            },
            &mut policy,
            10,
        );
        assert_eq!(result.outcome.selected.len(), 2);
        assert!(result.outcome.expected >= 0.7 || result.outcome.n_probes() == ms.mediator().len());
        assert!(result.hits.len() <= 10);
        // Fused hits come only from selected databases.
        for hit in &result.hits {
            assert!(result.outcome.selected.contains(&hit.db));
        }
    }
}

#[test]
fn apro_selection_matches_golden_when_exhaustive() {
    // Forcing certainty 1.0 probes until the model is sure; with every
    // database probed the selection must equal the true ranking.
    let (ms, split, _model) = build_metasearcher(6);
    let query = &split.test.queries()[3];
    let mut policy = RandomPolicy::new(0);
    let outcome = ms.select_adaptive(
        query,
        AproConfig {
            k: 1,
            threshold: 1.0,
            metric: CorrectnessMetric::Absolute,
            max_probes: None,
        },
        &mut policy,
    );
    assert!(outcome.satisfied);
    // Validate against direct probing of every database.
    let actuals: Vec<f64> = (0..ms.mediator().len())
        .map(|i| RelevancyDef::DocFrequency.probe(ms.mediator().db(i), query, 0))
        .collect();
    let golden = mp_core::correctness::golden_topk(&actuals, 1);
    if outcome.n_probes() == ms.mediator().len() {
        assert_eq!(outcome.selected, golden);
    }
}

#[test]
fn probe_accounting_matches_trace() {
    let (ms, split, _model) = build_metasearcher(7);
    ms.mediator().reset_probes();
    let query = &split.test.queries()[0];
    let mut policy = GreedyPolicy;
    let outcome = ms.select_adaptive(
        query,
        AproConfig {
            k: 1,
            threshold: 0.95,
            metric: CorrectnessMetric::Absolute,
            max_probes: Some(3),
        },
        &mut policy,
    );
    assert_eq!(ms.mediator().total_probes(), outcome.n_probes() as u64);
    assert!(outcome.n_probes() <= 3);
}

#[test]
fn certainty_trace_is_monotone_under_greedy_stopping() {
    // The returned certainty sequence need not be monotone probe-by-
    // probe (a probe can reveal bad news), but the *final* certainty
    // must meet the threshold or every database must have been probed.
    let (ms, split, _model) = build_metasearcher(8);
    for query in split.test.queries().iter().take(10) {
        let mut policy = GreedyPolicy;
        let outcome = ms.select_adaptive(
            query,
            AproConfig {
                k: 1,
                threshold: 0.9,
                metric: CorrectnessMetric::Absolute,
                max_probes: None,
            },
            &mut policy,
        );
        assert!(
            outcome.expected >= 0.9 || outcome.n_probes() == ms.mediator().len(),
            "query {query:?}: expected {} after {} probes",
            outcome.expected,
            outcome.n_probes()
        );
    }
}

#[test]
fn higher_thresholds_never_probe_less() {
    let (ms, split, _model) = build_metasearcher(9);
    let mut total_low = 0usize;
    let mut total_high = 0usize;
    for query in split.test.queries().iter().take(25) {
        for (t, total) in [(0.7, &mut total_low), (0.95, &mut total_high)] {
            let mut policy = GreedyPolicy;
            let outcome = ms.select_adaptive(
                query,
                AproConfig {
                    k: 1,
                    threshold: t,
                    metric: CorrectnessMetric::Absolute,
                    max_probes: None,
                },
                &mut policy,
            );
            *total += outcome.n_probes();
        }
    }
    assert!(
        total_high >= total_low,
        "t=0.95 used {total_high} probes, t=0.7 used {total_low}"
    );
}

#[test]
fn display_of_queries_roundtrips_through_vocab() {
    let (_ms, split, model) = build_metasearcher(10);
    for query in split.test.queries().iter().take(20) {
        let text = query.display(model.vocab());
        let parsed = Query::parse(&text, &mp_text::Analyzer::plain(), model.vocab())
            .expect("generated queries contain only vocabulary terms");
        assert_eq!(&parsed, query);
    }
}

#[test]
fn apro_degrades_gracefully_on_unreliable_databases() {
    // Failure injection: wrap every database with outages + stale
    // counts; APro must still terminate, respect its contract shape,
    // and keep its accounting consistent.
    use mp_hidden::UnreliableDb;

    let scenario = Scenario::generate(ScenarioConfig::tiny(ScenarioKind::Health, 21));
    let (model, parts) = scenario.into_parts();
    let mut dbs: Vec<Arc<dyn HiddenWebDatabase>> = Vec::new();
    let mut summaries = Vec::new();
    for (i, (spec, index)) in parts.into_iter().enumerate() {
        summaries.push(ContentSummary::cooperative(&index));
        let base: Arc<dyn HiddenWebDatabase> = Arc::new(SimulatedHiddenDb::new(spec.name, index));
        dbs.push(Arc::new(UnreliableDb::new(
            base,
            0.15,
            0.3,
            0.25,
            100 + i as u64,
        )));
    }
    let mediator = Mediator::new(dbs, summaries);
    let split = TrainTestSplit::generate(
        &model,
        60,
        40,
        QueryGenConfig {
            window: 12,
            seed: 77,
            ..QueryGenConfig::default()
        },
    );
    let ms = Metasearcher::train(
        mediator,
        Box::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        split.train.queries(),
        CoreConfig::default().with_threshold(10.0),
    );

    for query in split.test.queries().iter().take(10) {
        let mut policy = GreedyPolicy;
        let outcome = ms.select_adaptive(
            query,
            AproConfig {
                k: 1,
                threshold: 0.9,
                metric: CorrectnessMetric::Absolute,
                max_probes: None,
            },
            &mut policy,
        );
        assert_eq!(outcome.selected.len(), 1);
        assert!(outcome.n_probes() <= ms.mediator().len());
        assert!(outcome.satisfied || outcome.n_probes() == ms.mediator().len());
        for record in &outcome.probes {
            assert!(record.actual >= 0.0);
        }
    }
}

/// Golden pin: the exact end-to-end answers (selection, certainty bits,
/// probe trace, fused-hit order and score bits) for three representative
/// fixed-seed queries, snapshotted to a fixture file. Engine refactors
/// that shift any result — even a last-ulp score change — turn this red.
///
/// Regenerate deliberately with:
///
/// ```text
/// MP_BLESS=1 cargo test --test end_to_end golden_pin
/// ```
#[test]
fn golden_pin_of_three_representative_queries() {
    let (ms, split, _model) = build_metasearcher(5);
    let mut rendered = String::new();
    for &qi in &[0usize, 7, 19] {
        let query = &split.test.queries()[qi];
        let mut policy = GreedyPolicy;
        let result = ms.search(
            query,
            AproConfig {
                k: 2,
                threshold: 0.9,
                metric: CorrectnessMetric::Partial,
                max_probes: None,
            },
            &mut policy,
            5,
        );
        render_golden(&mut rendered, qi, query, &result);
    }

    let fixture = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/end_to_end_golden.txt");
    if std::env::var_os("MP_BLESS").is_some() {
        std::fs::create_dir_all(fixture.parent().expect("fixture path has a parent"))
            .expect("fixture directory is creatable");
        std::fs::write(&fixture, &rendered).expect("fixture file is writable");
        return;
    }
    let expected = std::fs::read_to_string(&fixture).unwrap_or_else(|_| {
        panic!(
            "missing snapshot {} — run with MP_BLESS=1 to create it",
            fixture.display()
        )
    });
    assert_eq!(
        rendered, expected,
        "end-to-end results drifted from the golden snapshot \
         (re-bless with MP_BLESS=1 if the change is intended)"
    );
}

/// Renders the golden-pin lines for one search answer (shared by the
/// flat and sharded pins so the two snapshots are byte-comparable).
fn render_golden(
    rendered: &mut String,
    qi: usize,
    query: &Query,
    result: &mp_core::MetasearchResult,
) {
    rendered.push_str(&format!(
        "query {qi} terms={:?}\n",
        query.terms().iter().map(|t| t.0).collect::<Vec<_>>()
    ));
    rendered.push_str(&format!(
        "  selected={:?} expected={:016x} satisfied={}\n",
        result.outcome.selected,
        result.outcome.expected.to_bits(),
        result.outcome.satisfied
    ));
    for p in &result.outcome.probes {
        rendered.push_str(&format!(
            "  probe db={} actual={:016x} after={:016x}\n",
            p.db,
            p.actual.to_bits(),
            p.expected_after.to_bits()
        ));
    }
    for h in &result.hits {
        rendered.push_str(&format!(
            "  hit db={} doc={} score={:016x}\n",
            h.db,
            h.doc.0,
            h.score.to_bits()
        ));
    }
}

/// Sharded golden pin: the same three representative queries answered
/// through the scatter-gather shard layer (3 shards, FNV-keyed), with
/// its own snapshot fixture — which must *also* be byte-identical to
/// the flat pin's fixture, making the cross-topology equivalence
/// visible at the golden-artifact level. Regenerate deliberately with:
///
/// ```text
/// MP_BLESS=1 cargo test --test end_to_end golden_pin
/// ```
#[test]
fn golden_pin_sharded_replays_the_flat_snapshot() {
    use mp_core::{ShardAssignment, ShardedMetasearcher};

    let (ms, split, _model) = build_metasearcher(5);
    let sharded = ShardedMetasearcher::with_library(
        ms.mediator(),
        Arc::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        ms.library(),
        &ShardAssignment::ByNameFnv(3),
    );
    let mut rendered = String::new();
    for &qi in &[0usize, 7, 19] {
        let query = &split.test.queries()[qi];
        let mut policy = GreedyPolicy;
        let result = sharded.search(
            query,
            AproConfig {
                k: 2,
                threshold: 0.9,
                metric: CorrectnessMetric::Partial,
                max_probes: None,
            },
            &mut policy,
            5,
        );
        render_golden(&mut rendered, qi, query, &result);
    }

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let fixture = dir.join("end_to_end_golden_sharded.txt");
    if std::env::var_os("MP_BLESS").is_some() {
        std::fs::create_dir_all(&dir).expect("fixture directory is creatable");
        std::fs::write(&fixture, &rendered).expect("fixture file is writable");
        return;
    }
    let expected = std::fs::read_to_string(&fixture).unwrap_or_else(|_| {
        panic!(
            "missing snapshot {} — run with MP_BLESS=1 to create it",
            fixture.display()
        )
    });
    assert_eq!(
        rendered, expected,
        "sharded end-to-end results drifted from the golden snapshot \
         (re-bless with MP_BLESS=1 if the change is intended)"
    );
    // Cross-topology at the artifact level: the sharded snapshot is
    // byte-identical to the flat pin's snapshot.
    let flat = std::fs::read_to_string(dir.join("end_to_end_golden.txt"))
        .expect("flat golden snapshot exists");
    assert_eq!(
        rendered, flat,
        "sharded golden snapshot diverged from the flat golden snapshot"
    );
}

#[test]
fn cost_aware_probing_integrates_end_to_end() {
    use mp_core::expected::RdState;
    use mp_core::probing::{apro_with_costs, CostAwareGreedyPolicy, ProbeCosts};

    let (ms, split, _model) = build_metasearcher(22);
    let n = ms.mediator().len();
    // The last database is 10x more expensive to probe (slow site).
    let mut costs = vec![1.0; n];
    costs[n - 1] = 10.0;
    let costs = ProbeCosts::new(costs);

    let query = &split.test.queries()[1];
    let mut state = RdState::new(ms.rds(query));
    let mut policy = CostAwareGreedyPolicy::new(costs.clone());
    let mut probe_fn = |i: usize| RelevancyDef::DocFrequency.probe(ms.mediator().db(i), query, 0);
    let f: &mut dyn FnMut(usize) -> f64 = &mut probe_fn;
    let (outcome, spent) = apro_with_costs(
        &mut state,
        AproConfig {
            k: 1,
            threshold: 0.95,
            metric: CorrectnessMetric::Absolute,
            max_probes: None,
        },
        &costs,
        Some(6.0),
        &mut policy,
        f,
    );
    assert!(spent <= 6.0 + 1e-9, "budget exceeded: {spent}");
    assert!(spent >= outcome.n_probes() as f64 - 1e-9, "unit-cost floor");
}
