//! Cross-crate property tests on the probabilistic model's invariants,
//! validated against Monte-Carlo simulation on *real* testbed RDs (not
//! just synthetic fixtures).

use metaprobe::prelude::*;
use mp_core::expected::{
    expected_absolute, expected_partial, marginal_topk_prob, monte_carlo_expected,
};
use mp_core::selection::{baseline_select, best_set};
use mp_eval::{Testbed, TestbedConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn testbed() -> Testbed {
    Testbed::build(TestbedConfig::tiny(4))
}

#[test]
fn exact_expectations_match_monte_carlo_on_real_rds() {
    let tb = testbed();
    let mut rng = StdRng::seed_from_u64(99);
    for (qi, q) in tb.split.test.queries().iter().enumerate().take(12) {
        let rds = tb.rds(q);
        for k in [1usize, 2] {
            let (set, exact) = best_set(&rds, k, CorrectnessMetric::Absolute);
            let mc =
                monte_carlo_expected(&rds, &set, CorrectnessMetric::Absolute, 30_000, &mut rng);
            assert!(
                (exact - mc).abs() < 0.02,
                "query {qi} k={k}: exact {exact} vs MC {mc}"
            );

            let (set_p, exact_p) = best_set(&rds, k, CorrectnessMetric::Partial);
            let mc_p =
                monte_carlo_expected(&rds, &set_p, CorrectnessMetric::Partial, 30_000, &mut rng);
            assert!(
                (exact_p - mc_p).abs() < 0.02,
                "query {qi} k={k}: exact_p {exact_p} vs MC {mc_p}"
            );
        }
    }
}

#[test]
fn marginals_sum_to_k_on_real_rds() {
    let tb = testbed();
    for q in tb.split.test.queries().iter().take(20) {
        let rds = tb.rds(q);
        for k in [1usize, 3] {
            let sum: f64 = (0..rds.len()).map(|i| marginal_topk_prob(&rds, i, k)).sum();
            assert!((sum - k as f64).abs() < 1e-6, "k={k}: marginals sum {sum}");
        }
    }
}

#[test]
fn absolute_never_exceeds_partial_on_real_rds() {
    let tb = testbed();
    for q in tb.split.test.queries().iter().take(20) {
        let rds = tb.rds(q);
        for k in [1usize, 2, 3] {
            let set: Vec<usize> = (0..k).collect();
            let a = expected_absolute(&rds, &set);
            let p = expected_partial(&rds, &set);
            assert!(a <= p + 1e-9, "k={k}: absolute {a} > partial {p}");
        }
    }
}

#[test]
fn rd_selection_with_impulse_library_equals_baseline() {
    // An untrained library derives impulse RDs at the estimates, so
    // RD-based selection must coincide with estimate ranking.
    let tb = testbed();
    let empty = mp_core::EdLibrary::empty(tb.n_databases(), tb.config.core.clone());
    for q in tb.split.test.queries().iter().take(30) {
        let estimates = tb.estimates(q);
        let rds = mp_core::rd::derive_all_rds(&estimates, q, &empty);
        let (rd_set, _) = best_set(&rds, 1, CorrectnessMetric::Absolute);
        let base = baseline_select(&estimates, 1);
        assert_eq!(rd_set, base, "query {q:?}");
    }
}

#[test]
fn golden_standard_is_reachable_by_probing() {
    // Every golden actual must equal what a live probe returns now —
    // i.e. the golden standard and the probe path see the same engine.
    let tb = testbed();
    for (qi, q) in tb.split.test.queries().iter().enumerate().take(10) {
        for i in 0..tb.n_databases() {
            let live = RelevancyDef::DocFrequency.probe(tb.mediator.db(i), q, 0);
            assert_eq!(live, tb.golden.actual(qi, i), "query {qi}, db {i}");
        }
    }
    tb.mediator.reset_probes();
}

#[test]
fn training_is_deterministic_across_builds() {
    let a = Testbed::build(TestbedConfig::tiny(12));
    let b = Testbed::build(TestbedConfig::tiny(12));
    for q in a.split.test.queries().iter().take(10) {
        assert_eq!(a.estimates(q), b.estimates(q));
        let rds_a = a.rds(q);
        let rds_b = b.rds(q);
        for (x, y) in rds_a.iter().zip(&rds_b) {
            assert_eq!(x.points(), y.points());
        }
    }
}
