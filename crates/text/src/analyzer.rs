//! The full analysis chain: tokenize → stopword-filter → stem.

use crate::{is_stopword, stem, tokenize};

/// Text analyzer configuration.
///
/// One `Analyzer` is shared by the indexer and the query parser so both
/// sides normalize identically — the consistency contract every
/// summary-based estimator silently relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Analyzer {
    /// Drop stopwords (default true).
    pub remove_stopwords: bool,
    /// Apply the suffix stemmer (default true).
    pub apply_stemming: bool,
    /// Drop tokens shorter than this many characters (default 2).
    pub min_token_len: usize,
}

impl Default for Analyzer {
    fn default() -> Self {
        Self {
            remove_stopwords: true,
            apply_stemming: true,
            min_token_len: 2,
        }
    }
}

impl Analyzer {
    /// An analyzer that performs tokenization only.
    pub fn plain() -> Self {
        Self {
            remove_stopwords: false,
            apply_stemming: false,
            min_token_len: 1,
        }
    }

    /// Analyzes free text into normalized terms.
    ///
    /// ```
    /// use mp_text::Analyzer;
    /// let terms = Analyzer::default().analyze("The breast cancers!");
    /// assert_eq!(terms, vec!["breast", "cancer"]);
    /// ```
    pub fn analyze(&self, text: &str) -> Vec<String> {
        tokenize(text)
            .into_iter()
            .filter(|t| t.len() >= self.min_token_len)
            .filter(|t| !self.remove_stopwords || !is_stopword(t))
            .map(|t| if self.apply_stemming { stem(&t) } else { t })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pipeline() {
        let a = Analyzer::default();
        assert_eq!(
            a.analyze("The effectiveness of treatments for cancers"),
            vec!["effective", "treat", "cancer"]
        );
    }

    #[test]
    fn plain_pipeline_only_tokenizes() {
        let a = Analyzer::plain();
        assert_eq!(a.analyze("The Cats"), vec!["the", "cats"]);
    }

    #[test]
    fn min_token_len_filters() {
        let a = Analyzer {
            min_token_len: 4,
            ..Analyzer::default()
        };
        assert_eq!(a.analyze("flu pandemic flu"), vec!["pandemic"]);
    }

    #[test]
    fn query_and_document_agree() {
        let a = Analyzer::default();
        // A document containing "screenings" must match a query for
        // "screening" after analysis.
        let doc_terms = a.analyze("annual screenings recommended");
        let query_terms = a.analyze("screening");
        assert!(doc_terms.contains(&query_terms[0]));
    }

    #[test]
    fn empty_input() {
        assert!(Analyzer::default().analyze("").is_empty());
        assert!(Analyzer::default().analyze("the of and").is_empty());
    }
}
