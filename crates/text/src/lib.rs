//! # mp-text — text-processing substrate for `metaprobe`
//!
//! Minimal, deterministic text pipeline used by the search-engine
//! substrate (`mp-index`) and the corpus generator (`mp-corpus`):
//!
//! * [`tokenize()`](tokenize::tokenize) — lowercase alphanumeric tokenization;
//! * [`stopwords`] — a compact English stopword list;
//! * [`Vocabulary`] — a term interner mapping strings to dense
//!   [`TermId`]s (all downstream code works on ids, never strings);
//! * [`stem()`](stem::stem) — a lightweight suffix-stripping stemmer (Porter subset)
//!   applied uniformly so queries and documents normalize identically.
//!
//! The full analysis chain is packaged as [`Analyzer`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod stem;
pub mod stopwords;
pub mod tokenize;
pub mod vocab;

pub use analyzer::Analyzer;
pub use stem::stem;
pub use stopwords::is_stopword;
pub use tokenize::tokenize;
pub use vocab::{TermId, Vocabulary};
