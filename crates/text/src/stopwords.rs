//! English stopword filtering.
//!
//! Hidden-Web content summaries and keyword queries both drop
//! high-frequency function words; a query like "the breast cancer" must
//! reduce to the informative terms before estimation (paper Section 2.2
//! operates on "key terms" of the query).

/// Compact English stopword list (sorted; binary-searched).
static STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "all", "am", "an", "and", "any", "are",
    "as", "at", "be", "because", "been", "before", "being", "below", "between", "both", "but",
    "by", "can", "cannot", "could", "did", "do", "does", "doing", "down", "during", "each", "few",
    "for", "from", "further", "had", "has", "have", "having", "he", "her", "here", "hers", "him",
    "his", "how", "i", "if", "in", "into", "is", "it", "its", "itself", "just", "me", "more",
    "most", "my", "myself", "no", "nor", "not", "now", "of", "off", "on", "once", "only", "or",
    "other", "our", "ours", "out", "over", "own", "same", "she", "should", "so", "some", "such",
    "than", "that", "the", "their", "theirs", "them", "then", "there", "these", "they", "this",
    "those", "through", "to", "too", "under", "until", "up", "very", "was", "we", "were", "what",
    "when", "where", "which", "while", "who", "whom", "why", "will", "with", "would", "you",
    "your", "yours",
];

/// True if `word` (already lowercased) is an English stopword.
///
/// ```
/// use mp_text::is_stopword;
/// assert!(is_stopword("the"));
/// assert!(!is_stopword("cancer"));
/// ```
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

/// Number of stopwords in the built-in list (exposed for tests/tools).
pub fn stopword_count() -> usize {
    STOPWORDS.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_unique() {
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "{:?} >= {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "and", "of", "is", "a", "with"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["cancer", "breast", "database", "metasearch", "medline"] {
            assert!(!is_stopword(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn lookup_is_case_sensitive_lowercase_contract() {
        // Callers must lowercase first (tokenize already does).
        assert!(!is_stopword("The"));
    }
}
