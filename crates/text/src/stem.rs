//! Lightweight suffix-stripping stemmer.
//!
//! A deterministic Porter-subset stemmer: it applies the highest-value
//! suffix rules (plurals, `-ing`, `-ed`, `-ly`, common nominalizations)
//! with the standard "measure" guard so short words are left intact.
//! Queries and documents pass through the same stemmer, which is all the
//! relevancy machinery requires — summaries, probes, and estimates stay
//! mutually consistent.

/// True if byte `b` of `w` acts as a vowel (a e i o u, or y after a
/// consonant).
fn is_vowel(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => true,
        b'y' => i > 0 && !is_vowel(w, i - 1),
        _ => false,
    }
}

/// Porter "measure": the number of vowel→consonant transitions — a proxy
/// for syllable count. Rules only fire when the stem keeps measure > 0,
/// which protects short roots ("sing" is not "s" + "ing").
fn measure(w: &[u8]) -> usize {
    let mut m = 0;
    let mut prev_vowel = false;
    for i in 0..w.len() {
        let v = is_vowel(w, i);
        if prev_vowel && !v {
            m += 1;
        }
        prev_vowel = v;
    }
    m
}

/// True if `w` contains at least one vowel.
fn has_vowel(w: &[u8]) -> bool {
    (0..w.len()).any(|i| is_vowel(w, i))
}

/// Stems a lowercase ASCII word.
///
/// Words shorter than 4 characters are returned unchanged.
///
/// ```
/// use mp_text::stem;
/// assert_eq!(stem("cancers"), "cancer");
/// assert_eq!(stem("running"), "run");
/// assert_eq!(stem("databases"), "database");
/// ```
pub fn stem(word: &str) -> String {
    let mut w = word.as_bytes().to_vec();
    if w.len() < 4 {
        return word.to_string();
    }

    // Step 1a: plurals.
    if w.ends_with(b"sses") {
        w.truncate(w.len() - 2); // sses -> ss
    } else if w.ends_with(b"ies") {
        w.truncate(w.len() - 2); // ies -> i
    } else if w.ends_with(b"s") && !w.ends_with(b"ss") && !w.ends_with(b"us") {
        w.truncate(w.len() - 1);
    }

    // Step 1b: -ed / -ing with vowel-in-stem guard.
    let mut cleanup = false;
    if w.ends_with(b"eed") {
        if measure(&w[..w.len() - 3]) > 0 {
            w.truncate(w.len() - 1); // eed -> ee
        }
    } else if w.ends_with(b"ed") && has_vowel(&w[..w.len() - 2]) {
        w.truncate(w.len() - 2);
        cleanup = true;
    } else if w.ends_with(b"ing") && has_vowel(&w[..w.len() - 3]) {
        w.truncate(w.len() - 3);
        cleanup = true;
    }
    if cleanup {
        if w.ends_with(b"at") || w.ends_with(b"bl") || w.ends_with(b"iz") {
            w.push(b'e'); // conflat(ed) -> conflate
        } else if w.len() >= 2 && w[w.len() - 1] == w[w.len() - 2] {
            let c = w[w.len() - 1];
            if !matches!(c, b'l' | b's' | b'z') {
                w.truncate(w.len() - 1); // hopp(ing) -> hop
            }
        } else if w.len() >= 3 && measure(&w) == 1 && ends_cvc(&w) {
            w.push(b'e'); // fil(ing) -> file
        }
    }

    // Step 1c: terminal y -> i when a vowel precedes it.
    if w.ends_with(b"y") && has_vowel(&w[..w.len() - 1]) {
        let n = w.len();
        w[n - 1] = b'i';
    }

    // Step 2/3 (abridged): the highest-frequency nominalizations.
    const RULES: &[(&[u8], &[u8])] = &[
        (b"ational", b"ate"),
        (b"ization", b"ize"),
        (b"iveness", b"ive"),
        (b"fulness", b"ful"),
        (b"ousness", b"ous"),
        (b"biliti", b"ble"),
        (b"tional", b"tion"),
        (b"alism", b"al"),
        (b"aliti", b"al"),
        (b"iviti", b"ive"),
        (b"icate", b"ic"),
        (b"ative", b""),
        (b"alize", b"al"),
        (b"ement", b""),
        (b"ness", b""),
        (b"ment", b""),
    ];
    for &(suffix, replacement) in RULES {
        if w.ends_with(suffix) {
            let stem_len = w.len() - suffix.len();
            if measure(&w[..stem_len]) > 0 {
                w.truncate(stem_len);
                w.extend_from_slice(replacement);
            }
            break;
        }
    }

    String::from_utf8(w).expect("ASCII transformations preserve UTF-8")
}

/// True when the word ends consonant-vowel-consonant with the final
/// consonant not being w, x, or y (Porter's *o condition).
fn ends_cvc(w: &[u8]) -> bool {
    let n = w.len();
    if n < 3 {
        return false;
    }
    !is_vowel(w, n - 1)
        && is_vowel(w, n - 2)
        && !is_vowel(w, n - 3)
        && !matches!(w[n - 1], b'w' | b'x' | b'y')
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn plurals() {
        assert_eq!(stem("cancers"), "cancer");
        assert_eq!(stem("caresses"), "caress");
        assert_eq!(stem("ponies"), "poni");
        assert_eq!(stem("virus"), "virus"); // -us guard
        assert_eq!(stem("caress"), "caress"); // -ss guard
    }

    #[test]
    fn ed_and_ing() {
        assert_eq!(stem("running"), "run");
        assert_eq!(stem("hopped"), "hop");
        assert_eq!(stem("conflated"), "conflate");
        assert_eq!(stem("agreed"), "agree");
        assert_eq!(stem("sing"), "sing"); // no vowel in stem "s"
        assert_eq!(stem("filing"), "file");
        assert_eq!(stem("falling"), "fall"); // double-l not undoubled
    }

    #[test]
    fn y_to_i() {
        assert_eq!(stem("happy"), "happi");
        assert_eq!(stem("sky"), "sky"); // too short & no vowel before y
    }

    #[test]
    fn nominalizations() {
        assert_eq!(stem("relational"), "relate");
        assert_eq!(stem("optimization"), "optimize");
        assert_eq!(stem("effectiveness"), "effective");
        assert_eq!(stem("adjustment"), "adjust");
    }

    #[test]
    fn short_words_untouched() {
        for w in ["a", "be", "cat", "ion"] {
            assert_eq!(stem(w), w);
        }
    }

    #[test]
    fn plural_and_suffix_compose() {
        assert_eq!(stem("databases"), "database");
        // Plural strip then -ment rule: treatments -> treatment -> treat.
        assert_eq!(stem("treatments"), "treat");
        assert_eq!(stem("treatment"), "treat");
    }

    #[test]
    fn query_document_consistency() {
        // The core contract: any inflected form and its root stem the same.
        let groups: &[&[&str]] = &[
            &["tumor", "tumors"],
            &["screening", "screenings"],
            &["diagnosis"],
            &["therapies"],
        ];
        for group in groups {
            let stems: Vec<String> = group.iter().map(|w| stem(w)).collect();
            for s in &stems {
                assert_eq!(s, &stems[0], "group {group:?} produced {stems:?}");
            }
        }
    }

    #[test]
    fn idempotence_examples() {
        for w in ["cancer", "run", "database", "optimize", "treatment"] {
            assert_eq!(stem(&stem(w)), stem(w), "{w}");
        }
    }

    proptest! {
        #[test]
        fn prop_output_is_ascii_lowercase(w in "[a-z]{1,20}") {
            let s = stem(&w);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }

        #[test]
        fn prop_never_longer_than_input_plus_one(w in "[a-z]{1,20}") {
            // Rules may append a single 'e' after truncation but never grow
            // the word otherwise.
            prop_assert!(stem(&w).len() <= w.len() + 1);
        }

        #[test]
        fn prop_never_empty(w in "[a-z]{1,20}") {
            prop_assert!(!stem(&w).is_empty());
        }
    }
}
