//! Lowercase alphanumeric tokenization.

/// Splits `text` into lowercase tokens of ASCII-alphanumeric runs.
///
/// Any non-alphanumeric character is a separator; tokens are lowercased.
/// Purely ASCII-oriented — the synthetic corpora this library generates
/// are ASCII, and keyword queries against Hidden-Web search interfaces
/// are overwhelmingly so.
///
/// ```
/// use mp_text::tokenize;
/// assert_eq!(tokenize("Breast-Cancer, 2004!"), vec!["breast", "cancer", "2004"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_ascii_alphanumeric() {
            current.push(ch.to_ascii_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Streaming variant: calls `f` for each token without allocating a `Vec`.
pub fn tokenize_into(text: &str, mut f: impl FnMut(&str)) {
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_ascii_alphanumeric() {
            current.push(ch.to_ascii_lowercase());
        } else if !current.is_empty() {
            f(&current);
            current.clear();
        }
    }
    if !current.is_empty() {
        f(&current);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(
            tokenize("the quick,brown_fox... jumps!"),
            vec!["the", "quick", "brown", "fox", "jumps"]
        );
    }

    #[test]
    fn lowercases() {
        assert_eq!(
            tokenize("PubMed MEDLINEplus"),
            vec!["pubmed", "medlineplus"]
        );
    }

    #[test]
    fn keeps_digits() {
        assert_eq!(tokenize("icde 2004"), vec!["icde", "2004"]);
    }

    #[test]
    fn empty_and_separator_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  ---  ").is_empty());
    }

    #[test]
    fn non_ascii_is_separator() {
        assert_eq!(tokenize("naïve café"), vec!["na", "ve", "caf"]);
    }

    #[test]
    fn streaming_matches_collecting() {
        let text = "A-b c42 Déjà vu!";
        let mut streamed = Vec::new();
        tokenize_into(text, |t| streamed.push(t.to_string()));
        assert_eq!(streamed, tokenize(text));
    }

    proptest! {
        #[test]
        fn prop_tokens_are_lowercase_alnum(s in ".*") {
            for t in tokenize(&s) {
                prop_assert!(!t.is_empty());
                prop_assert!(t.chars().all(|c| c.is_ascii_alphanumeric()));
                prop_assert!(t.chars().all(|c| !c.is_ascii_uppercase()));
            }
        }

        #[test]
        fn prop_idempotent_on_joined_tokens(s in ".*") {
            let once = tokenize(&s);
            let joined = once.join(" ");
            prop_assert_eq!(tokenize(&joined), once);
        }
    }
}
