//! Term interning: strings ⇄ dense term ids.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A dense identifier for an interned term.
///
/// Stored as `u32` — the synthetic vocabularies top out in the tens of
/// thousands of terms, and postings lists hold millions of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TermId(pub u32);

impl TermId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TermId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A bidirectional term interner.
///
/// Interning is insertion-ordered: the first distinct term gets id 0.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    terms: Vec<String>,
    ids: HashMap<String, TermId>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("vocabulary exceeds u32 ids"));
        self.terms.push(term.to_string());
        self.ids.insert(term.to_string(), id);
        id
    }

    /// Looks up an already-interned term.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// The string for an id, if in range.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id.index()).map(String::as_str)
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms are interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates `(TermId, &str)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms.iter().enumerate().map(|(i, t)| {
            let id = u32::try_from(i).expect("vocabulary ids are u32 by construction");
            (TermId(id), t.as_str())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("cancer");
        let b = v.intern("cancer");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("a"), TermId(0));
        assert_eq!(v.intern("b"), TermId(1));
        assert_eq!(v.intern("a"), TermId(0));
        assert_eq!(v.intern("c"), TermId(2));
    }

    #[test]
    fn roundtrip() {
        let mut v = Vocabulary::new();
        let id = v.intern("medline");
        assert_eq!(v.term(id), Some("medline"));
        assert_eq!(v.get("medline"), Some(id));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.term(TermId(99)), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut v = Vocabulary::new();
        for t in ["x", "y", "z"] {
            v.intern(t);
        }
        let collected: Vec<_> = v.iter().map(|(id, t)| (id.0, t.to_string())).collect();
        assert_eq!(
            collected,
            vec![(0, "x".into()), (1, "y".into()), (2, "z".into())]
        );
    }

    proptest! {
        #[test]
        fn prop_roundtrip_many(terms in proptest::collection::vec("[a-z]{1,8}", 0..100)) {
            let mut v = Vocabulary::new();
            let ids: Vec<TermId> = terms.iter().map(|t| v.intern(t)).collect();
            for (t, &id) in terms.iter().zip(&ids) {
                prop_assert_eq!(v.term(id).unwrap(), t.as_str());
                prop_assert_eq!(v.get(t), Some(id));
            }
            let distinct: std::collections::HashSet<_> = terms.iter().collect();
            prop_assert_eq!(v.len(), distinct.len());
        }
    }
}
