//! Micro-benchmarks of the library's hot paths: index retrieval,
//! expected-correctness math, greedy policy steps, ED training.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mp_bench::bench_testbed;
use mp_core::expected::{expected_absolute, expected_partial, RdState};
use mp_core::probing::GreedyPolicy;
use mp_core::selection::best_set;
use mp_core::{CorrectnessMetric, EdLibrary};
use mp_corpus::{generate_database, DatabaseSpec, TopicModel, TopicModelConfig};
use mp_stats::Discrete;

/// RDs shaped like real per-query state: 20 databases, ~8-point supports.
fn synthetic_rds(n: usize) -> Vec<Discrete> {
    (0..n)
        .map(|i| {
            let base = 10.0 + (i as f64) * 7.3;
            let pts: Vec<(f64, f64)> = (0..8)
                .map(|j| (base * (0.2 + 0.45 * j as f64), 1.0 + ((i + j) % 3) as f64))
                .collect();
            Discrete::from_weighted(&pts).expect("valid RD")
        })
        .collect()
}

fn bench_index(c: &mut Criterion) {
    let model = TopicModel::build(TopicModelConfig::default());
    let spec = DatabaseSpec::generalist("bench", 2_000, model.n_topics(), 1);
    let index = generate_database(&model, &spec);
    let t0 = model.topic(mp_corpus::TopicId(0)).terms()[0];
    let t1 = model.topic(mp_corpus::TopicId(0)).terms()[1];

    c.bench_function("index/build_2k_docs", |b| {
        b.iter(|| generate_database(&model, &spec))
    });
    c.bench_function("index/count_matching_2term", |b| {
        b.iter(|| black_box(index.count_matching(&[t0, t1])))
    });
    c.bench_function("index/cosine_top10", |b| {
        b.iter(|| black_box(index.cosine_topk(&[t0, t1], 10)))
    });
}

fn bench_expected(c: &mut Criterion) {
    let rds = synthetic_rds(20);
    let set1 = vec![0usize];
    let set3 = vec![0usize, 1, 2];

    c.bench_function("expected/absolute_k1_n20", |b| {
        b.iter(|| black_box(expected_absolute(&rds, &set1)))
    });
    c.bench_function("expected/absolute_k3_n20", |b| {
        b.iter(|| black_box(expected_absolute(&rds, &set3)))
    });
    c.bench_function("expected/partial_k3_n20", |b| {
        b.iter(|| black_box(expected_partial(&rds, &set3)))
    });
    c.bench_function("expected/best_set_k3_n20", |b| {
        b.iter(|| black_box(best_set(&rds, 3, CorrectnessMetric::Partial)))
    });
}

fn bench_greedy(c: &mut Criterion) {
    let rds = synthetic_rds(20);
    let state = RdState::new(rds);

    c.bench_function("greedy/usefulness_one_db_n20", |b| {
        b.iter(|| {
            black_box(GreedyPolicy::usefulness(
                &state,
                0,
                1,
                CorrectnessMetric::Absolute,
            ))
        })
    });

    let costs = mp_core::probing::ProbeCosts::new((1..=20).map(|i| i as f64).collect());
    let policy = mp_core::probing::CostAwareGreedyPolicy::new(costs);
    c.bench_function("greedy/cost_aware_gain_one_db_n20", |b| {
        b.iter(|| black_box(policy.gain_per_cost(&state, 0, 1, CorrectnessMetric::Absolute)))
    });

    // The full per-step candidate scan on the incremental parallel
    // engine vs the reference evaluation it replaces.
    c.bench_function("greedy/select_db_engine_n20", |b| {
        b.iter(|| {
            black_box(mp_core::engine::usefulness_all(
                &state,
                1,
                CorrectnessMetric::Absolute,
            ))
        })
    });
    c.bench_function("greedy/select_db_reference_n20", |b| {
        b.iter(|| {
            black_box(
                state
                    .unprobed()
                    .into_iter()
                    .map(|i| {
                        (
                            i,
                            GreedyPolicy::usefulness(&state, i, 1, CorrectnessMetric::Absolute),
                        )
                    })
                    .collect::<Vec<_>>(),
            )
        })
    });
}

fn bench_training(c: &mut Criterion) {
    let tb = bench_testbed(3);
    let queries = &tb.split.train.queries()[..50];

    c.bench_function("train/ed_library_50q_10db", |b| {
        b.iter(|| {
            let lib = EdLibrary::train(
                &tb.mediator,
                tb.estimator.as_ref(),
                tb.config.relevancy,
                queries,
                &tb.config.core,
            );
            tb.mediator.reset_probes();
            black_box(lib)
        })
    });
    let q = &tb.split.test.queries()[0];
    c.bench_function("query/derive_rds_10db", |b| b.iter(|| black_box(tb.rds(q))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(8)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_index, bench_expected, bench_greedy, bench_training
}
criterion_main!(benches);
