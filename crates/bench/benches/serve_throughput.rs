//! Serving-layer throughput: queries/sec of [`mp_serve::Server`] over a
//! repeated-query workload, across the worker-count × cache feature
//! matrix.
//!
//! The acceptance comparison (`ISSUE` PR 4) is the 4-worker cached
//! server vs the 1-worker cold-cache baseline on the same stream of
//! `UNIQUE × REPEATS` requests: the cached server must clear **≥ 2×**
//! queries/sec. On a single-core runner the win comes almost entirely
//! from the result cache (repeats are answered without re-running
//! APro), which is exactly why the workload is repeat-heavy; extra
//! workers add whatever overlap the machine actually has.
//!
//! Beyond the acceptance matrix, the bench measures a cold-cache
//! **worker-scaling** sweep (1 / 2 / 4 workers) twice: once with the
//! inner `mp-core::par` fan-out enabled and once with it forced off via
//! [`mp_core::par::set_parallel_enabled`] (the runtime equivalent of
//! building without the `parallel` feature). Each scenario records a
//! `scaling_efficiency` — `qps / (min(workers, cores) × qps of the
//! matching 1-worker row)`, clamped to `[0, 1]` — next to the raw
//! un-normalized `raw_qps_ratio`. The divisor is
//! **hardware-normalized**: on a machine with fewer cores than workers,
//! linear scaling in worker count is physically impossible and the
//! interesting question (the one the shared-nothing cold path answers)
//! is whether surplus workers *cost* throughput through lock convoys.
//! Efficiency 1.0 means the workers extract everything the cores offer
//! (ratios past 1.0 are median noise, so the fraction is clamped and
//! the raw ratio reported separately); the CI guard fails the bench if
//! the cold 4-worker rows fall under 0.7 — the signature of a
//! cross-worker lock reappearing on the serve path.
//!
//! Two **sharded** cold rows (1 and 4 workers over a 4-shard
//! scatter-gather backend) ride the same matrix and the same ≥ 0.7
//! guard: the partitioned fleet answers bit-identically to the flat
//! one (the shard layer's equivalence contract), so the rows isolate
//! topology overhead and prove partitioning keeps the shared-nothing
//! cold path lock-free.
//!
//! The bench also emits a per-span self-time profile of the cold
//! 4-worker pass (`repro_output/serve_obs_flame.txt`): mp-obs spans are
//! recorded on each worker's own thread-local stack, so the flame's
//! `hidden.search` / `serve.handle` self-times are exactly the
//! cross-worker hot path this PR de-locked, and CI uploads the file as
//! an artifact for regression archaeology.
//!
//! An **open-loop batched/shed matrix** (`ISSUE` PR 10) rides behind
//! the closed-loop rows: a Zipf-skewed arrival schedule from
//! `mp_workload::openloop` floods the server faster than it completes,
//! and cache-off rows compare batch window 1 vs 8 across 1 and 4
//! workers. The guard here is **batched cold throughput ≥ 1.3× the
//! unbatched single-worker row** — the term-sharing kernel must pay
//! for itself in exactly the duplicate-heavy regime the skew creates —
//! and a fifth row runs the SLO scheduler (tight deadlines + shed
//! limit) to record the shed rate under overload.
//!
//! The report is merged into the `serve_throughput` section of
//! `BENCH_apro.json` at the repository root; the `apro_scaling` and
//! `retrieval_kernel` benches own the file's other sections.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mp_core::{
    IndependenceEstimator, Metasearcher, RelevancyDef, ShardAssignment, ShardedMetasearcher,
};
use mp_eval::{Testbed, TestbedConfig};
use mp_serve::{Backend, ServeConfig, ServeRequest, Server};
use mp_workload::{OpenLoopConfig, Query};
use serde::Serialize;

const SEED: u64 = 41;
const UNIQUE: usize = 25;
const REPEATS: usize = 8;
const K: usize = 2;
const THRESHOLD: f64 = 0.85;
const RUNS: usize = 5;

/// The open-loop (batched/shed) matrix: arrivals per run and the Zipf
/// skew of the hot-key distribution. The skew is what gives batches
/// their term overlap — `s = 1.2` makes a handful of queries dominate,
/// the regime the term-sharing kernel is built for.
const OPEN_LOOP_ARRIVALS: usize = 400;
const ZIPF_S: f64 = 1.2;
const BATCH_RUNS: usize = 3;

/// One cell of the feature matrix, measured over `RUNS` fresh servers.
#[derive(Serialize)]
struct ScenarioReport {
    workers: usize,
    /// Shards the fleet is partitioned across (1 ≙ the flat backend).
    shards: usize,
    cache_cap: usize,
    /// Whether the inner `mp-core::par` fan-out was enabled for this
    /// row (`false` ≙ the `parallel` feature compiled out).
    inner_parallel: bool,
    runs: usize,
    /// Median wall nanoseconds for the whole batch.
    wall_ns: f64,
    /// Requests served per second at the median.
    qps: f64,
    /// `min(1, qps / (min(workers, cores) × qps of the matching
    /// 1-worker row))` — the matching row shares this row's cache
    /// capacity and `inner_parallel` setting, and the divisor is capped
    /// at the machine's core count (surplus workers cannot add
    /// throughput, but a shared lock would make them *subtract* it).
    /// 1.0 means the workers extract full linear scaling from the
    /// available cores. The value is **clamped at 1.0**: an efficiency
    /// is a fraction of the linear ideal, and measured ratios above it
    /// are run-to-run noise (a lucky multi-worker median against an
    /// unlucky single-worker one), not super-linear scaling. The
    /// unclamped measurement lives in [`Self::raw_qps_ratio`].
    scaling_efficiency: f64,
    /// `qps / qps of the matching 1-worker row`, un-normalized and
    /// un-clamped — the raw speedup over the single-worker baseline.
    /// This is the number to read when the clamp above kicks in.
    raw_qps_ratio: f64,
    /// Cache accounting from the last run (deterministic for the
    /// 1-worker rows; representative for the multi-worker ones).
    hits: u64,
    misses: u64,
    dedup_joins: u64,
}

/// One row of the open-loop batched/shed matrix. These rows run with
/// the result cache **off** (every skewed duplicate is a cold miss —
/// the regime where term-sharing batches matter) but the RD cache
/// **on** (RD derivation is shared identically in both configurations,
/// so the window-1 vs window-8 comparison isolates the batched
/// scoring kernel).
#[derive(Serialize)]
struct BatchScenarioReport {
    workers: usize,
    batch_window: usize,
    shed_p99_ms: Option<u64>,
    /// Per-request deadline in milliseconds (0 ≙ no deadline — the
    /// throughput rows run deadline-free so nothing sheds).
    deadline_ms: u64,
    arrivals: usize,
    zipf_s: f64,
    runs: usize,
    /// Median wall nanoseconds for the whole schedule.
    wall_ns: f64,
    /// Completed requests per second at the median.
    qps: f64,
    completed: u64,
    sheds: u64,
    deadline_misses: u64,
    /// `sheds / arrivals` from the last measured run — the shed-rate
    /// row the SLO scheduler's acceptance asks for.
    shed_rate: f64,
    batches: u64,
    batched_requests: u64,
}

/// The deterministic Zipf-skewed open-loop schedule, materialized as
/// `(arrival µs, request)` pairs over the testbed's unique query pool.
fn open_loop_requests(queries: &[Query], deadline: Option<Duration>) -> Vec<(u64, ServeRequest)> {
    let schedule = mp_workload::arrivals(&OpenLoopConfig {
        // Far above the server's completion rate: open-loop overload,
        // so backlog (and with it batching opportunity) is sustained.
        rate_per_sec: 2_000_000.0,
        jitter: 0.5,
        n_arrivals: OPEN_LOOP_ARRIVALS,
        n_unique: queries.len(),
        zipf_s: ZIPF_S,
        seed: SEED,
    });
    schedule
        .iter()
        .map(|a| {
            let mut req = ServeRequest::new(queries[a.query_index].clone(), K, THRESHOLD);
            if let Some(d) = deadline {
                req = req.with_deadline(d);
            }
            (a.at_us, req)
        })
        .collect()
}

/// Runs one open-loop row `BATCH_RUNS` times on fresh servers. The
/// driver paces submissions to the schedule's arrival instants (the
/// schedule is faster than the server, so in practice it floods — the
/// point of an open-loop workload) and waits for every ticket at the
/// end; queue back-pressure is the only throttle.
fn run_batch_scenario(
    ms: &Arc<Metasearcher>,
    paced: &[(u64, ServeRequest)],
    workers: usize,
    batch_window: usize,
    shed_p99_ms: Option<u64>,
    deadline_ms: u64,
) -> BatchScenarioReport {
    let mut walls = Vec::with_capacity(BATCH_RUNS);
    let mut last_stats = None;
    for measured in [false, true, true, true] {
        let config = ServeConfig {
            cache_cap: 0,       // every arrival computes: cold-path rows
            rd_cache_cap: 1024, // RD derivation shared in both configs
            ..ServeConfig::new(workers, 0)
        }
        .with_batch_window(batch_window)
        .with_shed_p99_ms(shed_p99_ms);
        let server = Server::new(Arc::clone(ms), config);
        let t = Instant::now();
        server.run(|client| {
            let start = Instant::now();
            let tickets: Vec<_> = paced
                .iter()
                .map(|(at_us, req)| {
                    let target = Duration::from_micros(*at_us);
                    while start.elapsed() < target {
                        std::hint::spin_loop();
                    }
                    client.submit(req.clone())
                })
                .collect();
            for ticket in tickets {
                // Sheds and deadline misses are expected outcomes on
                // the SLO rows, not failures.
                match ticket.and_then(mp_serve::Ticket::wait) {
                    Ok(resp) => {
                        criterion::black_box(resp);
                    }
                    Err(e) => {
                        criterion::black_box(e);
                    }
                }
            }
        });
        let wall = t.elapsed().as_nanos() as f64;
        if measured {
            walls.push(wall);
            last_stats = Some(server.stats());
        }
    }
    let (_, wall_ns, _, _) = criterion::summarize(&walls);
    let stats = last_stats.expect("at least one measured run");
    let qps = stats.completed as f64 / (wall_ns / 1e9);
    let shed_rate = stats.sheds as f64 / paced.len() as f64;
    eprintln!(
        "serve_throughput open-loop workers={workers} window={batch_window} \
         shed_p99_ms={shed_p99_ms:?}: {:.1} ms/schedule, {qps:.0} q/s \
         (completed {} sheds {} deadline_misses {} batches {} batched_requests {})",
        wall_ns / 1e6,
        stats.completed,
        stats.sheds,
        stats.deadline_misses,
        stats.batches,
        stats.batched_requests
    );
    BatchScenarioReport {
        workers,
        batch_window,
        shed_p99_ms,
        deadline_ms,
        arrivals: paced.len(),
        zipf_s: ZIPF_S,
        runs: BATCH_RUNS,
        wall_ns,
        qps,
        completed: stats.completed,
        sheds: stats.sheds,
        deadline_misses: stats.deadline_misses,
        shed_rate,
        batches: stats.batches,
        batched_requests: stats.batched_requests,
    }
}

/// Windowed tail-latency numbers from one cached pass-by-pass run: the
/// driver ticks the serve window wheel once per repeat pass, so the
/// rolling percentiles cover only the most recent passes while the
/// cumulative ones cover the whole batch (including the cold misses of
/// pass one).
#[derive(Serialize)]
struct RollingReport {
    workers: usize,
    cache_cap: usize,
    /// Window ticks driven (= repeat passes).
    window_ticks: u64,
    rolling_p50_us: u64,
    rolling_p99_us: u64,
    rolling_max_us: u64,
    /// Requests inside the rolling window.
    rolling_count: u64,
    cumulative_p50_us: u64,
    cumulative_p99_us: u64,
    cumulative_max_us: u64,
}

#[derive(Serialize)]
struct ThroughputReport {
    bench: String,
    unique_queries: usize,
    repeats: usize,
    k: usize,
    threshold: f64,
    /// Cores the runner actually has — the normalizer behind every
    /// `scaling_efficiency` value (see the bench module docs).
    cores: usize,
    scenarios: Vec<ScenarioReport>,
    /// Rolling (windowed) vs cumulative latency percentiles of the
    /// cached 4-worker configuration (mp-obs window wheel; all zeros
    /// with the `obs` feature off).
    rolling: RollingReport,
    /// `qps(4 workers, cache on) / qps(1 worker, cache off)` — the
    /// acceptance number (must be ≥ 2).
    speedup_vs_cold_baseline: f64,
    /// The open-loop batched/shed matrix: Zipf-skewed arrivals, cache
    /// off, batch window 1 vs 8, plus an SLO-shed row.
    open_loop: Vec<BatchScenarioReport>,
    /// `qps(window 8) / qps(window 1)` on the single-worker cold
    /// open-loop rows — the term-sharing acceptance number (must be
    /// ≥ 1.3 under the skewed workload).
    batched_cold_speedup: f64,
}

fn shared_metasearcher(tb: &Testbed) -> Arc<Metasearcher> {
    Metasearcher::with_library(
        tb.mediator.clone(),
        Box::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        tb.library.clone(),
    )
    .shared()
}

/// Repeat-major stream: the full unique set, `REPEATS` passes — so with
/// the cache on every pass after the first is pure hits, never
/// in-flight joins.
fn stream(queries: &[Query]) -> Vec<ServeRequest> {
    (0..REPEATS)
        .flat_map(|_| {
            queries
                .iter()
                .map(|q| ServeRequest::new(q.clone(), K, THRESHOLD))
        })
        .collect()
}

/// Runs one scenario `RUNS` times on fresh servers (cold cache each
/// run, so cache-on rows pay their compulsory misses) and reports the
/// median wall time.
fn run_scenario(
    backend: &Backend,
    shards: usize,
    requests: &[ServeRequest],
    workers: usize,
    cache_cap: usize,
    inner_parallel: bool,
) -> ScenarioReport {
    mp_core::par::set_parallel_enabled(inner_parallel);
    let mut walls = Vec::with_capacity(RUNS);
    let mut last_stats = None;
    // Warm-up run absorbs first-touch effects (lazy allocs, page-ins).
    for measured in [false, true, true, true, true, true] {
        let server = Server::with_backend(backend.clone(), ServeConfig::new(workers, cache_cap));
        let t = Instant::now();
        for r in server.serve_batch(requests.iter().cloned()) {
            let resp = r.expect("back-pressure submission never rejects");
            criterion::black_box(resp);
        }
        let wall = t.elapsed().as_nanos() as f64;
        if measured {
            walls.push(wall);
            last_stats = Some(server.stats());
        }
    }
    mp_core::par::set_parallel_enabled(true);
    let (_, wall_ns, _, _) = criterion::summarize(&walls);
    let stats = last_stats.expect("at least one measured run");
    let qps = requests.len() as f64 / (wall_ns / 1e9);
    eprintln!(
        "serve_throughput workers={workers} shards={shards} cache_cap={cache_cap} \
         inner_parallel={inner_parallel}: \
         {:.1} ms/batch, {qps:.0} q/s (hits {} misses {} joins {})",
        wall_ns / 1e6,
        stats.hits,
        stats.misses,
        stats.dedup_joins
    );
    ScenarioReport {
        workers,
        shards,
        cache_cap,
        inner_parallel,
        runs: RUNS,
        wall_ns,
        qps,
        scaling_efficiency: 1.0, // filled in once all rows are measured
        raw_qps_ratio: 1.0,      // likewise
        hits: stats.hits,
        misses: stats.misses,
        dedup_joins: stats.dedup_joins,
    }
}

/// Fills `scaling_efficiency` and `raw_qps_ratio` for every row from
/// its matching 1-worker row (same cache capacity and `inner_parallel`
/// setting). The efficiency is hardware-normalized —
/// `qps / (min(workers, cores) × base)` — and clamped to `[0, 1]`:
/// values above 1.0 are measurement noise, not super-linear scaling,
/// and reporting them as "efficiency" misreads the normalizer. The raw
/// (un-normalized, un-clamped) qps ratio is kept alongside so the
/// underlying measurement is never lost to the clamp.
fn fill_scaling_efficiency(scenarios: &mut [ScenarioReport], cores: usize) {
    let singles: Vec<(usize, usize, bool, f64)> = scenarios
        .iter()
        .filter(|s| s.workers == 1)
        .map(|s| (s.shards, s.cache_cap, s.inner_parallel, s.qps))
        .collect();
    for s in scenarios.iter_mut() {
        let base = singles
            .iter()
            .find(|&&(sh, cap, par, _)| {
                sh == s.shards && cap == s.cache_cap && par == s.inner_parallel
            })
            .map(|&(_, _, _, qps)| qps)
            .expect("every matrix row has a matching 1-worker baseline row");
        s.raw_qps_ratio = s.qps / base;
        s.scaling_efficiency = (s.qps / (s.workers.min(cores) as f64 * base)).min(1.0);
    }
}

/// Drives one cached server pass by pass (one window tick per pass) and
/// reads the rolling vs cumulative latency percentiles off its stats.
fn measure_rolling(ms: &Arc<Metasearcher>, queries: &[Query], workers: usize) -> RollingReport {
    let cache_cap = 1024;
    let server = Server::new(Arc::clone(ms), ServeConfig::new(workers, cache_cap));
    server.run(|client| {
        for _ in 0..REPEATS {
            let tickets: Vec<_> = queries
                .iter()
                .map(|q| client.submit(ServeRequest::new(q.clone(), K, THRESHOLD)))
                .collect();
            for t in tickets {
                let resp = t
                    .and_then(mp_serve::Ticket::wait)
                    .expect("back-pressure submission never rejects");
                criterion::black_box(resp);
            }
            server.tick_window();
        }
    });
    let stats = server.stats();
    eprintln!(
        "serve_throughput rolling (last {} tick(s)): p50 {} µs, p99 {} µs, \
         max {} µs over {} request(s); cumulative p50 {} µs, p99 {} µs",
        stats.window_ticks,
        stats.rolling_p50_us,
        stats.rolling_p99_us,
        stats.rolling_max_us,
        stats.rolling_count,
        stats.p50_us,
        stats.p99_us
    );
    RollingReport {
        workers,
        cache_cap,
        window_ticks: stats.window_ticks,
        rolling_p50_us: stats.rolling_p50_us,
        rolling_p99_us: stats.rolling_p99_us,
        rolling_max_us: stats.rolling_max_us,
        rolling_count: stats.rolling_count,
        cumulative_p50_us: stats.p50_us,
        cumulative_p99_us: stats.p99_us,
        cumulative_max_us: stats.latency_max_us,
    }
}

/// Profiles one cold multi-worker batch with a clean mp-obs registry
/// and writes the per-span self-time breakdown (each worker records on
/// its own thread-local span stack; the flame aggregates by span name)
/// to `repro_output/serve_obs_flame.txt` for the CI artifact.
fn write_flame_profile(ms: &Arc<Metasearcher>, requests: &[ServeRequest], workers: usize) {
    mp_obs::reset();
    let server = Server::new(Arc::clone(ms), ServeConfig::new(workers, 0));
    for r in server.serve_batch(requests.iter().cloned()) {
        criterion::black_box(r.expect("back-pressure submission never rejects"));
    }
    let snap = mp_obs::snapshot();
    let out_dir = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../repro_output"));
    std::fs::create_dir_all(out_dir).expect("repro_output is creatable");
    let path = out_dir.join("serve_obs_flame.txt");
    let mut body = format!(
        "cold serve path, {workers} workers, {} requests, obs recording {}\n\n",
        requests.len(),
        if snap.enabled { "on" } else { "off" }
    );
    body.push_str(&snap.render_flame());
    std::fs::write(&path, body).expect("flame profile written");
    eprintln!(
        "wrote {} (cold {workers}-worker span self-times)",
        path.display()
    );
}

fn main() {
    let tb = Testbed::build(TestbedConfig::tiny(SEED));
    let ms = shared_metasearcher(&tb);
    let queries: Vec<Query> = tb
        .split
        .test
        .queries()
        .iter()
        .take(UNIQUE)
        .cloned()
        .collect();
    assert_eq!(queries.len(), UNIQUE, "testbed provides the unique set");
    let requests = stream(&queries);

    let flat = Backend::Flat(Arc::clone(&ms));
    // One sharded twin of the same fleet: the scatter-gather backend
    // answers bit-identically (the shard layer's equivalence contract),
    // so these rows measure pure topology overhead.
    const SHARDS: usize = 4;
    let sharded = Backend::Sharded(
        ShardedMetasearcher::with_library(
            &tb.mediator,
            Arc::new(IndependenceEstimator),
            RelevancyDef::DocFrequency,
            &tb.library,
            &ShardAssignment::ByNameFnv(SHARDS),
        )
        .shared(),
    );

    // Acceptance matrix (inner fan-out on) + cold-cache worker-scaling
    // sweep with the inner fan-out on vs forced off + cold sharded rows
    // (the cold 4-worker sharded row sits under the same ≥ 0.7 scaling
    // guard as the flat one: partitioning must not reintroduce a
    // cross-worker lock).
    let matrix = [
        (1usize, 0usize, true, 1usize),
        (1, 1024, true, 1),
        (2, 0, true, 1),
        (4, 0, true, 1),
        (4, 1024, true, 1),
        (1, 0, false, 1),
        (2, 0, false, 1),
        (4, 0, false, 1),
        (1, 0, true, SHARDS),
        (4, 0, true, SHARDS),
    ];
    let mut scenarios: Vec<ScenarioReport> = matrix
        .iter()
        .map(|&(workers, cap, par, shards)| {
            let backend = if shards == 1 { &flat } else { &sharded };
            run_scenario(backend, shards, &requests, workers, cap, par)
        })
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    fill_scaling_efficiency(&mut scenarios, cores);
    for s in &scenarios {
        eprintln!(
            "serve_throughput workers={} shards={} cache_cap={} inner_parallel={}: \
             scaling efficiency {:.2} ({cores} cores)",
            s.workers, s.shards, s.cache_cap, s.inner_parallel, s.scaling_efficiency
        );
    }

    // Scaling-regression guard: a cold 4-worker row falling under 0.7
    // means surplus workers are *losing* throughput to a cross-worker
    // lock on the serve path (the defect this bench re-measures). The
    // serve-bench CI job relies on this assert firing.
    for s in scenarios
        .iter()
        .filter(|s| s.workers == 4 && s.cache_cap == 0)
    {
        assert!(
            s.scaling_efficiency >= 0.7,
            "cold scaling regression: 4-worker (shards={}, inner_parallel={}) efficiency \
             {:.2} < 0.7 on {cores} cores — a shared lock is back on the cold path",
            s.shards,
            s.inner_parallel,
            s.scaling_efficiency
        );
    }

    // Per-worker span self-time profile of the cold 4-worker pass (the
    // configuration the lock inventory is about), uploaded by CI.
    write_flame_profile(&ms, &requests, 4);

    // Windowed tail-latency snapshot of the cached configuration.
    let rolling = measure_rolling(&ms, &queries, 4);

    let baseline = scenarios
        .iter()
        .find(|s| s.workers == 1 && s.shards == 1 && s.cache_cap == 0 && s.inner_parallel)
        .expect("baseline scenario present");
    let candidate = scenarios
        .iter()
        .find(|s| s.workers == 4 && s.shards == 1 && s.cache_cap > 0 && s.inner_parallel)
        .expect("candidate scenario present");
    let speedup = candidate.qps / baseline.qps;
    eprintln!("serve_throughput speedup (4w cached vs 1w cold): {speedup:.1}x");
    assert!(
        speedup >= 2.0,
        "acceptance: cached serving must be >= 2x the cold baseline, got {speedup:.2}x"
    );

    // Open-loop batched/shed matrix. Recording is enabled so the SLO
    // row's rolling p99 (obs-gated) sees real latencies; the window-1
    // and window-8 rows carry the same recording overhead, so the
    // batched-vs-unbatched comparison stays apples-to-apples.
    mp_obs::set_enabled(true);
    let open = open_loop_requests(&queries, None);
    let open_deadlined = open_loop_requests(&queries, Some(Duration::from_millis(30)));
    let open_loop = vec![
        run_batch_scenario(&ms, &open, 1, 1, None, 0),
        run_batch_scenario(&ms, &open, 1, 8, None, 0),
        run_batch_scenario(&ms, &open, 4, 1, None, 0),
        run_batch_scenario(&ms, &open, 4, 8, None, 0),
        run_batch_scenario(&ms, &open_deadlined, 4, 8, Some(1), 30),
    ];

    // Term-sharing acceptance guard: under the skewed open-loop
    // workload, batched cold execution must clear ≥ 1.3× the
    // unbatched single-worker cold throughput. A fall below means the
    // batch kernel stopped sharing traversals (or batch formation
    // broke) — the perf contract of this matrix.
    let unbatched = open_loop
        .iter()
        .find(|s| s.workers == 1 && s.batch_window == 1)
        .expect("unbatched open-loop row present");
    let batched = open_loop
        .iter()
        .find(|s| s.workers == 1 && s.batch_window == 8)
        .expect("batched open-loop row present");
    let batched_cold_speedup = batched.qps / unbatched.qps;
    eprintln!(
        "serve_throughput batched cold speedup (window 8 vs 1, 1 worker): \
         {batched_cold_speedup:.2}x"
    );
    assert!(
        batched_cold_speedup >= 1.3,
        "acceptance: batched cold serving must be >= 1.3x unbatched under the skewed \
         open-loop workload, got {batched_cold_speedup:.2}x"
    );
    let shed_row = open_loop
        .iter()
        .find(|s| s.shed_p99_ms.is_some())
        .expect("shed-rate row present");
    eprintln!(
        "serve_throughput shed row: rate {:.3} ({} sheds / {} arrivals)",
        shed_row.shed_rate, shed_row.sheds, shed_row.arrivals
    );

    let report = ThroughputReport {
        bench: "server queries/sec, repeated-query workload".to_string(),
        unique_queries: UNIQUE,
        repeats: REPEATS,
        k: K,
        threshold: THRESHOLD,
        cores,
        scenarios,
        rolling,
        speedup_vs_cold_baseline: speedup,
        open_loop,
        batched_cold_speedup,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_apro.json");
    mp_bench::merge_bench_json(
        std::path::Path::new(path),
        "serve_throughput",
        report.to_value(),
    )
    .expect("BENCH_apro.json written");
    eprintln!("wrote {path} (section serve_throughput)");
}
