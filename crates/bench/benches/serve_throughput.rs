//! Serving-layer throughput: queries/sec of [`mp_serve::Server`] over a
//! repeated-query workload, across the worker-count × cache feature
//! matrix.
//!
//! The acceptance comparison (`ISSUE` PR 4) is the 4-worker cached
//! server vs the 1-worker cold-cache baseline on the same stream of
//! `UNIQUE × REPEATS` requests: the cached server must clear **≥ 2×**
//! queries/sec. On a single-core runner the win comes almost entirely
//! from the result cache (repeats are answered without re-running
//! APro), which is exactly why the workload is repeat-heavy; extra
//! workers add whatever overlap the machine actually has.
//!
//! The report is merged into the `serve_throughput` section of
//! `BENCH_apro.json` at the repository root; the `apro_scaling` bench
//! owns the file's other section.

use std::sync::Arc;
use std::time::Instant;

use mp_core::{IndependenceEstimator, Metasearcher, RelevancyDef};
use mp_eval::{Testbed, TestbedConfig};
use mp_serve::{ServeConfig, ServeRequest, Server};
use mp_workload::Query;
use serde::Serialize;

const SEED: u64 = 41;
const UNIQUE: usize = 25;
const REPEATS: usize = 8;
const K: usize = 2;
const THRESHOLD: f64 = 0.85;
const RUNS: usize = 5;

/// One cell of the feature matrix, measured over `RUNS` fresh servers.
#[derive(Serialize)]
struct ScenarioReport {
    workers: usize,
    cache_cap: usize,
    runs: usize,
    /// Median wall nanoseconds for the whole batch.
    wall_ns: f64,
    /// Requests served per second at the median.
    qps: f64,
    /// Cache accounting from the last run (deterministic for the
    /// 1-worker rows; representative for the 4-worker ones).
    hits: u64,
    misses: u64,
    dedup_joins: u64,
}

#[derive(Serialize)]
struct ThroughputReport {
    bench: String,
    unique_queries: usize,
    repeats: usize,
    k: usize,
    threshold: f64,
    scenarios: Vec<ScenarioReport>,
    /// `qps(4 workers, cache on) / qps(1 worker, cache off)` — the
    /// acceptance number (must be ≥ 2).
    speedup_vs_cold_baseline: f64,
}

fn shared_metasearcher(tb: &Testbed) -> Arc<Metasearcher> {
    Metasearcher::with_library(
        tb.mediator.clone(),
        Box::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        tb.library.clone(),
    )
    .shared()
}

/// Repeat-major stream: the full unique set, `REPEATS` passes — so with
/// the cache on every pass after the first is pure hits, never
/// in-flight joins.
fn stream(queries: &[Query]) -> Vec<ServeRequest> {
    (0..REPEATS)
        .flat_map(|_| {
            queries
                .iter()
                .map(|q| ServeRequest::new(q.clone(), K, THRESHOLD))
        })
        .collect()
}

/// Runs one scenario `RUNS` times on fresh servers (cold cache each
/// run, so cache-on rows pay their compulsory misses) and reports the
/// median wall time.
fn run_scenario(
    ms: &Arc<Metasearcher>,
    requests: &[ServeRequest],
    workers: usize,
    cache_cap: usize,
) -> ScenarioReport {
    let mut walls = Vec::with_capacity(RUNS);
    let mut last_stats = None;
    // Warm-up run absorbs first-touch effects (lazy allocs, page-ins).
    for measured in [false, true, true, true, true, true] {
        let server = Server::new(Arc::clone(ms), ServeConfig::new(workers, cache_cap));
        let t = Instant::now();
        for r in server.serve_batch(requests.iter().cloned()) {
            let resp = r.expect("back-pressure submission never rejects");
            criterion::black_box(resp);
        }
        let wall = t.elapsed().as_nanos() as f64;
        if measured {
            walls.push(wall);
            last_stats = Some(server.stats());
        }
    }
    let (_, wall_ns, _, _) = criterion::summarize(&walls);
    let stats = last_stats.expect("at least one measured run");
    let qps = requests.len() as f64 / (wall_ns / 1e9);
    eprintln!(
        "serve_throughput workers={workers} cache_cap={cache_cap}: \
         {:.1} ms/batch, {qps:.0} q/s (hits {} misses {} joins {})",
        wall_ns / 1e6,
        stats.hits,
        stats.misses,
        stats.dedup_joins
    );
    ScenarioReport {
        workers,
        cache_cap,
        runs: RUNS,
        wall_ns,
        qps,
        hits: stats.hits,
        misses: stats.misses,
        dedup_joins: stats.dedup_joins,
    }
}

fn main() {
    let tb = Testbed::build(TestbedConfig::tiny(SEED));
    let ms = shared_metasearcher(&tb);
    let queries: Vec<Query> = tb
        .split
        .test
        .queries()
        .iter()
        .take(UNIQUE)
        .cloned()
        .collect();
    assert_eq!(queries.len(), UNIQUE, "testbed provides the unique set");
    let requests = stream(&queries);

    let matrix = [(1usize, 0usize), (1, 1024), (4, 0), (4, 1024)];
    let scenarios: Vec<ScenarioReport> = matrix
        .iter()
        .map(|&(workers, cap)| run_scenario(&ms, &requests, workers, cap))
        .collect();

    let baseline = scenarios
        .iter()
        .find(|s| s.workers == 1 && s.cache_cap == 0)
        .expect("baseline scenario present");
    let candidate = scenarios
        .iter()
        .find(|s| s.workers == 4 && s.cache_cap > 0)
        .expect("candidate scenario present");
    let speedup = candidate.qps / baseline.qps;
    eprintln!("serve_throughput speedup (4w cached vs 1w cold): {speedup:.1}x");
    assert!(
        speedup >= 2.0,
        "acceptance: cached serving must be >= 2x the cold baseline, got {speedup:.2}x"
    );

    let report = ThroughputReport {
        bench: "server queries/sec, repeated-query workload".to_string(),
        unique_queries: UNIQUE,
        repeats: REPEATS,
        k: K,
        threshold: THRESHOLD,
        scenarios,
        speedup_vs_cold_baseline: speedup,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_apro.json");
    mp_bench::merge_bench_json(
        std::path::Path::new(path),
        "serve_throughput",
        report.to_value(),
    )
    .expect("BENCH_apro.json written");
    eprintln!("wrote {path} (section serve_throughput)");
}
