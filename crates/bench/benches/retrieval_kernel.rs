//! The rebuilt `cosine_topk` retrieval kernel vs the retained naive
//! HashMap-accumulator reference, over a (docs × query-terms) matrix of
//! Zipf-distributed synthetic collections.
//!
//! Besides the criterion targets, the bench merges its report into the
//! `retrieval_kernel` section of `BENCH_apro.json`, recording per
//! matrix point the naive and rebuilt kernel timings, the speedup, and
//! the max-score pruning skip-rate observed by mp-obs (`ISSUE 5`
//! acceptance: ≥ 3× at the largest point with a skip-rate > 0).
//!
//! Every timed batch is preceded by a bitwise parity check: the
//! dispatched kernel, the forced-dense kernel, and the forced-pruned
//! kernel must all return the naive reference's exact doc set, order,
//! and score bit patterns — a speedup measured against diverging
//! results would be meaningless.

use criterion::{black_box, criterion_group, Criterion};
use mp_index::{Document, IndexBuilder, InvertedIndex};
use mp_text::TermId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

/// (documents, query terms) matrix; the last entry is the acceptance
/// point.
const POINTS: [(usize, usize); 4] = [(1_000, 2), (1_000, 6), (20_000, 2), (20_000, 6)];
const VOCAB: usize = 4_000;
const QUERIES: usize = 48;
const TOP_K: usize = 10;
const SEED: u64 = 0xD0C5;

/// Zipf-ish synthetic collection: term ranks drawn with weight
/// `1 / (rank + 1)` via inverse-CDF sampling, 20–60 occurrences per
/// document — a few very common terms (long postings, the regime where
/// the dense accumulator and max-score pruning both matter) and a long
/// rare tail.
fn build_corpus(docs: usize, rng: &mut StdRng) -> InvertedIndex {
    let mut cdf = Vec::with_capacity(VOCAB);
    let mut total = 0.0f64;
    for rank in 0..VOCAB {
        total += 1.0 / (rank as f64 + 1.0);
        cdf.push(total);
    }
    let mut b = IndexBuilder::new();
    for _ in 0..docs {
        let len = rng.gen_range(20..60usize);
        let mut d = Document::new();
        for _ in 0..len {
            let u: f64 = rng.gen::<f64>() * total;
            let term = cdf.partition_point(|&c| c < u).min(VOCAB - 1);
            d.add_term(TermId(term as u32), 1);
        }
        b.add(d);
    }
    b.build()
}

/// Query mix: one frequent head term (rank < 32) plus tail terms — the
/// shape real keyword queries take, and the one where pruning pays.
fn build_queries(terms: usize, rng: &mut StdRng) -> Vec<Vec<TermId>> {
    (0..QUERIES)
        .map(|_| {
            let mut q = vec![TermId(rng.gen_range(0..32u32))];
            while q.len() < terms {
                q.push(TermId(rng.gen_range(32..VOCAB as u32)));
            }
            q
        })
        .collect()
}

fn assert_bit_parity(idx: &InvertedIndex, queries: &[Vec<TermId>]) {
    for q in queries {
        let reference = idx.cosine_topk_naive(q, TOP_K);
        for (kernel, got) in [
            ("dispatch", idx.cosine_topk(q, TOP_K)),
            ("dense", idx.cosine_topk_dense_for_test(q, TOP_K)),
            ("pruned", idx.cosine_topk_pruned_for_test(q, TOP_K)),
        ] {
            assert_eq!(got.len(), reference.len(), "{kernel}: length mismatch");
            for (a, b) in got.iter().zip(&reference) {
                assert!(
                    a.doc == b.doc && a.score.to_bits() == b.score.to_bits(),
                    "{kernel} kernel diverged from the naive reference"
                );
            }
        }
    }
}

/// Median wall-clock nanoseconds of `repeats` runs of `f` (after one
/// warm-up run).
fn median_ns<T>(repeats: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    let samples: Vec<f64> = (0..repeats)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_nanos() as f64
        })
        .collect();
    let (_, median, _, _) = criterion::summarize(&samples);
    median
}

#[derive(Serialize)]
struct PointReport {
    docs: usize,
    query_terms: usize,
    queries: usize,
    top_k: usize,
    /// Naive HashMap-kernel batch time (all queries once).
    naive_ns: f64,
    /// Rebuilt dispatched-kernel batch time.
    kernel_ns: f64,
    /// Forced dense term-at-a-time batch time (dispatch bypassed).
    dense_ns: f64,
    /// Forced max-score pruned batch time (dispatch bypassed).
    pruned_ns: f64,
    speedup: f64,
    /// Documents the pruned kernel proved unable to enter the top-k
    /// (skipped without scoring) over one instrumented batch.
    prune_skipped: u64,
    /// Documents fully scored over the same batch (both kernels).
    docs_scored: u64,
    /// `prune_skipped / (prune_skipped + docs_scored)`.
    skip_rate: f64,
    /// Dispatch split over the instrumented batch.
    queries_pruned: u64,
    queries_dense: u64,
}

#[derive(Serialize)]
struct KernelReport {
    bench: String,
    vocab: usize,
    repeats: usize,
    points: Vec<PointReport>,
}

fn counter_value(snap: &mp_obs::Snapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|c| c.name == name)
        .map(|c| c.value)
        .unwrap_or(0)
}

fn write_kernel_report() {
    let repeats = 7;
    let mut points = Vec::new();
    for (docs, terms) in POINTS {
        let mut rng = StdRng::seed_from_u64(SEED ^ (docs as u64) ^ ((terms as u64) << 32));
        let idx = build_corpus(docs, &mut rng);
        let queries = build_queries(terms, &mut rng);
        assert_bit_parity(&idx, &queries);

        // Skip-rate and dispatch split from one instrumented batch.
        mp_obs::reset();
        mp_obs::set_enabled(true);
        for q in &queries {
            black_box(idx.cosine_topk(q, TOP_K));
        }
        let snap = mp_obs::snapshot();
        let prune_skipped = counter_value(&snap, "index.prune_skipped");
        let docs_scored = counter_value(&snap, "index.docs_scored");
        let queries_pruned = counter_value(&snap, "index.queries_pruned");
        let queries_dense = counter_value(&snap, "index.queries_dense");
        let skip_rate = prune_skipped as f64 / (prune_skipped + docs_scored).max(1) as f64;

        // Timed batches with recording off (hot-path conditions).
        mp_obs::set_enabled(false);
        let naive_ns = median_ns(repeats, || {
            queries
                .iter()
                .map(|q| idx.cosine_topk_naive(q, TOP_K).len())
                .sum::<usize>()
        });
        let kernel_ns = median_ns(repeats, || {
            queries
                .iter()
                .map(|q| idx.cosine_topk(q, TOP_K).len())
                .sum::<usize>()
        });
        let dense_ns = median_ns(repeats, || {
            queries
                .iter()
                .map(|q| idx.cosine_topk_dense_for_test(q, TOP_K).len())
                .sum::<usize>()
        });
        let pruned_ns = median_ns(repeats, || {
            queries
                .iter()
                .map(|q| idx.cosine_topk_pruned_for_test(q, TOP_K).len())
                .sum::<usize>()
        });
        mp_obs::set_enabled(true);
        let speedup = naive_ns / kernel_ns;
        eprintln!(
            "retrieval_kernel docs={docs} terms={terms}: naive {:.3} ms, rebuilt {:.3} ms \
             (dense {:.3} ms, pruned {:.3} ms), speedup {speedup:.1}x, skip-rate {:.1}% \
             ({queries_pruned} pruned / {queries_dense} dense)",
            naive_ns / 1e6,
            kernel_ns / 1e6,
            dense_ns / 1e6,
            pruned_ns / 1e6,
            skip_rate * 100.0
        );
        points.push(PointReport {
            docs,
            query_terms: terms,
            queries: QUERIES,
            top_k: TOP_K,
            naive_ns,
            kernel_ns,
            dense_ns,
            pruned_ns,
            speedup,
            prune_skipped,
            docs_scored,
            skip_rate,
            queries_pruned,
            queries_dense,
        });
    }
    let largest = points.last().expect("matrix is non-empty");
    assert!(
        largest.speedup >= 3.0,
        "acceptance: rebuilt kernel must be ≥ 3x the naive reference at the largest point, \
         got {:.2}x",
        largest.speedup
    );
    assert!(
        largest.prune_skipped > 0,
        "acceptance: max-score pruning must skip documents at the largest point"
    );
    let report = KernelReport {
        bench: "cosine_topk rebuilt kernel vs naive HashMap reference".to_string(),
        vocab: VOCAB,
        repeats,
        points,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_apro.json");
    mp_bench::merge_bench_json(
        std::path::Path::new(path),
        "retrieval_kernel",
        report.to_value(),
    )
    .expect("BENCH_apro.json written");
    eprintln!("wrote {path} (section retrieval_kernel)");
}

fn bench_kernels(c: &mut Criterion) {
    let (docs, terms) = POINTS[POINTS.len() - 1];
    let mut rng = StdRng::seed_from_u64(SEED ^ (docs as u64) ^ ((terms as u64) << 32));
    let idx = build_corpus(docs, &mut rng);
    let queries = build_queries(terms, &mut rng);
    c.bench_function(&format!("index/cosine_topk_naive_d{docs}_t{terms}"), |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| black_box(idx.cosine_topk_naive(q, TOP_K)).len())
                .sum::<usize>()
        })
    });
    c.bench_function(&format!("index/cosine_topk_d{docs}_t{terms}"), |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|q| black_box(idx.cosine_topk(q, TOP_K)).len())
                .sum::<usize>()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kernels
}

fn main() {
    benches();
    write_kernel_report();
}
