//! Experiment benchmarks: one Criterion target per paper table/figure,
//! timing the *evaluation* phase on a scaled-down testbed (the fixture
//! is built once, outside the timed region). The full-scale numbers are
//! produced by the `repro` binary; these benches keep every experiment
//! code path exercised and timed by `cargo bench`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mp_bench::{bench_testbed, optimal_policy_testbed};
use mp_core::CorrectnessMetric;
use mp_eval::experiments::ablations::{
    run_policy_ablation, run_theta_ablation, run_training_size_ablation,
};
use mp_eval::experiments::fig15_selection::run_fig15;
use mp_eval::experiments::fig16_probing::run_fig16;
use mp_eval::experiments::fig17_threshold::run_fig17;
use mp_eval::experiments::fig7_sampling::{run_sampling_study, SamplingStudyConfig};
use mp_eval::experiments::fig9_query_types::run_fig9;

fn bench_fig7_fig8(c: &mut Criterion) {
    let mut cfg = SamplingStudyConfig::tiny(5);
    cfg.pool_size = 400;
    c.bench_function("exp/fig7_fig8_sampling_study", |b| {
        b.iter(|| black_box(run_sampling_study(&cfg)))
    });
}

fn bench_testbed_experiments(c: &mut Criterion) {
    let tb = bench_testbed(5);

    c.bench_function("exp/fig9_query_type_eds", |b| {
        b.iter(|| black_box(run_fig9(&tb, 0)))
    });
    c.bench_function("exp/fig15_selection_methods", |b| {
        b.iter(|| black_box(run_fig15(&tb)))
    });
    c.bench_function("exp/fig16_probing_curves", |b| {
        b.iter(|| black_box(run_fig16(&tb, 5)))
    });
    c.bench_function("exp/fig17_threshold_sweep", |b| {
        b.iter(|| black_box(run_fig17(&tb, 1, CorrectnessMetric::Absolute)))
    });
    c.bench_function("exp/a2_theta_sweep", |b| {
        b.iter(|| black_box(run_theta_ablation(&tb, &[25.0, 100.0])))
    });
    c.bench_function("exp/a3_training_size", |b| {
        b.iter(|| black_box(run_training_size_ablation(&tb, &[50, 150])))
    });
}

fn bench_policies(c: &mut Criterion) {
    let tb = bench_testbed(5);
    c.bench_function("exp/a1_policies_no_optimal", |b| {
        b.iter(|| {
            black_box(run_policy_ablation(
                &tb,
                1,
                CorrectnessMetric::Absolute,
                0.9,
                false,
            ))
        })
    });
    let small = optimal_policy_testbed(5);
    c.bench_function("exp/a1_policies_with_optimal", |b| {
        b.iter(|| {
            black_box(run_policy_ablation(
                &small,
                1,
                CorrectnessMetric::Absolute,
                0.9,
                true,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(8)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_fig7_fig8, bench_testbed_experiments, bench_policies
}
criterion_main!(benches);
