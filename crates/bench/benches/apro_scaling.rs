//! APro hot-path scaling: the greedy `select_db` candidate scan on the
//! incremental parallel engine vs the reference evaluation, at
//! `n ∈ {16, 64, 256}` mediated databases.
//!
//! Besides the criterion targets, the bench merges its report into the
//! `apro_scaling` section of the machine-readable `BENCH_apro.json` at
//! the repository root, recording both timings and the speedup per
//! size — the acceptance artifact for the engine (`ISSUE`: ≥ 2× on the
//! greedy scan at n = 256). The `serve_throughput` bench owns the
//! file's other section.
//!
//! Per size the report also records what mp-obs sees: the engine scan
//! re-measured with recording on (`engine_ns_obs`, overhead budget
//! ≤ 2% of `engine_ns`), then again under an active per-request trace
//! scope (`engine_ns_trace` / `trace_overhead_pct` — the marginal cost
//! of the waterfall, budget ≤ 2% over plain recording) and the
//! per-phase span averages — base-DP
//! deconvolution (`engine.base_dp`) vs candidate scan (`engine.scan`)
//! vs the reference fallback (`engine.reference`, driven once via the
//! absolute-metric `k = 2` branch the fast path cannot serve).

use criterion::{black_box, criterion_group, Criterion};
use mp_core::expected::RdState;
use mp_core::probing::GreedyPolicy;
use mp_core::{engine, CorrectnessMetric};
use mp_stats::Discrete;
use serde::Serialize;
use std::time::Instant;

const SIZES: [usize; 3] = [16, 64, 256];
const K: usize = 1;
const METRIC: CorrectnessMetric = CorrectnessMetric::Absolute;

/// RDs shaped like real per-query state: 8-point supports with heavy
/// cross-database overlap so the Poisson-binomial DP does real work.
fn synthetic_state(n: usize) -> RdState {
    let rds = (0..n)
        .map(|i| {
            let base = 10.0 + (i as f64) * 7.3;
            let pts: Vec<(f64, f64)> = (0..8)
                .map(|j| (base * (0.2 + 0.45 * j as f64), 1.0 + ((i + j) % 3) as f64))
                .collect();
            Discrete::from_weighted(&pts).expect("valid RD")
        })
        .collect();
    RdState::new(rds)
}

/// The engine scan — what `GreedyPolicy::select_db` runs per probe.
fn engine_scan(state: &RdState) -> Vec<(usize, f64)> {
    engine::usefulness_all(state, K, METRIC)
}

/// The reference scan the engine replaced: one full per-candidate
/// usefulness evaluation, sequential over candidates.
fn reference_scan(state: &RdState) -> Vec<(usize, f64)> {
    state
        .unprobed()
        .into_iter()
        .map(|i| (i, GreedyPolicy::usefulness(state, i, K, METRIC)))
        .collect()
}

fn bench_scaling(c: &mut Criterion) {
    for n in SIZES {
        let state = synthetic_state(n);
        c.bench_function(&format!("apro/select_db_engine_n{n}"), |b| {
            b.iter(|| black_box(engine_scan(&state)))
        });
    }
}

/// Average span timings of one engine phase, from an mp-obs snapshot.
#[derive(Serialize)]
struct PhaseReport {
    span: String,
    calls: u64,
    avg_total_ns: f64,
    avg_self_ns: f64,
}

#[derive(Serialize)]
struct SizeReport {
    n: usize,
    repeats: usize,
    engine_ns: f64,
    reference_ns: f64,
    speedup: f64,
    /// Off/on sample pairs behind `engine_ns` / `engine_ns_obs`.
    engine_repeats: usize,
    /// The engine scan re-measured with mp-obs recording enabled.
    engine_ns_obs: f64,
    /// `(engine_ns_obs - engine_ns) / engine_ns`, as a percentage.
    obs_overhead_pct: f64,
    /// The engine scan re-measured with recording on *and* an active
    /// per-request trace scope (every engine span also lands in the
    /// request waterfall).
    engine_ns_trace: f64,
    /// `(engine_ns_trace - engine_ns_obs) / engine_ns_obs`, as a
    /// percentage — the marginal cost of tracing over plain recording
    /// (tentpole budget: ≤ 2%).
    trace_overhead_pct: f64,
    phases: Vec<PhaseReport>,
}

#[derive(Serialize)]
struct ScalingReport {
    bench: String,
    k: usize,
    metric: String,
    support_points: usize,
    sizes: Vec<SizeReport>,
}

/// Median wall-clock nanoseconds of `repeats` runs of `f` (after one
/// warm-up run).
fn median_ns<T>(repeats: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    let samples: Vec<f64> = (0..repeats)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_nanos() as f64
        })
        .collect();
    let (_, median, _, _) = criterion::summarize(&samples);
    median
}

/// Median wall-clock nanoseconds of `f` with mp-obs recording off and
/// on, measured as interleaved off/on pairs so slow drift (thermal,
/// scheduler load on a shared runner) hits both sides equally instead
/// of biasing the overhead comparison. Leaves recording enabled.
fn paired_medians_ns<T>(repeats: usize, mut f: impl FnMut() -> T) -> (f64, f64) {
    for enabled in [false, true] {
        mp_obs::set_enabled(enabled);
        black_box(f()); // warm-up, both modes
    }
    let mut off = Vec::with_capacity(repeats);
    let mut on = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        mp_obs::set_enabled(false);
        let t = Instant::now();
        black_box(f());
        off.push(t.elapsed().as_nanos() as f64);
        mp_obs::set_enabled(true);
        let t = Instant::now();
        black_box(f());
        on.push(t.elapsed().as_nanos() as f64);
    }
    let (_, off_med, _, _) = criterion::summarize(&off);
    let (_, on_med, _, _) = criterion::summarize(&on);
    (off_med, on_med)
}

/// Median wall-clock nanoseconds of `f` with recording on, measured as
/// interleaved pairs: plain vs under an active per-request trace scope.
/// Same drift-cancelling protocol as [`paired_medians_ns`]. A fresh
/// scope is begun per iteration *outside* the timed region (one scope
/// holds at most `MAX_TRACE_EVENTS` events, so reusing a scope would
/// measure a saturated — cheaper — waterfall); the timed region then
/// pays exactly what a traced serve request pays per engine span: the
/// thread-local push in `on_span_close`. Leaves recording enabled.
fn traced_medians_ns<T>(repeats: usize, mut f: impl FnMut() -> T) -> (f64, f64) {
    mp_obs::set_enabled(true);
    black_box(f()); // warm-up
    let mut plain = Vec::with_capacity(repeats);
    let mut traced = Vec::with_capacity(repeats);
    for i in 0..repeats {
        let t = Instant::now();
        black_box(f());
        plain.push(t.elapsed().as_nanos() as f64);
        let scope = mp_obs::TraceScope::begin(mp_obs::TraceId(i as u64 + 1), Instant::now());
        let t = Instant::now();
        black_box(f());
        traced.push(t.elapsed().as_nanos() as f64);
        black_box(scope.finish());
    }
    let (_, plain_med, _, _) = criterion::summarize(&plain);
    let (_, traced_med, _, _) = criterion::summarize(&traced);
    (plain_med, traced_med)
}

/// Head-to-head measurement written to `BENCH_apro.json`.
fn write_scaling_report() {
    let mut sizes = Vec::new();
    for n in SIZES {
        let state = synthetic_state(n);
        let repeats = if n >= 256 { 3 } else { 7 };
        // The engine scan is cheap enough to sample much harder than
        // the reference scan — the off/on overhead comparison needs
        // the extra resolution (budget: ≤ 2%).
        let engine_repeats = if n >= 256 { 7 } else { 31 };
        // Checksum parity guards against benchmarking diverging code.
        let e: f64 = engine_scan(&state).iter().map(|&(_, u)| u).sum();
        let r: f64 = reference_scan(&state).iter().map(|&(_, u)| u).sum();
        assert!(
            (e - r).abs() < 1e-9 * (1.0 + r.abs()),
            "engine and reference scans disagree at n={n}: {e} vs {r}"
        );
        // Engine scan with recording off (one relaxed atomic load per
        // instrumentation site — the historical meaning of `engine_ns`)
        // and on, interleaved; spans from the on-runs give the phases.
        mp_obs::reset();
        let (engine_ns, engine_ns_obs) = paired_medians_ns(engine_repeats, || engine_scan(&state));
        let fast_snap = mp_obs::snapshot();
        let obs_overhead_pct = (engine_ns_obs - engine_ns) / engine_ns * 100.0;

        // Marginal cost of an active request trace over plain
        // recording, same interleaved protocol. Reported, not asserted:
        // the ≤ 2% gate lives in CI where run conditions are pinned.
        let (trace_base_ns, engine_ns_trace) =
            traced_medians_ns(engine_repeats, || engine_scan(&state));
        let trace_overhead_pct = (engine_ns_trace - trace_base_ns) / trace_base_ns * 100.0;

        mp_obs::set_enabled(false);
        let reference_ns = median_ns(repeats, || reference_scan(&state));
        let speedup = reference_ns / engine_ns;

        // The reference fallback is a separate branch (absolute metric,
        // k = 2); drive it once so its phase is timed too.
        mp_obs::reset();
        mp_obs::set_enabled(true);
        black_box(engine::usefulness_all(
            &state,
            2,
            CorrectnessMetric::Absolute,
        ));
        let fallback_snap = mp_obs::snapshot();

        let mut phases = Vec::new();
        for (snap, names) in [
            (
                &fast_snap,
                &["engine.usefulness_all", "engine.base_dp", "engine.scan"][..],
            ),
            (&fallback_snap, &["engine.reference"][..]),
        ] {
            for row in snap
                .spans
                .iter()
                .filter(|r| names.contains(&r.name.as_str()))
            {
                phases.push(PhaseReport {
                    span: row.name.clone(),
                    calls: row.count,
                    avg_total_ns: row.total_ns as f64 / row.count as f64,
                    avg_self_ns: row.self_ns as f64 / row.count as f64,
                });
            }
        }

        eprintln!(
            "apro_scaling n={n}: engine {:.3} ms (obs on {:.3} ms, {obs_overhead_pct:+.2}%; \
             traced {:.3} ms, {trace_overhead_pct:+.2}%), \
             reference {:.3} ms, speedup {speedup:.1}x",
            engine_ns / 1e6,
            engine_ns_obs / 1e6,
            engine_ns_trace / 1e6,
            reference_ns / 1e6
        );
        sizes.push(SizeReport {
            n,
            repeats,
            engine_ns,
            reference_ns,
            speedup,
            engine_repeats,
            engine_ns_obs,
            obs_overhead_pct,
            engine_ns_trace,
            trace_overhead_pct,
            phases,
        });
    }
    mp_obs::set_enabled(true);
    let report = ScalingReport {
        bench: "greedy select_db candidate scan".to_string(),
        k: K,
        metric: METRIC.to_string(),
        support_points: 8,
        sizes,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_apro.json");
    mp_bench::merge_bench_json(
        std::path::Path::new(path),
        "apro_scaling",
        report.to_value(),
    )
    .expect("BENCH_apro.json written");
    eprintln!("wrote {path} (section apro_scaling)");
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_scaling
}

fn main() {
    benches();
    write_scaling_report();
}
