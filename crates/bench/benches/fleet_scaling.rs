//! Fleet-size × shard-count scaling of the scatter-gather selection
//! path.
//!
//! The paper's experiments stop at tens of databases; the shard layer
//! exists so the selection engine keeps working when the mediated fleet
//! grows by two orders of magnitude. This bench sweeps fleet sizes
//! 20 / 200 / 2 000 databases × shard counts 1 / 2 / 8 and measures the
//! **probe-free selection path** — scatter (per-shard estimates + RD
//! derivation) → gather (global `E[Cor(DBk)]` merge) →
//! [`ShardedMetasearcher::select_rd`] — because that is the work whose
//! cost scales with fleet size on *every* request; adaptive probing
//! cost scales with the probe budget, not the fleet, and is covered by
//! `apro_scaling`.
//!
//! Every row at a given fleet size must agree on a **selection
//! checksum** (selected sets + expected-correctness bits folded over
//! the query batch): the in-bench assert extends the cross-topology
//! equivalence contract (`mp-core`'s `shard_equivalence` suite) to the
//! 2 000-database fleet — partitioning may only change *where* the
//! work runs, never the answer.
//!
//! Databases are synthetic and deliberately tiny (4–43 documents over a
//! 4-term vocabulary, varied per-database term correlations): the axis
//! under test is *how many* databases the scatter/gather machinery
//! spans, not how big each one is. The report is merged into the
//! `fleet_scaling` section of `BENCH_apro.json`; CI uploads it as an
//! artifact next to the other sections.

use std::sync::Arc;
use std::time::Instant;

use mp_core::{
    CoreConfig, CorrectnessMetric, EdLibrary, IndependenceEstimator, RelevancyDef, ShardAssignment,
    ShardedMetasearcher,
};
use mp_hidden::{ContentSummary, HiddenWebDatabase, Mediator, SimulatedHiddenDb};
use mp_index::{Document, IndexBuilder, InvertedIndex};
use mp_text::TermId;
use mp_workload::Query;
use serde::Serialize;

const FLEET_SIZES: [usize; 3] = [20, 200, 2000];
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];
const RUNS: usize = 5;

fn t(i: u32) -> TermId {
    TermId(i)
}

/// Deterministic tiny corpora, varied sizes and term correlations per
/// database (same recipe as the `shard_equivalence` suite, scaled out
/// to thousands of databases).
fn build_indexes(n: usize) -> Vec<InvertedIndex> {
    (0..n)
        .map(|d| {
            let mut b = IndexBuilder::new();
            let n_docs = 4 + (d as u32).wrapping_mul(7) % 40;
            for i in 0..n_docs {
                let mut doc = Document::new();
                if i % (2 + d as u32 % 3) == 0 {
                    doc.add_term(t(0), 1);
                }
                if (i + d as u32).is_multiple_of(3) {
                    doc.add_term(t(1), 1);
                }
                if d % 2 == 0 && i % 2 == 0 {
                    doc.add_term(t(2), 1);
                }
                doc.add_term(t(3), 1);
                b.add(doc);
            }
            b.build()
        })
        .collect()
}

fn mediator(indexes: &[InvertedIndex]) -> Mediator {
    let dbs: Vec<Arc<dyn HiddenWebDatabase>> = indexes
        .iter()
        .enumerate()
        .map(|(i, ix)| {
            Arc::new(SimulatedHiddenDb::new(format!("db-{i}"), ix.clone()))
                as Arc<dyn HiddenWebDatabase>
        })
        .collect();
    let summaries = indexes.iter().map(ContentSummary::cooperative).collect();
    Mediator::new(dbs, summaries)
}

fn train_queries() -> Vec<Query> {
    vec![
        Query::new([t(0), t(1)]),
        Query::new([t(0), t(3)]),
        Query::new([t(1), t(2)]),
        Query::new([t(2), t(3)]),
    ]
}

fn test_queries() -> Vec<Query> {
    vec![
        Query::new([t(0), t(1)]),
        Query::new([t(1), t(3)]),
        Query::new([t(0), t(2)]),
        Query::new([t(2), t(3)]),
    ]
}

/// Order-sensitive fold of the selection outcome: selected global
/// indices in canonical order plus the exact `E[Cor]` bits. Equal
/// checksums across shard counts ⇔ equal selections, bit-for-bit.
fn selection_checksum(sharded: &ShardedMetasearcher, queries: &[Query], k: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for q in queries {
        let (selected, expected) = sharded.select_rd(q, k, CorrectnessMetric::Partial);
        for g in selected {
            mix(g as u64);
        }
        mix(expected.to_bits());
    }
    h
}

/// One (fleet size, shard count) cell.
#[derive(Serialize)]
struct FleetCell {
    databases: usize,
    shards: usize,
    /// Databases in the largest / smallest shard (round-robin, so the
    /// spread is at most 1 — recorded to make the partition auditable).
    max_shard_databases: usize,
    min_shard_databases: usize,
    runs: usize,
    /// Median wall nanoseconds for one full scatter → gather → select
    /// pass over the query batch.
    wall_ns: f64,
    /// Median per-query selection latency, microseconds.
    us_per_query: f64,
    /// Selection checksum — identical across every shard count at the
    /// same fleet size (asserted in-bench).
    checksum: String,
}

#[derive(Serialize)]
struct FleetReport {
    bench: String,
    k: usize,
    queries: usize,
    cells: Vec<FleetCell>,
}

fn main() {
    let k = 2;
    let queries = test_queries();
    let mut cells = Vec::new();

    for &n in &FLEET_SIZES {
        let indexes = build_indexes(n);
        let med = mediator(&indexes);
        let config = CoreConfig::default().with_threshold(10.0);
        let library = EdLibrary::train(
            &med,
            &IndependenceEstimator,
            RelevancyDef::DocFrequency,
            &train_queries(),
            &config,
        );
        med.reset_probes();

        let mut reference: Option<u64> = None;
        for &shards in &SHARD_COUNTS {
            let sharded = ShardedMetasearcher::with_library(
                &med,
                Arc::new(IndependenceEstimator),
                RelevancyDef::DocFrequency,
                &library,
                &ShardAssignment::RoundRobin(shards),
            );
            let plan = sharded.plan();
            let sizes: Vec<usize> = (0..plan.n_shards())
                .map(|s| plan.members(s).len())
                .collect();

            let mut walls = Vec::with_capacity(RUNS);
            // Warm-up pass absorbs first-touch allocations.
            for measured in [false, true, true, true, true, true] {
                let start = Instant::now();
                for q in &queries {
                    criterion::black_box(sharded.select_rd(q, k, CorrectnessMetric::Partial));
                }
                if measured {
                    walls.push(start.elapsed().as_nanos() as f64);
                }
            }
            let (_, wall_ns, _, _) = criterion::summarize(&walls);

            let checksum = selection_checksum(&sharded, &queries, k);
            // The scale-out extension of the equivalence contract: at a
            // fixed fleet size, topology never changes the selection.
            match reference {
                None => reference = Some(checksum),
                Some(r) => assert_eq!(
                    checksum, r,
                    "selection diverged across topologies at {n} databases, {shards} shards"
                ),
            }

            let us_per_query = wall_ns / 1e3 / queries.len() as f64;
            eprintln!(
                "fleet_scaling databases={n} shards={shards}: \
                 {us_per_query:.1} µs/query (checksum {checksum:016x})"
            );
            cells.push(FleetCell {
                databases: n,
                shards,
                max_shard_databases: sizes.iter().copied().max().unwrap_or(0),
                min_shard_databases: sizes.iter().copied().min().unwrap_or(0),
                runs: RUNS,
                wall_ns,
                us_per_query,
                checksum: format!("{checksum:016x}"),
            });
        }
    }

    let report = FleetReport {
        bench: "scatter-gather selection, fleet size × shard count".to_string(),
        k,
        queries: queries.len(),
        cells,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_apro.json");
    mp_bench::merge_bench_json(
        std::path::Path::new(path),
        "fleet_scaling",
        report.to_value(),
    )
    .expect("BENCH_apro.json written");
    eprintln!("wrote {path} (section fleet_scaling)");
}
