//! # mp-bench — benchmark fixtures for `metaprobe`
//!
//! Shared testbed builders used by the Criterion benches and the
//! `repro` binary that regenerates every table and figure of the paper
//! (see `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mp_core::CoreConfig;
use mp_corpus::{ScenarioConfig, ScenarioKind, TopicModelConfig};
use mp_eval::experiments::SamplingStudyConfig;
use mp_eval::{Testbed, TestbedConfig};
use mp_workload::QueryGenConfig;

/// The full-scale reproduction testbed (paper Section 6.1 shape):
/// 20 health databases, 1000+1000 train and test queries per arity.
/// `scale` multiplies database sizes (1.0 ≈ 500–8000 docs each).
pub fn paper_testbed(seed: u64, scale: f64) -> Testbed {
    let mut cfg = TestbedConfig::paper(seed);
    cfg.scenario.scale = scale;
    Testbed::build(cfg)
}

/// A scaled-down testbed for Criterion benches: small corpora, a few
/// hundred queries — large enough to exercise every code path, small
/// enough for repeated timing.
pub fn bench_testbed(seed: u64) -> Testbed {
    let cfg = TestbedConfig {
        scenario: ScenarioConfig {
            scale: 0.15,
            n_databases: 10,
            ..ScenarioConfig::new(ScenarioKind::Health, seed)
        },
        n_two: 80,
        n_three: 50,
        core: CoreConfig::default().with_threshold(2.0),
        relevancy: mp_core::RelevancyDef::DocFrequency,
        summaries: mp_eval::SummaryMode::Cooperative,
        workload: QueryGenConfig {
            seed: seed ^ 0x51_7e_a5,
            ..QueryGenConfig::default()
        },
    };
    Testbed::build(cfg)
}

/// A small testbed with coarse ED bins whose RD supports fit the
/// exhaustive [`mp_core::probing::OptimalPolicy`] guards — used by the
/// policy ablation that includes the optimal yardstick.
pub fn optimal_policy_testbed(seed: u64) -> Testbed {
    let cfg = TestbedConfig {
        scenario: ScenarioConfig {
            n_databases: 5,
            scale: 0.08,
            topics: TopicModelConfig {
                n_topics: 6,
                terms_per_topic: 60,
                background_terms: 60,
                seed,
                ..TopicModelConfig::default()
            },
            ..ScenarioConfig::new(ScenarioKind::Health, seed)
        },
        n_two: 150,
        n_three: 100,
        core: CoreConfig {
            ed_edges: vec![-0.5, 0.05, 1.0],
            ..CoreConfig::default()
        }
        .with_threshold(10.0),
        relevancy: mp_core::RelevancyDef::DocFrequency,
        summaries: mp_eval::SummaryMode::Cooperative,
        workload: QueryGenConfig {
            seed: seed ^ 0x51_7e_a5,
            window: 12,
            ..QueryGenConfig::default()
        },
    };
    Testbed::build(cfg)
}

/// The full-scale Figure 7/8 sampling study configuration.
pub fn paper_sampling_config(seed: u64, scale: f64) -> SamplingStudyConfig {
    let mut cfg = SamplingStudyConfig::paper(seed);
    cfg.scenario.scale = scale;
    cfg
}

/// Merges one bench's report into the shared `BENCH_apro.json` artifact
/// instead of overwriting it wholesale: the file is a map of
/// `section → report`, and each bench owns exactly one section, so
/// `apro_scaling` and `serve_throughput` can regenerate independently
/// without clobbering each other's numbers.
///
/// A missing, unparsable, or pre-section-era file (the old layout was a
/// single report with a top-level `"bench"` key) is replaced by a fresh
/// map rather than merged into.
pub fn merge_bench_json(
    path: &std::path::Path,
    section: &str,
    report: serde::Value,
) -> std::io::Result<()> {
    use serde::Value;
    let mut entries: Vec<(String, Value)> = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<Value>(&text).ok())
        .and_then(|v| match v {
            Value::Obj(e) if !e.iter().any(|(k, _)| k == "bench") => Some(e),
            _ => None,
        })
        .unwrap_or_default();
    match entries.iter_mut().find(|(k, _)| k == section) {
        Some(slot) => slot.1 = report,
        None => entries.push((section.to_string(), report)),
    }
    let json = serde_json::to_string_pretty(&Value::Obj(entries)).map_err(std::io::Error::other)?;
    std::fs::write(path, json + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_testbed_builds() {
        let tb = bench_testbed(7);
        assert_eq!(tb.n_databases(), 10);
        assert_eq!(tb.split.test.len(), 130);
    }

    #[test]
    fn merge_bench_json_preserves_other_sections() {
        use serde::Value;

        fn obj(key: &str, n: f64) -> Value {
            Value::Obj(vec![(key.to_string(), Value::Num(n))])
        }
        fn field(root: &Value, section: &str, key: &str) -> Option<f64> {
            root.get(section)?.get(key)?.as_num()
        }

        let dir = std::env::temp_dir().join(format!("mp_bench_merge_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let _ = std::fs::remove_file(&path);

        // Fresh file: section lands alone.
        merge_bench_json(&path, "a", obj("x", 1.0)).unwrap();
        // Second section: the first survives.
        merge_bench_json(&path, "b", obj("y", 2.0)).unwrap();
        // Re-running a section replaces only that section.
        merge_bench_json(&path, "a", obj("x", 9.0)).unwrap();
        let root: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(field(&root, "a", "x"), Some(9.0));
        assert_eq!(field(&root, "b", "y"), Some(2.0));

        // Legacy single-report layout is replaced, not merged into.
        std::fs::write(&path, r#"{"bench": "old", "sizes": []}"#).unwrap();
        merge_bench_json(&path, "a", obj("x", 3.0)).unwrap();
        let root: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(field(&root, "a", "x"), Some(3.0));
        assert!(root.get("bench").is_none(), "legacy keys dropped");

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn optimal_testbed_has_small_supports() {
        let tb = optimal_policy_testbed(7);
        assert_eq!(tb.n_databases(), 5);
        for q in tb.split.test.queries().iter().take(20) {
            for rd in tb.rds(q) {
                assert!(rd.len() <= 4, "support {} too large", rd.len());
            }
        }
    }
}
