//! `repro` — regenerates every table and figure of the paper's
//! evaluation (plus the ablations) and writes text + JSON reports.
//!
//! ```text
//! repro [--exp all|fig7|fig8|fig9|fig15|fig16|fig17|policies|threshold|training|summaries|relevancy]
//!       [--seed N] [--scale F] [--quick] [--out DIR]
//!       [--obs] [--obs-json PATH] [--obs-verify]
//! ```
//!
//! `--quick` shrinks corpora and query counts (~20× faster) while
//! keeping every experiment's shape — useful for smoke runs and CI.
//!
//! Observability (mp-obs): `--obs` prints the span/metric tree to
//! stderr at exit, `--obs-json PATH` writes the stable JSON snapshot
//! to PATH, and `--obs-verify` exits nonzero if any registered
//! hot-path span recorded zero hits — the CI dead-instrumentation
//! guard. `MP_OBS=0` in the environment disables recording.

use mp_bench::{optimal_policy_testbed, paper_sampling_config};
use mp_core::CorrectnessMetric;
use mp_eval::experiments::ablations::{
    render_policy_ablation, render_relevancy_ablation, render_summary_ablation,
    render_theta_ablation, render_training_size_ablation, run_policy_ablation,
    run_relevancy_ablation, run_summary_ablation, run_theta_ablation, run_training_size_ablation,
};
use mp_eval::experiments::fig15_selection::{render_fig15, run_fig15};
use mp_eval::experiments::fig16_probing::{render_fig16, run_fig16};
use mp_eval::experiments::fig17_threshold::{render_fig17, run_fig17};
use mp_eval::experiments::fig7_sampling::{render_fig7, run_sampling_study};
use mp_eval::experiments::fig8_goodness::{recommended_size, render_fig8};
use mp_eval::experiments::fig9_query_types::{render_fig9, run_fig9};
use mp_eval::report::to_json;
use mp_eval::runner::evaluate_baseline;
use mp_eval::{SummaryMode, Testbed, TestbedConfig};
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Debug, Clone)]
struct Args {
    exp: String,
    seed: u64,
    scale: f64,
    quick: bool,
    out: PathBuf,
    obs: bool,
    obs_json: Option<PathBuf>,
    obs_verify: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        exp: "all".to_string(),
        seed: 42,
        scale: 1.0,
        quick: false,
        out: PathBuf::from("repro_output"),
        obs: false,
        obs_json: None,
        obs_verify: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--exp" => args.exp = it.next().expect("--exp needs a value"),
            "--seed" => {
                args.seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("seed")
            }
            "--scale" => {
                args.scale = it
                    .next()
                    .expect("--scale needs a value")
                    .parse()
                    .expect("scale")
            }
            "--quick" => args.quick = true,
            "--out" => args.out = PathBuf::from(it.next().expect("--out needs a value")),
            "--obs" => args.obs = true,
            "--obs-json" => {
                args.obs_json = Some(PathBuf::from(it.next().expect("--obs-json needs a value")))
            }
            "--obs-verify" => args.obs_verify = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--exp all|fig7|fig8|fig9|fig15|fig16|fig17|policies|threshold|training|summaries|relevancy] [--seed N] [--scale F] [--quick] [--out DIR] [--obs] [--obs-json PATH] [--obs-verify]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

struct Reporter {
    out_dir: PathBuf,
    combined: String,
}

impl Reporter {
    fn new(out_dir: PathBuf) -> Self {
        std::fs::create_dir_all(&out_dir).expect("create output dir");
        Self {
            out_dir,
            combined: String::new(),
        }
    }

    fn section(&mut self, name: &str, text: &str, json: Option<String>) {
        println!("{text}");
        self.combined.push_str(text);
        self.combined.push('\n');
        if let Some(j) = json {
            let path = self.out_dir.join(format!("{name}.json"));
            std::fs::write(&path, j).expect("write json report");
        }
    }

    fn finish(&self) {
        let path = self.out_dir.join("report.txt");
        let mut f = std::fs::File::create(&path).expect("create report.txt");
        f.write_all(self.combined.as_bytes()).expect("write report");
        println!("reports written to {}", self.out_dir.display());
    }
}

/// Lints the checkout before spending hours regenerating figures: a
/// numeric-contract violation (LINT.md) would silently corrupt every
/// number this binary reports. Skippable with `REPRO_SKIP_LINT=1`;
/// silently a no-op when run outside a source checkout.
fn lint_preflight() {
    if std::env::var_os("REPRO_SKIP_LINT").is_some() {
        return;
    }
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    if let Err(report) = mp_lint::preflight(&root) {
        eprintln!("{report}");
        eprintln!(
            "repro: mp-lint preflight failed — fix the findings above (or set \
             REPRO_SKIP_LINT=1 to run anyway)"
        );
        std::process::exit(1);
    }
}

/// Spans every `--exp all` repro run must exercise. `--obs-verify`
/// fails the process when any of these recorded zero hits — dead
/// instrumentation is indistinguishable from "this phase never ran",
/// which is exactly the regression CI should catch.
const HOT_PATH_SPANS: &[&str] = &[
    "engine.usefulness_all",
    "engine.base_dp",
    "engine.scan",
    "selection.best_set",
    "apro.run",
    "hidden.search",
    "index.build",
    "eval.testbed.build",
    "eval.baseline",
    "eval.rd_based",
    "eval.probing_curve",
    "eval.threshold_run",
];

/// Dumps the mp-obs snapshot per the `--obs*` flags and runs the
/// dead-instrumentation guard. Call once, at the end of the run.
fn obs_epilogue(args: &Args) {
    if !(args.obs || args.obs_json.is_some() || args.obs_verify) {
        return;
    }
    let snap = mp_obs::snapshot();
    if args.obs {
        eprint!("{}", snap.render_tree());
        eprint!("{}", snap.render_flame());
    }
    if let Some(path) = &args.obs_json {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create obs snapshot dir");
        }
        std::fs::write(path, snap.to_json()).expect("write obs snapshot");
        eprintln!("obs snapshot written to {}", path.display());
    }
    if args.obs_verify {
        if !mp_obs::is_enabled() {
            eprintln!("repro: --obs-verify needs recording on (unset MP_OBS=0)");
            std::process::exit(1);
        }
        if args.exp != "all" {
            eprintln!(
                "repro: --obs-verify requires --exp all (every span must get a chance to fire)"
            );
            std::process::exit(1);
        }
        let dead = snap.missing_or_zero(HOT_PATH_SPANS);
        if !dead.is_empty() {
            eprintln!(
                "repro: dead instrumentation — hot-path spans with zero hits: {}",
                dead.join(", ")
            );
            std::process::exit(1);
        }
        eprintln!(
            "obs verify: all {} hot-path spans recorded hits",
            HOT_PATH_SPANS.len()
        );
    }
}

fn main() {
    let args = parse_args();
    lint_preflight();
    let want = |name: &str| args.exp == "all" || args.exp == name;
    let mut reporter = Reporter::new(args.out.clone());
    let t0 = Instant::now();

    // --- Figures 7/8/9 share the sampling-study machinery ------------
    if want("fig7") || want("fig8") {
        let mut cfg = paper_sampling_config(args.seed, args.scale);
        if args.quick {
            cfg.scenario.scale *= 0.15;
            cfg.pool_size = 1_200;
            cfg.sizes = vec![50, 100, 200, 400];
            cfg.repetitions = 5;
        }
        eprintln!(
            "[{:>6.1?}] running sampling study (Figs. 7/8)…",
            t0.elapsed()
        );
        let result = run_sampling_study(&cfg);
        if want("fig7") {
            reporter.section("fig7", &render_fig7(&result, 6), Some(to_json(&result)));
        }
        if want("fig8") {
            let mut text = render_fig8(&result);
            text.push_str(&format!(
                "recommended sampling size (within 0.05 of best): {}\n",
                recommended_size(&result, 0.05)
            ));
            reporter.section("fig8", &text, None);
        }
    }

    // --- The main testbed (Figs. 9, 15, 16, 17, ablations) -----------
    let needs_testbed = [
        "fig9",
        "fig15",
        "fig16",
        "fig17",
        "policies",
        "threshold",
        "training",
        "summaries",
        "relevancy",
    ]
    .iter()
    .any(|e| want(e));
    if !needs_testbed {
        reporter.finish();
        obs_epilogue(&args);
        return;
    }

    let mut cfg = TestbedConfig::paper(args.seed);
    cfg.scenario.scale = args.scale;
    if args.quick {
        cfg.scenario.scale *= 0.15;
        cfg.n_two = 200;
        cfg.n_three = 150;
    }
    eprintln!("[{:>6.1?}] building the health testbed…", t0.elapsed());
    let tb = Testbed::build(cfg.clone());
    eprintln!(
        "[{:>6.1?}] testbed ready: {} databases, {} train / {} test queries",
        t0.elapsed(),
        tb.n_databases(),
        tb.split.train.len(),
        tb.split.test.len()
    );

    if want("fig9") {
        let r = run_fig9(&tb, 0);
        reporter.section("fig9", &render_fig9(&r), Some(to_json(&r)));
    }
    if want("fig15") {
        eprintln!("[{:>6.1?}] Fig. 15 (selection comparison)…", t0.elapsed());
        let r = run_fig15(&tb);
        reporter.section("fig15", &render_fig15(&r), Some(to_json(&r)));
    }
    if want("fig16") {
        eprintln!("[{:>6.1?}] Fig. 16 (probing curves)…", t0.elapsed());
        let max_probes = if args.quick { 6 } else { 10 };
        let r = run_fig16(&tb, max_probes);
        reporter.section("fig16", &render_fig16(&r), Some(to_json(&r)));
    }
    if want("fig17") {
        eprintln!("[{:>6.1?}] Fig. 17 (threshold sweep)…", t0.elapsed());
        let r = run_fig17(&tb, 1, CorrectnessMetric::Absolute);
        reporter.section("fig17", &render_fig17(&r), Some(to_json(&r)));
    }
    if want("policies") {
        eprintln!("[{:>6.1?}] A1 (probing policies)…", t0.elapsed());
        let rows = run_policy_ablation(&tb, 1, CorrectnessMetric::Absolute, 0.9, false);
        let mut text = render_policy_ablation(&rows, 1, 0.9);
        // Optimal yardstick on the small coarse-bin testbed.
        let small = optimal_policy_testbed(args.seed);
        let small_rows = run_policy_ablation(&small, 1, CorrectnessMetric::Absolute, 0.9, true);
        text.push('\n');
        text.push_str(&render_policy_ablation(&small_rows, 1, 0.9));
        text.push_str("(second table: 5-database coarse-bin testbed where the exhaustive optimal policy is tractable)\n");
        reporter.section("policies", &text, Some(to_json(&rows)));
    }
    if want("threshold") {
        eprintln!("[{:>6.1?}] A2 (θ sweep)…", t0.elapsed());
        let thetas = if args.quick {
            vec![0.5, 5.0, 100.0]
        } else {
            vec![0.25, 0.5, 1.0, 5.0, 25.0, 100.0]
        };
        let rows = run_theta_ablation(&tb, &thetas);
        reporter.section("theta", &render_theta_ablation(&rows), Some(to_json(&rows)));
    }
    if want("training") {
        eprintln!("[{:>6.1?}] A3 (training size)…", t0.elapsed());
        let sizes = if args.quick {
            vec![50, 150, 350]
        } else {
            vec![50, 100, 250, 500, 1000, 2000]
        };
        let rows = run_training_size_ablation(&tb, &sizes);
        let baseline = evaluate_baseline(&tb, 1);
        reporter.section(
            "training",
            &render_training_size_ablation(&rows, baseline),
            Some(to_json(&rows)),
        );
    }
    if want("relevancy") {
        eprintln!("[{:>6.1?}] A5 (relevancy definitions)…", t0.elapsed());
        let mut sim_cfg = cfg.clone();
        sim_cfg.relevancy = mp_core::RelevancyDef::DocSimilarity;
        sim_cfg.core = sim_cfg.core.with_threshold(0.6); // similarities ∈ [0, 1]
        let sim_tb =
            Testbed::build_with_estimator(sim_cfg, Box::new(mp_core::MaxSimilarityEstimator));
        let r = run_relevancy_ablation(&tb, &sim_tb);
        reporter.section(
            "relevancy",
            &render_relevancy_ablation(&r),
            Some(to_json(&r)),
        );
    }
    if want("summaries") {
        eprintln!("[{:>6.1?}] A4 (summary quality)…", t0.elapsed());
        let mut sampled_cfg = cfg.clone();
        sampled_cfg.summaries = SummaryMode::Sampled {
            n_queries: 120,
            docs_per_query: 40,
        };
        let sampled = Testbed::build(sampled_cfg);
        let r = run_summary_ablation(&tb, &sampled);
        reporter.section("summaries", &render_summary_ablation(&r), Some(to_json(&r)));
    }

    eprintln!("[{:>6.1?}] done", t0.elapsed());
    reporter.finish();
    obs_epilogue(&args);
}
