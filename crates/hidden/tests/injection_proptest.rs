//! Property tests pinning the schedule-independence of `UnreliableDb`'s
//! counter-keyed injection stream.
//!
//! The stream is keyed by `(wrapper seed, query fingerprint, attempt
//! index, draw counter)`, so a probe's injected outcome must be a pure
//! function of the probe — never of arrival order, interleaving with
//! other queries, or which thread issued it. These properties replay
//! arbitrary query sets through identically-configured twins in
//! different orders (permuted, interleaved with extra traffic, and
//! concurrently from multiple threads) and require bit-identical
//! per-query responses plus exactly equal [`ProbeBudget`] accounting.

use std::sync::Arc;

use mp_hidden::{HiddenWebDatabase, ProbeBudget, SimulatedHiddenDb, UnreliableDb};
use mp_index::{Document, IndexBuilder};
use mp_text::TermId;
use proptest::prelude::*;

fn t(i: u32) -> TermId {
    TermId(i)
}

/// A base database where term `i` (0..n) matches exactly one document,
/// so each distinct single-term query has a known clean answer.
fn wide_db(n: u32) -> Arc<dyn HiddenWebDatabase> {
    let mut b = IndexBuilder::new();
    for i in 0..n {
        b.add(Document::from_terms([t(i)]));
    }
    Arc::new(SimulatedHiddenDb::new("wide", b.build()))
}

const TERMS: u32 = 64;

fn flaky(seed: u64, failure_rate: f64, noise_rate: f64, retries: u32) -> UnreliableDb {
    UnreliableDb::new(wide_db(TERMS), failure_rate, noise_rate, 0.3, seed).with_retries(retries)
}

/// Response bits that must replay exactly: the match count and the full
/// scored result page.
fn outcome(db: &UnreliableDb, q: &[TermId]) -> (u32, Vec<(u64, u64)>) {
    let r = db.search(q, 3);
    (
        r.match_count,
        r.top_docs
            .iter()
            .map(|d| (u64::from(d.doc.0), d.score.to_bits()))
            .collect(),
    )
}

/// Applies a permutation drawn as ranks: element `i` goes to the
/// position of the `i`-th smallest rank (a deterministic shuffle).
fn permuted<T: Clone>(items: &[T], ranks: &[u64]) -> Vec<(usize, T)> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| (ranks.get(i).copied().unwrap_or(0), i));
    order.into_iter().map(|i| (i, items[i].clone())).collect()
}

proptest::proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(32))]

    /// Replaying an arbitrary query set in an arbitrary permuted order
    /// yields the same per-query outcome and the same final budget.
    #[test]
    fn replay_order_never_changes_outcomes_or_budget(
        seed in 0u64..1_000_000,
        failure_rate in 0.0f64..0.8,
        noise_rate in 0.0f64..0.8,
        retries in 0u32..3,
        terms in proptest::collection::vec(0u32..TERMS, 1..40),
        ranks in proptest::collection::vec(0u64..u64::MAX, 40),
    ) {
        let queries: Vec<Vec<TermId>> = terms.iter().map(|&i| vec![t(i)]).collect();

        let forward = flaky(seed, failure_rate, noise_rate, retries);
        let fwd: Vec<_> = queries.iter().map(|q| outcome(&forward, q)).collect();

        let shuffled = flaky(seed, failure_rate, noise_rate, retries);
        for (i, q) in permuted(&queries, &ranks) {
            prop_assert_eq!(&outcome(&shuffled, &q), &fwd[i], "query #{} diverged", i);
        }
        prop_assert_eq!(forward.budget(), shuffled.budget());
    }

    /// Interleaving unrelated extra probes between the queries must not
    /// shift any query's outcome — there is no consumable RNG state for
    /// the extra traffic to advance (the defect the old sequential
    /// `Mutex<StdRng>` had).
    #[test]
    fn unrelated_traffic_never_shifts_outcomes(
        seed in 0u64..1_000_000,
        failure_rate in 0.0f64..0.8,
        noise_rate in 0.0f64..0.8,
        terms in proptest::collection::vec(0u32..TERMS, 1..20),
        extra in proptest::collection::vec(0u32..TERMS, 0..20),
    ) {
        let quiet = flaky(seed, failure_rate, noise_rate, 1);
        let baseline: Vec<_> = terms.iter().map(|&i| outcome(&quiet, &[t(i)])).collect();

        let noisy = flaky(seed, failure_rate, noise_rate, 1);
        for (k, &i) in terms.iter().enumerate() {
            for &e in &extra {
                let _ = noisy.search(&[t(e), t(e)], 1);
            }
            prop_assert_eq!(&outcome(&noisy, &[t(i)]), &baseline[k], "query #{} shifted", k);
        }
    }
}

/// Thread-schedule independence: many workers race the same query set
/// through one wrapper in arbitrary interleavings; every worker must
/// observe the same per-query outcomes as a sequential replay, and the
/// budget must be exactly the sequential budget times the worker count
/// (every counter is per-probe, and probes are schedule-independent).
#[test]
fn concurrent_replay_matches_sequential_outcomes_exactly() {
    const WORKERS: u64 = 8;
    let queries: Vec<Vec<TermId>> = (0..TERMS).map(|i| vec![t(i)]).collect();

    let sequential = flaky(77, 0.4, 0.5, 2);
    let expected: Vec<_> = queries.iter().map(|q| outcome(&sequential, q)).collect();
    let seq_budget = sequential.budget();

    let shared = Arc::new(flaky(77, 0.4, 0.5, 2));
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let shared = Arc::clone(&shared);
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                // Each worker walks the set at a different stride so the
                // interleavings differ across workers and runs.
                let n = queries.len();
                let stride = usize::try_from(w).unwrap() * 2 + 1;
                for k in 0..n {
                    let i = (k * stride) % n;
                    assert_eq!(
                        outcome(&shared, &queries[i]),
                        expected[i],
                        "worker {w} query {i} diverged under concurrency"
                    );
                }
            });
        }
    });

    let b = shared.budget();
    let scaled = ProbeBudget {
        attempts: seq_budget.attempts * WORKERS,
        retries: seq_budget.retries * WORKERS,
        failures: seq_budget.failures * WORKERS,
        outages: seq_budget.outages * WORKERS,
    };
    assert_eq!(b, scaled, "budget must be the sequential spend × workers");
}
