//! The Hidden-Web search-interface trait and its simulated implementation.

use mp_index::{Document, InvertedIndex, ScoredDoc};
use mp_text::TermId;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// What a Hidden-Web database returns for one query: the answer page.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResponse {
    /// "Number of matching documents" printed on the answer page — the
    /// actual relevancy under the document-frequency definition.
    pub match_count: u32,
    /// The top result documents with similarity scores (what the
    /// metasearcher can download and analyze).
    pub top_docs: Vec<ScoredDoc>,
}

impl SearchResponse {
    /// The best query-document similarity among the returned results —
    /// the actual relevancy under the document-similarity definition.
    pub fn top_similarity(&self) -> f64 {
        self.top_docs.first().map(|d| d.score).unwrap_or(0.0)
    }
}

/// A database reachable only through its keyword-search interface.
///
/// This is the *entire* surface the metasearcher sees. In particular
/// there is no way to enumerate documents or read index internals —
/// summaries must come from [`crate::ContentSummary`] construction, and
/// exact relevancies only from probing ([`HiddenWebDatabase::search`]).
pub trait HiddenWebDatabase: Send + Sync {
    /// Stable database name.
    fn name(&self) -> &str;

    /// Issues a conjunctive keyword query; returns the answer page.
    /// Counts as **one probe** against this database.
    fn search(&self, query: &[TermId], top_n: usize) -> SearchResponse;

    /// Issues several queries against this database in one call,
    /// returning one answer page per query in order. Counts as **one
    /// probe per query**, and every answer equals what
    /// [`Self::search`] returns for that query alone.
    ///
    /// The default forwards to `search` per query in order, so wrappers
    /// (failure injection, retry budgets) keep their per-query
    /// accounting and semantics unchanged; implementations backed by a
    /// local index override it to share postings traversals across the
    /// batch.
    fn search_batch(&self, queries: &[&[TermId]], top_n: usize) -> Vec<SearchResponse> {
        queries.iter().map(|q| self.search(q, top_n)).collect()
    }

    /// Downloads one result document by id (allowed for documents that
    /// appeared on an answer page). Used by sampling-based summary
    /// construction and similarity probing.
    fn fetch(&self, doc: mp_index::DocId) -> Document;

    /// The database size if the site exports it (`|db|`); `None` for
    /// sites that don't, in which case summaries estimate it (paper
    /// footnote 6).
    fn size_hint(&self) -> Option<u32>;

    /// Number of probes (searches) served so far.
    fn probe_count(&self) -> u64;

    /// Resets the probe counter (between experiments).
    fn reset_probes(&self);
}

/// Number of per-worker shards in an enabled [`ProbeLog`]. A worker's
/// entries land in a shard picked by a thread-local slot, so concurrent
/// probers almost never contend on the same shard mutex.
const LOG_SHARDS: usize = 8;

/// Round-robin assignment of thread-local log slots.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index, assigned on first use.
    static LOG_SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % LOG_SHARDS;
}

/// Opt-in per-worker probe accounting, aggregated at drain time.
///
/// Each recording thread appends `(sequence, query)` into its own
/// shard; [`ProbeLog::drain_ordered`] merges the shards and sorts by
/// the global sequence number, reconstructing the probe order without
/// ever putting a shared lock on the probe path itself. Disabled (the
/// default), the log is a single atomic-load check — serving-path
/// probes take no lock and make no allocation.
/// One probe-log shard: `(global sequence, query terms)` records.
// mp-lint: allow(L9): thread-local-keyed shards, touched only when logging is opted in
type LogShard = Mutex<Vec<(u64, Vec<TermId>)>>;

struct ProbeLog {
    enabled: bool,
    /// Global probe ordering across shards (assigned before the shard
    /// append, so `drain_ordered` can restore chronology).
    seq: AtomicU64,
    shards: Vec<LogShard>,
}

impl ProbeLog {
    fn new(enabled: bool) -> Self {
        Self {
            enabled,
            seq: AtomicU64::new(0),
            // mp-lint: allow(L9): constructing the opt-in log's shards, not acquiring
            shards: (0..LOG_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    fn record(&self, query: &[TermId]) {
        if !self.enabled {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        LOG_SLOT.with(|&slot| {
            self.shards[slot]
                .lock()
                .expect("probe-log shard mutex poisoned: a prior holder panicked")
                .push((seq, query.to_vec()));
        });
    }

    /// Merges every shard into one chronologically ordered list
    /// (clones; the log keeps its entries).
    fn drain_ordered(&self) -> Vec<Vec<TermId>> {
        let mut merged: Vec<(u64, Vec<TermId>)> = Vec::new();
        for shard in &self.shards {
            merged.extend(
                shard
                    .lock()
                    .expect("probe-log shard mutex poisoned: a prior holder panicked")
                    .iter()
                    .cloned(),
            );
        }
        merged.sort_unstable_by_key(|&(seq, _)| seq);
        merged.into_iter().map(|(_, q)| q).collect()
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard
                .lock()
                .expect("probe-log shard mutex poisoned: a prior holder panicked")
                .clear();
        }
        self.seq.store(0, Ordering::Relaxed);
    }
}

/// A simulated Hidden-Web database: a real in-process inverted index
/// exposed only through the search interface, with probe accounting.
pub struct SimulatedHiddenDb {
    name: String,
    index: InvertedIndex,
    exports_size: bool,
    probes: AtomicU64,
    /// Recent probe queries — **opt-in** ([`Self::with_probe_log`]).
    /// The log exists for diagnostics and tests; under concurrent
    /// serving even a sharded log is per-probe work the hot path never
    /// needs, so databases are constructed with it off.
    probe_log: ProbeLog,
}

impl std::fmt::Debug for SimulatedHiddenDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatedHiddenDb")
            .field("name", &self.name)
            .field("docs", &self.index.doc_count())
            .field("probes", &self.probe_count())
            .finish()
    }
}

impl SimulatedHiddenDb {
    /// Wraps an index as a Hidden-Web database. Probe *counting* is on
    /// (atomic); per-probe query *logging* is off until
    /// [`Self::with_probe_log`] opts in.
    pub fn new(name: impl Into<String>, index: InvertedIndex) -> Self {
        Self {
            name: name.into(),
            index,
            exports_size: true,
            probes: AtomicU64::new(0),
            probe_log: ProbeLog::new(false),
        }
    }

    /// Makes the database hide its size (no `size_hint`), like real
    /// sites that don't export document counts.
    pub fn without_size_export(mut self) -> Self {
        self.exports_size = false;
        self
    }

    /// Enables per-probe query logging (diagnostics and tests). Entries
    /// are recorded into per-worker shards and merged back into probe
    /// order by [`Self::probe_log`], so even an enabled log puts no
    /// shared lock on the probe path.
    pub fn with_probe_log(mut self) -> Self {
        self.probe_log = ProbeLog::new(true);
        self
    }

    /// Disables per-probe query logging — the construction default
    /// since the cold-serving fix; kept so call sites can state the
    /// intent explicitly (throughput harnesses, serving fleets).
    pub fn without_probe_log(mut self) -> Self {
        self.probe_log = ProbeLog::new(false);
        self
    }

    /// The probe queries issued so far, in probe order (aggregated from
    /// the per-worker shards; empty unless [`Self::with_probe_log`]).
    pub fn probe_log(&self) -> Vec<Vec<TermId>> {
        self.probe_log.drain_ordered()
    }

    /// Direct index access for golden-standard construction in the
    /// evaluation harness. **Not part of the Hidden-Web surface**; the
    /// selection algorithms never call this.
    pub fn index_for_golden(&self) -> &InvertedIndex {
        &self.index
    }
}

impl HiddenWebDatabase for SimulatedHiddenDb {
    fn name(&self) -> &str {
        &self.name
    }

    fn search(&self, query: &[TermId], top_n: usize) -> SearchResponse {
        let _span = mp_obs::span!("hidden.search");
        mp_obs::counter!("probe.attempts").incr();
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.probe_log.record(query);
        SearchResponse {
            match_count: self.index.count_matching(query),
            top_docs: self.index.cosine_topk(query, top_n),
        }
    }

    fn search_batch(&self, queries: &[&[TermId]], top_n: usize) -> Vec<SearchResponse> {
        let _span = mp_obs::span!("hidden.search_batch");
        // Per-query accounting in query order — side effects identical
        // to `search` called once per query.
        for q in queries {
            mp_obs::counter!("probe.attempts").incr();
            self.probes.fetch_add(1, Ordering::Relaxed);
            self.probe_log.record(q);
        }
        let tops = self.index.cosine_topk_batch(queries, top_n);
        queries
            .iter()
            .zip(tops)
            .map(|(q, top_docs)| SearchResponse {
                match_count: self.index.count_matching(q),
                top_docs,
            })
            .collect()
    }

    fn fetch(&self, doc: mp_index::DocId) -> Document {
        mp_obs::counter!("hidden.fetches").incr();
        self.index.reconstruct_doc(doc)
    }

    fn size_hint(&self) -> Option<u32> {
        self.exports_size.then(|| self.index.doc_count())
    }

    fn probe_count(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    fn reset_probes(&self) {
        self.probes.store(0, Ordering::Relaxed);
        self.probe_log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_index::{Document, IndexBuilder};

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn sample_index() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add(Document::from_terms([t(1), t(2)]));
        b.add(Document::from_terms([t(1)]));
        b.add(Document::from_terms([t(2), t(3)]));
        b.build()
    }

    fn sample_db() -> SimulatedHiddenDb {
        SimulatedHiddenDb::new("testdb", sample_index())
    }

    fn logging_db() -> SimulatedHiddenDb {
        SimulatedHiddenDb::new("testdb", sample_index()).with_probe_log()
    }

    #[test]
    fn search_returns_match_count_and_top_docs() {
        let db = sample_db();
        let r = db.search(&[t(1)], 10);
        assert_eq!(r.match_count, 2);
        assert_eq!(r.top_docs.len(), 2);
        assert!(r.top_similarity() > 0.0);
    }

    #[test]
    fn searches_are_counted_as_probes() {
        let db = logging_db();
        assert_eq!(db.probe_count(), 0);
        db.search(&[t(1)], 0);
        db.search(&[t(2)], 0);
        assert_eq!(db.probe_count(), 2);
        assert_eq!(db.probe_log().len(), 2);
        db.reset_probes();
        assert_eq!(db.probe_count(), 0);
        assert!(db.probe_log().is_empty());
    }

    #[test]
    fn fetch_is_not_a_probe() {
        let db = sample_db();
        let r = db.search(&[t(2)], 1);
        let doc = db.fetch(r.top_docs[0].doc);
        assert!(doc.contains(t(2)));
        assert_eq!(db.probe_count(), 1);
    }

    #[test]
    fn probe_log_is_off_by_default_without_losing_counts() {
        let db = sample_db();
        db.search(&[t(1)], 0);
        db.search(&[t(2)], 0);
        assert_eq!(db.probe_count(), 2);
        assert!(db.probe_log().is_empty());
        // The explicit opt-out spelling is equivalent.
        let db = sample_db().without_probe_log();
        db.search(&[t(1)], 0);
        assert_eq!(db.probe_count(), 1);
        assert!(db.probe_log().is_empty());
    }

    #[test]
    fn enabled_log_preserves_probe_order() {
        let db = logging_db();
        for i in [3u32, 1, 2, 1, 3] {
            db.search(&[t(i)], 0);
        }
        let log = db.probe_log();
        let seen: Vec<u32> = log.iter().map(|q| q[0].0).collect();
        assert_eq!(seen, vec![3, 1, 2, 1, 3]);
    }

    #[test]
    fn enabled_log_merges_entries_from_many_threads() {
        let db = logging_db();
        std::thread::scope(|scope| {
            for w in 0..4u32 {
                let db = &db;
                scope.spawn(move || {
                    for i in 0..25u32 {
                        db.search(&[t(w * 100 + i)], 0);
                    }
                });
            }
        });
        let log = db.probe_log();
        assert_eq!(log.len(), 100, "no probe lost to sharding");
        assert_eq!(db.probe_count(), 100);
        // Every thread's entries survive the merge exactly once.
        let mut all: Vec<u32> = log.iter().map(|q| q[0].0).collect();
        all.sort_unstable();
        let expected: Vec<u32> = (0..4)
            .flat_map(|w| (0..25).map(move |i| w * 100 + i))
            .collect();
        let mut expected = expected;
        expected.sort_unstable();
        assert_eq!(all, expected);
    }

    #[test]
    fn size_hint_modes() {
        let db = sample_db();
        assert_eq!(db.size_hint(), Some(3));
        let hidden = sample_db().without_size_export();
        assert_eq!(hidden.size_hint(), None);
    }

    #[test]
    fn no_match_response() {
        let db = sample_db();
        let r = db.search(&[t(9)], 5);
        assert_eq!(r.match_count, 0);
        assert!(r.top_docs.is_empty());
        assert_eq!(r.top_similarity(), 0.0);
    }

    #[test]
    fn search_batch_matches_per_query_search_and_accounting() {
        let solo = logging_db();
        let batched = logging_db();
        let queries: Vec<Vec<TermId>> = vec![vec![t(1)], vec![t(1), t(2)], vec![t(1)], vec![t(9)]];
        let expected: Vec<SearchResponse> = queries.iter().map(|q| solo.search(q, 5)).collect();
        let refs: Vec<&[TermId]> = queries.iter().map(Vec::as_slice).collect();
        let got = batched.search_batch(&refs, 5);
        assert_eq!(
            got, expected,
            "batched answers diverge from per-query search"
        );
        assert_eq!(batched.probe_count(), solo.probe_count());
        assert_eq!(batched.probe_log(), solo.probe_log());
    }

    #[test]
    fn default_search_batch_forwards_per_query() {
        // Through a trait object the default impl must hold the same
        // contract (wrappers rely on it).
        let db: Box<dyn HiddenWebDatabase> = Box::new(sample_db());
        let a: Vec<TermId> = vec![t(1)];
        let b: Vec<TermId> = vec![t(2), t(3)];
        let got = db.search_batch(&[&a, &b], 3);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], db.search(&a, 3));
        assert_eq!(got[1], db.search(&b, 3));
        assert_eq!(db.probe_count(), 4);
    }

    #[test]
    fn trait_object_is_usable() {
        let db: Box<dyn HiddenWebDatabase> = Box::new(sample_db());
        assert_eq!(db.name(), "testdb");
        assert_eq!(db.search(&[t(1), t(2)], 0).match_count, 1);
    }
}
