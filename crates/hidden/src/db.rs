//! The Hidden-Web search-interface trait and its simulated implementation.

use mp_index::{Document, InvertedIndex, ScoredDoc};
use mp_text::TermId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// What a Hidden-Web database returns for one query: the answer page.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchResponse {
    /// "Number of matching documents" printed on the answer page — the
    /// actual relevancy under the document-frequency definition.
    pub match_count: u32,
    /// The top result documents with similarity scores (what the
    /// metasearcher can download and analyze).
    pub top_docs: Vec<ScoredDoc>,
}

impl SearchResponse {
    /// The best query-document similarity among the returned results —
    /// the actual relevancy under the document-similarity definition.
    pub fn top_similarity(&self) -> f64 {
        self.top_docs.first().map(|d| d.score).unwrap_or(0.0)
    }
}

/// A database reachable only through its keyword-search interface.
///
/// This is the *entire* surface the metasearcher sees. In particular
/// there is no way to enumerate documents or read index internals —
/// summaries must come from [`crate::ContentSummary`] construction, and
/// exact relevancies only from probing ([`HiddenWebDatabase::search`]).
pub trait HiddenWebDatabase: Send + Sync {
    /// Stable database name.
    fn name(&self) -> &str;

    /// Issues a conjunctive keyword query; returns the answer page.
    /// Counts as **one probe** against this database.
    fn search(&self, query: &[TermId], top_n: usize) -> SearchResponse;

    /// Downloads one result document by id (allowed for documents that
    /// appeared on an answer page). Used by sampling-based summary
    /// construction and similarity probing.
    fn fetch(&self, doc: mp_index::DocId) -> Document;

    /// The database size if the site exports it (`|db|`); `None` for
    /// sites that don't, in which case summaries estimate it (paper
    /// footnote 6).
    fn size_hint(&self) -> Option<u32>;

    /// Number of probes (searches) served so far.
    fn probe_count(&self) -> u64;

    /// Resets the probe counter (between experiments).
    fn reset_probes(&self);
}

/// A simulated Hidden-Web database: a real in-process inverted index
/// exposed only through the search interface, with probe accounting.
pub struct SimulatedHiddenDb {
    name: String,
    index: InvertedIndex,
    exports_size: bool,
    probes: AtomicU64,
    /// When false, `search` skips the probe-log mutex entirely. The
    /// log exists for diagnostics and tests; under concurrent serving
    /// it is a lock (plus a per-probe allocation) every worker takes on
    /// every cold search, so throughput harnesses switch it off.
    log_probes: AtomicBool,
    /// Recent probe queries, for diagnostics and tests.
    probe_log: Mutex<Vec<Vec<TermId>>>,
}

impl std::fmt::Debug for SimulatedHiddenDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatedHiddenDb")
            .field("name", &self.name)
            .field("docs", &self.index.doc_count())
            .field("probes", &self.probe_count())
            .finish()
    }
}

impl SimulatedHiddenDb {
    /// Wraps an index as a Hidden-Web database.
    pub fn new(name: impl Into<String>, index: InvertedIndex) -> Self {
        Self {
            name: name.into(),
            index,
            exports_size: true,
            probes: AtomicU64::new(0),
            log_probes: AtomicBool::new(true),
            probe_log: Mutex::new(Vec::new()),
        }
    }

    /// Makes the database hide its size (no `size_hint`), like real
    /// sites that don't export document counts.
    pub fn without_size_export(mut self) -> Self {
        self.exports_size = false;
        self
    }

    /// Disables per-probe query logging (and its mutex acquisition) —
    /// used by throughput benches where the log is both unread and a
    /// cross-worker serialization point. Probe *counting* is atomic and
    /// stays on.
    pub fn without_probe_log(self) -> Self {
        self.log_probes.store(false, Ordering::Relaxed);
        self
    }

    /// The probe queries issued so far (clone of the log).
    pub fn probe_log(&self) -> Vec<Vec<TermId>> {
        self.probe_log
            .lock()
            .expect("probe-log mutex poisoned: a prior holder panicked")
            .clone()
    }

    /// Direct index access for golden-standard construction in the
    /// evaluation harness. **Not part of the Hidden-Web surface**; the
    /// selection algorithms never call this.
    pub fn index_for_golden(&self) -> &InvertedIndex {
        &self.index
    }
}

impl HiddenWebDatabase for SimulatedHiddenDb {
    fn name(&self) -> &str {
        &self.name
    }

    fn search(&self, query: &[TermId], top_n: usize) -> SearchResponse {
        let _span = mp_obs::span!("hidden.search");
        mp_obs::counter!("probe.attempts").incr();
        self.probes.fetch_add(1, Ordering::Relaxed);
        if self.log_probes.load(Ordering::Relaxed) {
            self.probe_log
                .lock()
                .expect("probe-log mutex poisoned: a prior holder panicked")
                .push(query.to_vec());
        }
        SearchResponse {
            match_count: self.index.count_matching(query),
            top_docs: self.index.cosine_topk(query, top_n),
        }
    }

    fn fetch(&self, doc: mp_index::DocId) -> Document {
        mp_obs::counter!("hidden.fetches").incr();
        self.index.reconstruct_doc(doc)
    }

    fn size_hint(&self) -> Option<u32> {
        self.exports_size.then(|| self.index.doc_count())
    }

    fn probe_count(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    fn reset_probes(&self) {
        self.probes.store(0, Ordering::Relaxed);
        self.probe_log
            .lock()
            .expect("probe-log mutex poisoned: a prior holder panicked")
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_index::{Document, IndexBuilder};

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn sample_db() -> SimulatedHiddenDb {
        let mut b = IndexBuilder::new();
        b.add(Document::from_terms([t(1), t(2)]));
        b.add(Document::from_terms([t(1)]));
        b.add(Document::from_terms([t(2), t(3)]));
        SimulatedHiddenDb::new("testdb", b.build())
    }

    #[test]
    fn search_returns_match_count_and_top_docs() {
        let db = sample_db();
        let r = db.search(&[t(1)], 10);
        assert_eq!(r.match_count, 2);
        assert_eq!(r.top_docs.len(), 2);
        assert!(r.top_similarity() > 0.0);
    }

    #[test]
    fn searches_are_counted_as_probes() {
        let db = sample_db();
        assert_eq!(db.probe_count(), 0);
        db.search(&[t(1)], 0);
        db.search(&[t(2)], 0);
        assert_eq!(db.probe_count(), 2);
        assert_eq!(db.probe_log().len(), 2);
        db.reset_probes();
        assert_eq!(db.probe_count(), 0);
        assert!(db.probe_log().is_empty());
    }

    #[test]
    fn fetch_is_not_a_probe() {
        let db = sample_db();
        let r = db.search(&[t(2)], 1);
        let doc = db.fetch(r.top_docs[0].doc);
        assert!(doc.contains(t(2)));
        assert_eq!(db.probe_count(), 1);
    }

    #[test]
    fn probe_log_can_be_disabled_without_losing_counts() {
        let db = sample_db().without_probe_log();
        db.search(&[t(1)], 0);
        db.search(&[t(2)], 0);
        assert_eq!(db.probe_count(), 2);
        assert!(db.probe_log().is_empty());
    }

    #[test]
    fn size_hint_modes() {
        let db = sample_db();
        assert_eq!(db.size_hint(), Some(3));
        let hidden = sample_db().without_size_export();
        assert_eq!(hidden.size_hint(), None);
    }

    #[test]
    fn no_match_response() {
        let db = sample_db();
        let r = db.search(&[t(9)], 5);
        assert_eq!(r.match_count, 0);
        assert!(r.top_docs.is_empty());
        assert_eq!(r.top_similarity(), 0.0);
    }

    #[test]
    fn trait_object_is_usable() {
        let db: Box<dyn HiddenWebDatabase> = Box::new(sample_db());
        assert_eq!(db.name(), "testdb");
        assert_eq!(db.search(&[t(1), t(2)], 0).match_count, 1);
    }
}
