//! The mediator: the set of Hidden-Web databases a metasearcher fronts.

use crate::db::HiddenWebDatabase;
use crate::summary::ContentSummary;
use std::sync::Arc;

/// The mediated database set, pairing each database with its locally
/// stored [`ContentSummary`].
///
/// Databases are addressed by index throughout the library (the paper's
/// `db_1 … db_n`); the mediator owns the authoritative ordering.
#[derive(Clone)]
pub struct Mediator {
    dbs: Vec<Arc<dyn HiddenWebDatabase>>,
    summaries: Vec<ContentSummary>,
}

impl std::fmt::Debug for Mediator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mediator")
            .field("n_databases", &self.dbs.len())
            .field("names", &self.names())
            .finish()
    }
}

impl Mediator {
    /// Builds a mediator from databases and their summaries (aligned).
    ///
    /// # Panics
    /// Panics if the two vectors have different lengths or are empty.
    pub fn new(dbs: Vec<Arc<dyn HiddenWebDatabase>>, summaries: Vec<ContentSummary>) -> Self {
        assert_eq!(
            dbs.len(),
            summaries.len(),
            "databases and summaries must align"
        );
        assert!(!dbs.is_empty(), "mediator needs at least one database");
        Self { dbs, summaries }
    }

    /// Number of mediated databases (`n`).
    pub fn len(&self) -> usize {
        self.dbs.len()
    }

    /// Always false (constructor rejects empty sets).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Database `i`.
    pub fn db(&self, i: usize) -> &dyn HiddenWebDatabase {
        self.dbs[i].as_ref()
    }

    /// Shared handle to database `i`.
    pub fn db_arc(&self, i: usize) -> Arc<dyn HiddenWebDatabase> {
        Arc::clone(&self.dbs[i])
    }

    /// Summary of database `i`.
    pub fn summary(&self, i: usize) -> &ContentSummary {
        &self.summaries[i]
    }

    /// All summaries, index-aligned.
    pub fn summaries(&self) -> &[ContentSummary] {
        &self.summaries
    }

    /// Database names, index-aligned.
    pub fn names(&self) -> Vec<&str> {
        self.dbs.iter().map(|d| d.name()).collect()
    }

    /// The largest advertised database size, in documents — the warm
    /// target for retrieval scratch pools. Databases hiding their size
    /// contribute nothing; an all-hidden fleet warms to 0 (lazy growth).
    pub fn max_size_hint(&self) -> usize {
        self.dbs
            .iter()
            .filter_map(|d| d.size_hint())
            .max()
            .unwrap_or(0) as usize
    }

    /// Total probes served across all databases since the last reset.
    pub fn total_probes(&self) -> u64 {
        self.dbs.iter().map(|d| d.probe_count()).sum()
    }

    /// Resets every database's probe counter.
    pub fn reset_probes(&self) {
        for db in &self.dbs {
            db.reset_probes();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::SimulatedHiddenDb;
    use mp_index::{Document, IndexBuilder};
    use mp_text::TermId;

    fn make_db(name: &str, n_docs: u32) -> Arc<dyn HiddenWebDatabase> {
        let mut b = IndexBuilder::new();
        for i in 0..n_docs {
            b.add(Document::from_terms([TermId(i % 3)]));
        }
        Arc::new(SimulatedHiddenDb::new(name, b.build()))
    }

    fn mediator() -> Mediator {
        let dbs: Vec<Arc<dyn HiddenWebDatabase>> = vec![make_db("a", 10), make_db("b", 20)];
        let summaries = dbs
            .iter()
            .map(|d| {
                // Cooperative summaries via a single full-vocabulary probe
                // shortcut: size + dfs of the three terms.
                let mut df = std::collections::HashMap::new();
                for t in 0..3u32 {
                    df.insert(TermId(t), d.search(&[TermId(t)], 0).match_count);
                }
                d.reset_probes();
                ContentSummary::new(df, d.size_hint().unwrap())
            })
            .collect();
        Mediator::new(dbs, summaries)
    }

    #[test]
    fn construction_and_access() {
        let m = mediator();
        assert_eq!(m.len(), 2);
        assert_eq!(m.names(), vec!["a", "b"]);
        assert_eq!(m.summary(0).size(), 10);
        assert_eq!(m.summary(1).size(), 20);
    }

    #[test]
    fn probe_accounting_is_global() {
        let m = mediator();
        assert_eq!(m.total_probes(), 0);
        m.db(0).search(&[TermId(0)], 0);
        m.db(1).search(&[TermId(1)], 0);
        m.db(1).search(&[TermId(2)], 0);
        assert_eq!(m.total_probes(), 3);
        m.reset_probes();
        assert_eq!(m.total_probes(), 0);
    }

    #[test]
    fn max_size_hint_spans_the_fleet() {
        let m = mediator();
        assert_eq!(m.max_size_hint(), 20);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn rejects_misaligned_inputs() {
        let dbs = vec![make_db("a", 1)];
        Mediator::new(dbs, vec![]);
    }
}
