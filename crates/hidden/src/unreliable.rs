//! Failure injection: a wrapper simulating real Hidden-Web interface
//! misbehaviour.
//!
//! Real search sites time out, return cached/stale counts, or round
//! their "about N results" figures. The paper's model treats probe
//! results as exact; [`UnreliableDb`] lets tests and experiments
//! measure how gracefully the pipeline degrades when they are not:
//!
//! * **outage** — with probability `failure_rate` a search returns an
//!   empty answer page (match count 0, no documents), as a timed-out
//!   or rate-limited request effectively does;
//! * **stale counts** — with probability `noise_rate` the match count
//!   is perturbed by a relative factor up to ±`noise_span` (cached or
//!   approximate counters).
//!
//! A mediator talking to a flaky site retries outages; the wrapper
//! models that too ([`UnreliableDb::with_retries`]) and accounts for
//! every attempt in a local [`ProbeBudget`] plus the mp-obs counters
//! `probe.outages` / `probe.retries` / `probe.failures`, so a run's
//! probe spend stays observable and provably bounded
//! (≤ `1 + max_retries` physical probes per logical search).
//!
//! Injection is deterministic given the seed and the *sequence* of
//! calls, so experiments remain reproducible.

use crate::db::{HiddenWebDatabase, SearchResponse};
use mp_index::{DocId, Document};
use mp_text::TermId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Point-in-time probe-budget accounting for one [`UnreliableDb`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeBudget {
    /// Physical search attempts issued to the wrapped database
    /// (first tries and retries alike).
    pub attempts: u64,
    /// Attempts that were retries of an earlier outage.
    pub retries: u64,
    /// Logical searches that exhausted their retries and returned an
    /// empty answer page.
    pub failures: u64,
    /// Individual attempts lost to injected outages.
    pub outages: u64,
}

#[derive(Debug, Default)]
struct BudgetStats {
    attempts: AtomicU64,
    retries: AtomicU64,
    failures: AtomicU64,
    outages: AtomicU64,
}

/// A failure-injecting decorator around any [`HiddenWebDatabase`].
pub struct UnreliableDb {
    inner: Arc<dyn HiddenWebDatabase>,
    failure_rate: f64,
    noise_rate: f64,
    noise_span: f64,
    /// Extra attempts after a first outage; 0 = fail immediately.
    max_retries: u32,
    stats: BudgetStats,
    rng: Mutex<StdRng>,
}

impl std::fmt::Debug for UnreliableDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnreliableDb")
            .field("inner", &self.inner.name())
            .field("failure_rate", &self.failure_rate)
            .field("noise_rate", &self.noise_rate)
            .finish()
    }
}

impl UnreliableDb {
    /// Wraps `inner` with the given misbehaviour rates.
    ///
    /// # Panics
    /// Panics unless `failure_rate`, `noise_rate` ∈ [0, 1] and
    /// `noise_span` ∈ [0, 1).
    pub fn new(
        inner: Arc<dyn HiddenWebDatabase>,
        failure_rate: f64,
        noise_rate: f64,
        noise_span: f64,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&failure_rate),
            "failure_rate out of range"
        );
        assert!((0.0..=1.0).contains(&noise_rate), "noise_rate out of range");
        assert!((0.0..1.0).contains(&noise_span), "noise_span out of range");
        Self {
            inner,
            failure_rate,
            noise_rate,
            noise_span,
            max_retries: 0,
            stats: BudgetStats::default(),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// A perfectly reliable wrapper (pass-through; for A/B fixtures).
    pub fn reliable(inner: Arc<dyn HiddenWebDatabase>) -> Self {
        Self::new(inner, 0.0, 0.0, 0.0, 0)
    }

    /// Retries outages up to `max_retries` extra times before giving a
    /// logical search up. Each retry is a real (counted) probe, so one
    /// logical search costs at most `1 + max_retries` physical probes.
    pub fn with_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// The configured retry ceiling.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Snapshot of this wrapper's probe-budget accounting.
    pub fn budget(&self) -> ProbeBudget {
        ProbeBudget {
            attempts: self.stats.attempts.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            failures: self.stats.failures.load(Ordering::Relaxed),
            outages: self.stats.outages.load(Ordering::Relaxed),
        }
    }
}

impl HiddenWebDatabase for UnreliableDb {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn search(&self, query: &[TermId], top_n: usize) -> SearchResponse {
        let _span = mp_obs::span!("hidden.unreliable_search");
        let mut attempt = 0u32;
        loop {
            self.stats.attempts.fetch_add(1, Ordering::Relaxed);
            let (fail, noise_factor) = {
                let mut rng = self
                    .rng
                    .lock()
                    .expect("rng mutex poisoned: a prior holder panicked");
                let fail = rng.gen::<f64>() < self.failure_rate;
                let noise = if rng.gen::<f64>() < self.noise_rate {
                    1.0 + (rng.gen::<f64>() * 2.0 - 1.0) * self.noise_span
                } else {
                    1.0
                };
                (fail, noise)
            };
            if fail {
                self.stats.outages.fetch_add(1, Ordering::Relaxed);
                mp_obs::counter!("probe.outages").incr();
                // Outage: the probe still *happened* (and cost time), so
                // it is counted by the inner probe counter via a real
                // call with no results requested.
                let _ = self.inner.search(query, 0);
                if attempt < self.max_retries {
                    attempt += 1;
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    mp_obs::counter!("probe.retries").incr();
                    continue;
                }
                self.stats.failures.fetch_add(1, Ordering::Relaxed);
                mp_obs::counter!("probe.failures").incr();
                return SearchResponse {
                    match_count: 0,
                    top_docs: Vec::new(),
                };
            }
            let mut resp = self.inner.search(query, top_n);
            // `exact_one` (not an epsilon test): the no-noise branch
            // above sets the factor to the literal 1.0, so only that
            // sentinel means "leave the count untouched".
            if !mp_stats::float::exact_one(noise_factor) {
                let noised = f64::from(resp.match_count) * noise_factor;
                // Saturate on the (unreachable in practice) overflow
                // rather than wrapping: a stale counter can only
                // exaggerate so far.
                resp.match_count = mp_stats::float::round_u32(noised.max(0.0)).unwrap_or(u32::MAX);
            }
            return resp;
        }
    }

    fn fetch(&self, doc: DocId) -> Document {
        self.inner.fetch(doc)
    }

    fn size_hint(&self) -> Option<u32> {
        self.inner.size_hint()
    }

    fn probe_count(&self) -> u64 {
        self.inner.probe_count()
    }

    fn reset_probes(&self) {
        self.inner.reset_probes();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::SimulatedHiddenDb;
    use mp_index::{Document, IndexBuilder};

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn base_db() -> Arc<dyn HiddenWebDatabase> {
        let mut b = IndexBuilder::new();
        for _ in 0..100 {
            b.add(Document::from_terms([t(1), t(2)]));
        }
        Arc::new(SimulatedHiddenDb::new("base", b.build()))
    }

    #[test]
    fn reliable_wrapper_is_transparent() {
        let db = UnreliableDb::reliable(base_db());
        let r = db.search(&[t(1)], 5);
        assert_eq!(r.match_count, 100);
        assert_eq!(r.top_docs.len(), 5);
        assert_eq!(db.name(), "base");
        assert_eq!(db.size_hint(), Some(100));
    }

    #[test]
    fn outages_return_empty_pages_at_roughly_the_configured_rate() {
        let db = UnreliableDb::new(base_db(), 0.3, 0.0, 0.0, 42);
        let n = 2000;
        let failures = (0..n)
            .filter(|_| db.search(&[t(1)], 0).match_count == 0)
            .count();
        let rate = failures as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "observed outage rate {rate}");
    }

    #[test]
    fn outages_still_cost_probes() {
        let db = UnreliableDb::new(base_db(), 1.0, 0.0, 0.0, 1);
        db.reset_probes();
        let _ = db.search(&[t(1)], 3);
        assert_eq!(db.probe_count(), 1);
    }

    #[test]
    fn noise_perturbs_counts_within_span() {
        let db = UnreliableDb::new(base_db(), 0.0, 1.0, 0.2, 7);
        let mut saw_noise = false;
        for _ in 0..200 {
            let c = db.search(&[t(1)], 0).match_count;
            assert!((80..=120).contains(&c), "count {c} outside ±20% of 100");
            if c != 100 {
                saw_noise = true;
            }
        }
        assert!(saw_noise, "noise never fired at rate 1.0");
    }

    #[test]
    fn injection_is_deterministic_in_seed_and_sequence() {
        let a = UnreliableDb::new(base_db(), 0.4, 0.5, 0.3, 9);
        let b = UnreliableDb::new(base_db(), 0.4, 0.5, 0.3, 9);
        for _ in 0..100 {
            assert_eq!(
                a.search(&[t(1)], 0).match_count,
                b.search(&[t(1)], 0).match_count
            );
        }
    }

    #[test]
    #[should_panic(expected = "failure_rate out of range")]
    fn rejects_invalid_rates() {
        UnreliableDb::new(base_db(), 1.5, 0.0, 0.0, 0);
    }

    /// Regression: a flaky source's retry spend is observable (local
    /// budget and mp-obs counters) and bounded by `1 + max_retries`
    /// physical probes per logical search.
    #[test]
    fn flaky_source_retry_count_is_observable_and_bounded() {
        let db = UnreliableDb::new(base_db(), 1.0, 0.0, 0.0, 3).with_retries(3);
        assert_eq!(db.budget(), ProbeBudget::default());
        #[cfg(feature = "obs")]
        let retries_before = mp_obs::counter("probe.retries").get();

        let r = db.search(&[t(1)], 5);
        assert_eq!(r.match_count, 0, "permanent outage fails the search");

        let b = db.budget();
        assert_eq!(b.attempts, 4, "one first try plus max_retries retries");
        assert_eq!(b.retries, 3);
        assert_eq!(b.outages, 4);
        assert_eq!(b.failures, 1);
        assert_eq!(db.probe_count(), 4, "every retry cost a real probe");
        assert!(b.attempts <= u64::from(db.max_retries()) + 1);

        // The spend also surfaces through the global mp-obs counters
        // (>=: the registry is shared with other tests in this binary).
        #[cfg(feature = "obs")]
        if mp_obs::is_enabled() {
            assert!(mp_obs::counter("probe.retries").get() >= retries_before + 3);
        }
    }

    /// A partially flaky source recovers within budget: with outages at
    /// ~50% and one retry allowed, most logical searches still succeed.
    #[test]
    fn retries_recover_transient_outages() {
        let db = UnreliableDb::new(base_db(), 0.5, 0.0, 0.0, 11).with_retries(1);
        let n = 500u64;
        let failed = (0..n)
            .filter(|_| db.search(&[t(1)], 0).match_count == 0)
            .count() as u64;
        let b = db.budget();
        // P(fail) = 0.25 under one retry; allow generous slack.
        assert!(
            f64::from(u32::try_from(failed).unwrap()) / f64::from(u32::try_from(n).unwrap()) < 0.35,
            "failure rate {failed}/{n} too high for one retry"
        );
        assert_eq!(b.failures, failed);
        assert_eq!(b.attempts, n + b.retries);
        assert!(b.attempts <= n * 2, "bounded by 1 + max_retries per search");
    }
}
