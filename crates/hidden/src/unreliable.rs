//! Failure injection: a wrapper simulating real Hidden-Web interface
//! misbehaviour.
//!
//! Real search sites time out, return cached/stale counts, or round
//! their "about N results" figures. The paper's model treats probe
//! results as exact; [`UnreliableDb`] lets tests and experiments
//! measure how gracefully the pipeline degrades when they are not:
//!
//! * **outage** — with probability `failure_rate` a search returns an
//!   empty answer page (match count 0, no documents), as a timed-out
//!   or rate-limited request effectively does;
//! * **stale counts** — with probability `noise_rate` the match count
//!   is perturbed by a relative factor up to ±`noise_span` (cached or
//!   approximate counters).
//!
//! A mediator talking to a flaky site retries outages; the wrapper
//! models that too ([`UnreliableDb::with_retries`]) and accounts for
//! every attempt in a local [`ProbeBudget`] plus the mp-obs counters
//! `probe.outages` / `probe.retries` / `probe.failures`, so a run's
//! probe spend stays observable and provably bounded
//! (≤ `1 + max_retries` physical probes per logical search).
//!
//! # Schedule-independent injection
//!
//! Injection randomness is **counter-keyed, not sequential**: every
//! draw comes from a splitmix64 stream keyed by `(wrapper seed, query
//! fingerprint, attempt index, draw counter)`. There is no shared RNG
//! state and therefore no lock — a probe's outcome is a pure function
//! of the database and the probe itself, never of which thread issued
//! it first. The earlier design (`Mutex<StdRng>` consumed in call
//! order) was both a serialization point on the concurrent serving
//! path and a correctness bug: under multiple workers, thread
//! interleaving decided which query absorbed which outage, so served
//! results could diverge from a sequential replay. With per-probe
//! keying, results and [`ProbeBudget`] accounting are bit-identical at
//! any worker count, which the serve-layer failure-injection
//! twin-replay test pins at {1, 2, 4, 8} workers.
//!
//! Consequently a given `(database, query)` pair misbehaves the *same
//! way every time* — like a deterministic stale cache in front of a
//! flaky site. Experiments that want variation across probes vary the
//! query (or the seed), not the call count.

use crate::db::{HiddenWebDatabase, SearchResponse};
use mp_index::{DocId, Document};
use mp_text::TermId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Point-in-time probe-budget accounting for one [`UnreliableDb`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeBudget {
    /// Physical search attempts issued to the wrapped database
    /// (first tries and retries alike).
    pub attempts: u64,
    /// Attempts that were retries of an earlier outage.
    pub retries: u64,
    /// Logical searches that exhausted their retries and returned an
    /// empty answer page.
    pub failures: u64,
    /// Individual attempts lost to injected outages.
    pub outages: u64,
}

#[derive(Debug, Default)]
struct BudgetStats {
    attempts: AtomicU64,
    retries: AtomicU64,
    failures: AtomicU64,
    outages: AtomicU64,
}

/// splitmix64 finalizer: a full-avalanche bijection on `u64`.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Weyl-sequence increment (splitmix64's golden-ratio gamma).
const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// Stable FNV-1a fingerprint of a query's term sequence — the
/// query-identity half of the injection key.
fn query_key(query: &[TermId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for t in query {
        for b in t.0.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// One probe's private random stream: keyed by `(seed, query, attempt)`
/// and advanced by a local draw counter. Lock-free and schedule
/// independent — two threads probing concurrently derive disjoint,
/// deterministic streams.
struct ProbeStream {
    state: u64,
}

impl ProbeStream {
    fn new(seed: u64, qkey: u64, attempt: u32) -> Self {
        // Each key component passes through the avalanche mixer before
        // combining, so structured inputs (small seeds, consecutive
        // attempt indices) cannot cancel in the XOR.
        let state = mix64(seed ^ GAMMA)
            ^ mix64(qkey.wrapping_add(GAMMA))
            ^ mix64(u64::from(attempt).wrapping_mul(GAMMA));
        Self { state }
    }

    /// Next value uniform in `[0, 1)` (53-bit mantissa resolution).
    fn next_f64(&mut self) -> f64 {
        self.state = self.state.wrapping_add(GAMMA);
        let bits = mix64(self.state) >> 11;
        // `bits` has at most 53 significant bits after the shift, so
        // both u64 -> f64 conversions are exact (L2 allows int -> f64).
        bits as f64 / (1u64 << 53) as f64
    }
}

/// A failure-injecting decorator around any [`HiddenWebDatabase`].
pub struct UnreliableDb {
    inner: Arc<dyn HiddenWebDatabase>,
    failure_rate: f64,
    noise_rate: f64,
    noise_span: f64,
    /// Extra attempts after a first outage; 0 = fail immediately.
    max_retries: u32,
    stats: BudgetStats,
    /// Keys the per-probe injection streams; never mutated after
    /// construction (the wrapper holds no shared RNG state).
    seed: u64,
}

impl std::fmt::Debug for UnreliableDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnreliableDb")
            .field("inner", &self.inner.name())
            .field("failure_rate", &self.failure_rate)
            .field("noise_rate", &self.noise_rate)
            .field("noise_span", &self.noise_span)
            .field("max_retries", &self.max_retries)
            .field("seed", &self.seed)
            .finish()
    }
}

impl UnreliableDb {
    /// Wraps `inner` with the given misbehaviour rates.
    ///
    /// # Panics
    /// Panics unless `failure_rate`, `noise_rate` ∈ [0, 1] and
    /// `noise_span` ∈ [0, 1).
    pub fn new(
        inner: Arc<dyn HiddenWebDatabase>,
        failure_rate: f64,
        noise_rate: f64,
        noise_span: f64,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&failure_rate),
            "failure_rate out of range"
        );
        assert!((0.0..=1.0).contains(&noise_rate), "noise_rate out of range");
        assert!((0.0..1.0).contains(&noise_span), "noise_span out of range");
        Self {
            inner,
            failure_rate,
            noise_rate,
            noise_span,
            max_retries: 0,
            stats: BudgetStats::default(),
            seed,
        }
    }

    /// A perfectly reliable wrapper (pass-through; for A/B fixtures).
    pub fn reliable(inner: Arc<dyn HiddenWebDatabase>) -> Self {
        Self::new(inner, 0.0, 0.0, 0.0, 0)
    }

    /// Retries outages up to `max_retries` extra times before giving a
    /// logical search up. Each retry is a real (counted) probe, so one
    /// logical search costs at most `1 + max_retries` physical probes.
    pub fn with_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// The configured retry ceiling.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// Snapshot of this wrapper's probe-budget accounting.
    pub fn budget(&self) -> ProbeBudget {
        ProbeBudget {
            attempts: self.stats.attempts.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            failures: self.stats.failures.load(Ordering::Relaxed),
            outages: self.stats.outages.load(Ordering::Relaxed),
        }
    }
}

impl HiddenWebDatabase for UnreliableDb {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn search(&self, query: &[TermId], top_n: usize) -> SearchResponse {
        let _span = mp_obs::span!("hidden.unreliable_search");
        let qkey = query_key(query);
        let mut attempt = 0u32;
        loop {
            self.stats.attempts.fetch_add(1, Ordering::Relaxed);
            let mut stream = ProbeStream::new(self.seed, qkey, attempt);
            let fail = stream.next_f64() < self.failure_rate;
            let noise_factor = if stream.next_f64() < self.noise_rate {
                1.0 + (stream.next_f64() * 2.0 - 1.0) * self.noise_span
            } else {
                1.0
            };
            if fail {
                self.stats.outages.fetch_add(1, Ordering::Relaxed);
                mp_obs::counter!("probe.outages").incr();
                mp_obs::trace_annotate("probe.outage", 1);
                // Outage: the probe still *happened* (and cost time), so
                // it is counted by the inner probe counter via a real
                // call with no results requested.
                let _ = self.inner.search(query, 0);
                if attempt < self.max_retries {
                    attempt += 1;
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    mp_obs::counter!("probe.retries").incr();
                    mp_obs::trace_annotate("probe.retry", u64::from(attempt));
                    continue;
                }
                self.stats.failures.fetch_add(1, Ordering::Relaxed);
                mp_obs::counter!("probe.failures").incr();
                mp_obs::trace_annotate("probe.failed", 1);
                return SearchResponse {
                    match_count: 0,
                    top_docs: Vec::new(),
                };
            }
            let mut resp = self.inner.search(query, top_n);
            // `exact_one` (not an epsilon test): the no-noise branch
            // above sets the factor to the literal 1.0, so only that
            // sentinel means "leave the count untouched".
            if !mp_stats::float::exact_one(noise_factor) {
                let noised = f64::from(resp.match_count) * noise_factor;
                // Saturate on the (unreachable in practice) overflow
                // rather than wrapping: a stale counter can only
                // exaggerate so far.
                resp.match_count = mp_stats::float::round_u32(noised.max(0.0)).unwrap_or(u32::MAX);
            }
            return resp;
        }
    }

    fn fetch(&self, doc: DocId) -> Document {
        self.inner.fetch(doc)
    }

    fn size_hint(&self) -> Option<u32> {
        self.inner.size_hint()
    }

    fn probe_count(&self) -> u64 {
        self.inner.probe_count()
    }

    fn reset_probes(&self) {
        self.inner.reset_probes();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::SimulatedHiddenDb;
    use mp_index::{Document, IndexBuilder};

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn base_db() -> Arc<dyn HiddenWebDatabase> {
        let mut b = IndexBuilder::new();
        for _ in 0..100 {
            b.add(Document::from_terms([t(1), t(2)]));
        }
        Arc::new(SimulatedHiddenDb::new("base", b.build()))
    }

    /// A database where every term id in `0..n` matches exactly one
    /// document — so `n` *distinct* queries (distinct injection keys)
    /// each have a known clean match count of 1.
    fn wide_db(n: u32) -> Arc<dyn HiddenWebDatabase> {
        let mut b = IndexBuilder::new();
        for i in 0..n {
            b.add(Document::from_terms([t(i)]));
        }
        Arc::new(SimulatedHiddenDb::new("wide", b.build()))
    }

    #[test]
    fn reliable_wrapper_is_transparent() {
        let db = UnreliableDb::reliable(base_db());
        let r = db.search(&[t(1)], 5);
        assert_eq!(r.match_count, 100);
        assert_eq!(r.top_docs.len(), 5);
        assert_eq!(db.name(), "base");
        assert_eq!(db.size_hint(), Some(100));
    }

    #[test]
    fn outages_return_empty_pages_at_roughly_the_configured_rate() {
        // Injection is keyed by (seed, query), so the rate is observed
        // across *distinct* queries, each with a clean match count of 1.
        let n = 2000u32;
        let db = UnreliableDb::new(wide_db(n), 0.3, 0.0, 0.0, 42);
        let failures = (0..n)
            .filter(|&i| db.search(&[t(i)], 0).match_count == 0)
            .count();
        let rate = f64::from(u32::try_from(failures).unwrap()) / f64::from(n);
        assert!((rate - 0.3).abs() < 0.05, "observed outage rate {rate}");
    }

    #[test]
    fn outages_still_cost_probes() {
        // failure_rate 1.0: the outage fires regardless of the key.
        let db = UnreliableDb::new(base_db(), 1.0, 0.0, 0.0, 1);
        db.reset_probes();
        let _ = db.search(&[t(1)], 3);
        assert_eq!(db.probe_count(), 1);
    }

    #[test]
    fn noise_perturbs_counts_within_span() {
        // noise_rate 1.0 fires on every query; the factor varies with
        // the query key, so distinct single-term queries against the
        // 100-doc-per-term database sample the ±20% band.
        let per_term = 100u32;
        let terms = 50u32;
        let mut b = IndexBuilder::new();
        for i in 0..terms {
            for _ in 0..per_term {
                b.add(Document::from_terms([t(i)]));
            }
        }
        let inner: Arc<dyn HiddenWebDatabase> = Arc::new(SimulatedHiddenDb::new("many", b.build()));
        let db = UnreliableDb::new(inner, 0.0, 1.0, 0.2, 7);
        let mut saw_noise = false;
        for i in 0..terms {
            let c = db.search(&[t(i)], 0).match_count;
            assert!((80..=120).contains(&c), "count {c} outside ±20% of 100");
            if c != 100 {
                saw_noise = true;
            }
        }
        assert!(saw_noise, "noise never fired at rate 1.0");
    }

    #[test]
    fn injection_is_deterministic_in_seed_and_query() {
        let a = UnreliableDb::new(wide_db(100), 0.4, 0.5, 0.3, 9);
        let b = UnreliableDb::new(wide_db(100), 0.4, 0.5, 0.3, 9);
        for i in 0..100 {
            assert_eq!(
                a.search(&[t(i)], 0).match_count,
                b.search(&[t(i)], 0).match_count
            );
        }
    }

    #[test]
    fn injection_is_independent_of_call_order() {
        // The lock-free stream is keyed per probe, so replaying the
        // same query set in reverse (or any) order yields identical
        // per-query outcomes and an identical budget — the property the
        // old sequential `Mutex<StdRng>` violated.
        let n = 200u32;
        let forward = UnreliableDb::new(wide_db(n), 0.4, 0.5, 0.3, 13).with_retries(2);
        let backward = UnreliableDb::new(wide_db(n), 0.4, 0.5, 0.3, 13).with_retries(2);
        let fwd: Vec<u32> = (0..n)
            .map(|i| forward.search(&[t(i)], 0).match_count)
            .collect();
        let mut bwd: Vec<(u32, u32)> = (0..n)
            .rev()
            .map(|i| (i, backward.search(&[t(i)], 0).match_count))
            .collect();
        bwd.sort_unstable();
        for (i, count) in bwd {
            assert_eq!(count, fwd[usize::try_from(i).unwrap()], "query {i}");
        }
        assert_eq!(forward.budget(), backward.budget());
    }

    #[test]
    fn seeds_decorrelate_wrappers() {
        let a = UnreliableDb::new(wide_db(300), 0.5, 0.0, 0.0, 1);
        let b = UnreliableDb::new(wide_db(300), 0.5, 0.0, 0.0, 2);
        let diverged = (0..300)
            .filter(|&i| a.search(&[t(i)], 0).match_count != b.search(&[t(i)], 0).match_count)
            .count();
        assert!(
            diverged > 50,
            "seeds 1 and 2 diverged on only {diverged}/300"
        );
    }

    #[test]
    #[should_panic(expected = "failure_rate out of range")]
    fn rejects_invalid_rates() {
        UnreliableDb::new(base_db(), 1.5, 0.0, 0.0, 0);
    }

    #[test]
    fn debug_reports_every_configured_rate() {
        let db = UnreliableDb::new(base_db(), 0.25, 0.5, 0.1, 99).with_retries(3);
        let dbg = format!("{db:?}");
        for needle in [
            "failure_rate: 0.25",
            "noise_rate: 0.5",
            "noise_span: 0.1",
            "max_retries: 3",
            "seed: 99",
        ] {
            assert!(dbg.contains(needle), "{needle} missing from {dbg}");
        }
    }

    /// Regression: a flaky source's retry spend is observable (local
    /// budget and mp-obs counters) and bounded by `1 + max_retries`
    /// physical probes per logical search.
    #[test]
    fn flaky_source_retry_count_is_observable_and_bounded() {
        let db = UnreliableDb::new(base_db(), 1.0, 0.0, 0.0, 3).with_retries(3);
        assert_eq!(db.budget(), ProbeBudget::default());
        #[cfg(feature = "obs")]
        let retries_before = mp_obs::counter("probe.retries").get();

        let r = db.search(&[t(1)], 5);
        assert_eq!(r.match_count, 0, "permanent outage fails the search");

        let b = db.budget();
        assert_eq!(b.attempts, 4, "one first try plus max_retries retries");
        assert_eq!(b.retries, 3);
        assert_eq!(b.outages, 4);
        assert_eq!(b.failures, 1);
        assert_eq!(db.probe_count(), 4, "every retry cost a real probe");
        assert!(b.attempts <= u64::from(db.max_retries()) + 1);

        // The spend also surfaces through the global mp-obs counters
        // (>=: the registry is shared with other tests in this binary).
        #[cfg(feature = "obs")]
        if mp_obs::is_enabled() {
            assert!(mp_obs::counter("probe.retries").get() >= retries_before + 3);
        }
    }

    /// A partially flaky source recovers within budget: with outages at
    /// ~50% and one retry allowed, most logical searches still succeed.
    #[test]
    fn retries_recover_transient_outages() {
        let n = 500u32;
        let db = UnreliableDb::new(wide_db(n), 0.5, 0.0, 0.0, 11).with_retries(1);
        let failed = (0..n)
            .filter(|&i| db.search(&[t(i)], 0).match_count == 0)
            .count() as u64;
        let b = db.budget();
        // P(fail) = 0.25 under one retry; allow generous slack.
        assert!(
            f64::from(u32::try_from(failed).unwrap()) / f64::from(n) < 0.35,
            "failure rate {failed}/{n} too high for one retry"
        );
        assert_eq!(b.failures, failed);
        assert_eq!(b.attempts, u64::from(n) + b.retries);
        assert!(
            b.attempts <= u64::from(n) * 2,
            "bounded by 1 + max_retries per search"
        );
    }
}
