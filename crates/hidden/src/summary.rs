//! Per-database statistical summaries: the `(term, df)` table.
//!
//! The paper's estimators consult a locally stored summary of each
//! database — Figure 2's "term vs. number of appearances" table plus the
//! database size. Two construction modes:
//!
//! * [`ContentSummary::cooperative`] — the database exports exact
//!   statistics (STARTS-style metadata); what the paper's experiments
//!   effectively assume when they compute Eq. 1 from true df values.
//! * [`ContentSummary::from_sampling`] — the summary is *estimated* by
//!   query-based sampling (in the spirit of Callan-style query-based
//!   sampling / the focused probing of the paper's reference \[8\]): issue
//!   seed-term queries, download top documents, count dfs in the sample,
//!   and scale to the (known or estimated) database size. Used by the
//!   summary-quality ablation.

use crate::db::HiddenWebDatabase;
use mp_index::InvertedIndex;
use mp_text::TermId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A statistical summary of one database: document frequencies and size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentSummary {
    df: HashMap<TermId, u32>,
    size: u32,
}

impl ContentSummary {
    /// Builds a summary from explicit parts.
    pub fn new(df: HashMap<TermId, u32>, size: u32) -> Self {
        Self { df, size }
    }

    /// Exact summary exported by a cooperative database.
    pub fn cooperative(index: &InvertedIndex) -> Self {
        let (df, size) = index.df_summary();
        Self { df, size }
    }

    /// Estimated summary via query-based sampling.
    ///
    /// Issues up to `n_queries` single-term probe queries drawn from
    /// `seed_terms`, downloads up to `docs_per_query` top documents per
    /// query, counts document frequencies over the distinct sampled
    /// documents, and scales counts to the database size (the exported
    /// `size_hint`, or an extrapolation from sample match counts when
    /// the site hides its size).
    ///
    /// The probes issued here are *offline* (summary construction
    /// happens before query time), so callers typically
    /// [`reset_probes`](HiddenWebDatabase::reset_probes) afterwards.
    pub fn from_sampling<R: Rng + ?Sized>(
        db: &dyn HiddenWebDatabase,
        seed_terms: &[TermId],
        n_queries: usize,
        docs_per_query: usize,
        rng: &mut R,
    ) -> Self {
        assert!(!seed_terms.is_empty(), "sampling needs seed terms");
        // Draw probe terms without replacement (partial Fisher–Yates) so
        // a small query budget still covers distinct vocabulary.
        let mut terms: Vec<TermId> = {
            let mut set: HashSet<TermId> = HashSet::new();
            seed_terms
                .iter()
                .copied()
                .filter(|t| set.insert(*t))
                .collect()
        };
        let take = n_queries.min(terms.len());
        for i in 0..take {
            let j = rng.gen_range(i..terms.len());
            terms.swap(i, j);
        }
        let mut sampled: HashMap<mp_index::DocId, mp_index::Document> = HashMap::new();
        let mut match_counts: Vec<u32> = Vec::new();
        for &term in &terms[..take] {
            let resp = db.search(&[term], docs_per_query);
            match_counts.push(resp.match_count);
            for hit in resp.top_docs {
                sampled.entry(hit.doc).or_insert_with(|| db.fetch(hit.doc));
            }
        }
        let sample_size = u32::try_from(sampled.len())
            .expect("sample sizes are bounded by queries issued, far below u32::MAX");
        // Raw dfs over the sample.
        let mut df: HashMap<TermId, u32> = HashMap::new();
        // mp-lint: allow(L10): u32 increments commute — visit order cannot change a df count
        for doc in sampled.values() {
            for (term, _) in doc.terms() {
                *df.entry(term).or_insert(0) += 1;
            }
        }
        // Scale sample dfs to full-database dfs.
        let size = db.size_hint().unwrap_or_else(|| {
            // Size not exported: take the largest observed single-term
            // match count as a lower-bound size proxy (the paper
            // estimates sizes "by issuing a query with common terms").
            match_counts
                .iter()
                .copied()
                .max()
                .unwrap_or(sample_size)
                .max(sample_size)
        });
        if sample_size > 0 && size > sample_size {
            let scale = f64::from(size) / f64::from(sample_size);
            // mp-lint: allow(L10): element-wise scaling rewrites each entry independently
            for v in df.values_mut() {
                let scaled = (f64::from(*v) * scale).max(1.0);
                // A scaled df cannot exceed the database size; saturate
                // anyway so a pathological hint cannot wrap.
                *v = mp_stats::float::round_u32(scaled).unwrap_or(u32::MAX);
            }
        }
        // mp-lint: allow(L10): element-wise clamp, order-free like the scaling above
        for v in df.values_mut() {
            *v = (*v).min(size);
        }
        Self { df, size }
    }

    /// Document frequency of `term` according to the summary (0 if the
    /// term is not in the summary).
    pub fn df(&self, term: TermId) -> u32 {
        self.df.get(&term).copied().unwrap_or(0)
    }

    /// Database size `|db|` according to the summary.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Number of summarized terms.
    pub fn term_count(&self) -> usize {
        self.df.len()
    }

    /// Iterates `(term, df)` pairs (arbitrary order — callers needing a
    /// stable order must sort; the doc comment is the contract).
    pub fn iter(&self) -> impl Iterator<Item = (TermId, u32)> + '_ {
        // mp-lint: allow(L10): arbitrary order is this accessor's documented contract
        self.df.iter().map(|(&t, &d)| (t, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::SimulatedHiddenDb;
    use mp_index::{Document, IndexBuilder};
    use rand::{rngs::StdRng, SeedableRng};

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn db_with_docs(docs: &[&[u32]]) -> SimulatedHiddenDb {
        let mut b = IndexBuilder::new();
        for d in docs {
            b.add(Document::from_terms(d.iter().map(|&i| t(i))));
        }
        SimulatedHiddenDb::new("db", b.build())
    }

    #[test]
    fn cooperative_summary_is_exact() {
        let db = db_with_docs(&[&[1, 2], &[1], &[3]]);
        let s = ContentSummary::cooperative(db.index_for_golden());
        assert_eq!(s.size(), 3);
        assert_eq!(s.df(t(1)), 2);
        assert_eq!(s.df(t(2)), 1);
        assert_eq!(s.df(t(9)), 0);
        assert_eq!(s.term_count(), 3);
    }

    #[test]
    fn paper_figure2_summary() {
        // db1: 20,000 docs; "breast" in 2,000, "cancer" in 1,000 — the
        // worked example's summary shape (values scaled down 10x to keep
        // the test fast; ratios preserved).
        let mut b = IndexBuilder::new();
        for i in 0..2000u32 {
            let mut doc = Document::new();
            if i < 200 {
                doc.add_term(t(0), 1); // breast
            }
            if (150..250).contains(&i) {
                doc.add_term(t(1), 1); // cancer
            }
            doc.add_term(t(2), 1); // filler so no doc is empty
            b.add(doc);
        }
        let s = ContentSummary::cooperative(&b.build());
        assert_eq!(s.size(), 2000);
        assert_eq!(s.df(t(0)), 200);
        assert_eq!(s.df(t(1)), 100);
    }

    #[test]
    fn sampled_summary_approximates_cooperative() {
        // A corpus where term 1 is in every doc and term 2 in half.
        let docs: Vec<Vec<u32>> = (0..200)
            .map(|i| if i % 2 == 0 { vec![1, 2] } else { vec![1, 3] })
            .collect();
        let refs: Vec<&[u32]> = docs.iter().map(Vec::as_slice).collect();
        let db = db_with_docs(&refs);
        let mut rng = StdRng::seed_from_u64(4);
        let s = ContentSummary::from_sampling(&db, &[t(1), t(2), t(3)], 3, 50, &mut rng);
        assert_eq!(s.size(), 200);
        // df(t1) should be near 200, df(t2) near 100 after scaling.
        let df1 = s.df(t(1)) as f64;
        let df2 = s.df(t(2)) as f64;
        assert!(df1 > 120.0, "df1={df1}");
        assert!(df2 > 30.0 && df2 < 170.0, "df2={df2}");
        assert!(s.df(t(1)) <= 200);
    }

    #[test]
    fn sampling_consumes_probes() {
        let db = db_with_docs(&[&[1], &[1, 2]]);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = ContentSummary::from_sampling(&db, &[t(1), t(2)], 2, 5, &mut rng);
        assert!(db.probe_count() >= 1);
        db.reset_probes();
        assert_eq!(db.probe_count(), 0);
    }

    #[test]
    fn sampling_without_size_export_estimates_size() {
        let docs: Vec<Vec<u32>> = (0..50).map(|_| vec![1]).collect();
        let refs: Vec<&[u32]> = docs.iter().map(Vec::as_slice).collect();
        let mut b = IndexBuilder::new();
        for d in &refs {
            b.add(Document::from_terms(d.iter().map(|&i| t(i))));
        }
        let db = SimulatedHiddenDb::new("nosize", b.build()).without_size_export();
        let mut rng = StdRng::seed_from_u64(1);
        let s = ContentSummary::from_sampling(&db, &[t(1)], 1, 10, &mut rng);
        // The single-term match count (50) becomes the size proxy.
        assert_eq!(s.size(), 50);
    }

    #[test]
    fn df_never_exceeds_size() {
        let docs: Vec<Vec<u32>> = (0..30).map(|_| vec![1, 2]).collect();
        let refs: Vec<&[u32]> = docs.iter().map(Vec::as_slice).collect();
        let db = db_with_docs(&refs);
        let mut rng = StdRng::seed_from_u64(9);
        let s = ContentSummary::from_sampling(&db, &[t(1), t(2)], 5, 3, &mut rng);
        for (_, df) in s.iter() {
            assert!(df <= s.size());
        }
    }
}
