//! # mp-hidden — Hidden-Web database abstraction for `metaprobe`
//!
//! Models what a metasearcher can actually *do* with a Hidden-Web
//! database: submit a keyword query through its search interface and
//! read back a match count plus the top result documents — nothing else.
//! (paper Section 3.4: "many databases report the number of matching
//! documents in their answer page"; under the similarity definition the
//! metasearcher downloads the top documents and scores them.)
//!
//! * [`HiddenWebDatabase`] — the search-interface trait;
//! * [`SimulatedHiddenDb`] — a full in-process search engine behind that
//!   interface, with per-database **probe accounting** (every `search`
//!   is one probe; probing is the resource the paper's adaptive
//!   algorithm minimizes);
//! * [`ContentSummary`] — the `(term → df, |db|)` statistical summary a
//!   metasearcher keeps per database, either exported cooperatively
//!   (STARTS-style) or estimated by query-based sampling;
//! * [`Mediator`] — the set of mediated databases with their summaries;
//! * [`UnreliableDb`] — failure injection (outages, stale counts) for
//!   robustness testing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod db;
pub mod mediator;
pub mod summary;
pub mod unreliable;

pub use db::{HiddenWebDatabase, SearchResponse, SimulatedHiddenDb};
pub use mediator::Mediator;
pub use summary::ContentSummary;
pub use unreliable::{ProbeBudget, UnreliableDb};
