//! Query traces and train/test splits.

use crate::generator::{QueryGenConfig, QueryGenerator};
use crate::query::Query;
use mp_corpus::TopicModel;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// An ordered collection of queries.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QueryTrace {
    queries: Vec<Query>,
}

impl QueryTrace {
    /// Builds a trace from queries.
    pub fn new(queries: Vec<Query>) -> Self {
        Self { queries }
    }

    /// The queries in order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when the trace holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Iterates the queries.
    pub fn iter(&self) -> impl Iterator<Item = &Query> {
        self.queries.iter()
    }

    /// Queries with exactly `n` terms.
    pub fn with_arity(&self, n: usize) -> impl Iterator<Item = &Query> {
        self.queries.iter().filter(move |q| q.len() == n)
    }

    /// Counts queries per arity, returned as `(arity, count)` sorted.
    pub fn arity_histogram(&self) -> Vec<(usize, usize)> {
        let mut map = std::collections::BTreeMap::new();
        for q in &self.queries {
            *map.entry(q.len()).or_insert(0usize) += 1;
        }
        map.into_iter().collect()
    }
}

/// A disjoint train/test pair of traces, mirroring the paper's setup
/// (Section 6.1): `Q_train` (EDs only) and `Q_test` (evaluation), each
/// with a fixed number of 2-term and 3-term queries and **no overlap**
/// between the two (queries compare structurally, so `a b` == `b a`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainTestSplit {
    /// Training queries (used only to learn error distributions).
    pub train: QueryTrace,
    /// Held-out test queries.
    pub test: QueryTrace,
}

impl TrainTestSplit {
    /// Generates a disjoint split with `n_two` 2-term and `n_three`
    /// 3-term queries in *each* side.
    ///
    /// Over-generates and deduplicates; if topic space is too small to
    /// supply `2 * (n_two + n_three)` distinct queries the function
    /// panics rather than silently violating disjointness.
    pub fn generate(
        model: &TopicModel,
        n_two: usize,
        n_three: usize,
        config: QueryGenConfig,
    ) -> Self {
        let mut gen = QueryGenerator::new(model, config);
        let mut seen: HashSet<Query> = HashSet::new();
        let mut collect = |gen: &mut QueryGenerator<'_>, n: usize, arity: usize| -> Vec<Query> {
            let mut out = Vec::with_capacity(n);
            let mut attempts = 0usize;
            while out.len() < n {
                let q = gen.generate(arity);
                if seen.insert(q.clone()) {
                    out.push(q);
                }
                attempts += 1;
                assert!(
                    attempts < n.saturating_mul(200).max(10_000),
                    "query space too small for {n} distinct {arity}-term queries"
                );
            }
            out
        };

        let train_two = collect(&mut gen, n_two, 2);
        let train_three = collect(&mut gen, n_three, 3);
        let test_two = collect(&mut gen, n_two, 2);
        let test_three = collect(&mut gen, n_three, 3);

        let mut train = train_two;
        train.extend(train_three);
        let mut test = test_two;
        test.extend(test_three);
        Self {
            train: QueryTrace::new(train),
            test: QueryTrace::new(test),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_corpus::TopicModelConfig;

    fn model() -> TopicModel {
        TopicModel::build(TopicModelConfig {
            n_topics: 6,
            terms_per_topic: 80,
            background_terms: 60,
            seed: 5,
            ..TopicModelConfig::default()
        })
    }

    #[test]
    fn split_has_requested_shape() {
        let m = model();
        let s = TrainTestSplit::generate(&m, 30, 20, QueryGenConfig::default());
        assert_eq!(s.train.len(), 50);
        assert_eq!(s.test.len(), 50);
        assert_eq!(s.train.arity_histogram(), vec![(2, 30), (3, 20)]);
        assert_eq!(s.test.arity_histogram(), vec![(2, 30), (3, 20)]);
    }

    #[test]
    fn split_is_disjoint() {
        let m = model();
        let s = TrainTestSplit::generate(&m, 50, 50, QueryGenConfig::default());
        let train: HashSet<_> = s.train.iter().cloned().collect();
        for q in s.test.iter() {
            assert!(!train.contains(q), "{q:?} leaked from train to test");
        }
    }

    #[test]
    fn split_is_deterministic() {
        let m = model();
        let a = TrainTestSplit::generate(
            &m,
            10,
            10,
            QueryGenConfig {
                seed: 42,
                ..Default::default()
            },
        );
        let b = TrainTestSplit::generate(
            &m,
            10,
            10,
            QueryGenConfig {
                seed: 42,
                ..Default::default()
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn with_arity_filters() {
        let m = model();
        let s = TrainTestSplit::generate(&m, 5, 7, QueryGenConfig::default());
        assert_eq!(s.train.with_arity(2).count(), 5);
        assert_eq!(s.train.with_arity(3).count(), 7);
        assert_eq!(s.train.with_arity(4).count(), 0);
    }

    #[test]
    fn empty_trace() {
        let t = QueryTrace::default();
        assert!(t.is_empty());
        assert!(t.arity_histogram().is_empty());
    }
}
