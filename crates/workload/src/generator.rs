//! Topic-driven query generation.

use crate::query::Query;
use mp_corpus::{TopicId, TopicModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Query-generation knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryGenConfig {
    /// Probability that each additional term comes from the query's
    /// anchor topic (correlated), rather than elsewhere.
    pub in_topic_prob: f64,
    /// When a term is *not* in-topic, probability it is a background
    /// term (else it comes from a different random topic).
    pub background_prob: f64,
    /// Cap on term-rank within a topic — queries use reasonably popular
    /// words, like real users do (rank beyond this is never drawn).
    pub max_rank: usize,
    /// Subtopic window width for in-topic term picks: the anchor topic's
    /// terms are drawn from one random contiguous slice of this many
    /// ranks, matching the corpus generator's subtopic structure (a real
    /// query's keywords come from one subtopic — "breast cancer", not
    /// "breast cardiology"). 0 disables windowing. Should match the
    /// corpus `DocGenConfig::subtopic_window`.
    pub window: usize,
    /// Generation seed.
    pub seed: u64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        Self {
            in_topic_prob: 0.75,
            background_prob: 0.4,
            max_rank: 70,
            window: 10,
            seed: 0,
        }
    }
}

/// Generates 2-/3-term keyword queries over a [`TopicModel`].
#[derive(Debug)]
pub struct QueryGenerator<'m> {
    model: &'m TopicModel,
    config: QueryGenConfig,
    rng: StdRng,
}

impl<'m> QueryGenerator<'m> {
    /// Creates a generator; deterministic in `config.seed`.
    pub fn new(model: &'m TopicModel, config: QueryGenConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Self { model, config, rng }
    }

    /// Samples a term from the given topic, biased to popular ranks.
    /// With windowing, `anchor_start` fixes the subtopic slice the
    /// query's in-topic terms come from.
    fn topic_term(&mut self, topic: TopicId, anchor_start: Option<usize>) -> mp_text::TermId {
        let t = self.model.topic(topic);
        match anchor_start {
            Some(start) if self.config.window > 0 => {
                // Uniform within the subtopic window: queries mix popular
                // and less-popular subtopic words, avoiding the fully
                // saturated head terms.
                let w = self.config.window.min(t.terms().len()).max(1);
                let off = self.rng.gen_range(0..w);
                t.terms()[(start + off) % t.terms().len()]
            }
            _ => {
                let n = t.terms().len().min(self.config.max_rank).max(1);
                // Quadratic popularity bias: rank = floor(n * u^2).
                let u: f64 = self.rng.gen();
                let rank = ((u * u) * n as f64) as usize;
                t.terms()[rank.min(n - 1)]
            }
        }
    }

    fn background_term(&mut self) -> mp_text::TermId {
        let bg = self.model.background();
        let n = bg.terms().len().min(self.config.max_rank).max(1);
        let u: f64 = self.rng.gen();
        let rank = ((u * u) * n as f64) as usize;
        bg.terms()[rank.min(n - 1)]
    }

    /// Generates one query with exactly `n_terms` distinct terms.
    ///
    /// The first term anchors a topic; each further term is in-topic
    /// with probability `in_topic_prob`, otherwise background or
    /// foreign-topic. Retries until `n_terms` distinct terms accumulate.
    pub fn generate(&mut self, n_terms: usize) -> Query {
        assert!(n_terms >= 1, "queries need at least one term");
        let anchor = TopicId::from_index(self.rng.gen_range(0..self.model.n_topics()));
        let anchor_start = (self.config.window > 0).then(|| {
            self.rng
                .gen_range(0..self.model.topic(anchor).terms().len())
        });
        let mut terms: Vec<mp_text::TermId> = vec![self.topic_term(anchor, anchor_start)];
        let mut guard = 0;
        while terms.len() < n_terms {
            let t = if self.rng.gen::<f64>() < self.config.in_topic_prob {
                self.topic_term(anchor, anchor_start)
            } else if self.rng.gen::<f64>() < self.config.background_prob {
                self.background_term()
            } else {
                let other = TopicId::from_index(self.rng.gen_range(0..self.model.n_topics()));
                self.topic_term(other, None)
            };
            if !terms.contains(&t) {
                terms.push(t);
            }
            guard += 1;
            assert!(guard < 10_000, "cannot assemble {n_terms} distinct terms");
        }
        Query::new(terms)
    }

    /// Generates `n` queries of `n_terms` terms each.
    pub fn generate_many(&mut self, n: usize, n_terms: usize) -> Vec<Query> {
        (0..n).map(|_| self.generate(n_terms)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_corpus::TopicModelConfig;
    use std::collections::HashSet;

    fn model() -> TopicModel {
        TopicModel::build(TopicModelConfig {
            n_topics: 6,
            terms_per_topic: 80,
            background_terms: 60,
            seed: 5,
            ..TopicModelConfig::default()
        })
    }

    #[test]
    fn generates_requested_arity() {
        let m = model();
        let mut g = QueryGenerator::new(&m, QueryGenConfig::default());
        for n in [1usize, 2, 3] {
            for _ in 0..50 {
                assert_eq!(g.generate(n).len(), n);
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let m = model();
        let mut a = QueryGenerator::new(
            &m,
            QueryGenConfig {
                seed: 9,
                ..Default::default()
            },
        );
        let mut b = QueryGenerator::new(
            &m,
            QueryGenConfig {
                seed: 9,
                ..Default::default()
            },
        );
        assert_eq!(a.generate_many(20, 2), b.generate_many(20, 2));
    }

    #[test]
    fn different_seeds_vary() {
        let m = model();
        let mut a = QueryGenerator::new(
            &m,
            QueryGenConfig {
                seed: 1,
                ..Default::default()
            },
        );
        let mut b = QueryGenerator::new(
            &m,
            QueryGenConfig {
                seed: 2,
                ..Default::default()
            },
        );
        assert_ne!(a.generate_many(20, 2), b.generate_many(20, 2));
    }

    #[test]
    fn most_two_term_queries_are_in_topic() {
        // With in_topic_prob = 1.0, both terms must come from one topic.
        let m = model();
        let mut g = QueryGenerator::new(
            &m,
            QueryGenConfig {
                in_topic_prob: 1.0,
                seed: 3,
                ..Default::default()
            },
        );
        let topic_sets: Vec<HashSet<_>> = m
            .topic_ids()
            .map(|t| m.topic(t).terms().iter().copied().collect())
            .collect();
        for _ in 0..100 {
            let q = g.generate(2);
            let covered = topic_sets
                .iter()
                .any(|s| q.terms().iter().all(|t| s.contains(t)));
            assert!(covered, "query terms straddle topics: {q:?}");
        }
    }

    #[test]
    fn queries_produce_distinct_sets() {
        let m = model();
        let mut g = QueryGenerator::new(&m, QueryGenConfig::default());
        let qs: HashSet<Query> = g.generate_many(300, 2).into_iter().collect();
        // With 6 topics × ~120 popular terms there is plenty of space;
        // expect substantial variety.
        assert!(qs.len() > 150, "only {} distinct queries", qs.len());
    }
}
