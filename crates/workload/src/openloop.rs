//! Open-loop arrival generation for serving benchmarks.
//!
//! A closed-loop driver (submit, wait, submit) can never overload a
//! server — its offered rate collapses to the server's completion rate,
//! which hides exactly the queueing behavior an SLO scheduler exists
//! for. An **open-loop** workload fixes the arrival process in advance:
//! requests arrive on a schedule that does not care how the server is
//! doing, so backlog, batching opportunity, and shed pressure emerge
//! the way they do in production.
//!
//! The generator is fully deterministic from its config (seeded
//! `StdRng`, like [`crate::QueryGenerator`]): the same config always
//! produces the same arrival instants and the same query choices, so a
//! bench row is reproducible run-to-run. Hot-key skew follows a Zipf
//! law over the unique-query pool — rank `i` is drawn with weight
//! `1/(i+1)^s` — which is what makes term-sharing batches and dedup
//! joins occur at realistic rates: `s = 0` is uniform, `s ≈ 1` is a
//! classic web-query skew where a few hot queries dominate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for one open-loop arrival schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopConfig {
    /// Mean offered rate, requests per second.
    pub rate_per_sec: f64,
    /// Inter-arrival jitter fraction in `[0, 1]`: each gap is drawn
    /// uniformly from `mean · [1 − jitter, 1 + jitter]`. 0 = a perfectly
    /// paced arrival comb.
    pub jitter: f64,
    /// Total arrivals to generate.
    pub n_arrivals: usize,
    /// Unique queries in the pool (arrivals index into `0..n_unique`).
    pub n_unique: usize,
    /// Zipf skew exponent `s` over the pool (0 = uniform).
    pub zipf_s: f64,
    /// RNG seed: same config, same schedule.
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            rate_per_sec: 1_000.0,
            jitter: 0.5,
            n_arrivals: 256,
            n_unique: 32,
            zipf_s: 1.0,
            seed: 0,
        }
    }
}

/// One scheduled arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival instant, microseconds from the schedule's start.
    pub at_us: u64,
    /// Which pool query arrives (rank into the Zipf-skewed pool;
    /// rank 0 is the hottest key).
    pub query_index: usize,
}

/// Generates the full arrival schedule for `config` (sorted by
/// `at_us` by construction).
///
/// # Panics
/// Panics when `rate_per_sec` is not positive or `n_unique` is 0 while
/// arrivals are requested.
pub fn arrivals(config: &OpenLoopConfig) -> Vec<Arrival> {
    assert!(config.rate_per_sec > 0.0, "open-loop rate must be positive");
    assert!(
        config.n_unique > 0 || config.n_arrivals == 0,
        "a non-empty schedule needs a non-empty query pool"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let jitter = config.jitter.clamp(0.0, 1.0);
    let mean_gap_us = 1_000_000.0 / config.rate_per_sec;

    // Zipf inverse-CDF over precomputed harmonic weights: cumulative
    // sums once, then each draw is a uniform sample located by binary
    // search. Deterministic and O(log n) per arrival.
    let weights: Vec<f64> = (0..config.n_unique)
        .map(|i| 1.0 / ((i + 1) as f64).powf(config.zipf_s))
        .collect();
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut total = 0.0;
    for w in &weights {
        total += w;
        cumulative.push(total);
    }

    let mut schedule = Vec::with_capacity(config.n_arrivals);
    let mut clock_us = 0.0_f64;
    for _ in 0..config.n_arrivals {
        let factor = if jitter > 0.0 {
            rng.gen_range(1.0 - jitter..=1.0 + jitter)
        } else {
            1.0
        };
        clock_us += mean_gap_us * factor;
        let u: f64 = rng.gen_range(0.0..total);
        let query_index = cumulative.partition_point(|&c| c <= u);
        schedule.push(Arrival {
            at_us: clock_us as u64,
            query_index: query_index.min(config.n_unique - 1),
        });
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_sorted() {
        let config = OpenLoopConfig::default();
        let a = arrivals(&config);
        let b = arrivals(&config);
        assert_eq!(a, b, "same config, same schedule");
        assert_eq!(a.len(), config.n_arrivals);
        assert!(a.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        assert!(a.iter().all(|x| x.query_index < config.n_unique));
        let other = arrivals(&OpenLoopConfig { seed: 1, ..config });
        assert_ne!(a, other, "seed changes the schedule");
    }

    #[test]
    fn rate_sets_the_mean_gap() {
        let config = OpenLoopConfig {
            rate_per_sec: 500.0, // 2000 µs mean gap
            jitter: 0.5,
            n_arrivals: 2_000,
            ..OpenLoopConfig::default()
        };
        let schedule = arrivals(&config);
        let span_us = schedule.last().unwrap().at_us as f64;
        let mean_gap = span_us / config.n_arrivals as f64;
        assert!(
            (mean_gap - 2_000.0).abs() < 100.0,
            "mean gap {mean_gap} µs drifted from the configured 2000 µs"
        );
    }

    #[test]
    fn zero_jitter_is_a_perfect_comb() {
        let config = OpenLoopConfig {
            rate_per_sec: 1_000.0,
            jitter: 0.0,
            n_arrivals: 10,
            ..OpenLoopConfig::default()
        };
        let schedule = arrivals(&config);
        for (i, arrival) in schedule.iter().enumerate() {
            assert_eq!(arrival.at_us, 1_000 * (i as u64 + 1));
        }
    }

    #[test]
    fn zipf_skew_concentrates_on_hot_ranks() {
        let skewed = OpenLoopConfig {
            n_arrivals: 4_000,
            n_unique: 16,
            zipf_s: 1.2,
            ..OpenLoopConfig::default()
        };
        let counts = |config: &OpenLoopConfig| {
            let mut c = vec![0usize; config.n_unique];
            for a in arrivals(config) {
                c[a.query_index] += 1;
            }
            c
        };
        let skewed_counts = counts(&skewed);
        assert!(
            skewed_counts[0] > skewed_counts[skewed.n_unique - 1] * 4,
            "rank 0 must dominate the coldest rank: {skewed_counts:?}"
        );
        // Monotone-ish: the hot rank beats the median rank too.
        assert!(skewed_counts[0] > skewed_counts[skewed.n_unique / 2]);

        let uniform_counts = counts(&OpenLoopConfig {
            zipf_s: 0.0,
            ..skewed.clone()
        });
        let (min, max) = (
            *uniform_counts.iter().min().unwrap(),
            *uniform_counts.iter().max().unwrap(),
        );
        assert!(
            max < min * 3,
            "s = 0 must be near-uniform: {uniform_counts:?}"
        );
    }

    #[test]
    fn empty_schedule_is_fine() {
        let config = OpenLoopConfig {
            n_arrivals: 0,
            n_unique: 0,
            ..OpenLoopConfig::default()
        };
        assert!(arrivals(&config).is_empty());
    }
}
