//! Keyword queries.

use mp_text::{Analyzer, TermId, Vocabulary};
use serde::{Deserialize, Serialize};

/// An analyzed conjunctive keyword query.
///
/// Terms are deduplicated and sorted so structurally equal queries
/// compare equal — the train/test disjointness guarantee keys on this.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Query {
    terms: Vec<TermId>,
}

impl Query {
    /// Builds a query from term ids (deduplicated, sorted).
    ///
    /// # Panics
    /// Panics on an empty term list — a keyword query needs keywords.
    pub fn new(terms: impl IntoIterator<Item = TermId>) -> Self {
        let mut terms: Vec<TermId> = terms.into_iter().collect();
        terms.sort_unstable();
        terms.dedup();
        assert!(!terms.is_empty(), "a query needs at least one term");
        Self { terms }
    }

    /// Parses free text through `analyzer`, resolving terms against an
    /// existing vocabulary. Unknown terms are dropped (a metasearcher
    /// cannot match terms no database has seen); returns `None` when no
    /// known term survives.
    pub fn parse(text: &str, analyzer: &Analyzer, vocab: &Vocabulary) -> Option<Self> {
        let terms: Vec<TermId> = analyzer
            .analyze(text)
            .iter()
            .filter_map(|t| vocab.get(t))
            .collect();
        if terms.is_empty() {
            None
        } else {
            Some(Self::new(terms))
        }
    }

    /// The query terms (sorted, distinct).
    pub fn terms(&self) -> &[TermId] {
        &self.terms
    }

    /// A stable 64-bit FNV-1a fingerprint of the (sorted, distinct)
    /// terms. Unlike `Hash`, the value is fixed across processes and
    /// runs — serving caches use it as the query component of their
    /// keys, and structurally equal queries always agree on it.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for t in &self.terms {
            for b in t.0.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Always false (constructor rejects empty queries).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Renders the query as space-joined terms using `vocab`.
    pub fn display(&self, vocab: &Vocabulary) -> String {
        self.terms
            .iter()
            .map(|&t| vocab.term(t).unwrap_or("<unknown>"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    #[test]
    fn dedups_and_sorts() {
        let q = Query::new([t(3), t(1), t(3)]);
        assert_eq!(q.terms(), &[t(1), t(3)]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn structural_equality() {
        assert_eq!(Query::new([t(1), t(2)]), Query::new([t(2), t(1)]));
    }

    #[test]
    fn fingerprint_follows_structural_equality() {
        let a = Query::new([t(2), t(1), t(2)]);
        let b = Query::new([t(1), t(2)]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), Query::new([t(1)]).fingerprint());
        assert_ne!(a.fingerprint(), Query::new([t(1), t(3)]).fingerprint());
    }

    #[test]
    #[should_panic(expected = "at least one term")]
    fn rejects_empty() {
        Query::new([]);
    }

    #[test]
    fn parse_resolves_known_terms() {
        let mut vocab = Vocabulary::new();
        let breast = vocab.intern("breast");
        let cancer = vocab.intern("cancer");
        let a = Analyzer::plain();
        let q = Query::parse("breast cancer unknownterm", &a, &vocab).unwrap();
        assert_eq!(q.terms(), &[breast, cancer]);
        assert!(Query::parse("only unknowns", &a, &vocab).is_none());
    }

    #[test]
    fn display_roundtrip() {
        let mut vocab = Vocabulary::new();
        let a = vocab.intern("breast");
        let b = vocab.intern("cancer");
        let q = Query::new([a, b]);
        assert_eq!(q.display(&vocab), "breast cancer");
    }
}
