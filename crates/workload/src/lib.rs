//! # mp-workload — query workload generator for `metaprobe`
//!
//! Stand-in for the paper's Overture Web-query trace (Section 6.1): the
//! evaluation needs streams of 2- and 3-term keyword queries whose terms
//! are *sometimes* correlated inside a database (in-topic picks) and
//! sometimes not (cross-topic / background picks) — that split is what
//! makes estimator errors query-dependent and motivates the paper's
//! query-type classification.
//!
//! * [`Query`] — an analyzed keyword query (term ids);
//! * [`QueryGenerator`] — seeded topic-driven generation;
//! * [`QueryTrace`] — a query set with helpers, including the
//!   train/test **disjoint split** the paper uses (`Q_train` learns EDs;
//!   `Q_test` measures correctness; no overlap);
//! * [`openloop`] — deterministic open-loop arrival schedules with
//!   Zipf hot-key skew, for serving benchmarks that need a fixed
//!   offered rate instead of a closed submit-wait loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod openloop;
pub mod query;
pub mod trace;

pub use generator::{QueryGenConfig, QueryGenerator};
pub use openloop::{arrivals, Arrival, OpenLoopConfig};
pub use query::Query;
pub use trace::{QueryTrace, TrainTestSplit};
