//! Batched cosine scoring: one traversal per shared postings list.
//!
//! [`InvertedIndex::cosine_topk_batch`] scores a batch of queries in a
//! single pass over the *union* of their postings lists. The outer loop
//! walks the union's terms in ascending id order, the middle loop walks
//! that term's postings once, and the inner loop scatters each
//! posting's contribution into the accumulator row of every request
//! using the term. For any fixed request, contributions therefore
//! arrive in exactly the order the dense per-query kernel delivers them
//! (ascending term id, postings in list order), so every accumulated
//! dot product — and every score — is **bit-identical** to
//! [`InvertedIndex::cosine_topk`] on the same query
//! (`tests/batch_equivalence.rs` pins this by proptest).
//!
//! Requests sharing no term with the rest of the batch gain nothing
//! from a shared traversal, so they fall back to the per-query dispatch
//! — which keeps exact max-score pruning for them — while overlapping
//! groups take the shared dense path. Both per-query kernels are
//! already pinned bit-identical to each other, so the grouping policy
//! is purely a performance decision: outputs are invariant under any
//! partition of the batch.

use crate::index::InvertedIndex;
use crate::scratch::{self, BatchRow, Scratch};
use crate::types::{DocId, ScoredDoc};
use mp_text::TermId;
use std::collections::HashMap;

impl InvertedIndex {
    /// Scores every query in `queries`, sharing one postings traversal
    /// per term across the requests that use it. Returns one top-`k`
    /// ranking per query, each bit-identical to
    /// [`Self::cosine_topk`] on that query alone.
    pub fn cosine_topk_batch(&self, queries: &[&[TermId]], k: usize) -> Vec<Vec<ScoredDoc>> {
        let mut results: Vec<Vec<ScoredDoc>> = vec![Vec::new(); queries.len()];
        if k == 0 {
            return results;
        }
        for group in term_overlap_groups(queries) {
            if group.len() == 1 {
                // Singleton: the per-query dispatch (dense or exact
                // max-score pruned) serves it; no sharing to exploit.
                let qi = group[0];
                results[qi] = self.cosine_topk(queries[qi], k);
            } else {
                self.topk_dense_shared(&group, queries, k, &mut results);
            }
        }
        results
    }

    /// The shared-traversal dense kernel over one term-overlap group
    /// (≥ 2 members). Writes each member's ranking into `results`.
    fn topk_dense_shared(
        &self,
        members: &[usize],
        queries: &[&[TermId]],
        k: usize,
        results: &mut [Vec<ScoredDoc>],
    ) {
        debug_assert!(members.len() >= 2, "singletons take the per-query path");
        mp_obs::counter!("index.batch_groups").incr();
        mp_obs::counter!("index.queries_batched").add(u64::try_from(members.len()).unwrap_or(0));
        scratch::with_scratch(|s| {
            if s.batch_rows.len() < members.len() {
                s.batch_rows.resize_with(members.len(), BatchRow::default);
            }
            // Prepare each member's query into its private row. The
            // shared `Scratch` query tables are scribbled over per
            // member, so the row copies what the traversal needs.
            for (slot, &qi) in members.iter().enumerate() {
                let qnorm = self.prepare_query(queries[qi], s);
                let Scratch {
                    ref mut batch_rows,
                    ref qtf,
                    ref wq,
                    ref idf,
                    ..
                } = *s;
                let row = &mut batch_rows[slot];
                row.qnorm = qnorm;
                row.qtf.clear();
                row.qtf.extend_from_slice(qtf);
                row.wq.clear();
                row.wq.extend_from_slice(wq);
                row.idf.clear();
                row.idf.extend_from_slice(idf);
                row.ensure_doc_capacity(self.doc_count as usize);
                row.touched.clear();
            }
            // (term, row, qtf entry) users of every union term, sorted
            // ascending by term id. Requests with a zero query norm are
            // excluded entirely: the per-query kernel returns before
            // touching the index for them, and scattering their (all
            // zero-weight) contributions would diverge from it.
            let mut users: Vec<(u32, u32, u32)> = Vec::new();
            for (slot, row) in s.batch_rows[..members.len()].iter().enumerate() {
                if mp_stats::float::exact_zero(row.qnorm) {
                    continue;
                }
                for (j, &(t, _)) in row.qtf.iter().enumerate() {
                    users.push((
                        t,
                        u32::try_from(slot).expect("batch sizes fit u32"),
                        u32::try_from(j).expect("query terms fit u32 by construction"),
                    ));
                }
            }
            users.sort_unstable();
            // Shared traversal: each union postings list is walked once,
            // fanning every posting out to the term's users.
            let mut start = 0usize;
            while start < users.len() {
                let term = users[start].0;
                let mut end = start;
                while end < users.len() && users[end].0 == term {
                    end += 1;
                }
                for p in self.postings(TermId(term)) {
                    let slot = p.doc.index();
                    for &(_, r, j) in &users[start..end] {
                        let row = &mut s.batch_rows[r as usize];
                        let wd = p.tf as f64 * row.idf[j as usize];
                        // Contributions are strictly positive, so a
                        // zero accumulator means "untouched" (same
                        // invariant as the dense kernel).
                        if mp_stats::float::exact_zero(row.acc[slot]) {
                            row.touched.push(p.doc.0);
                        }
                        row.acc[slot] += row.wq[j as usize] * wd;
                    }
                }
                start = end;
            }
            // Per-request selection: the dense kernel's epilogue, run
            // over each row's touched list in turn.
            let mut docs_scored = 0u64;
            for (slot, &qi) in members.iter().enumerate() {
                let Scratch {
                    ref mut batch_rows,
                    ref mut topk,
                    ..
                } = *s;
                let row = &mut batch_rows[slot];
                if mp_stats::float::exact_zero(row.qnorm) {
                    continue; // stays empty, like the per-query early return
                }
                topk.reset(k);
                for i in 0..row.touched.len() {
                    let d = row.touched[i] as usize;
                    let dot = row.acc[d];
                    row.acc[d] = 0.0; // restore the all-zero invariant
                    let dnorm = self.doc_norms[d];
                    if dnorm > 0.0 {
                        topk.offer(ScoredDoc {
                            doc: DocId(row.touched[i]),
                            score: dot / (row.qnorm * dnorm),
                        });
                    }
                }
                docs_scored += u64::try_from(row.touched.len()).unwrap_or(0);
                row.touched.clear();
                results[qi] = topk.drain_sorted();
            }
            mp_obs::counter!("index.docs_scored").add(docs_scored);
        });
    }

    /// Forces the shared dense traversal for **every** group — even
    /// singletons (test hook: the production grouping routes singletons
    /// to the per-query dispatch, but the shared kernel must agree
    /// bitwise on any partition).
    #[doc(hidden)]
    pub fn cosine_topk_batch_shared_for_test(
        &self,
        queries: &[&[TermId]],
        k: usize,
    ) -> Vec<Vec<ScoredDoc>> {
        let mut results: Vec<Vec<ScoredDoc>> = vec![Vec::new(); queries.len()];
        if k == 0 || queries.is_empty() {
            return results;
        }
        let all: Vec<usize> = (0..queries.len()).collect();
        if all.len() == 1 {
            results[0] = self.cosine_topk_dense_for_test(queries[0], k);
        } else {
            self.topk_dense_shared(&all, queries, k, &mut results);
        }
        results
    }
}

/// Partitions batch members into connected components under the
/// "shares ≥ 1 term" relation. Components come out in first-member
/// order and each component lists its members in input order — fully
/// deterministic (the interior maps are used for lookups only, never
/// iterated).
fn term_overlap_groups(queries: &[&[TermId]]) -> Vec<Vec<usize>> {
    let n = queries.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }
    let mut owner: HashMap<u32, usize> = HashMap::new();
    for (i, q) in queries.iter().enumerate() {
        for t in *q {
            match owner.get(&t.0) {
                Some(&o) => {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, o));
                    if a != b {
                        parent[a] = b;
                    }
                }
                None => {
                    owner.insert(t.0, i);
                }
            }
        }
    }
    let mut group_of: HashMap<usize, usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        let g = *group_of.entry(root).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[g].push(i);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(terms: &[u32]) -> Vec<TermId> {
        terms.iter().map(|&t| TermId(t)).collect()
    }

    #[test]
    fn groups_partition_by_shared_terms() {
        let a = q(&[1, 2]);
        let b = q(&[3]);
        let c = q(&[2, 9]);
        let d = q(&[7]);
        let queries: Vec<&[TermId]> = vec![&a, &b, &c, &d];
        let groups = term_overlap_groups(&queries);
        assert_eq!(groups, vec![vec![0, 2], vec![1], vec![3]]);
    }

    #[test]
    fn transitive_overlap_merges_chains() {
        // a—b share 2, b—c share 3: one component despite a∩c = ∅.
        let a = q(&[1, 2]);
        let b = q(&[2, 3]);
        let c = q(&[3, 4]);
        let queries: Vec<&[TermId]> = vec![&a, &b, &c];
        assert_eq!(term_overlap_groups(&queries), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn empty_queries_are_singletons() {
        let a = q(&[]);
        let b = q(&[1]);
        let c = q(&[1]);
        let queries: Vec<&[TermId]> = vec![&a, &b, &c];
        assert_eq!(term_overlap_groups(&queries), vec![vec![0], vec![1, 2]]);
    }
}
