//! Build-time derived retrieval structures: the forward index, per-term
//! score bounds, and cached summary data.
//!
//! Everything here is a pure function of the four serialized
//! [`crate::InvertedIndex`] fields, computed once — eagerly by
//! [`crate::IndexBuilder::build`], lazily (behind a `OnceLock`) after
//! deserialization — and never written again. Keeping the data out of
//! the serialized form leaves the index's JSON byte-identical to the
//! pre-forward-index layout.

use crate::types::Posting;
use mp_text::TermId;

/// Derived, non-serialized companions to the inverted index.
///
/// * **Forward index** — per-document `(term, tf)` runs sorted by term
///   id, so reconstructing a document is `O(|doc|)` instead of a scan
///   over the whole vocabulary, and the pruned retrieval kernel can
///   fetch one document's tf for one term in `O(log |doc|)`.
/// * **Per-term normalized score bounds** — for each term, the maximum
///   over its postings of `tf · idf / doc_norm`: the largest normalized
///   contribution the term can make to *any* document's cosine score
///   (Turtle & Flood's max-score optimization, sharpened from the
///   global `idf² · max_tf / min_doc_norm` form to a per-term
///   normalized-space bound; see DESIGN.md §12). A very common term has
///   a low idf *and* its best document's norm is dominated by other
///   terms, so its bound is small and the pruned kernel can demote its
///   long postings list almost immediately.
/// * **df summary pairs / distinct-term count** — `df_summary` and
///   `distinct_terms` used to rescan all postings per call; both are
///   now answered from this cache with byte-identical output.
#[derive(Debug, Clone)]
pub(crate) struct Derived {
    /// Forward-index run boundaries: doc `d`'s terms live at
    /// `fwd_terms[fwd_offsets[d] .. fwd_offsets[d + 1]]`.
    pub(crate) fwd_offsets: Vec<usize>,
    /// Term ids of every (doc, term) pair, doc-major, term-sorted
    /// within each document.
    pub(crate) fwd_terms: Vec<u32>,
    /// Term frequencies parallel to `fwd_terms`.
    pub(crate) fwd_tfs: Vec<u32>,
    /// Per-term max-score bound: `max over postings of tf · idf /
    /// doc_norm` (0 for unseen terms) — an upper bound, up to a few
    /// ulps, on the term's normalized contribution to any cosine score.
    pub(crate) norm_bound: Vec<f64>,
    /// `(term, df)` for every term with a non-empty postings list, in
    /// ascending term order.
    pub(crate) df_pairs: Vec<(TermId, u32)>,
}

impl Derived {
    /// Builds all derived structures in one pass over the postings.
    pub(crate) fn build(postings: &[Vec<Posting>], doc_norms: &[f64], doc_count: u32) -> Self {
        let n = doc_count as usize;
        let mut norm_bound = vec![0.0f64; postings.len()];
        let mut df_pairs = Vec::new();
        // Counting sort: postings are term-major with doc-sorted runs,
        // so filling doc-major slots in ascending term order leaves
        // each document's forward run sorted by term id.
        let mut fwd_offsets = vec![0usize; n + 1];
        for (i, plist) in postings.iter().enumerate() {
            if plist.is_empty() {
                continue;
            }
            df_pairs.push((
                TermId(u32::try_from(i).expect("term ids are u32 by vocabulary construction")),
                u32::try_from(plist.len()).expect("postings hold at most doc_count (u32) entries"),
            ));
            // Same smoothed idf as `InvertedIndex::idf`.
            let idf = (1.0 + doc_count as f64 / (1.0 + plist.len() as f64)).ln();
            for p in plist {
                fwd_offsets[p.doc.index() + 1] += 1;
                // doc_norms are strictly positive for any posted doc
                // (the posting itself contributes to the norm).
                let ratio = (p.tf as f64 * idf) / doc_norms[p.doc.index()];
                norm_bound[i] = norm_bound[i].max(ratio);
            }
        }
        for d in 0..n {
            fwd_offsets[d + 1] += fwd_offsets[d];
        }
        let total = fwd_offsets[n];
        let mut fwd_terms = vec![0u32; total];
        let mut fwd_tfs = vec![0u32; total];
        let mut next = fwd_offsets.clone();
        for (i, plist) in postings.iter().enumerate() {
            let term = u32::try_from(i).expect("term ids are u32 by vocabulary construction");
            for p in plist {
                let slot = next[p.doc.index()];
                fwd_terms[slot] = term;
                fwd_tfs[slot] = p.tf;
                next[p.doc.index()] += 1;
            }
        }
        Self {
            fwd_offsets,
            fwd_terms,
            fwd_tfs,
            norm_bound,
            df_pairs,
        }
    }

    /// One document's forward run: `(term ids, tfs)`, term-sorted.
    pub(crate) fn doc_run(&self, doc: usize) -> (&[u32], &[u32]) {
        let (lo, hi) = (self.fwd_offsets[doc], self.fwd_offsets[doc + 1]);
        (&self.fwd_terms[lo..hi], &self.fwd_tfs[lo..hi])
    }

    /// The tf of `term` in `doc` via binary search over the document's
    /// forward run — `O(log |doc|)`, 0 when absent.
    pub(crate) fn tf(&self, doc: usize, term: u32) -> u32 {
        let (terms, tfs) = self.doc_run(doc);
        match terms.binary_search(&term) {
            Ok(pos) => tfs[pos],
            Err(_) => 0,
        }
    }
}
