//! Bounded top-k collection over scored documents.

use crate::types::ScoredDoc;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Wrapper giving `ScoredDoc` the *reverse* ranking order so the
/// `BinaryHeap` (a max-heap) exposes the currently-worst kept result at
/// the top, where it can be evicted in `O(log k)`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct WorstFirst(ScoredDoc);

impl Eq for WorstFirst {}

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        // ranking_cmp orders best-first (best = Less), so under the
        // max-heap's ordering the greatest element is already the worst
        // kept result — exactly what we want at the top.
        self.0.ranking_cmp(&other.0)
    }
}

impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded collector retaining the `k` best [`ScoredDoc`]s seen.
///
/// `O(log k)` per offer, `O(k log k)` to finish. Ties are broken by
/// ascending doc id, matching [`ScoredDoc::ranking_cmp`].
#[derive(Debug, Clone, Default)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<WorstFirst>,
}

impl TopK {
    /// A collector for the best `k` results. `k = 0` collects nothing.
    ///
    /// Callers may pass an effectively unbounded `k` (e.g. "all
    /// results"); the preallocation is capped so that is cheap.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1).min(1 << 12)),
        }
    }

    /// Re-arms a (possibly used) collector for a fresh query with bound
    /// `k`, keeping the heap's allocation — this is what lets the
    /// thread-local scratch pool serve every query without a per-query
    /// heap allocation.
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.heap.clear();
    }

    /// True once `k` results are held — from then on every further
    /// `offer` must beat [`Self::threshold`] to get in.
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// The currently-worst kept result (the k-th best so far), if any —
    /// the exact entry bar a new candidate must clear once the
    /// collector [`Self::is_full`]. This is the pruning threshold θ of
    /// the max-score kernel.
    pub fn threshold(&self) -> Option<ScoredDoc> {
        self.heap.peek().map(|w| w.0)
    }

    /// Offers a candidate result.
    pub fn offer(&mut self, candidate: ScoredDoc) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(WorstFirst(candidate));
            return;
        }
        let worst = self.heap.peek().expect("heap non-empty").0;
        if candidate.ranking_cmp(&worst) == Ordering::Less {
            self.heap.pop();
            self.heap.push(WorstFirst(candidate));
        }
    }

    /// Number of results currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Consumes the collector, returning results best-first.
    pub fn into_sorted(self) -> Vec<ScoredDoc> {
        let mut v: Vec<ScoredDoc> = self.heap.into_iter().map(|w| w.0).collect();
        v.sort_by(|a, b| a.ranking_cmp(b));
        v
    }

    /// Drains the collector into a fresh best-first `Vec`, leaving the
    /// heap empty but with its capacity intact for the next
    /// [`Self::reset`]. Only the returned result vector is allocated.
    pub fn drain_sorted(&mut self) -> Vec<ScoredDoc> {
        let mut v: Vec<ScoredDoc> = self.heap.drain().map(|w| w.0).collect();
        v.sort_by(|a, b| a.ranking_cmp(b));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DocId;
    use proptest::prelude::*;

    fn sd(id: u32, score: f64) -> ScoredDoc {
        ScoredDoc {
            doc: DocId(id),
            score,
        }
    }

    #[test]
    fn keeps_best_k() {
        let mut tk = TopK::new(2);
        for c in [sd(0, 0.1), sd(1, 0.9), sd(2, 0.5), sd(3, 0.7)] {
            tk.offer(c);
        }
        let out = tk.into_sorted();
        assert_eq!(out.iter().map(|s| s.doc.0).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn fewer_candidates_than_k() {
        let mut tk = TopK::new(10);
        tk.offer(sd(0, 0.3));
        assert_eq!(tk.len(), 1);
        assert_eq!(tk.into_sorted().len(), 1);
    }

    #[test]
    fn k_zero_collects_nothing() {
        let mut tk = TopK::new(0);
        tk.offer(sd(0, 1.0));
        assert!(tk.is_empty());
    }

    #[test]
    fn ties_prefer_lower_doc_id() {
        let mut tk = TopK::new(1);
        tk.offer(sd(5, 0.5));
        tk.offer(sd(2, 0.5));
        let out = tk.into_sorted();
        assert_eq!(out[0].doc.0, 2);
    }

    proptest! {
        #[test]
        fn prop_matches_full_sort(
            scores in proptest::collection::vec(0.0f64..1.0, 0..100),
            k in 0usize..20
        ) {
            let candidates: Vec<ScoredDoc> =
                scores.iter().enumerate().map(|(i, &s)| sd(i as u32, s)).collect();
            let mut tk = TopK::new(k);
            for &c in &candidates {
                tk.offer(c);
            }
            let got = tk.into_sorted();

            let mut full = candidates.clone();
            full.sort_by(|a, b| a.ranking_cmp(b));
            full.truncate(k);
            prop_assert_eq!(got, full);
        }
    }
}
