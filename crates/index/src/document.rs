//! Documents as bags of interned terms.

use mp_text::{Analyzer, TermId, Vocabulary};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A document represented as a term-frequency bag.
///
/// Term ids refer to a [`Vocabulary`] shared across the corpus (the
/// corpus generator and indexer agree on one interner per scenario).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Document {
    /// Term frequencies, sorted by term id (BTreeMap keeps iteration
    /// deterministic, which keeps index builds and probe responses
    /// deterministic).
    tf: BTreeMap<TermId, u32>,
    len: u32,
}

impl Document {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a document from pre-interned term occurrences.
    pub fn from_terms(terms: impl IntoIterator<Item = TermId>) -> Self {
        let mut doc = Self::new();
        for t in terms {
            doc.add_term(t, 1);
        }
        doc
    }

    /// Analyzes raw text with `analyzer`, interning terms into `vocab`.
    pub fn from_text(text: &str, analyzer: &Analyzer, vocab: &mut Vocabulary) -> Self {
        Self::from_terms(analyzer.analyze(text).iter().map(|t| vocab.intern(t)))
    }

    /// Adds `count` occurrences of `term`.
    pub fn add_term(&mut self, term: TermId, count: u32) {
        if count == 0 {
            return;
        }
        *self.tf.entry(term).or_insert(0) += count;
        self.len += count;
    }

    /// Frequency of `term` in this document (0 if absent).
    pub fn tf(&self, term: TermId) -> u32 {
        self.tf.get(&term).copied().unwrap_or(0)
    }

    /// True if the document contains the term at least once.
    pub fn contains(&self, term: TermId) -> bool {
        self.tf.contains_key(&term)
    }

    /// True if the document contains *all* of the given terms — the
    /// boolean-AND matching predicate.
    pub fn matches_all(&self, terms: &[TermId]) -> bool {
        terms.iter().all(|t| self.contains(*t))
    }

    /// Total number of term occurrences (document length).
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True when the document has no terms.
    pub fn is_empty(&self) -> bool {
        self.tf.is_empty()
    }

    /// Number of distinct terms.
    pub fn distinct_terms(&self) -> usize {
        self.tf.len()
    }

    /// Iterates `(term, tf)` pairs in term-id order.
    pub fn terms(&self) -> impl Iterator<Item = (TermId, u32)> + '_ {
        self.tf.iter().map(|(&t, &c)| (t, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    #[test]
    fn accumulates_frequencies() {
        let doc = Document::from_terms([t(1), t(2), t(1), t(1)]);
        assert_eq!(doc.tf(t(1)), 3);
        assert_eq!(doc.tf(t(2)), 1);
        assert_eq!(doc.tf(t(3)), 0);
        assert_eq!(doc.len(), 4);
        assert_eq!(doc.distinct_terms(), 2);
    }

    #[test]
    fn matches_all_semantics() {
        let doc = Document::from_terms([t(1), t(2)]);
        assert!(doc.matches_all(&[t(1)]));
        assert!(doc.matches_all(&[t(1), t(2)]));
        assert!(!doc.matches_all(&[t(1), t(3)]));
        assert!(doc.matches_all(&[])); // vacuous truth
    }

    #[test]
    fn from_text_normalizes() {
        let mut vocab = mp_text::Vocabulary::new();
        let doc = Document::from_text(
            "The cancers and the cancer",
            &Analyzer::default(),
            &mut vocab,
        );
        // "the"/"and" dropped; "cancers"/"cancer" stem together.
        assert_eq!(doc.distinct_terms(), 1);
        assert_eq!(doc.len(), 2);
    }

    #[test]
    fn zero_count_is_noop() {
        let mut doc = Document::new();
        doc.add_term(t(5), 0);
        assert!(doc.is_empty());
        assert_eq!(doc.len(), 0);
    }

    proptest! {
        #[test]
        fn prop_len_is_sum_of_tfs(ids in proptest::collection::vec(0u32..50, 0..100)) {
            let doc = Document::from_terms(ids.iter().map(|&i| t(i)));
            let sum: u32 = doc.terms().map(|(_, c)| c).sum();
            prop_assert_eq!(doc.len(), sum);
            prop_assert_eq!(doc.len() as usize, ids.len());
        }

        #[test]
        fn prop_terms_sorted(ids in proptest::collection::vec(0u32..50, 0..100)) {
            let doc = Document::from_terms(ids.iter().map(|&i| t(i)));
            let terms: Vec<TermId> = doc.terms().map(|(t, _)| t).collect();
            for w in terms.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }
}
