//! Thread-local scratch pool for the retrieval kernels.
//!
//! Every `cosine_topk` / `max_similarity` call needs per-query working
//! memory: the dense per-document accumulator array, the touched-doc
//! list, per-term weight/bound tables, and the top-k heap. Allocating
//! those per query made the old `HashMap` kernel allocation-bound, so
//! the pool keeps one [`Scratch`] per thread — serve workers and
//! `mp-core::par` fan-out threads each reuse their own across queries
//! (and across differently-sized indices: buffers only ever grow).
//!
//! **Invariant:** between queries, every element of `acc` is exactly
//! `0.0`. The dense kernel restores the invariant by zeroing only the
//! entries it touched; `ensure_doc_capacity` checks the whole array
//! under `debug_assertions`.

use crate::topk::TopK;
use std::cell::RefCell;

/// Reusable per-thread working memory for the retrieval kernels.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// Dense per-document dot-product accumulators (all zero between
    /// queries; sized to the largest `doc_count` seen on this thread).
    pub(crate) acc: Vec<f64>,
    /// Documents with a non-zero accumulator this query.
    pub(crate) touched: Vec<u32>,
    /// Query term-id sort buffer (raw, before run-length encoding).
    pub(crate) qterms: Vec<u32>,
    /// Run-length-encoded query term frequencies, ascending term id.
    pub(crate) qtf: Vec<(u32, u32)>,
    /// Per `qtf` entry: query-side tf-idf weight `tfq · idf`.
    pub(crate) wq: Vec<f64>,
    /// Per `qtf` entry: the term's idf in the queried index.
    pub(crate) idf: Vec<f64>,
    /// Per `qtf` entry: max-score upper bound on the term's
    /// contribution to any document's normalized cosine score (scaled
    /// by `1/qnorm` at use).
    pub(crate) bound: Vec<f64>,
    /// Indices into `qtf`, sorted by descending `bound`.
    pub(crate) order: Vec<u32>,
    /// Suffix sums of `bound` over `order` (raw, unnormalized).
    pub(crate) suffix: Vec<f64>,
    /// `slack · suffix / qnorm`: the normalized score any document
    /// drawing only on the corresponding list suffix could still reach.
    pub(crate) suffix_norm: Vec<f64>,
    /// Per `order` entry: cursor into that term's postings list.
    pub(crate) cursor: Vec<usize>,
    /// Per `qtf` entry: the current candidate's tf for that term
    /// (all zero between candidates).
    pub(crate) cand_tf: Vec<u32>,
    /// Reusable bounded top-k collector.
    pub(crate) topk: TopK,
    /// Per-request rows for the batched kernel (one per batch member;
    /// grown on demand, reused across batches like everything else).
    pub(crate) batch_rows: Vec<BatchRow>,
    queries: u64,
    acc_grows: u64,
}

/// One batch member's slice of the batched kernel's working memory.
///
/// The shared-traversal kernel interleaves requests, so the single-query
/// fields of [`Scratch`] can't hold per-request state: each row carries
/// its own dense accumulator, touched list, and prepared query tables.
/// Rows obey the same invariant as `Scratch::acc` — all-zero between
/// batches — restored by zeroing only the touched entries.
#[derive(Debug, Default)]
pub(crate) struct BatchRow {
    /// Dense per-document dot-product accumulators (all zero between
    /// batches).
    pub(crate) acc: Vec<f64>,
    /// Documents with a non-zero accumulator for this request.
    pub(crate) touched: Vec<u32>,
    /// This request's run-length-encoded term frequencies (copied from
    /// `Scratch::qtf` after `prepare_query`).
    pub(crate) qtf: Vec<(u32, u32)>,
    /// Per `qtf` entry: query-side tf-idf weight.
    pub(crate) wq: Vec<f64>,
    /// Per `qtf` entry: the term's idf in the queried index.
    pub(crate) idf: Vec<f64>,
    /// The request's query norm (`0.0` marks a no-op request).
    pub(crate) qnorm: f64,
}

impl BatchRow {
    /// Grows this row's dense accumulator to cover `doc_count` documents
    /// and verifies the all-zero invariant (debug builds only).
    pub(crate) fn ensure_doc_capacity(&mut self, doc_count: usize) {
        debug_assert!(
            self.acc.iter().all(|&x| mp_stats::float::exact_zero(x)),
            "batch-row accumulator not restored to zero by the previous batch"
        );
        if self.acc.len() < doc_count {
            self.acc.resize(doc_count, 0.0);
        }
    }
}

/// A snapshot of one thread's scratch-pool accounting, for tests and
/// diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchStats {
    /// Queries served from this thread's scratch.
    pub queries: u64,
    /// Times the dense accumulator array had to grow.
    pub acc_grows: u64,
    /// Current dense accumulator length (max doc_count seen).
    pub acc_len: usize,
}

impl Scratch {
    /// Grows the dense accumulator to cover `doc_count` documents and
    /// verifies the all-zero invariant (debug builds only). Shrinking
    /// never happens: a smaller index simply uses a prefix, which is
    /// what lets one thread serve differently-sized indices without
    /// reallocating.
    pub(crate) fn ensure_doc_capacity(&mut self, doc_count: usize) {
        debug_assert!(
            self.acc.iter().all(|&x| mp_stats::float::exact_zero(x)),
            "scratch accumulator not restored to zero by the previous query"
        );
        if self.acc.len() < doc_count {
            self.acc.resize(doc_count, 0.0);
            self.acc_grows += 1;
        }
        self.queries += 1;
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Runs `f` with this thread's scratch. The kernels never re-enter, so
/// the `RefCell` borrow cannot conflict.
pub(crate) fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Pre-sizes this thread's dense accumulator for indices of up to
/// `doc_count` documents, so the first queries a worker serves don't
/// pay the growth. Serve workers call this once at startup with the
/// largest mediated collection size.
pub fn warm(doc_count: usize) {
    with_scratch(|s| {
        if s.acc.len() < doc_count {
            s.acc.resize(doc_count, 0.0);
            s.acc_grows += 1;
        }
    });
}

/// This thread's scratch-pool accounting.
pub fn thread_scratch_stats() -> ScratchStats {
    with_scratch(|s| ScratchStats {
        queries: s.queries,
        acc_grows: s.acc_grows,
        acc_len: s.acc.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_grows_once_and_sticks() {
        std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let before = thread_scratch_stats();
                    assert_eq!(before.acc_len, 0);
                    warm(100);
                    warm(50); // smaller: no-op
                    let after = thread_scratch_stats();
                    assert_eq!(after.acc_len, 100);
                    assert_eq!(after.acc_grows, before.acc_grows + 1);
                })
                .join()
                .expect("scratch warm test thread must not panic");
        });
    }
}
