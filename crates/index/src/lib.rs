//! # mp-index — full-text search-engine substrate for `metaprobe`
//!
//! A compact, from-scratch inverted-index engine providing exactly the
//! capabilities a Hidden-Web search interface exposes in the paper:
//!
//! * **Boolean-AND match counting** — "number of matching documents",
//!   the surrogate for the document-frequency-based relevancy definition
//!   (paper Section 2.1);
//! * **tf-idf cosine top-k retrieval** — query-document similarity, the
//!   surrogate for the document-similarity-based definition;
//! * **df summary export** — the `(term, number of appearances)` table
//!   (paper Figure 2) a metasearcher keeps per mediated database.
//!
//! Build with [`IndexBuilder`]; query through [`InvertedIndex`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod builder;
pub(crate) mod derived;
pub mod document;
pub mod index;
pub mod scratch;
pub mod topk;
pub mod types;

pub use builder::IndexBuilder;
pub use document::Document;
pub use index::InvertedIndex;
pub use topk::TopK;
pub use types::{DocId, Posting, ScoredDoc};
