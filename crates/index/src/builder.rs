//! Index construction.

use crate::document::Document;
use crate::index::InvertedIndex;
use crate::types::{DocId, Posting};

/// Accumulates documents and builds an immutable [`InvertedIndex`].
///
/// Documents receive dense [`DocId`]s in insertion order, so postings
/// lists come out sorted by construction — no post-build sort needed.
#[derive(Debug, Default)]
pub struct IndexBuilder {
    postings: Vec<Vec<Posting>>,
    doc_lens: Vec<u32>,
}

impl IndexBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one document, returning its assigned id.
    pub fn add(&mut self, doc: Document) -> DocId {
        let id = DocId(u32::try_from(self.doc_lens.len()).expect("more than u32::MAX documents"));
        for (term, tf) in doc.terms() {
            let slot = term.index();
            if slot >= self.postings.len() {
                self.postings.resize_with(slot + 1, Vec::new);
            }
            self.postings[slot].push(Posting { doc: id, tf });
        }
        self.doc_lens.push(doc.len());
        id
    }

    /// Number of documents added so far.
    pub fn len(&self) -> usize {
        self.doc_lens.len()
    }

    /// True when no documents were added.
    pub fn is_empty(&self) -> bool {
        self.doc_lens.is_empty()
    }

    /// Finalizes the index, precomputing per-document tf-idf norms.
    pub fn build(self) -> InvertedIndex {
        let _span = mp_obs::span!("index.build");
        let doc_count = u32::try_from(self.doc_lens.len())
            .expect("document ids are u32 by design; collections stay below u32::MAX docs");
        mp_obs::counter!("index.builds").incr();
        mp_obs::counter!("index.docs").add(u64::from(doc_count));
        let lens = mp_obs::histogram!("index.posting_len", mp_obs::bounds::POW2);
        for postings in self.postings.iter().filter(|p| !p.is_empty()) {
            lens.record(u64::try_from(postings.len()).unwrap_or(u64::MAX));
        }
        let mut index = InvertedIndex {
            postings: self.postings,
            doc_lens: self.doc_lens,
            doc_norms: Vec::new(),
            doc_count,
            derived: std::sync::OnceLock::new(),
        };
        // Two-phase: norms need df values, which need the postings in
        // place first.
        let mut norms2 = vec![0.0f64; doc_count as usize];
        for postings in &index.postings {
            if postings.is_empty() {
                continue;
            }
            let idf = (1.0 + doc_count as f64 / (1.0 + postings.len() as f64)).ln();
            for p in postings {
                let w = p.tf as f64 * idf;
                norms2[p.doc.index()] += w * w;
            }
        }
        index.doc_norms = norms2.into_iter().map(f64::sqrt).collect();
        // Seed the derived structures (forward index, score bounds,
        // summary cache) eagerly so queries never pay a first-call
        // build; deserialized indices fall back to the lazy path.
        let _ = index.derived();
        index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_text::TermId;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    #[test]
    fn assigns_sequential_ids() {
        let mut b = IndexBuilder::new();
        assert_eq!(b.add(Document::from_terms([t(0)])), DocId(0));
        assert_eq!(b.add(Document::from_terms([t(1)])), DocId(1));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn postings_sorted_by_doc_id() {
        let mut b = IndexBuilder::new();
        for _ in 0..5 {
            b.add(Document::from_terms([t(3)]));
        }
        let idx = b.build();
        let docs: Vec<u32> = idx.postings(t(3)).iter().map(|p| p.doc.0).collect();
        assert_eq!(docs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn norms_are_positive_for_nonempty_docs() {
        let mut b = IndexBuilder::new();
        b.add(Document::from_terms([t(0), t(1)]));
        b.add(Document::new());
        let idx = b.build();
        assert!(idx.doc_norms[0] > 0.0);
        assert_eq!(idx.doc_norms[1], 0.0);
    }

    #[test]
    fn empty_build() {
        let idx = IndexBuilder::new().build();
        assert_eq!(idx.doc_count(), 0);
        assert_eq!(idx.distinct_terms(), 0);
    }
}
