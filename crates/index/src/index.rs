//! The inverted index: boolean matching, cosine retrieval, df summaries.
//!
//! # Retrieval kernel (DESIGN.md §12)
//!
//! [`InvertedIndex::cosine_topk`] dispatches between two kernels that
//! return **bit-identical** results (and are pinned to each other and
//! to the retained [`InvertedIndex::cosine_topk_naive`] reference by
//! proptests):
//!
//! * a **dense term-at-a-time** kernel — reusable thread-local `f64`
//!   accumulators plus a touched-doc list instead of the historical
//!   per-query `HashMap`;
//! * an **exact max-score document-at-a-time** kernel — terms processed
//!   in descending upper-bound order, candidates generated only from
//!   the lists that can still place a document into the current top-k,
//!   every surviving candidate scored by a fresh sorted-term-order
//!   accumulation over its forward-index run.
//!
//! The determinism contract: every scored document's floating-point
//! summation order (ascending term id) is exactly the historical
//! kernel's, so every score's bit pattern is unchanged, and pruning is
//! exact — it only ever skips documents whose rigorous upper bound is
//! strictly below the k-th best already-exact score.

use crate::derived::Derived;
use crate::document::Document;
use crate::scratch::{self, Scratch};
use crate::topk::TopK;
use crate::types::{DocId, Posting, ScoredDoc};
use mp_text::TermId;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Multiplicative safety slack applied to every max-score upper bound.
///
/// Why pruning stays *exact*: a document's normalized score decomposes
/// (in real arithmetic) as `Σ_t (wq_t / qnorm) · (tf_{d,t} · idf_t /
/// dnorm_d)`, and each right factor is dominated by the term's
/// precomputed bound `norm_bound[t] = max over postings of the same
/// expression`. Floating point introduces only relative errors — a few
/// ulps per rounding in the bound products, the summation-reorder
/// error (≤ `m · 2⁻⁵³` relative for `m` query terms), and the ulps
/// separating the compared score's computed value from its real value.
/// Inflating every bound by `1 + 1e-9` dominates the combined relative
/// error for any `m < 10⁶` while loosening the (already conservative)
/// bound by a negligible margin, so `upper_bound < θ` rigorously
/// implies the candidate's *computed* score is below θ — pruning can
/// never change the top-k set or any score bit.
const BOUND_SLACK: f64 = 1.0 + 1e-9;

/// The pruned kernel is selected when `k · PRUNE_K_FACTOR` does not
/// exceed the total postings volume of the query: max-score only pays
/// off when most candidates can lose to an already-full top-k.
const PRUNE_K_FACTOR: usize = 16;

/// …and only once the query's total postings volume clears this floor:
/// below it the dense kernel's straight-line accumulation finishes
/// before the pruned kernel's per-candidate bookkeeping amortizes
/// (measured in the `retrieval_kernel` bench: at ~600 postings dense is
/// ~2.5× faster, at ~10k the pruned kernel wins).
const PRUNE_MIN_POSTINGS: usize = 4096;

/// An immutable inverted index over a fixed document collection.
///
/// Construct via [`crate::IndexBuilder`]. Supports the two retrieval
/// operations a Hidden-Web interface offers in the paper, plus summary
/// export for the metasearcher.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    /// Postings per term id (dense over the shared vocabulary; terms
    /// absent from this database have empty lists).
    pub(crate) postings: Vec<Vec<Posting>>,
    /// Per-document lengths (total term occurrences).
    pub(crate) doc_lens: Vec<u32>,
    /// Per-document tf-idf vector norms, precomputed at build time.
    pub(crate) doc_norms: Vec<f64>,
    /// Number of documents.
    pub(crate) doc_count: u32,
    /// Derived retrieval structures (forward index, per-term bounds,
    /// cached summaries). Built eagerly by the builder, lazily after
    /// deserialization; never serialized, so the index's JSON layout is
    /// byte-identical to the pre-forward-index format.
    pub(crate) derived: OnceLock<Derived>,
}

impl InvertedIndex {
    /// Number of documents in the collection (`|db|` in the paper).
    pub fn doc_count(&self) -> u32 {
        self.doc_count
    }

    /// The derived structures, building them on first use after
    /// deserialization (the builder seeds them eagerly).
    pub(crate) fn derived(&self) -> &Derived {
        self.derived
            .get_or_init(|| Derived::build(&self.postings, &self.doc_norms, self.doc_count))
    }

    /// Document frequency of a term: the paper's `r(db, t)`, the
    /// "number of appearances" column of Figure 2.
    pub fn df(&self, term: TermId) -> u32 {
        self.postings
            .get(term.index())
            .map(|p| Self::posting_len(p))
            .unwrap_or(0)
    }

    /// A postings list's length as the df width (a list holds at most
    /// one posting per document, and document counts are `u32`).
    fn posting_len(p: &[Posting]) -> u32 {
        u32::try_from(p.len()).expect("postings hold at most doc_count (u32) entries")
    }

    /// Postings list for a term (empty slice if unseen).
    pub fn postings(&self, term: TermId) -> &[Posting] {
        self.postings
            .get(term.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Counts documents containing **all** query terms — the paper's
    /// "number of matching documents", i.e. the actual relevancy
    /// `r(db, q)` under the document-frequency-based definition.
    ///
    /// Duplicate query terms are deduplicated; an empty query matches
    /// every document (vacuous AND).
    pub fn count_matching(&self, query: &[TermId]) -> u32 {
        match self.matching_docs_impl(query, None) {
            MatchOutcome::Count(c) => c,
            MatchOutcome::Docs(_) => unreachable!("count mode returns Count"),
        }
    }

    /// Returns the ids of documents containing all query terms.
    pub fn matching_docs(&self, query: &[TermId]) -> Vec<DocId> {
        match self.matching_docs_impl(query, Some(usize::MAX)) {
            MatchOutcome::Docs(d) => d,
            MatchOutcome::Count(_) => unreachable!("collect mode returns Docs"),
        }
    }

    fn matching_docs_impl(&self, query: &[TermId], collect: Option<usize>) -> MatchOutcome {
        let mut terms: Vec<TermId> = query.to_vec();
        terms.sort_unstable();
        terms.dedup();
        if terms.is_empty() {
            return match collect {
                None => MatchOutcome::Count(self.doc_count),
                Some(limit) => {
                    // Saturate: `limit` is usually `usize::MAX` ("all").
                    let limit = u32::try_from(limit).unwrap_or(u32::MAX);
                    MatchOutcome::Docs((0..self.doc_count.min(limit)).map(DocId).collect())
                }
            };
        }
        // Intersect shortest-first: standard merge-intersection, linear
        // in the smallest postings list.
        let mut lists: Vec<&[Posting]> = terms.iter().map(|&t| self.postings(t)).collect();
        lists.sort_by_key(|l| l.len());
        if lists[0].is_empty() {
            return match collect {
                None => MatchOutcome::Count(0),
                Some(_) => MatchOutcome::Docs(Vec::new()),
            };
        }
        let mut current: Vec<DocId> = lists[0].iter().map(|p| p.doc).collect();
        for list in &lists[1..] {
            let mut next = Vec::with_capacity(current.len().min(list.len()));
            let (mut i, mut j) = (0usize, 0usize);
            while i < current.len() && j < list.len() {
                match current[i].cmp(&list[j].doc) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        next.push(current[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        match collect {
            None => MatchOutcome::Count(
                u32::try_from(current.len()).expect("matches are bounded by doc_count, a u32"),
            ),
            Some(limit) => {
                current.truncate(limit);
                MatchOutcome::Docs(current)
            }
        }
    }

    /// Inverse document frequency with add-one smoothing:
    /// `ln(1 + N / (1 + df))`. Strictly positive, finite for df = 0.
    pub fn idf(&self, term: TermId) -> f64 {
        (1.0 + self.doc_count as f64 / (1.0 + self.df(term) as f64)).ln()
    }

    /// Builds the run-length query term frequencies (ascending term
    /// id), the per-term weights/idfs/bounds, and returns the query
    /// norm. The qtf iteration order and the `qnorm` accumulation are
    /// exactly the historical kernel's, so all downstream scores keep
    /// their historical bit patterns.
    pub(crate) fn prepare_query(&self, query: &[TermId], s: &mut Scratch) -> f64 {
        s.qterms.clear();
        s.qterms.extend(query.iter().map(|t| t.0));
        s.qterms.sort_unstable();
        s.qtf.clear();
        for &t in &s.qterms {
            match s.qtf.last_mut() {
                Some((last, tf)) if *last == t => *tf += 1,
                _ => s.qtf.push((t, 1)),
            }
        }
        let norm_bound = &self.derived().norm_bound;
        s.wq.clear();
        s.idf.clear();
        s.bound.clear();
        let mut qnorm2 = 0.0;
        for j in 0..s.qtf.len() {
            let (t, tfq) = s.qtf[j];
            let idf = self.idf(TermId(t));
            let wq = tfq as f64 * idf;
            qnorm2 += wq * wq;
            let nb = norm_bound.get(t as usize).copied().unwrap_or(0.0);
            s.wq.push(wq);
            s.idf.push(idf);
            // Bound on the term's contribution to any normalized score,
            // still unnormalized on the query side (the pruned kernel
            // divides by qnorm once).
            s.bound.push(wq * nb);
        }
        qnorm2.sqrt()
    }

    /// Retrieves the `k` documents most cosine-similar to the query
    /// under tf-idf weighting — the paper's document-similarity
    /// relevancy surrogate (Section 2.1, citing \[22\]).
    ///
    /// Documents sharing *any* query term are scored (disjunctive
    /// scoring, as vector-space engines do). Results are bit-identical
    /// to [`Self::cosine_topk_naive`] regardless of which internal
    /// kernel serves the query.
    pub fn cosine_topk(&self, query: &[TermId], k: usize) -> Vec<ScoredDoc> {
        if query.is_empty() || k == 0 {
            return Vec::new();
        }
        scratch::with_scratch(|s| {
            let qnorm = self.prepare_query(query, s);
            if mp_stats::float::exact_zero(qnorm) {
                return Vec::new();
            }
            self.run_topk(qnorm, k, s);
            s.topk.drain_sorted()
        })
    }

    /// Runs the dispatched kernel, leaving the results in `s.topk`.
    fn run_topk(&self, qnorm: f64, k: usize, s: &mut Scratch) {
        let mut sum_df = 0usize;
        let mut nonempty = 0usize;
        for j in 0..s.qtf.len() {
            let df = self.postings(TermId(s.qtf[j].0)).len();
            sum_df += df;
            nonempty += usize::from(df > 0);
        }
        // Max-score needs at least two lists to discriminate between,
        // a k small enough that most candidates can be pruned once the
        // heap fills, and enough postings volume to amortize its
        // per-candidate bookkeeping; otherwise the dense kernel's
        // straight-line accumulation wins.
        if nonempty >= 2
            && sum_df >= PRUNE_MIN_POSTINGS
            && k.saturating_mul(PRUNE_K_FACTOR) <= sum_df
        {
            self.topk_pruned(qnorm, k, s);
        } else {
            self.topk_dense(qnorm, k, s);
        }
    }

    /// Dense term-at-a-time kernel: accumulates every posting of every
    /// query term (ascending term id — the historical summation order)
    /// into the thread-local dense accumulator, then offers the touched
    /// documents to the top-k heap.
    fn topk_dense(&self, qnorm: f64, k: usize, s: &mut Scratch) {
        mp_obs::counter!("index.queries_dense").incr();
        s.ensure_doc_capacity(self.doc_count as usize);
        s.touched.clear();
        for j in 0..s.qtf.len() {
            let t = s.qtf[j].0;
            let wq = s.wq[j];
            let idf = s.idf[j];
            for p in self.postings(TermId(t)) {
                let slot = p.doc.index();
                let wd = p.tf as f64 * idf;
                // Contributions are strictly positive (idf ≥ ln 1.5,
                // tf ≥ 1), so a zero accumulator means "untouched".
                if mp_stats::float::exact_zero(s.acc[slot]) {
                    s.touched.push(p.doc.0);
                }
                s.acc[slot] += wq * wd;
            }
        }
        s.topk.reset(k);
        for i in 0..s.touched.len() {
            let slot = s.touched[i] as usize;
            let dot = s.acc[slot];
            s.acc[slot] = 0.0; // restore the all-zero invariant
            let dnorm = self.doc_norms[slot];
            if dnorm > 0.0 {
                s.topk.offer(ScoredDoc {
                    doc: DocId(s.touched[i]),
                    score: dot / (qnorm * dnorm),
                });
            }
        }
        mp_obs::counter!("index.docs_scored").add(u64::try_from(s.touched.len()).unwrap_or(0));
    }

    /// Exact max-score document-at-a-time kernel (Turtle & Flood).
    ///
    /// Terms are processed in descending upper-bound order (bounds live
    /// in normalized score space — see [`Derived::build`]); candidates
    /// are generated in ascending doc-id order from the *essential*
    /// prefix of lists — those whose remaining-terms bound can still
    /// beat the current k-th exact score θ. Each candidate's refined
    /// bound (the bounds of the essential terms it actually matched +
    /// the whole non-essential suffix) gates a full sorted-term-order
    /// scoring pass over the forward index, so every emitted score is
    /// bit-identical to the dense kernel's, and a skipped document is
    /// rigorously proven (see [`BOUND_SLACK`]) unable to enter the
    /// top-k.
    fn topk_pruned(&self, qnorm: f64, k: usize, s: &mut Scratch) {
        mp_obs::counter!("index.queries_pruned").incr();
        let der = self.derived();
        s.topk.reset(k);
        let m = s.qtf.len();
        {
            // Split borrows: sort the processing order by descending
            // bound (ties: ascending term id, a total deterministic
            // order — bounds are finite by construction).
            let Scratch {
                ref mut order,
                ref bound,
                ref qtf,
                ..
            } = *s;
            order.clear();
            for (j, &(term, _)) in qtf.iter().enumerate() {
                if !self.postings(TermId(term)).is_empty() {
                    order.push(u32::try_from(j).expect("query terms fit u32 by construction"));
                }
            }
            order.sort_unstable_by(|&a, &b| {
                mp_stats::float::total_cmp_desc(bound[a as usize], bound[b as usize])
                    .then(qtf[a as usize].0.cmp(&qtf[b as usize].0))
            });
        }
        let n_lists = s.order.len();
        if n_lists == 0 {
            return;
        }
        s.suffix.clear();
        s.suffix.resize(n_lists + 1, 0.0);
        for i in (0..n_lists).rev() {
            s.suffix[i] = s.bound[s.order[i] as usize] + s.suffix[i + 1];
        }
        // Normalized "best score any document drawing only on lists
        // i.. could reach": the bounds already live in normalized score
        // space, so only the query norm (and the exactness slack)
        // remains to fold in.
        let inv_qnorm = BOUND_SLACK / qnorm;
        s.suffix_norm.clear();
        for i in 0..=n_lists {
            s.suffix_norm.push(s.suffix[i] * inv_qnorm);
        }
        s.cursor.clear();
        s.cursor.resize(n_lists, 0);
        s.cand_tf.clear();
        s.cand_tf.resize(m, 0);

        let mut live = n_lists; // essential lists: order[0..live]
        let mut theta = f64::NEG_INFINITY;
        let mut scored: u64 = 0;
        let mut skipped: u64 = 0;
        loop {
            // Next candidate: the minimum current doc id across the
            // essential lists (ascending doc-id traversal).
            let mut next = u32::MAX;
            let mut found = false;
            for i in 0..live {
                let plist = self.postings(TermId(s.qtf[s.order[i] as usize].0));
                if s.cursor[i] < plist.len() {
                    let d = plist[s.cursor[i]].doc.0;
                    if !found || d < next {
                        next = d;
                        found = true;
                    }
                }
            }
            if !found {
                break;
            }
            // Advance every essential cursor sitting on the candidate,
            // refining its bound with the matched terms' bounds and
            // collecting their tf values (free — they're right there in
            // the postings) for the scoring pass.
            let mut hit_bound = 0.0f64;
            for i in 0..live {
                let j = s.order[i] as usize;
                let plist = self.postings(TermId(s.qtf[j].0));
                if s.cursor[i] < plist.len() && plist[s.cursor[i]].doc.0 == next {
                    hit_bound += s.bound[j];
                    s.cand_tf[j] = plist[s.cursor[i]].tf;
                    s.cursor[i] += 1;
                }
            }
            if s.topk.is_full() {
                let ub = (hit_bound + s.suffix[live]) * inv_qnorm;
                if ub < theta {
                    skipped += 1;
                    for j in 0..m {
                        s.cand_tf[j] = 0;
                    }
                    continue;
                }
            }
            let slot = next as usize;
            let dnorm = self.doc_norms[slot];
            debug_assert!(dnorm > 0.0, "posted documents have positive norms");
            // The candidate may also contain terms whose (demoted)
            // lists no longer generate candidates: fetch those tfs from
            // the forward index — typically one probe, for the common
            // low-bound term whose long list was demoted first.
            for i in live..n_lists {
                let j = s.order[i] as usize;
                s.cand_tf[j] = der.tf(slot, s.qtf[j].0);
            }
            // Exact scoring: ascending-term-id accumulation — the
            // historical summation order, so the score's bit pattern
            // matches the dense kernel exactly.
            let mut dot = 0.0f64;
            for j in 0..m {
                let tf = s.cand_tf[j];
                if tf > 0 {
                    dot += s.wq[j] * (tf as f64 * s.idf[j]);
                }
                s.cand_tf[j] = 0;
            }
            scored += 1;
            s.topk.offer(ScoredDoc {
                doc: DocId(next),
                score: dot / (qnorm * dnorm),
            });
            if s.topk.is_full() {
                let worst = s
                    .topk
                    .threshold()
                    .map(|x| x.score)
                    .unwrap_or(f64::NEG_INFINITY);
                if worst > theta {
                    theta = worst;
                    // θ only rises, so the essential prefix only
                    // shrinks; demoted lists stop generating
                    // candidates (their remaining docs provably lose).
                    while live > 0 && s.suffix_norm[live - 1] < theta {
                        live -= 1;
                    }
                }
            }
        }
        // Entries of demoted lists that were never visited are pruned
        // work too — without demotion each would have been a candidate.
        for i in live..n_lists {
            let plist = self.postings(TermId(s.qtf[s.order[i] as usize].0));
            skipped += u64::try_from(plist.len() - s.cursor[i]).unwrap_or(0);
        }
        mp_obs::counter!("index.prune_skipped").add(skipped);
        mp_obs::counter!("index.docs_scored").add(scored);
    }

    /// The historical HashMap-accumulator kernel, retained as the
    /// executable reference: the property tests pin both production
    /// kernels bit-identical to it, and the `retrieval_kernel` bench
    /// measures the rebuilt kernel's speedup against it.
    pub fn cosine_topk_naive(&self, query: &[TermId], k: usize) -> Vec<ScoredDoc> {
        // Query term frequencies in *sorted* term order: the weighted
        // dot products below are floating-point accumulations, and
        // iterating a hash map here would make the summation order —
        // and therefore the low bits of every score — vary from call to
        // call. Sorted terms keep scores bit-identical across calls
        // (the workspace determinism contract; the serving layer's
        // equivalence tests compare results exactly).
        let mut terms: Vec<TermId> = query.to_vec();
        terms.sort_unstable();
        let mut qtf: Vec<(TermId, u32)> = Vec::new();
        for &t in &terms {
            match qtf.last_mut() {
                Some((last, tf)) if *last == t => *tf += 1,
                _ => qtf.push((t, 1)),
            }
        }
        if qtf.is_empty() || k == 0 {
            return Vec::new();
        }
        let mut qnorm2 = 0.0;
        let mut acc: HashMap<DocId, f64> = HashMap::new();
        for &(t, tfq) in &qtf {
            let idf = self.idf(t);
            let wq = tfq as f64 * idf;
            qnorm2 += wq * wq;
            for p in self.postings(t) {
                let wd = p.tf as f64 * idf;
                *acc.entry(p.doc).or_insert(0.0) += wq * wd;
            }
        }
        let qnorm = qnorm2.sqrt();
        if mp_stats::float::exact_zero(qnorm) {
            return Vec::new();
        }
        let mut topk = TopK::new(k);
        // Each score comes from its own dot product (no cross-doc
        // accumulation), and TopK's (score, doc) order is total.
        // mp-lint: allow(L10): per-doc scores + total TopK order — visit order cannot matter
        for (doc, dot) in acc {
            let dnorm = self.doc_norms[doc.index()];
            if dnorm > 0.0 {
                topk.offer(ScoredDoc {
                    doc,
                    score: dot / (qnorm * dnorm),
                });
            }
        }
        topk.into_sorted()
    }

    /// Forces the dense term-at-a-time kernel (test/bench hook: the
    /// dispatch in [`Self::cosine_topk`] is a heuristic, but both
    /// kernels must agree bitwise on every input).
    #[doc(hidden)]
    pub fn cosine_topk_dense_for_test(&self, query: &[TermId], k: usize) -> Vec<ScoredDoc> {
        if query.is_empty() || k == 0 {
            return Vec::new();
        }
        scratch::with_scratch(|s| {
            let qnorm = self.prepare_query(query, s);
            if mp_stats::float::exact_zero(qnorm) {
                return Vec::new();
            }
            self.topk_dense(qnorm, k, s);
            s.topk.drain_sorted()
        })
    }

    /// Forces the pruned max-score kernel (test/bench hook; see
    /// [`Self::cosine_topk_dense_for_test`]).
    #[doc(hidden)]
    pub fn cosine_topk_pruned_for_test(&self, query: &[TermId], k: usize) -> Vec<ScoredDoc> {
        if query.is_empty() || k == 0 {
            return Vec::new();
        }
        scratch::with_scratch(|s| {
            let qnorm = self.prepare_query(query, s);
            if mp_stats::float::exact_zero(qnorm) {
                return Vec::new();
            }
            self.topk_pruned(qnorm, k, s);
            s.topk.drain_sorted()
        })
    }

    /// The maximum query-document cosine similarity in the collection —
    /// the actual relevancy `r(db, q)` under the document-similarity
    /// definition ("relevancy of the most relevant document", Section
    /// 2.1). Zero when nothing matches.
    ///
    /// Fused allocation-free top-1 path: runs the pruned kernel (where
    /// `k = 1` makes the θ bar rise fastest) entirely inside the
    /// thread-local scratch and reads the single retained score without
    /// materializing a result vector.
    pub fn max_similarity(&self, query: &[TermId]) -> f64 {
        if query.is_empty() {
            return 0.0;
        }
        scratch::with_scratch(|s| {
            let qnorm = self.prepare_query(query, s);
            if mp_stats::float::exact_zero(qnorm) {
                return 0.0;
            }
            self.run_topk(qnorm, 1, s);
            // With k = 1 the threshold entry *is* the best hit.
            let best = s.topk.threshold().map(|x| x.score).unwrap_or(0.0);
            s.topk.reset(0);
            best
        })
    }

    /// Exports the `(term → df)` content summary used by summary-based
    /// estimators, together with the collection size. Served from the
    /// build-time cache — the postings are no longer rescanned per
    /// call, and the map contents (hence any JSON rendering of the
    /// summary) are identical to the historical scan.
    pub fn df_summary(&self) -> (HashMap<TermId, u32>, u32) {
        let map = self.derived().df_pairs.iter().copied().collect();
        (map, self.doc_count)
    }

    /// Number of distinct terms with non-empty postings (cached at
    /// build time).
    pub fn distinct_terms(&self) -> usize {
        self.derived().df_pairs.len()
    }

    /// Reconstructs a [`Document`] term bag from the forward index in
    /// `O(|doc|)` (used by probe responses that "download" top
    /// documents; historically this walked the entire vocabulary).
    pub fn reconstruct_doc(&self, doc: DocId) -> Document {
        let mut d = Document::new();
        if doc.index() >= self.doc_count as usize {
            return d;
        }
        let (terms, tfs) = self.derived().doc_run(doc.index());
        for (i, &t) in terms.iter().enumerate() {
            d.add_term(TermId(t), tfs[i]);
        }
        d
    }
}

// Manual serde impls: the derived structures must stay out of the wire
// format (the serialized JSON is byte-identical to the historical
// derive over the four data fields, in declaration order).
impl serde::Serialize for InvertedIndex {
    fn to_value(&self) -> serde::Value {
        serde::Value::Obj(vec![
            (
                String::from("postings"),
                serde::Serialize::to_value(&self.postings),
            ),
            (
                String::from("doc_lens"),
                serde::Serialize::to_value(&self.doc_lens),
            ),
            (
                String::from("doc_norms"),
                serde::Serialize::to_value(&self.doc_norms),
            ),
            (
                String::from("doc_count"),
                serde::Serialize::to_value(&self.doc_count),
            ),
        ])
    }
}

impl serde::Deserialize for InvertedIndex {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        fn field<'v>(v: &'v serde::Value, name: &str) -> Result<&'v serde::Value, serde::Error> {
            v.get(name).ok_or_else(|| serde::Error::missing_field(name))
        }
        if v.as_obj().is_none() {
            return Err(serde::Error::type_mismatch("object", v));
        }
        Ok(InvertedIndex {
            postings: serde::Deserialize::from_value(field(v, "postings")?)?,
            doc_lens: serde::Deserialize::from_value(field(v, "doc_lens")?)?,
            doc_norms: serde::Deserialize::from_value(field(v, "doc_norms")?)?,
            doc_count: serde::Deserialize::from_value(field(v, "doc_count")?)?,
            derived: OnceLock::new(),
        })
    }
}

enum MatchOutcome {
    Count(u32),
    Docs(Vec<DocId>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use proptest::prelude::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    /// Builds an index over documents given as term-id lists.
    fn index_of(docs: &[&[u32]]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for d in docs {
            b.add(Document::from_terms(d.iter().map(|&i| t(i))));
        }
        b.build()
    }

    #[test]
    fn df_counts_documents_not_occurrences() {
        let idx = index_of(&[&[1, 1, 1], &[1, 2], &[2]]);
        assert_eq!(idx.df(t(1)), 2);
        assert_eq!(idx.df(t(2)), 2);
        assert_eq!(idx.df(t(9)), 0);
    }

    #[test]
    fn count_matching_is_boolean_and() {
        let idx = index_of(&[&[1, 2], &[1], &[2], &[1, 2, 3]]);
        assert_eq!(idx.count_matching(&[t(1)]), 3);
        assert_eq!(idx.count_matching(&[t(1), t(2)]), 2);
        assert_eq!(idx.count_matching(&[t(1), t(2), t(3)]), 1);
        assert_eq!(idx.count_matching(&[t(4)]), 0);
        assert_eq!(idx.count_matching(&[]), 4);
    }

    #[test]
    fn duplicate_query_terms_are_deduplicated() {
        let idx = index_of(&[&[1], &[1, 2]]);
        assert_eq!(idx.count_matching(&[t(1), t(1)]), 2);
    }

    #[test]
    fn matching_docs_returns_ids() {
        let idx = index_of(&[&[1, 2], &[1], &[1, 2]]);
        let got = idx.matching_docs(&[t(1), t(2)]);
        assert_eq!(got, vec![DocId(0), DocId(2)]);
    }

    #[test]
    fn cosine_prefers_exhaustive_match() {
        // doc0 uses both query terms; doc1 only one.
        let idx = index_of(&[&[1, 2], &[1, 3], &[4]]);
        let hits = idx.cosine_topk(&[t(1), t(2)], 10);
        assert_eq!(hits[0].doc, DocId(0));
        assert!(hits[0].score > hits[1].score);
        // doc2 shares no term: not retrieved.
        assert!(hits.iter().all(|h| h.doc != DocId(2)));
    }

    #[test]
    fn cosine_identical_doc_scores_one() {
        let idx = index_of(&[&[1, 2, 3], &[4]]);
        let hits = idx.cosine_topk(&[t(1), t(2), t(3)], 1);
        assert!((hits[0].score - 1.0).abs() < 1e-9);
        assert!((idx.max_similarity(&[t(1), t(2), t(3)]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn max_similarity_zero_when_no_match() {
        let idx = index_of(&[&[1]]);
        assert_eq!(idx.max_similarity(&[t(7)]), 0.0);
    }

    #[test]
    fn max_similarity_matches_top1_of_topk() {
        let idx = index_of(&[&[1, 2, 5], &[1, 3], &[2, 2, 4], &[5]]);
        for q in [vec![1u32, 2], vec![2], vec![1, 2, 5, 5], vec![9]] {
            let query: Vec<TermId> = q.iter().map(|&i| t(i)).collect();
            let via_topk = idx
                .cosine_topk(&query, 1)
                .first()
                .map(|h| h.score)
                .unwrap_or(0.0);
            assert_eq!(idx.max_similarity(&query).to_bits(), via_topk.to_bits());
        }
    }

    #[test]
    fn df_summary_roundtrip() {
        let idx = index_of(&[&[1, 2], &[2]]);
        let (summary, n) = idx.df_summary();
        assert_eq!(n, 2);
        assert_eq!(summary.get(&t(1)), Some(&1));
        assert_eq!(summary.get(&t(2)), Some(&2));
        assert_eq!(summary.len(), 2);
    }

    #[test]
    fn reconstruct_doc_matches_input() {
        let idx = index_of(&[&[1, 1, 3], &[2]]);
        let d = idx.reconstruct_doc(DocId(0));
        assert_eq!(d.tf(t(1)), 2);
        assert_eq!(d.tf(t(3)), 1);
        assert_eq!(d.tf(t(2)), 0);
    }

    #[test]
    fn reconstruct_out_of_range_doc_is_empty() {
        let idx = index_of(&[&[1]]);
        assert!(idx.reconstruct_doc(DocId(5)).is_empty());
    }

    #[test]
    fn empty_collection() {
        let idx = index_of(&[]);
        assert_eq!(idx.doc_count(), 0);
        assert_eq!(idx.count_matching(&[t(1)]), 0);
        assert!(idx.cosine_topk(&[t(1)], 5).is_empty());
    }

    #[test]
    fn serialization_format_is_the_historical_four_fields() {
        let idx = index_of(&[&[1, 2], &[2]]);
        let json = serde_json::to_string(&idx).expect("index serializes to JSON");
        let v: serde::Value = serde_json::from_str(&json).expect("round-trips through JSON");
        let keys: Vec<&str> = v
            .as_obj()
            .expect("index serializes as an object")
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["postings", "doc_lens", "doc_norms", "doc_count"]);
        let back: InvertedIndex = serde_json::from_str(&json).expect("index deserializes");
        assert_eq!(back.doc_count(), 2);
        assert_eq!(back.distinct_terms(), 2);
        // Lazily-derived structures answer queries identically.
        let a = idx.cosine_topk(&[t(2)], 5);
        let b = back.cosine_topk(&[t(2)], 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.doc, y.doc);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    /// Naive oracle: scan every document.
    fn naive_count(docs: &[Vec<u32>], query: &[u32]) -> u32 {
        docs.iter()
            .filter(|d| query.iter().all(|q| d.contains(q)))
            .count() as u32
    }

    fn assert_bit_identical(a: &[ScoredDoc], b: &[ScoredDoc]) {
        assert_eq!(a.len(), b.len(), "result lengths differ");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.doc, y.doc);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_count_matching_matches_naive_scan(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u32..20, 0..15), 0..40),
            query in proptest::collection::vec(0u32..25, 0..4)
        ) {
            let refs: Vec<&[u32]> = docs.iter().map(Vec::as_slice).collect();
            let idx = index_of(&refs);
            let q: Vec<TermId> = query.iter().map(|&i| t(i)).collect();
            prop_assert_eq!(idx.count_matching(&q), naive_count(&docs, &query));
        }

        #[test]
        fn prop_cosine_scores_in_unit_interval(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u32..10, 1..10), 1..20),
            query in proptest::collection::vec(0u32..10, 1..4)
        ) {
            let refs: Vec<&[u32]> = docs.iter().map(Vec::as_slice).collect();
            let idx = index_of(&refs);
            let q: Vec<TermId> = query.iter().map(|&i| t(i)).collect();
            for hit in idx.cosine_topk(&q, 100) {
                prop_assert!(hit.score > 0.0 && hit.score <= 1.0 + 1e-9,
                    "score {}", hit.score);
            }
        }

        /// Regression: cosine scores are floating-point accumulations,
        /// and their summation order must not depend on hash-map
        /// iteration — repeated calls return *bit-identical* scores
        /// (two hash maps per call used to randomize the low bits).
        #[test]
        fn prop_cosine_topk_is_bit_stable_across_calls(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u32..10, 1..10), 1..20),
            query in proptest::collection::vec(0u32..10, 1..4)
        ) {
            let refs: Vec<&[u32]> = docs.iter().map(Vec::as_slice).collect();
            let idx = index_of(&refs);
            let q: Vec<TermId> = query.iter().map(|&i| t(i)).collect();
            let first = idx.cosine_topk(&q, 100);
            for _ in 0..3 {
                let again = idx.cosine_topk(&q, 100);
                assert_bit_identical(&first, &again);
            }
        }

        #[test]
        fn prop_topk_is_prefix_of_full_ranking(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u32..10, 1..10), 1..20),
            query in proptest::collection::vec(0u32..10, 1..3),
            k in 1usize..10
        ) {
            let refs: Vec<&[u32]> = docs.iter().map(Vec::as_slice).collect();
            let idx = index_of(&refs);
            let q: Vec<TermId> = query.iter().map(|&i| t(i)).collect();
            let full = idx.cosine_topk(&q, usize::MAX >> 1);
            let short = idx.cosine_topk(&q, k);
            prop_assert_eq!(&short[..], &full[..k.min(full.len())]);
        }
    }
}
