//! The inverted index: boolean matching, cosine retrieval, df summaries.

use crate::document::Document;
use crate::topk::TopK;
use crate::types::{DocId, Posting, ScoredDoc};
use mp_text::TermId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An immutable inverted index over a fixed document collection.
///
/// Construct via [`crate::IndexBuilder`]. Supports the two retrieval
/// operations a Hidden-Web interface offers in the paper, plus summary
/// export for the metasearcher.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvertedIndex {
    /// Postings per term id (dense over the shared vocabulary; terms
    /// absent from this database have empty lists).
    pub(crate) postings: Vec<Vec<Posting>>,
    /// Per-document lengths (total term occurrences).
    pub(crate) doc_lens: Vec<u32>,
    /// Per-document tf-idf vector norms, precomputed at build time.
    pub(crate) doc_norms: Vec<f64>,
    /// Number of documents.
    pub(crate) doc_count: u32,
}

impl InvertedIndex {
    /// Number of documents in the collection (`|db|` in the paper).
    pub fn doc_count(&self) -> u32 {
        self.doc_count
    }

    /// Document frequency of a term: the paper's `r(db, t)`, the
    /// "number of appearances" column of Figure 2.
    pub fn df(&self, term: TermId) -> u32 {
        self.postings
            .get(term.index())
            .map(|p| Self::posting_len(p))
            .unwrap_or(0)
    }

    /// A postings list's length as the df width (a list holds at most
    /// one posting per document, and document counts are `u32`).
    fn posting_len(p: &[Posting]) -> u32 {
        u32::try_from(p.len()).expect("postings hold at most doc_count (u32) entries")
    }

    /// Postings list for a term (empty slice if unseen).
    pub fn postings(&self, term: TermId) -> &[Posting] {
        self.postings
            .get(term.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Counts documents containing **all** query terms — the paper's
    /// "number of matching documents", i.e. the actual relevancy
    /// `r(db, q)` under the document-frequency-based definition.
    ///
    /// Duplicate query terms are deduplicated; an empty query matches
    /// every document (vacuous AND).
    pub fn count_matching(&self, query: &[TermId]) -> u32 {
        match self.matching_docs_impl(query, None) {
            MatchOutcome::Count(c) => c,
            MatchOutcome::Docs(_) => unreachable!("count mode returns Count"),
        }
    }

    /// Returns the ids of documents containing all query terms.
    pub fn matching_docs(&self, query: &[TermId]) -> Vec<DocId> {
        match self.matching_docs_impl(query, Some(usize::MAX)) {
            MatchOutcome::Docs(d) => d,
            MatchOutcome::Count(_) => unreachable!("collect mode returns Docs"),
        }
    }

    fn matching_docs_impl(&self, query: &[TermId], collect: Option<usize>) -> MatchOutcome {
        let mut terms: Vec<TermId> = query.to_vec();
        terms.sort_unstable();
        terms.dedup();
        if terms.is_empty() {
            return match collect {
                None => MatchOutcome::Count(self.doc_count),
                Some(limit) => {
                    // Saturate: `limit` is usually `usize::MAX` ("all").
                    let limit = u32::try_from(limit).unwrap_or(u32::MAX);
                    MatchOutcome::Docs((0..self.doc_count.min(limit)).map(DocId).collect())
                }
            };
        }
        // Intersect shortest-first: standard merge-intersection, linear
        // in the smallest postings list.
        let mut lists: Vec<&[Posting]> = terms.iter().map(|&t| self.postings(t)).collect();
        lists.sort_by_key(|l| l.len());
        if lists[0].is_empty() {
            return match collect {
                None => MatchOutcome::Count(0),
                Some(_) => MatchOutcome::Docs(Vec::new()),
            };
        }
        let mut current: Vec<DocId> = lists[0].iter().map(|p| p.doc).collect();
        for list in &lists[1..] {
            let mut next = Vec::with_capacity(current.len().min(list.len()));
            let (mut i, mut j) = (0usize, 0usize);
            while i < current.len() && j < list.len() {
                match current[i].cmp(&list[j].doc) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        next.push(current[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        match collect {
            None => MatchOutcome::Count(
                u32::try_from(current.len()).expect("matches are bounded by doc_count, a u32"),
            ),
            Some(limit) => {
                current.truncate(limit);
                MatchOutcome::Docs(current)
            }
        }
    }

    /// Inverse document frequency with add-one smoothing:
    /// `ln(1 + N / (1 + df))`. Strictly positive, finite for df = 0.
    pub fn idf(&self, term: TermId) -> f64 {
        (1.0 + self.doc_count as f64 / (1.0 + self.df(term) as f64)).ln()
    }

    /// Retrieves the `k` documents most cosine-similar to the query
    /// under tf-idf weighting — the paper's document-similarity
    /// relevancy surrogate (Section 2.1, citing \[22\]).
    ///
    /// Documents sharing *any* query term are scored (disjunctive
    /// scoring, as vector-space engines do).
    pub fn cosine_topk(&self, query: &[TermId], k: usize) -> Vec<ScoredDoc> {
        // Query term frequencies in *sorted* term order: the weighted
        // dot products below are floating-point accumulations, and
        // iterating a hash map here would make the summation order —
        // and therefore the low bits of every score — vary from call to
        // call. Sorted terms keep scores bit-identical across calls
        // (the workspace determinism contract; the serving layer's
        // equivalence tests compare results exactly).
        let mut terms: Vec<TermId> = query.to_vec();
        terms.sort_unstable();
        let mut qtf: Vec<(TermId, u32)> = Vec::new();
        for &t in &terms {
            match qtf.last_mut() {
                Some((last, tf)) if *last == t => *tf += 1,
                _ => qtf.push((t, 1)),
            }
        }
        if qtf.is_empty() || k == 0 {
            return Vec::new();
        }
        let mut qnorm2 = 0.0;
        let mut acc: HashMap<DocId, f64> = HashMap::new();
        for &(t, tfq) in &qtf {
            let idf = self.idf(t);
            let wq = tfq as f64 * idf;
            qnorm2 += wq * wq;
            for p in self.postings(t) {
                let wd = p.tf as f64 * idf;
                *acc.entry(p.doc).or_insert(0.0) += wq * wd;
            }
        }
        let qnorm = qnorm2.sqrt();
        if mp_stats::float::exact_zero(qnorm) {
            return Vec::new();
        }
        let mut topk = TopK::new(k);
        for (doc, dot) in acc {
            let dnorm = self.doc_norms[doc.index()];
            if dnorm > 0.0 {
                topk.offer(ScoredDoc {
                    doc,
                    score: dot / (qnorm * dnorm),
                });
            }
        }
        topk.into_sorted()
    }

    /// The maximum query-document cosine similarity in the collection —
    /// the actual relevancy `r(db, q)` under the document-similarity
    /// definition ("relevancy of the most relevant document", Section
    /// 2.1). Zero when nothing matches.
    pub fn max_similarity(&self, query: &[TermId]) -> f64 {
        self.cosine_topk(query, 1)
            .first()
            .map(|s| s.score)
            .unwrap_or(0.0)
    }

    /// Exports the `(term → df)` content summary used by summary-based
    /// estimators, together with the collection size.
    pub fn df_summary(&self) -> (HashMap<TermId, u32>, u32) {
        let mut map = HashMap::new();
        for (i, p) in self.postings.iter().enumerate() {
            if !p.is_empty() {
                map.insert(Self::term_at(i), Self::posting_len(p));
            }
        }
        (map, self.doc_count)
    }

    /// Number of distinct terms with non-empty postings.
    pub fn distinct_terms(&self) -> usize {
        self.postings.iter().filter(|p| !p.is_empty()).count()
    }

    /// Reconstructs a [`Document`] term bag from the index (used by
    /// probe responses that "download" top documents).
    pub fn reconstruct_doc(&self, doc: DocId) -> Document {
        let mut d = Document::new();
        for (i, postings) in self.postings.iter().enumerate() {
            if let Ok(pos) = postings.binary_search_by_key(&doc, |p| p.doc) {
                d.add_term(Self::term_at(i), postings[pos].tf);
            }
        }
        d
    }

    /// The dense postings slot `i` as a [`TermId`] (term ids are `u32`
    /// by design; the vocabulary is built with `u32` ids, so a slot
    /// index always fits).
    fn term_at(i: usize) -> TermId {
        TermId(u32::try_from(i).expect("term ids are u32 by vocabulary construction"))
    }
}

enum MatchOutcome {
    Count(u32),
    Docs(Vec<DocId>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use proptest::prelude::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    /// Builds an index over documents given as term-id lists.
    fn index_of(docs: &[&[u32]]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for d in docs {
            b.add(Document::from_terms(d.iter().map(|&i| t(i))));
        }
        b.build()
    }

    #[test]
    fn df_counts_documents_not_occurrences() {
        let idx = index_of(&[&[1, 1, 1], &[1, 2], &[2]]);
        assert_eq!(idx.df(t(1)), 2);
        assert_eq!(idx.df(t(2)), 2);
        assert_eq!(idx.df(t(9)), 0);
    }

    #[test]
    fn count_matching_is_boolean_and() {
        let idx = index_of(&[&[1, 2], &[1], &[2], &[1, 2, 3]]);
        assert_eq!(idx.count_matching(&[t(1)]), 3);
        assert_eq!(idx.count_matching(&[t(1), t(2)]), 2);
        assert_eq!(idx.count_matching(&[t(1), t(2), t(3)]), 1);
        assert_eq!(idx.count_matching(&[t(4)]), 0);
        assert_eq!(idx.count_matching(&[]), 4);
    }

    #[test]
    fn duplicate_query_terms_are_deduplicated() {
        let idx = index_of(&[&[1], &[1, 2]]);
        assert_eq!(idx.count_matching(&[t(1), t(1)]), 2);
    }

    #[test]
    fn matching_docs_returns_ids() {
        let idx = index_of(&[&[1, 2], &[1], &[1, 2]]);
        let got = idx.matching_docs(&[t(1), t(2)]);
        assert_eq!(got, vec![DocId(0), DocId(2)]);
    }

    #[test]
    fn cosine_prefers_exhaustive_match() {
        // doc0 uses both query terms; doc1 only one.
        let idx = index_of(&[&[1, 2], &[1, 3], &[4]]);
        let hits = idx.cosine_topk(&[t(1), t(2)], 10);
        assert_eq!(hits[0].doc, DocId(0));
        assert!(hits[0].score > hits[1].score);
        // doc2 shares no term: not retrieved.
        assert!(hits.iter().all(|h| h.doc != DocId(2)));
    }

    #[test]
    fn cosine_identical_doc_scores_one() {
        let idx = index_of(&[&[1, 2, 3], &[4]]);
        let hits = idx.cosine_topk(&[t(1), t(2), t(3)], 1);
        assert!((hits[0].score - 1.0).abs() < 1e-9);
        assert!((idx.max_similarity(&[t(1), t(2), t(3)]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn max_similarity_zero_when_no_match() {
        let idx = index_of(&[&[1]]);
        assert_eq!(idx.max_similarity(&[t(7)]), 0.0);
    }

    #[test]
    fn df_summary_roundtrip() {
        let idx = index_of(&[&[1, 2], &[2]]);
        let (summary, n) = idx.df_summary();
        assert_eq!(n, 2);
        assert_eq!(summary.get(&t(1)), Some(&1));
        assert_eq!(summary.get(&t(2)), Some(&2));
        assert_eq!(summary.len(), 2);
    }

    #[test]
    fn reconstruct_doc_matches_input() {
        let idx = index_of(&[&[1, 1, 3], &[2]]);
        let d = idx.reconstruct_doc(DocId(0));
        assert_eq!(d.tf(t(1)), 2);
        assert_eq!(d.tf(t(3)), 1);
        assert_eq!(d.tf(t(2)), 0);
    }

    #[test]
    fn empty_collection() {
        let idx = index_of(&[]);
        assert_eq!(idx.doc_count(), 0);
        assert_eq!(idx.count_matching(&[t(1)]), 0);
        assert!(idx.cosine_topk(&[t(1)], 5).is_empty());
    }

    /// Naive oracle: scan every document.
    fn naive_count(docs: &[Vec<u32>], query: &[u32]) -> u32 {
        docs.iter()
            .filter(|d| query.iter().all(|q| d.contains(q)))
            .count() as u32
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_count_matching_matches_naive_scan(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u32..20, 0..15), 0..40),
            query in proptest::collection::vec(0u32..25, 0..4)
        ) {
            let refs: Vec<&[u32]> = docs.iter().map(Vec::as_slice).collect();
            let idx = index_of(&refs);
            let q: Vec<TermId> = query.iter().map(|&i| t(i)).collect();
            prop_assert_eq!(idx.count_matching(&q), naive_count(&docs, &query));
        }

        #[test]
        fn prop_cosine_scores_in_unit_interval(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u32..10, 1..10), 1..20),
            query in proptest::collection::vec(0u32..10, 1..4)
        ) {
            let refs: Vec<&[u32]> = docs.iter().map(Vec::as_slice).collect();
            let idx = index_of(&refs);
            let q: Vec<TermId> = query.iter().map(|&i| t(i)).collect();
            for hit in idx.cosine_topk(&q, 100) {
                prop_assert!(hit.score > 0.0 && hit.score <= 1.0 + 1e-9,
                    "score {}", hit.score);
            }
        }

        /// Regression: cosine scores are floating-point accumulations,
        /// and their summation order must not depend on hash-map
        /// iteration — repeated calls return *bit-identical* scores
        /// (two hash maps per call used to randomize the low bits).
        #[test]
        fn prop_cosine_topk_is_bit_stable_across_calls(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u32..10, 1..10), 1..20),
            query in proptest::collection::vec(0u32..10, 1..4)
        ) {
            let refs: Vec<&[u32]> = docs.iter().map(Vec::as_slice).collect();
            let idx = index_of(&refs);
            let q: Vec<TermId> = query.iter().map(|&i| t(i)).collect();
            let first = idx.cosine_topk(&q, 100);
            for _ in 0..3 {
                let again = idx.cosine_topk(&q, 100);
                prop_assert_eq!(first.len(), again.len());
                for (a, b) in first.iter().zip(&again) {
                    prop_assert_eq!(a.doc, b.doc);
                    prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
                }
            }
        }

        #[test]
        fn prop_topk_is_prefix_of_full_ranking(
            docs in proptest::collection::vec(
                proptest::collection::vec(0u32..10, 1..10), 1..20),
            query in proptest::collection::vec(0u32..10, 1..3),
            k in 1usize..10
        ) {
            let refs: Vec<&[u32]> = docs.iter().map(Vec::as_slice).collect();
            let idx = index_of(&refs);
            let q: Vec<TermId> = query.iter().map(|&i| t(i)).collect();
            let full = idx.cosine_topk(&q, usize::MAX >> 1);
            let short = idx.cosine_topk(&q, k);
            prop_assert_eq!(&short[..], &full[..k.min(full.len())]);
        }
    }
}
