//! Core identifier and result types for the search engine.

use serde::{Deserialize, Serialize};

/// A document identifier, dense within one index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DocId(pub u32);

impl DocId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for DocId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// One postings-list entry: a document and the term's frequency in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Posting {
    /// The document containing the term.
    pub doc: DocId,
    /// Number of occurrences of the term in the document.
    pub tf: u32,
}

/// A retrieved document with its similarity score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoredDoc {
    /// The document.
    pub doc: DocId,
    /// Cosine similarity of the query and document tf-idf vectors.
    pub score: f64,
}

impl ScoredDoc {
    /// Ordering for result lists: score descending, then doc id ascending
    /// (a total, deterministic order — scores are finite by construction).
    pub fn ranking_cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .score
            .partial_cmp(&self.score)
            .expect("scores are finite")
            .then(self.doc.cmp(&other.doc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_order_is_score_desc_then_id_asc() {
        let mut v = [
            ScoredDoc {
                doc: DocId(2),
                score: 0.5,
            },
            ScoredDoc {
                doc: DocId(1),
                score: 0.9,
            },
            ScoredDoc {
                doc: DocId(0),
                score: 0.5,
            },
        ];
        v.sort_by(|a, b| a.ranking_cmp(b));
        assert_eq!(v.iter().map(|s| s.doc.0).collect::<Vec<_>>(), vec![1, 0, 2]);
    }

    #[test]
    fn display_forms() {
        assert_eq!(DocId(7).to_string(), "d7");
    }
}
