//! Equivalence pins for the rebuilt retrieval kernel.
//!
//! The production `cosine_topk` dispatches between a dense
//! term-at-a-time kernel and an exact max-score pruned kernel; both
//! must return results **bit-identical** to the retained naive
//! HashMap-accumulator reference (`cosine_topk_naive`) on every input —
//! same documents, same order, same score bit patterns. These tests are
//! the workspace determinism contract for the index layer.

use mp_index::types::{DocId, ScoredDoc};
use mp_index::{Document, IndexBuilder, InvertedIndex};
use mp_text::TermId;
use proptest::prelude::*;

fn t(i: u32) -> TermId {
    TermId(i)
}

fn index_of(docs: &[Vec<u32>]) -> InvertedIndex {
    let mut b = IndexBuilder::new();
    for d in docs {
        b.add(Document::from_terms(d.iter().map(|&i| t(i))));
    }
    b.build()
}

fn assert_bit_identical(label: &str, a: &[ScoredDoc], b: &[ScoredDoc]) {
    assert_eq!(a.len(), b.len(), "{label}: result lengths differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.doc, y.doc, "{label}: doc mismatch at rank {i}");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{label}: score bits differ at rank {i} ({} vs {})",
            x.score,
            y.score
        );
    }
}

/// Random collections over a small vocabulary (dense overlap), queries
/// with duplicate terms and out-of-vocabulary terms (ids ≥ 12 never
/// occur in documents), and the k regimes the issue calls out:
/// 0, 1, n (= doc count), and > n.
fn check_all_kernels(docs: &[Vec<u32>], query: &[u32]) {
    let idx = index_of(docs);
    let q: Vec<TermId> = query.iter().map(|&i| t(i)).collect();
    let n = docs.len();
    for k in [0usize, 1, 3, n, n + 7, usize::MAX >> 1] {
        let reference = idx.cosine_topk_naive(&q, k);
        assert_bit_identical(
            &format!("dispatch k={k}"),
            &idx.cosine_topk(&q, k),
            &reference,
        );
        assert_bit_identical(
            &format!("dense k={k}"),
            &idx.cosine_topk_dense_for_test(&q, k),
            &reference,
        );
        assert_bit_identical(
            &format!("pruned k={k}"),
            &idx.cosine_topk_pruned_for_test(&q, k),
            &reference,
        );
    }
    // The fused top-1 path agrees with the naive reference bitwise too.
    let best = idx
        .cosine_topk_naive(&q, 1)
        .first()
        .map(|h| h.score)
        .unwrap_or(0.0);
    assert_eq!(idx.max_similarity(&q).to_bits(), best.to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// New kernels (dispatched, forced-dense, forced-pruned) are all
    /// bit-identical to the naive reference across random indices,
    /// duplicate query terms, OOV terms, and all k regimes.
    #[test]
    fn prop_kernels_bit_identical_to_naive(
        docs in proptest::collection::vec(
            proptest::collection::vec(0u32..12, 1..12), 1..30),
        query in proptest::collection::vec(0u32..16, 1..6)
    ) {
        check_all_kernels(&docs, &query);
    }

    /// Skewed frequencies: one hot term everywhere plus rare terms, the
    /// regime where max-score pruning actually skips documents — the
    /// skips must not change the selected doc set or any score bit.
    #[test]
    fn prop_pruning_is_exact_under_skew(
        docs in proptest::collection::vec(
            proptest::collection::vec(0u32..4, 1..6), 4..40),
        rare in proptest::collection::vec(0usize..40, 0..5),
        k in 1usize..4
    ) {
        let mut docs = docs;
        let n = docs.len();
        for (j, &d) in rare.iter().enumerate() {
            docs[d % n].push(20 + j as u32); // rare, high-idf terms
        }
        let idx = index_of(&docs);
        let q: Vec<TermId> = (0..2).chain(20..25).map(t).collect();
        let reference = idx.cosine_topk_naive(&q, k);
        assert_bit_identical("pruned", &idx.cosine_topk_pruned_for_test(&q, k), &reference);
        assert_bit_identical("dispatch", &idx.cosine_topk(&q, k), &reference);
    }

    /// Forward-index round-trip: `reconstruct_doc` returns exactly the
    /// term bag the builder was fed.
    #[test]
    fn prop_forward_index_roundtrip(
        docs in proptest::collection::vec(
            proptest::collection::vec(0u32..50, 0..20), 0..20)
    ) {
        let idx = index_of(&docs);
        for (d, terms) in docs.iter().enumerate() {
            let rebuilt = idx.reconstruct_doc(DocId(d as u32));
            let mut expected = std::collections::HashMap::new();
            for &term in terms {
                *expected.entry(term).or_insert(0u32) += 1;
            }
            assert_eq!(rebuilt.terms().count(), expected.len(), "doc {d}");
            for (term, tf) in rebuilt.terms() {
                assert_eq!(Some(&tf), expected.get(&term.0), "doc {d} term {}", term.0);
            }
        }
    }
}

/// One thread's scratch serves differently-sized indices back to back:
/// the dense accumulator grows to the largest collection and is reused
/// (not reallocated) for every subsequent query, large or small.
#[test]
fn scratch_pool_reuse_across_differently_sized_indices() {
    std::thread::scope(|scope| {
        scope
            .spawn(|| {
                let small = index_of(&[vec![1, 2], vec![2, 3]]);
                let big = index_of(&(0..500).map(|i| vec![i % 7, i % 11]).collect::<Vec<_>>());
                let q = [t(1), t(2)];

                let s0 = mp_index::scratch::thread_scratch_stats();
                let _ = small.cosine_topk(&q, 5);
                let s1 = mp_index::scratch::thread_scratch_stats();
                assert!(s1.queries > s0.queries, "scratch pool not used");

                // Force the dense kernel (the pruned kernel never
                // touches the dense accumulator).
                let _ = big.cosine_topk_dense_for_test(&q, 5);
                let grown = mp_index::scratch::thread_scratch_stats().acc_len;
                assert_eq!(grown, 500, "accumulator sized to the big index");

                // Back to the small index, then the big one again: the
                // accumulator must never grow again.
                for _ in 0..3 {
                    let a = small.cosine_topk(&q, 5);
                    let b = small.cosine_topk_naive(&q, 5);
                    assert_eq!(a.len(), b.len());
                    let _ = big.cosine_topk(&q, 5);
                }
                let end = mp_index::scratch::thread_scratch_stats();
                assert_eq!(end.acc_len, 500);
                assert_eq!(
                    end.acc_grows,
                    mp_index::scratch::thread_scratch_stats().acc_grows,
                    "no further growth"
                );
            })
            .join()
            .expect("scratch reuse test thread must not panic");
    });
}

/// `warm` pre-sizes the accumulator so a worker's first query over the
/// largest mediated collection never grows mid-serve.
#[test]
fn warm_prevents_first_query_growth() {
    std::thread::scope(|scope| {
        scope
            .spawn(|| {
                mp_index::scratch::warm(1000);
                let grows_before = mp_index::scratch::thread_scratch_stats().acc_grows;
                let idx = index_of(&(0..800).map(|i| vec![i % 5]).collect::<Vec<_>>());
                let _ = idx.cosine_topk(&[t(0)], 3);
                let grows_after = mp_index::scratch::thread_scratch_stats().acc_grows;
                assert_eq!(grows_before, grows_after, "warm scratch must not regrow");
            })
            .join()
            .expect("warm test thread must not panic");
    });
}
