//! Batched ↔ per-query kernel exactness.
//!
//! The batched kernel's contract: for every query in a batch, the
//! returned ranking is **bit-identical** (documents, order, and every
//! score's bit pattern) to running [`InvertedIndex::cosine_topk`] on
//! that query alone — for any batch composition: disjoint term sets,
//! identical queries, partial overlap, singletons, zero-norm and empty
//! queries mixed in. The forced-shared hook additionally pins that the
//! shared traversal itself (not just the production grouping, which
//! routes singletons to the per-query path) agrees bitwise on every
//! partition.

use mp_index::{Document, IndexBuilder, InvertedIndex, ScoredDoc};
use mp_text::TermId;
use proptest::prelude::*;

fn index_of(docs: &[Vec<u32>]) -> InvertedIndex {
    let mut b = IndexBuilder::new();
    for d in docs {
        b.add(Document::from_terms(d.iter().map(|&i| TermId(i))));
    }
    b.build()
}

fn terms(raw: &[u32]) -> Vec<TermId> {
    raw.iter().map(|&i| TermId(i)).collect()
}

fn assert_bit_identical(a: &[ScoredDoc], b: &[ScoredDoc], ctx: &str) {
    assert_eq!(a.len(), b.len(), "result lengths differ: {ctx}");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.doc, y.doc, "doc diverged: {ctx}");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "score bits diverged: {ctx}"
        );
    }
}

fn check_batch(idx: &InvertedIndex, queries: &[Vec<TermId>], k: usize) {
    let refs: Vec<&[TermId]> = queries.iter().map(Vec::as_slice).collect();
    let batched = idx.cosine_topk_batch(&refs, k);
    assert_eq!(batched.len(), queries.len());
    for (i, q) in queries.iter().enumerate() {
        let solo = idx.cosine_topk(q, k);
        assert_bit_identical(&batched[i], &solo, &format!("query {i} (grouped), k={k}"));
    }
    // Same contract with grouping forced off: one shared traversal over
    // the entire batch, singletons included.
    let forced = idx.cosine_topk_batch_shared_for_test(&refs, k);
    for (i, q) in queries.iter().enumerate() {
        let solo = idx.cosine_topk(q, k);
        assert_bit_identical(
            &forced[i],
            &solo,
            &format!("query {i} (forced shared), k={k}"),
        );
    }
}

#[test]
fn identical_queries_share_everything() {
    let idx = index_of(&[vec![1, 2, 3], vec![1, 2], vec![2, 4], vec![5]]);
    let q = terms(&[1, 2]);
    check_batch(&idx, &vec![q; 6], 3);
}

#[test]
fn disjoint_queries_stay_exact() {
    let idx = index_of(&[vec![1, 2], vec![3, 4], vec![5, 6], vec![1, 6]]);
    let batch = vec![terms(&[1, 2]), terms(&[3, 4]), terms(&[5])];
    check_batch(&idx, &batch, 2);
}

#[test]
fn partial_overlap_chains_group_transitively() {
    let idx = index_of(&[vec![1, 2, 3, 4], vec![2, 3], vec![4, 5], vec![1, 5]]);
    // 0—1 share 2, 1—2 share 3, 3 disjoint from all.
    let batch = vec![terms(&[1, 2]), terms(&[2, 3]), terms(&[3, 4]), terms(&[9])];
    check_batch(&idx, &batch, 4);
}

#[test]
fn zero_norm_and_empty_queries_stay_empty() {
    let idx = index_of(&[vec![1, 2], vec![2]]);
    // Term 99 is unseen: its idf is positive, but no postings exist, so
    // the query still scores nothing; the empty query must stay empty.
    let batch = vec![terms(&[]), terms(&[99]), terms(&[1, 2]), terms(&[2, 99])];
    check_batch(&idx, &batch, 5);
    let refs: Vec<&[TermId]> = batch.iter().map(Vec::as_slice).collect();
    let out = idx.cosine_topk_batch(&refs, 5);
    assert!(out[0].is_empty());
    assert!(out[1].is_empty());
    assert!(!out[2].is_empty());
}

#[test]
fn k_zero_returns_all_empty() {
    let idx = index_of(&[vec![1], vec![1, 2]]);
    let batch = [terms(&[1]), terms(&[1, 2])];
    let refs: Vec<&[TermId]> = batch.iter().map(Vec::as_slice).collect();
    assert!(idx.cosine_topk_batch(&refs, 0).iter().all(Vec::is_empty));
}

#[test]
fn batch_leaves_scratch_reusable() {
    // Interleave batched and per-query calls on one thread: a batch
    // that failed to restore the all-zero accumulator invariant (or
    // clobbered the shared query tables) would corrupt later queries.
    let idx = index_of(&[vec![1, 2, 3], vec![2, 3], vec![3, 4], vec![1, 4]]);
    let a = terms(&[1, 2]);
    let b = terms(&[3, 4]);
    let solo_a = idx.cosine_topk(&a, 4);
    let solo_b = idx.cosine_topk(&b, 4);
    for _ in 0..3 {
        let refs: Vec<&[TermId]> = vec![&a, &b, &a];
        let batched = idx.cosine_topk_batch(&refs, 4);
        assert_bit_identical(&batched[0], &solo_a, "a after reuse");
        assert_bit_identical(&batched[1], &solo_b, "b after reuse");
        assert_bit_identical(&batched[2], &solo_a, "a repeat after reuse");
        assert_bit_identical(&idx.cosine_topk(&a, 4), &solo_a, "solo after batch");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random batches over random collections: every member bit-equal
    /// to its solo run, under both the production grouping and the
    /// forced single shared traversal.
    #[test]
    fn prop_batched_matches_per_query_bitwise(
        docs in proptest::collection::vec(
            proptest::collection::vec(0u32..12, 1..12), 1..25),
        queries in proptest::collection::vec(
            proptest::collection::vec(0u32..14, 0..5), 1..8),
        k in 1usize..8
    ) {
        let idx = index_of(&docs);
        let batch: Vec<Vec<TermId>> = queries.iter().map(|q| terms(q)).collect();
        check_batch(&idx, &batch, k);
    }

    /// Skew pattern: many copies of one hot query plus a few cold ones
    /// (the serve layer's target workload shape).
    #[test]
    fn prop_hot_key_batches_match(
        docs in proptest::collection::vec(
            proptest::collection::vec(0u32..10, 1..10), 1..20),
        hot in proptest::collection::vec(0u32..10, 1..4),
        cold in proptest::collection::vec(
            proptest::collection::vec(0u32..10, 1..4), 0..3),
        copies in 2usize..6,
        k in 1usize..5
    ) {
        let idx = index_of(&docs);
        let mut batch: Vec<Vec<TermId>> = vec![terms(&hot); copies];
        batch.extend(cold.iter().map(|q| terms(q)));
        check_batch(&idx, &batch, k);
    }
}
