//! RAII timing spans over a per-thread span stack.
//!
//! A [`SpanGuard`] pushes a frame onto its thread's stack on entry and,
//! on drop, folds the elapsed wall time into the global per-name
//! aggregate ([`crate::registry`]): hit count, total time, *self* time
//! (total minus time attributed to child spans opened inside it), and
//! the worst single occurrence. Parent→child name pairs are recorded so
//! the exporters can rebuild the call tree.
//!
//! Frames are strictly per-thread; spans never cross the `mp-core::par`
//! fan-out boundary (a worker thread starts with an empty stack, so its
//! spans become roots of their own subtree).

#[cfg(feature = "obs")]
use std::cell::RefCell;
#[cfg(feature = "obs")]
use std::time::Instant;

use std::marker::PhantomData;

#[cfg(feature = "obs")]
struct Frame {
    name: &'static str,
    stat: &'static crate::registry::SpanStat,
    start: Instant,
    /// Nanoseconds already attributed to completed child spans.
    child_ns: u64,
}

#[cfg(feature = "obs")]
thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// An open timing span; closes (and records) when dropped.
///
/// Created by [`crate::span!`]. Deliberately `!Send`: a guard must drop
/// on the thread that opened it, because the frame lives on that
/// thread's stack.
pub struct SpanGuard {
    /// A guard only pops what it pushed, so toggling [`crate::set_enabled`]
    /// while spans are open cannot unbalance the stack.
    #[cfg(feature = "obs")]
    active: bool,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Opens the span `name` on the current thread.
    ///
    /// When recording is off (feature or runtime switch) this returns an
    /// inert guard without touching the clock or the registry.
    #[cfg(feature = "obs")]
    pub fn enter(name: &'static str) -> Self {
        if !crate::is_enabled() {
            return Self {
                active: false,
                _not_send: PhantomData,
            };
        }
        let stat = crate::registry::span_stat(name);
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(parent) = stack.last() {
                crate::registry::record_edge(parent.name, name);
            }
            stack.push(Frame {
                name,
                stat,
                start: Instant::now(),
                child_ns: 0,
            });
        });
        Self {
            active: true,
            _not_send: PhantomData,
        }
    }

    /// Opens the span `name` — a no-op in this build.
    #[cfg(not(feature = "obs"))]
    #[inline]
    pub fn enter(_name: &'static str) -> Self {
        Self {
            _not_send: PhantomData,
        }
    }
}

#[cfg(feature = "obs")]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let closed = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Guards are scope-ordered on one thread, so the top of the
            // stack is necessarily this guard's frame.
            let frame = stack.pop()?;
            let elapsed = u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            frame
                .stat
                .record(elapsed, elapsed.saturating_sub(frame.child_ns));
            if let Some(parent) = stack.last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(elapsed);
            }
            Some((frame.name, frame.start, elapsed, stack.len()))
        });
        // Feed the active per-request trace (if any) outside the stack
        // borrow — the trace hook takes its own thread-local borrow.
        if let Some((name, start, elapsed, depth)) = closed {
            crate::trace::on_span_close(name, start, elapsed, depth);
        }
    }
}
