//! Per-request trace contexts: deterministic ids, waterfall events, and
//! the striped sink that collects finished traces.
//!
//! A [`TraceId`] is a plain session-monotonic sequence number allocated
//! by the *owner* of the request (the serve layer's stats core) — there
//! is no ambient clock, thread id, or randomness in the id itself, so a
//! replayed workload re-issues the same ids in the same order (mp-lint
//! L13 stays clean in every deterministic crate).
//!
//! A worker opens a [`TraceScope`] when it dequeues a request; while the
//! scope is active on that thread, every closing [`crate::SpanGuard`]
//! appends a [`TraceEvent`] to the request's waterfall (via
//! [`on_span_close`]), and instrumented call sites can attach
//! annotations ([`trace_annotate`]) or synthetic stages
//! ([`trace_stage`]) — queue wait, dedup joins, probe retries. The scope
//! is thread-local and `!Send`; work handed to the `mp-core::par`
//! fan-out threads is timed by the span registry as usual but does not
//! enter the waterfall (worker threads carry no active trace), which
//! keeps event order deterministic for a given schedule.
//!
//! Finished traces go into a [`TraceSink`]: a fixed set of
//! thread-local-keyed mutex shards (the `ProbeLog` idiom from
//! `mp-hidden`) merged and sorted by id at drain. A worker pushes into
//! *its own* shard, so concurrent workers never contend on a shared
//! lock — the cold serve path stays free of cross-worker locks (L9).

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

#[cfg(feature = "obs")]
use std::cell::RefCell;
use std::marker::PhantomData;

/// Hard cap on events per trace; later events are counted in
/// [`Trace::dropped`] instead of growing the waterfall without bound
/// (a pathological request could close thousands of spans).
pub const MAX_TRACE_EVENTS: usize = 512;

/// A session-monotonic request identifier.
///
/// Plain data: ordering, equality, and the wire value are all the inner
/// `u64`. Id 0 is conventionally "no trace"; allocators start at 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// What kind of waterfall entry a [`TraceEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A closed [`crate::SpanGuard`] (has a duration and a depth).
    Span,
    /// A synthetic stage injected via [`trace_stage`] — e.g. queue wait,
    /// which elapsed before any span could observe it.
    Stage,
    /// A point annotation via [`trace_annotate`] (carries a value).
    Note,
}

impl TraceEventKind {
    /// Stable lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceEventKind::Span => "span",
            TraceEventKind::Stage => "stage",
            TraceEventKind::Note => "note",
        }
    }
}

/// One waterfall entry: a span close, a synthetic stage, or a note.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (span name, stage name, or annotation key).
    pub name: &'static str,
    /// Which kind of entry this is.
    pub kind: TraceEventKind,
    /// Start offset from the request's origin instant, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds (0 for notes).
    pub dur_ns: u64,
    /// Annotation payload (0 for spans and stages).
    pub value: u64,
    /// Nesting depth at close for spans (0 for stages and notes).
    pub depth: u16,
}

/// A finished per-request waterfall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The request's id.
    pub id: TraceId,
    /// Wall nanoseconds from the request's origin to scope finish.
    pub total_ns: u64,
    /// Events that did not fit under [`MAX_TRACE_EVENTS`].
    pub dropped: u32,
    /// The waterfall, in recording order (span *closes*, so children
    /// precede their parents; offsets order the timeline).
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace for `id` — used for synthetic flights (e.g. a shed
    /// request that never reached a worker).
    pub fn new(id: TraceId) -> Self {
        Self {
            id,
            total_ns: 0,
            dropped: 0,
            events: Vec::new(),
        }
    }

    /// Appends a note event directly (no active scope required),
    /// respecting [`MAX_TRACE_EVENTS`].
    pub fn annotate(&mut self, name: &'static str, value: u64) {
        if self.events.len() >= MAX_TRACE_EVENTS {
            self.dropped = self.dropped.saturating_add(1);
            return;
        }
        self.events.push(TraceEvent {
            name,
            kind: TraceEventKind::Note,
            start_ns: 0,
            dur_ns: 0,
            value,
            depth: 0,
        });
    }

    /// Zeroes every timing field (`total_ns`, per-event `start_ns` /
    /// `dur_ns`) in place, leaving ids, names, kinds, values, and event
    /// order intact. With timings redacted, a trace is a pure function
    /// of the request schedule — the determinism tests compare redacted
    /// JSON byte-for-byte.
    pub fn redact_timings(&mut self) {
        self.total_ns = 0;
        for e in &mut self.events {
            e.start_ns = 0;
            e.dur_ns = 0;
        }
    }

    /// Whether any event carries `name`.
    pub fn has_event(&self, name: &str) -> bool {
        self.events.iter().any(|e| e.name == name)
    }

    /// First event named `name`, if any.
    pub fn find(&self, name: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.name == name)
    }

    /// Serializes to deterministic JSON (fixed key order; events in
    /// recording order).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        self.write_json(&mut s);
        s
    }

    pub(crate) fn write_json(&self, s: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            s,
            "{{\"id\":{},\"total_ns\":{},\"dropped\":{},\"events\":[",
            self.id.0, self.total_ns, self.dropped
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":");
            crate::export::json_str(s, e.name);
            let _ = write!(
                s,
                ",\"kind\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"value\":{},\"depth\":{}}}",
                e.kind.as_str(),
                e.start_ns,
                e.dur_ns,
                e.value,
                e.depth
            );
        }
        s.push_str("]}");
    }

    /// Renders the waterfall for terminals: one line per event,
    /// indented by span depth, with offsets and durations humanized.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace {} total={} events={}{}",
            self.id,
            crate::export::fmt_ns(self.total_ns),
            self.events.len(),
            if self.dropped > 0 {
                format!(" (+{} dropped)", self.dropped)
            } else {
                String::new()
            }
        );
        for e in &self.events {
            let indent = 2 + 2 * usize::from(e.depth);
            match e.kind {
                TraceEventKind::Note => {
                    let _ = writeln!(out, "{:indent$}• {} = {}", "", e.name, e.value);
                }
                _ => {
                    let _ = writeln!(
                        out,
                        "{:indent$}{} [{}] +{} for {}",
                        "",
                        e.name,
                        e.kind.as_str(),
                        crate::export::fmt_ns(e.start_ns),
                        crate::export::fmt_ns(e.dur_ns),
                    );
                }
            }
        }
        out
    }
}

// --- active-trace capture (feature `obs` compiled in) ----------------

#[cfg(feature = "obs")]
struct ActiveTrace {
    id: TraceId,
    /// The request's origin instant (typically submit time), so queue
    /// wait and span offsets share one timeline.
    origin: Instant,
    events: Vec<TraceEvent>,
    dropped: u32,
}

#[cfg(feature = "obs")]
impl ActiveTrace {
    fn push(&mut self, event: TraceEvent) {
        if self.events.len() >= MAX_TRACE_EVENTS {
            self.dropped = self.dropped.saturating_add(1);
        } else {
            self.events.push(event);
        }
    }
}

#[cfg(feature = "obs")]
thread_local! {
    /// The request currently being traced on this thread, if any.
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Marks the current thread as tracing one request; collects span
/// closes and annotations until [`finish`](TraceScope::finish).
///
/// `!Send` by construction (like [`crate::SpanGuard`]): the waterfall
/// buffer lives in this thread's local storage. At most one scope is
/// active per thread — a nested `begin` returns an inert scope, so the
/// outer request's waterfall is never corrupted.
pub struct TraceScope {
    #[cfg(feature = "obs")]
    active: bool,
    _not_send: PhantomData<*const ()>,
}

#[cfg(feature = "obs")]
impl TraceScope {
    /// Begins tracing `id` on the current thread. `origin` anchors the
    /// waterfall's timeline (pass the request's submit instant so queue
    /// wait is representable). Returns an inert scope when recording is
    /// disabled or another scope is already active on this thread.
    pub fn begin(id: TraceId, origin: Instant) -> Self {
        if !crate::is_enabled() {
            return Self {
                active: false,
                _not_send: PhantomData,
            };
        }
        let fresh = ACTIVE.with(|a| {
            let mut a = a.borrow_mut();
            if a.is_some() {
                return false;
            }
            *a = Some(ActiveTrace {
                id,
                origin,
                events: Vec::with_capacity(16),
                dropped: 0,
            });
            true
        });
        Self {
            active: fresh,
            _not_send: PhantomData,
        }
    }

    /// Ends the scope, returning the finished [`Trace`] — or `None` if
    /// the scope was inert (recording off, or nested under another).
    pub fn finish(mut self) -> Option<Trace> {
        if !self.active {
            return None;
        }
        self.active = false;
        ACTIVE.with(|a| a.borrow_mut().take()).map(|at| Trace {
            id: at.id,
            total_ns: elapsed_ns(at.origin),
            dropped: at.dropped,
            events: at.events,
        })
    }
}

#[cfg(feature = "obs")]
impl Drop for TraceScope {
    fn drop(&mut self) {
        // A scope abandoned without finish() (early return, panic
        // unwind) must not leak its buffer into the next request.
        if self.active {
            ACTIVE.with(|a| a.borrow_mut().take());
        }
    }
}

#[cfg(not(feature = "obs"))]
impl TraceScope {
    /// Begins tracing — inert in this build (feature `obs` off).
    #[inline]
    pub fn begin(_id: TraceId, _origin: Instant) -> Self {
        Self {
            _not_send: PhantomData,
        }
    }

    /// Ends the scope — always `None` in this build.
    #[inline]
    pub fn finish(self) -> Option<Trace> {
        None
    }
}

#[cfg(feature = "obs")]
fn elapsed_ns(origin: Instant) -> u64 {
    u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Attaches a point annotation to the thread's active trace, stamped at
/// the current offset. A no-op when no scope is active (so engine and
/// probe call sites can annotate unconditionally).
#[cfg(feature = "obs")]
pub fn trace_annotate(name: &'static str, value: u64) {
    ACTIVE.with(|a| {
        if let Some(at) = a.borrow_mut().as_mut() {
            let start_ns = elapsed_ns(at.origin);
            at.push(TraceEvent {
                name,
                kind: TraceEventKind::Note,
                start_ns,
                dur_ns: 0,
                value,
                depth: 0,
            });
        }
    });
}

/// Attaches a point annotation — a no-op in this build (feature off).
#[cfg(not(feature = "obs"))]
#[inline]
pub fn trace_annotate(_name: &'static str, _value: u64) {}

/// Injects a synthetic stage (e.g. queue wait, measured before the
/// worker ever saw the request) into the active trace.
#[cfg(feature = "obs")]
pub fn trace_stage(name: &'static str, start_ns: u64, dur_ns: u64) {
    ACTIVE.with(|a| {
        if let Some(at) = a.borrow_mut().as_mut() {
            at.push(TraceEvent {
                name,
                kind: TraceEventKind::Stage,
                start_ns,
                dur_ns,
                value: 0,
                depth: 0,
            });
        }
    });
}

/// Injects a synthetic stage — a no-op in this build (feature off).
#[cfg(not(feature = "obs"))]
#[inline]
pub fn trace_stage(_name: &'static str, _start_ns: u64, _dur_ns: u64) {}

/// The id of the trace active on this thread, if any. Histograms use
/// this for exemplar linkage: a bucket remembers the last traced
/// request that landed in it.
#[cfg(feature = "obs")]
pub fn current_trace_id() -> Option<TraceId> {
    ACTIVE.with(|a| a.borrow().as_ref().map(|at| at.id))
}

/// The active trace id — always `None` in this build (feature off).
#[cfg(not(feature = "obs"))]
#[inline]
pub fn current_trace_id() -> Option<TraceId> {
    None
}

/// Span-close hook, called by [`crate::SpanGuard`]'s drop *after* it
/// releases the span-stack borrow: folds the closed span into the
/// active trace's waterfall.
#[cfg(feature = "obs")]
pub(crate) fn on_span_close(name: &'static str, start: Instant, dur_ns: u64, depth: usize) {
    ACTIVE.with(|a| {
        if let Some(at) = a.borrow_mut().as_mut() {
            let start_ns = u64::try_from(start.saturating_duration_since(at.origin).as_nanos())
                .unwrap_or(u64::MAX);
            at.push(TraceEvent {
                name,
                kind: TraceEventKind::Span,
                start_ns,
                dur_ns,
                value: 0,
                depth: u16::try_from(depth).unwrap_or(u16::MAX),
            });
        }
    });
}

// --- the striped sink ------------------------------------------------

/// Number of sink shards; matches the stripe width used elsewhere.
const SINK_SHARDS: usize = 8;

/// Round-robin assignment of thread-local sink slots (same idiom as
/// [`crate::stripe`] and `mp-hidden`'s probe log).
static SINK_NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SINK_SLOT: usize = SINK_NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % SINK_SHARDS;
}

/// Collects finished traces into per-thread-keyed shards, merged and
/// sorted by id at [`drain`](TraceSink::drain).
///
/// Each worker thread pushes into its own shard, so concurrent pushes
/// never contend (the shard mutex is effectively thread-private on the
/// hot path; it exists so drain can safely read from another thread).
/// Shards are bounded: beyond `shard_cap` traces a push is counted in
/// `dropped()` instead of growing memory without bound.
#[derive(Debug)]
pub struct TraceSink {
    shards: Vec<Mutex<Vec<Trace>>>,
    shard_cap: usize,
    dropped: AtomicU64,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// Default per-shard capacity: generous for test workloads, bounded
    /// for long-running servers (drain regularly to keep everything).
    pub const DEFAULT_SHARD_CAP: usize = 4096;

    /// A sink with the default per-shard capacity.
    pub fn new() -> Self {
        Self::with_shard_cap(Self::DEFAULT_SHARD_CAP)
    }

    /// A sink whose shards each hold at most `shard_cap` traces.
    pub fn with_shard_cap(shard_cap: usize) -> Self {
        Self {
            shards: (0..SINK_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            shard_cap,
            dropped: AtomicU64::new(0),
        }
    }

    /// Pushes a finished trace into the calling thread's shard.
    pub fn push(&self, trace: Trace) {
        SINK_SLOT.with(|&slot| {
            let mut shard = self.shards[slot]
                .lock()
                .expect("mp-obs trace-sink shard mutex poisoned");
            if shard.len() >= self.shard_cap {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            } else {
                shard.push(trace);
            }
        });
    }

    /// Removes and returns every collected trace, merged across shards
    /// and sorted by [`TraceId`] — a deterministic order regardless of
    /// which worker served which request.
    pub fn drain(&self) -> Vec<Trace> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let mut shard = shard
                .lock()
                .expect("mp-obs trace-sink shard mutex poisoned");
            all.append(&mut shard);
        }
        all.sort_by_key(|t| t.id);
        all
    }

    /// Total traces currently buffered across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("mp-obs trace-sink shard mutex poisoned")
                    .len()
            })
            .sum()
    }

    /// Whether no traces are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Traces rejected because their shard was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_json_and_redaction() {
        let mut t = Trace::new(TraceId(7));
        t.total_ns = 1234;
        t.events.push(TraceEvent {
            name: "engine.scan",
            kind: TraceEventKind::Span,
            start_ns: 100,
            dur_ns: 50,
            value: 0,
            depth: 1,
        });
        t.annotate("probe.retry", 2);
        let full = t.to_json();
        assert!(full.contains("\"id\":7"));
        assert!(full.contains("\"start_ns\":100"));
        t.redact_timings();
        let redacted = t.to_json();
        assert!(redacted.contains("\"total_ns\":0"));
        assert!(!redacted.contains("\"start_ns\":100"));
        // Structure survives redaction.
        assert!(t.has_event("engine.scan"));
        assert_eq!(t.find("probe.retry").map(|e| e.value), Some(2));
    }

    #[test]
    fn annotate_respects_cap() {
        let mut t = Trace::new(TraceId(1));
        for _ in 0..(MAX_TRACE_EVENTS + 3) {
            t.annotate("note", 1);
        }
        assert_eq!(t.events.len(), MAX_TRACE_EVENTS);
        assert_eq!(t.dropped, 3);
    }

    #[test]
    fn sink_drain_sorts_by_id() {
        let sink = TraceSink::new();
        for id in [5u64, 1, 3, 2, 4] {
            sink.push(Trace::new(TraceId(id)));
        }
        assert_eq!(sink.len(), 5);
        let drained = sink.drain();
        let ids: Vec<u64> = drained.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn sink_shard_cap_drops() {
        let sink = TraceSink::with_shard_cap(2);
        for id in 0..5u64 {
            sink.push(Trace::new(TraceId(id)));
        }
        // All pushes from one thread land in one shard.
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn scope_collects_spans_and_notes() {
        crate::set_enabled(true);
        let scope = TraceScope::begin(TraceId(42), Instant::now());
        {
            let _outer = crate::span!("trace_test.outer");
            let _inner = crate::span!("trace_test.inner");
            trace_annotate("trace_test.note", 9);
        }
        trace_stage("trace_test.stage", 0, 10);
        let t = scope.finish().expect("scope was active");
        assert_eq!(t.id, TraceId(42));
        // Inner closes before outer; the note lands between them.
        let names: Vec<&str> = t.events.iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            vec![
                "trace_test.note",
                "trace_test.inner",
                "trace_test.outer",
                "trace_test.stage"
            ]
        );
        let inner = t.find("trace_test.inner").expect("inner recorded");
        assert_eq!(inner.kind, TraceEventKind::Span);
        assert_eq!(inner.depth, 1);
        let outer = t.find("trace_test.outer").expect("outer recorded");
        assert_eq!(outer.depth, 0);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn nested_scope_is_inert() {
        crate::set_enabled(true);
        let outer = TraceScope::begin(TraceId(1), Instant::now());
        let inner = TraceScope::begin(TraceId(2), Instant::now());
        assert!(inner.finish().is_none());
        // The outer scope is still live and keeps its id.
        assert_eq!(current_trace_id(), Some(TraceId(1)));
        let t = outer.finish().expect("outer still active");
        assert_eq!(t.id, TraceId(1));
        assert_eq!(current_trace_id(), None);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn dropped_scope_clears_thread_state() {
        crate::set_enabled(true);
        {
            let _scope = TraceScope::begin(TraceId(3), Instant::now());
            assert_eq!(current_trace_id(), Some(TraceId(3)));
        }
        assert_eq!(current_trace_id(), None);
    }
}
