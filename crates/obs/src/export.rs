//! Exporters over a [`Snapshot`]: stable JSON, a human span tree, and a
//! flame-style self-time table.
//!
//! All three are pure functions of the snapshot — no registry access,
//! no clocks — so they work identically in `--no-default-features`
//! builds (over the empty snapshot). JSON key order is fixed and every
//! row vector is pre-sorted by [`crate::snapshot`], making consecutive
//! exports of the same state byte-identical: the property the CI
//! artifact diffing and the snapshot-stability test rely on.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::registry::{Snapshot, SCHEMA};

impl Snapshot {
    /// Serializes to deterministic JSON (fixed key order, sorted rows).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\"schema\":");
        json_str(&mut s, SCHEMA);
        let _ = write!(s, ",\"enabled\":{}", self.enabled);
        s.push_str(",\"spans\":[");
        for (i, r) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":");
            json_str(&mut s, &r.name);
            let _ = write!(
                s,
                ",\"count\":{},\"total_ns\":{},\"self_ns\":{},\"max_ns\":{}}}",
                r.count, r.total_ns, r.self_ns, r.max_ns
            );
        }
        s.push_str("],\"counters\":[");
        for (i, r) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":");
            json_str(&mut s, &r.name);
            let _ = write!(s, ",\"value\":{}}}", r.value);
        }
        s.push_str("],\"gauges\":[");
        for (i, r) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":");
            json_str(&mut s, &r.name);
            let _ = write!(s, ",\"value\":{}}}", r.value);
        }
        s.push_str("],\"histograms\":[");
        for (i, r) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":");
            json_str(&mut s, &r.name);
            s.push_str(",\"bounds\":");
            json_u64s(&mut s, &r.bounds);
            s.push_str(",\"buckets\":");
            json_u64s(&mut s, &r.buckets);
            let _ = write!(
                s,
                ",\"count\":{},\"sum\":{},\"min\":{},\"max\":{}",
                r.count, r.sum, r.min, r.max
            );
            s.push_str(",\"exemplars\":");
            json_u64s(&mut s, &r.exemplars);
            s.push('}');
        }
        s.push_str("],\"windows\":[");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"name\":");
            json_str(&mut s, &w.name);
            let _ = write!(s, ",\"slots\":{},\"ticks\":{}", w.slots, w.ticks);
            s.push_str(",\"bounds\":");
            json_u64s(&mut s, &w.merged.bounds);
            s.push_str(",\"buckets\":");
            json_u64s(&mut s, &w.merged.buckets);
            let _ = write!(
                s,
                ",\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
                w.merged.count,
                w.merged.sum,
                w.merged.max,
                w.merged.approx_quantile(0.50),
                w.merged.approx_quantile(0.99)
            );
        }
        s.push_str("],\"edges\":[");
        for (i, (p, c)) in self.edges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('[');
            json_str(&mut s, p);
            s.push(',');
            json_str(&mut s, c);
            s.push(']');
        }
        s.push_str("]}");
        s
    }

    /// Renders the span call tree plus metric tables, for terminals.
    ///
    /// Roots are spans never observed as a child. A span reachable under
    /// several parents is printed under each; traversal is depth-capped
    /// so malformed edge sets cannot loop.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "mp-obs snapshot ({SCHEMA}, recording {})",
            if self.enabled { "on" } else { "off" }
        );
        let children: BTreeMap<&str, Vec<&str>> =
            self.edges.iter().fold(BTreeMap::new(), |mut m, (p, c)| {
                m.entry(p.as_str()).or_default().push(c.as_str());
                m
            });
        let as_child: BTreeSet<&str> = self.edges.iter().map(|(_, c)| c.as_str()).collect();
        if self.spans.is_empty() {
            out.push_str("  (no spans recorded)\n");
        } else {
            out.push_str("spans:\n");
            for r in &self.spans {
                if !as_child.contains(r.name.as_str()) {
                    self.tree_line(&mut out, &children, &r.name, 1, 8);
                }
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for r in &self.counters {
                let _ = writeln!(out, "  {:<40} {}", r.name, r.value);
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for r in &self.gauges {
                let _ = writeln!(out, "  {:<40} {}", r.name, r.value);
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for r in &self.histograms {
                let mean = if r.count == 0 {
                    0.0
                } else {
                    r.sum as f64 / r.count as f64
                };
                let _ = writeln!(
                    out,
                    "  {:<40} count={} min={} mean={:.1} max={} buckets={:?}",
                    r.name, r.count, r.min, mean, r.max, r.buckets
                );
            }
        }
        if !self.windows.is_empty() {
            out.push_str("windows:\n");
            for w in &self.windows {
                let _ = writeln!(
                    out,
                    "  {:<40} ticks={} count={} rolling p50={} p99={} max={}",
                    w.name,
                    w.ticks,
                    w.merged.count,
                    w.merged.approx_quantile(0.50),
                    w.merged.approx_quantile(0.99),
                    w.merged.max
                );
            }
        }
        out
    }

    fn tree_line(
        &self,
        out: &mut String,
        children: &BTreeMap<&str, Vec<&str>>,
        name: &str,
        depth: usize,
        max_depth: usize,
    ) {
        let Some(row) = self.spans.iter().find(|r| r.name == name) else {
            return;
        };
        let _ = writeln!(
            out,
            "{:indent$}{:<width$} count={:<7} total={:<11} self={:<11} max={}",
            "",
            row.name,
            row.count,
            fmt_ns(row.total_ns),
            fmt_ns(row.self_ns),
            fmt_ns(row.max_ns),
            indent = depth * 2,
            width = 40usize.saturating_sub(depth * 2),
        );
        if depth >= max_depth {
            return;
        }
        if let Some(kids) = children.get(name) {
            for kid in kids {
                self.tree_line(out, children, kid, depth + 1, max_depth);
            }
        }
    }

    /// Renders a flame-style table: spans sorted by self time, worst
    /// first, with each span's share of the summed self time.
    pub fn render_flame(&self) -> String {
        let mut rows: Vec<_> = self.spans.iter().collect();
        rows.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
        let grand: u64 = rows.iter().map(|r| r.self_ns).sum();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<40} {:>8} {:>12} {:>12} {:>7}",
            "span", "count", "self", "total", "self%"
        );
        for r in rows {
            let pct = if grand == 0 {
                0.0
            } else {
                100.0 * r.self_ns as f64 / grand as f64
            };
            let _ = writeln!(
                out,
                "{:<40} {:>8} {:>12} {:>12} {:>6.1}%",
                r.name,
                r.count,
                fmt_ns(r.self_ns),
                fmt_ns(r.total_ns),
                pct
            );
        }
        out
    }

    /// Returns the subset of `names` that either never registered or
    /// registered but closed zero times — the dead-instrumentation
    /// guard behind `repro --obs-verify`.
    pub fn missing_or_zero(&self, names: &[&str]) -> Vec<String> {
        names
            .iter()
            .filter(|&&want| !self.spans.iter().any(|r| r.name == want && r.count > 0))
            .map(|&s| s.to_string())
            .collect()
    }
}

/// Appends `v` as a JSON string literal (quotes, backslashes, and
/// control characters escaped — span names are ASCII identifiers, so
/// this short list is exhaustive in practice).
pub(crate) fn json_str(out: &mut String, v: &str) {
    out.push('"');
    for ch in v.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", u32::from(c));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn json_u64s(out: &mut String, vs: &[u64]) {
    out.push('[');
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

/// Formats nanoseconds with a human unit (ns/µs/ms/s).
pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}
