//! The flight recorder: a bounded ring of the worst request traces.
//!
//! A windowed p99 says the tail got fat; the flight recorder says
//! *which requests* made it fat. It keeps at most `cap` recorded
//! flights — full [`crate::Trace`] waterfalls tagged with why they were
//! kept ([`FlightReason`]): the K slowest completions, every
//! deadline-missed request, and every shed (admission-rejected)
//! request, subject to the ring bound.
//!
//! Admission when full: deadline-missed and shed flights are *forced*
//! — they evict the lowest-latency `Slow` flight (or, when no `Slow`
//! remains, the oldest forced flight). A `Slow` offer is admitted only
//! if it is slower than the current slowest-K floor. The floor is
//! mirrored into a relaxed atomic so non-qualifying offers (the common
//! case on the serve hot path once the ring warms up) return without
//! touching the mutex; the mutex itself is taken at most once per
//! *completed* request, never inside the engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::trace::{Trace, TraceId};

/// Why a flight was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightReason {
    /// Completed, but among the slowest seen.
    Slow,
    /// Missed its deadline (never computed).
    DeadlineMissed,
    /// Rejected at admission (queue full).
    Shed,
}

impl FlightReason {
    /// Stable lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightReason::Slow => "slow",
            FlightReason::DeadlineMissed => "deadline_missed",
            FlightReason::Shed => "shed",
        }
    }

    fn is_forced(self) -> bool {
        !matches!(self, FlightReason::Slow)
    }
}

/// One kept trace plus its admission context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedFlight {
    /// The request's waterfall.
    pub trace: Trace,
    /// End-to-end latency in microseconds (0 for shed flights).
    pub latency_us: u64,
    /// Why it was kept.
    pub reason: FlightReason,
    /// Admission order (monotone per recorder) — the eviction tiebreak.
    pub seq: u64,
}

/// A bounded ring of the worst request traces.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    /// Fast-path admission hint: the smallest `Slow` latency currently
    /// kept, valid only once the ring is full. Monotone while full
    /// (evictions only remove the minimum), so a stale read can only
    /// under-reject — it never loses a qualifying flight.
    slow_floor_us: AtomicU64,
    seq: AtomicU64,
    ring: Mutex<Vec<RecordedFlight>>,
}

impl FlightRecorder {
    /// A recorder keeping at most `cap` flights (0 disables recording).
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            slow_floor_us: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            ring: Mutex::new(Vec::new()),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Offers a finished trace. Forced reasons (deadline-missed, shed)
    /// are always admitted while capacity allows it; `Slow` offers are
    /// kept only while they rank among the slowest on record.
    pub fn offer(&self, trace: Trace, latency_us: u64, reason: FlightReason) {
        if self.cap == 0 {
            return;
        }
        if !reason.is_forced() && latency_us < self.slow_floor_us.load(Ordering::Relaxed) {
            return;
        }
        let mut ring = self
            .ring
            .lock()
            .expect("mp-obs flight-recorder mutex poisoned");
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        ring.push(RecordedFlight {
            trace,
            latency_us,
            reason,
            seq,
        });
        if ring.len() > self.cap {
            // Evict the least interesting flight: the lowest-latency
            // Slow one, else (all forced) the oldest.
            let victim = ring
                .iter()
                .enumerate()
                .filter(|(_, f)| f.reason == FlightReason::Slow)
                .min_by_key(|(_, f)| (f.latency_us, f.seq))
                .or_else(|| ring.iter().enumerate().min_by_key(|(_, f)| f.seq))
                .map(|(i, _)| i);
            if let Some(i) = victim {
                ring.swap_remove(i);
            }
        }
        if ring.len() >= self.cap {
            // Ring is full: refresh the admission floor. No Slow flight
            // left means nothing a Slow offer could evict — floor MAX.
            let floor = ring
                .iter()
                .filter(|f| f.reason == FlightReason::Slow)
                .map(|f| f.latency_us)
                .min()
                .unwrap_or(u64::MAX);
            self.slow_floor_us.store(floor, Ordering::Relaxed);
        }
    }

    /// Flights currently kept, in stable report order: forced flights
    /// first (deadline-missed, then shed), then `Slow` by descending
    /// latency; admission order breaks ties. Within one run of a
    /// deterministic workload the same flights come back in the same
    /// order.
    pub fn flights(&self) -> Vec<RecordedFlight> {
        let mut out = self
            .ring
            .lock()
            .expect("mp-obs flight-recorder mutex poisoned")
            .clone();
        out.sort_by(|a, b| {
            rank(a.reason)
                .cmp(&rank(b.reason))
                .then(b.latency_us.cmp(&a.latency_us))
                .then(a.seq.cmp(&b.seq))
        });
        out
    }

    /// Ids of every kept flight, in report order.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        self.flights().iter().map(|f| f.trace.id).collect()
    }

    /// Number of flights currently kept.
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .expect("mp-obs flight-recorder mutex poisoned")
            .len()
    }

    /// Whether no flights are kept.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards every kept flight and rewinds the admission floor.
    pub fn clear(&self) {
        self.ring
            .lock()
            .expect("mp-obs flight-recorder mutex poisoned")
            .clear();
        self.slow_floor_us.store(0, Ordering::Relaxed);
    }

    /// Serializes every kept flight (report order) as stable JSON under
    /// schema `mp-obs-trace/1`. Fixed key order; byte-identical for
    /// identical recorder contents.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(1024);
        s.push_str("{\"schema\":\"mp-obs-trace/1\",\"flights\":[");
        for (i, f) in self.flights().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"reason\":\"{}\",\"latency_us\":{},\"trace\":",
                f.reason.as_str(),
                f.latency_us
            );
            f.trace.write_json(&mut s);
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// Renders every kept flight for terminals: a header line per
    /// flight followed by its waterfall.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let flights = self.flights();
        let mut out = String::new();
        let _ = writeln!(out, "flight recorder: {} flight(s)", flights.len());
        for f in &flights {
            let _ = writeln!(
                out,
                "[{}] latency={}µs {}",
                f.reason.as_str(),
                f.latency_us,
                f.trace.id
            );
            out.push_str(&f.trace.render());
        }
        out
    }
}

fn rank(reason: FlightReason) -> u8 {
    match reason {
        FlightReason::DeadlineMissed => 0,
        FlightReason::Shed => 1,
        FlightReason::Slow => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flight(rec: &FlightRecorder, id: u64, latency_us: u64, reason: FlightReason) {
        rec.offer(Trace::new(TraceId(id)), latency_us, reason);
    }

    #[test]
    fn keeps_k_slowest() {
        let rec = FlightRecorder::new(3);
        for (id, lat) in [(1, 10), (2, 50), (3, 30), (4, 40), (5, 5), (6, 60)] {
            flight(&rec, id, lat, FlightReason::Slow);
        }
        let kept: Vec<u64> = rec.flights().iter().map(|f| f.latency_us).collect();
        assert_eq!(kept, vec![60, 50, 40]);
    }

    #[test]
    fn fast_path_floor_rejects_without_degrading() {
        let rec = FlightRecorder::new(2);
        flight(&rec, 1, 100, FlightReason::Slow);
        flight(&rec, 2, 200, FlightReason::Slow);
        // Floor is now 100; these never qualify.
        flight(&rec, 3, 10, FlightReason::Slow);
        flight(&rec, 4, 99, FlightReason::Slow);
        // But a slower one still gets in.
        flight(&rec, 5, 150, FlightReason::Slow);
        let kept: Vec<u64> = rec.flights().iter().map(|f| f.latency_us).collect();
        assert_eq!(kept, vec![200, 150]);
    }

    #[test]
    fn forced_reasons_evict_slow() {
        let rec = FlightRecorder::new(2);
        flight(&rec, 1, 100, FlightReason::Slow);
        flight(&rec, 2, 200, FlightReason::Slow);
        flight(&rec, 3, 0, FlightReason::DeadlineMissed);
        let flights = rec.flights();
        assert_eq!(flights.len(), 2);
        assert_eq!(flights[0].reason, FlightReason::DeadlineMissed);
        assert_eq!(flights[1].latency_us, 200);
        assert!(FlightReason::DeadlineMissed.is_forced());
        assert!(FlightReason::Shed.is_forced());
        assert!(!FlightReason::Slow.is_forced());
    }

    #[test]
    fn all_forced_evicts_oldest() {
        let rec = FlightRecorder::new(2);
        flight(&rec, 1, 0, FlightReason::Shed);
        flight(&rec, 2, 0, FlightReason::Shed);
        flight(&rec, 3, 0, FlightReason::DeadlineMissed);
        let ids: Vec<u64> = rec.flights().iter().map(|f| f.trace.id.0).collect();
        assert_eq!(ids, vec![3, 2]);
    }

    #[test]
    fn json_is_schema_tagged_and_stable() {
        let rec = FlightRecorder::new(4);
        flight(&rec, 7, 42, FlightReason::Slow);
        flight(&rec, 8, 0, FlightReason::Shed);
        let a = rec.to_json();
        let b = rec.to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema\":\"mp-obs-trace/1\""));
        assert!(a.contains("\"reason\":\"shed\""));
        assert!(a.contains("\"latency_us\":42"));
        assert!(rec.render().contains("flight recorder: 2 flight(s)"));
        assert_eq!(rec.trace_ids().len(), 2);
    }

    #[test]
    fn zero_cap_disables() {
        let rec = FlightRecorder::new(0);
        flight(&rec, 1, 100, FlightReason::DeadlineMissed);
        assert!(rec.is_empty());
        assert_eq!(rec.capacity(), 0);
    }

    #[test]
    fn clear_reopens_admission() {
        let rec = FlightRecorder::new(1);
        flight(&rec, 1, 100, FlightReason::Slow);
        flight(&rec, 2, 10, FlightReason::Slow); // below floor, rejected
        assert_eq!(rec.len(), 1);
        rec.clear();
        flight(&rec, 3, 10, FlightReason::Slow);
        assert_eq!(rec.trace_ids(), vec![TraceId(3)]);
    }
}
