//! A cacheline-striped `u64` accumulator.
//!
//! A single relaxed `AtomicU64` is already lock-free, but when every
//! worker increments the *same* counter the cacheline ping-pongs between
//! cores and the increment serializes at the coherence level. A
//! [`StripedU64`] splits the value across [`STRIPES`] cacheline-aligned
//! cells; each thread picks one cell (round-robin by a thread-local
//! slot) and increments only it, so concurrent writers touch disjoint
//! lines. Reads sum the cells — monotone and exact once writers quiesce,
//! like any relaxed counter.
//!
//! This module is **not** gated on the `obs` feature: the serve layer's
//! hit/miss statistics are functional output, not optional telemetry,
//! and use the stripe directly. The feature-gated [`crate::Counter`]
//! builds on it when `obs` is compiled in.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of cells in a [`StripedU64`]. Eight covers the worker counts
/// the serve pool runs at while keeping `get()` (an 8-load sum) cheap.
pub const STRIPES: usize = 8;

/// One cacheline-aligned counter cell, padded so neighbouring cells
/// never share a line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Cell(AtomicU64);

/// Round-robin assignment of thread-local stripe slots, shared by every
/// `StripedU64` (a thread uses the same cell index in all of them).
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

/// A monotone `u64` split across cacheline-aligned per-thread cells.
#[derive(Debug, Default)]
pub struct StripedU64 {
    cells: [Cell; STRIPES],
}

impl StripedU64 {
    /// A zeroed stripe.
    pub const fn new() -> Self {
        Self {
            cells: [const { Cell(AtomicU64::new(0)) }; STRIPES],
        }
    }

    /// Adds `n` to this thread's cell (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        SLOT.with(|&slot| self.cells[slot].0.fetch_add(n, Ordering::Relaxed));
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Sum of all cells. Exact once concurrent writers quiesce; during
    /// concurrent writes it is a valid linearization point per cell,
    /// like reading any relaxed counter.
    pub fn get(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    /// Zeroes every cell (between measurement windows; not atomic with
    /// respect to concurrent writers).
    pub fn reset(&self) {
        for c in &self.cells {
            c.0.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_across_threads() {
        let s = StripedU64::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = &s;
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        s.incr();
                    }
                });
            }
        });
        assert_eq!(s.get(), 80_000);
    }

    #[test]
    fn add_and_reset() {
        let s = StripedU64::new();
        s.add(41);
        s.incr();
        assert_eq!(s.get(), 42);
        s.reset();
        assert_eq!(s.get(), 0);
    }

    #[test]
    fn cells_do_not_share_cachelines() {
        assert!(std::mem::align_of::<StripedU64>() >= 64);
        assert!(std::mem::size_of::<StripedU64>() >= 64 * STRIPES);
    }
}
