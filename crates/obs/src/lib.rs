//! # mp-obs — zero-dependency tracing + metrics for the APro pipeline
//!
//! The adaptive-probing loop is an iterative decision process — probe,
//! update the RDs, recompute `E[Cor(DBk)]`, stop when confident — and
//! production work on it needs to know *where* time and probes go per
//! query, per query type, and per stopping condition. This crate is the
//! workspace's single observability substrate:
//!
//! * **Spans** ([`span!`], [`SpanGuard`]) — nestable RAII timing scopes
//!   keyed by `&'static str`, recorded per thread (a thread-local span
//!   stack) into a lock-sharded global registry with monotonic
//!   ([`std::time::Instant`]) clocks. Each span aggregates hit count,
//!   total wall time, *self* time (total minus time spent in child
//!   spans), and the worst single occurrence.
//! * **Metrics** ([`counter!`], [`gauge!`], [`histogram!`]) — counters,
//!   gauges, and fixed-bucket histograms whose hot-path recording is a
//!   single relaxed atomic RMW; registry lookups happen once per call
//!   site (the macros cache the resolved handle in a `static`).
//! * **Exporters** — a human-readable span tree
//!   ([`Snapshot::render_tree`]), a flame-style self/total breakdown
//!   ([`Snapshot::render_flame`]), and a stable, sorted JSON snapshot
//!   ([`Snapshot::to_json`], schema `mp-obs/2`) suitable for machine
//!   diffing and CI artifacts (`repro_output/obs_*.json`).
//! * **Per-request traces** (v2) — a [`TraceScope`] on the serving
//!   thread collects every span close plus explicit annotations
//!   ([`trace_annotate`], [`trace_stage`]) into a per-request
//!   waterfall keyed by a deterministic [`TraceId`]; finished traces
//!   drain through a striped [`TraceSink`] and the worst ones (slow /
//!   deadline-missed / shed) persist in a bounded [`FlightRecorder`].
//! * **Windowed metrics** (v2) — [`window!`] / [`WindowWheel`], a
//!   fixed-slot ring of histogram deltas giving rolling p50/p99/max
//!   over the last N ticks with an O(buckets) merge; cumulative
//!   histogram buckets additionally carry the [`TraceId`] of their
//!   latest traced occupant (exemplar linkage).
//!
//! ## Switching it off
//!
//! Two independent kill switches:
//!
//! * **Compile time** — building with `--no-default-features` (feature
//!   `obs` off) turns every entry point into an inlineable empty
//!   function with the identical signature. No registry, no atomics, no
//!   `Instant` reads; the bit-identical parallel fan-out of
//!   `mp-core::par` is unperturbed by construction.
//! * **Run time** — `MP_OBS=0` (also `false`/`off`/`no`) in the
//!   environment, or [`set_enabled`]`(false)` from code, stops all
//!   recording behind one cached relaxed [`AtomicBool`] load. Used by
//!   the `apro_scaling` bench to measure the instrumentation overhead
//!   head-to-head in one process.
//!
//! Neither switch changes any engine *result*: observability only ever
//! reads clocks and bumps atomics; it never participates in a numeric
//! reduction (enforced in spirit by mp-lint L8, which keeps ad-hoc
//! `println!` diagnostics out of library crates).
//!
//! ## Span taxonomy
//!
//! Names are dot-separated, `subsystem.verb`-shaped, and documented in
//! DESIGN.md §9 — e.g. `engine.usefulness_all` / `engine.base_dp` /
//! `engine.scan`, `selection.best_set`, `apro.run`, `hidden.search`,
//! `index.build`, `eval.testbed.build`. The repro binary's
//! `--obs-verify` flag fails CI when a registered hot-path span records
//! zero hits (dead instrumentation).
//!
//! ```
//! let snapshot = {
//!     let _outer = mp_obs::span!("doc.outer");
//!     let _inner = mp_obs::span!("doc.inner");
//!     mp_obs::counter!("doc.events").incr();
//!     mp_obs::histogram!("doc.sizes", &[1, 8, 64]).record(5);
//!     mp_obs::snapshot()
//! };
//! // With the default `obs` feature the rows are there; without it the
//! // same code compiles and the snapshot is empty.
//! if mp_obs::is_enabled() {
//!     assert_eq!(snapshot.counters[0].value, 1);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod metrics;
mod recorder;
mod registry;
mod span;
mod stripe;
mod trace;
mod window;

pub use metrics::{counter, gauge, histogram, Counter, Gauge, Histogram};
pub use recorder::{FlightReason, FlightRecorder, RecordedFlight};
pub use registry::{
    reset, snapshot, CounterRow, GaugeRow, HistogramRow, Snapshot, SpanRow, WindowRow, SCHEMA,
};
pub use span::SpanGuard;
pub use stripe::{StripedU64, STRIPES};
pub use trace::{
    current_trace_id, trace_annotate, trace_stage, Trace, TraceEvent, TraceEventKind, TraceId,
    TraceScope, TraceSink, MAX_TRACE_EVENTS,
};
pub use window::{window, WindowWheel};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Convenient fixed bucket boundaries for common histogram shapes.
pub mod bounds {
    /// Powers of two up to 4096 — support sizes, chunk sizes, counts.
    pub const POW2: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];
    /// Small linear scale 0–16 — probes per query, retries, iterations.
    pub const SMALL: &[u64] = &[0, 1, 2, 3, 4, 6, 8, 12, 16];
    /// Request latencies in microseconds, 50 µs – 5 s: roughly
    /// geometric (×2–2.5 per step) so both a cache hit and a slow
    /// multi-probe search land in an informative bucket. Used by the
    /// serving layer (`serve.latency_us`) and its p50/p99 readouts.
    pub const LATENCY_US: &[u64] = &[
        50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
        1_000_000, 2_500_000, 5_000_000,
    ];
}

/// The process-wide runtime switch, seeded from `MP_OBS` on first use.
fn flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let on = match std::env::var("MP_OBS") {
            Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no"),
            Err(_) => true,
        };
        AtomicBool::new(on)
    })
}

/// Whether recording is active: the `obs` feature is compiled in *and*
/// the runtime switch (`MP_OBS`, [`set_enabled`]) is on.
#[cfg(feature = "obs")]
#[inline]
pub fn is_enabled() -> bool {
    flag().load(Ordering::Relaxed)
}

/// Whether recording is active — always `false` in `--no-default-features`
/// builds (the `obs` feature is compiled out).
#[cfg(not(feature = "obs"))]
#[inline]
pub fn is_enabled() -> bool {
    false
}

/// Flips the runtime recording switch. Overrides the `MP_OBS`
/// environment seed; a no-op (beyond the stored bit) when the `obs`
/// feature is compiled out. Spans that are open across a flip stay
/// internally balanced: a guard only pops what it pushed.
pub fn set_enabled(on: bool) {
    flag().store(on, Ordering::Relaxed);
}

/// Opens a timing span for the rest of the enclosing scope.
///
/// Expands to an RAII [`SpanGuard`]; bind it (`let _span = …`) or it
/// closes immediately. The name must be `&'static str` — span identity
/// is the name, and equal names aggregate into one row.
///
/// ```
/// fn select_step() {
///     let _span = mp_obs::span!("engine.usefulness_all");
///     // … hot work …
/// }
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

/// Resolves a [`Counter`] handle once per call site and returns it.
///
/// The registry lookup (a sharded lock) runs only on the first hit of
/// each call site; afterwards the expansion is one `OnceLock` read and
/// the recording itself one relaxed `fetch_add`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::counter($name))
    }};
}

/// Resolves a [`Gauge`] handle once per call site and returns it.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::gauge($name))
    }};
}

/// Resolves a fixed-bucket [`Histogram`] handle once per call site.
///
/// `$bounds` must be a `&'static [u64]` of strictly increasing upper
/// bucket bounds (see [`bounds`] for common shapes); an extra overflow
/// bucket is added automatically. The first registration of a name
/// fixes its bounds.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $bounds:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::histogram($name, $bounds))
    }};
}

/// Resolves a fixed-slot rolling [`WindowWheel`] handle once per call
/// site.
///
/// `$bounds` follows [`histogram!`]; `$slots` is the number of ticks of
/// history kept. The first registration of a name fixes both.
#[macro_export]
macro_rules! window {
    ($name:expr, $bounds:expr, $slots:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::WindowWheel> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::window($name, $bounds, $slots))
    }};
}
