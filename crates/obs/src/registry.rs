//! The lock-sharded global registry behind spans and metrics.
//!
//! Handles are interned once per *name* and leaked (`Box::leak`) so the
//! hot path holds `&'static` references and never re-locks; the shard
//! mutexes are touched only on first registration of a name and when a
//! snapshot walks the tables. Sixteen shards keyed by FNV-1a of the
//! name keep first-registration contention negligible even under the
//! `mp-core::par` fan-out.
//!
//! [`reset`] zeroes every value in place — registered handles (and the
//! `OnceLock` caches in the recording macros) stay valid across resets,
//! which is what lets the `apro_scaling` bench interleave measured
//! windows in one process.

#[cfg(feature = "obs")]
use std::collections::{BTreeSet, HashMap};
#[cfg(feature = "obs")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "obs")]
use std::sync::{Mutex, OnceLock};

#[cfg(feature = "obs")]
use crate::metrics::{Counter, Gauge, Histogram};

/// Snapshot schema identifier, bumped on any breaking field change.
/// v2 adds per-histogram `exemplars` and the `windows` section.
pub const SCHEMA: &str = "mp-obs/2";

/// Per-span aggregate, updated on every span close.
#[cfg(feature = "obs")]
#[derive(Debug, Default)]
pub(crate) struct SpanStat {
    count: AtomicU64,
    total_ns: AtomicU64,
    self_ns: AtomicU64,
    max_ns: AtomicU64,
}

#[cfg(feature = "obs")]
impl SpanStat {
    pub(crate) fn record(&self, total_ns: u64, self_ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(total_ns, Ordering::Relaxed);
        self.self_ns.fetch_add(self_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(total_ns, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.self_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(feature = "obs")]
const SHARDS: usize = 16;

/// A name-keyed intern table: 16 mutex-guarded maps to leaked handles.
#[cfg(feature = "obs")]
struct Sharded<T: 'static> {
    shards: [Mutex<HashMap<&'static str, &'static T>>; SHARDS],
}

#[cfg(feature = "obs")]
impl<T: 'static> Sharded<T> {
    fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<HashMap<&'static str, &'static T>> {
        // FNV-1a over the name bytes; stable and dependency-free.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let idx = usize::try_from(h % (SHARDS as u64)).unwrap_or(0);
        &self.shards[idx]
    }

    fn get_or_insert(&self, name: &'static str, init: impl FnOnce() -> T) -> &'static T {
        let mut map = self
            .shard(name)
            .lock()
            .expect("mp-obs registry shard mutex poisoned");
        map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(init())))
    }

    /// Visits every registered entry, in unspecified order.
    fn for_each(&self, mut f: impl FnMut(&'static str, &'static T)) {
        for shard in &self.shards {
            let map = shard.lock().expect("mp-obs registry shard mutex poisoned");
            for (&name, &v) in map.iter() {
                f(name, v);
            }
        }
    }
}

#[cfg(feature = "obs")]
fn spans() -> &'static Sharded<SpanStat> {
    static S: OnceLock<Sharded<SpanStat>> = OnceLock::new();
    S.get_or_init(Sharded::new)
}

#[cfg(feature = "obs")]
fn counters() -> &'static Sharded<Counter> {
    static S: OnceLock<Sharded<Counter>> = OnceLock::new();
    S.get_or_init(Sharded::new)
}

#[cfg(feature = "obs")]
fn gauges() -> &'static Sharded<Gauge> {
    static S: OnceLock<Sharded<Gauge>> = OnceLock::new();
    S.get_or_init(Sharded::new)
}

#[cfg(feature = "obs")]
fn histograms() -> &'static Sharded<Histogram> {
    static S: OnceLock<Sharded<Histogram>> = OnceLock::new();
    S.get_or_init(Sharded::new)
}

#[cfg(feature = "obs")]
fn windows() -> &'static Sharded<crate::window::WindowWheel> {
    static S: OnceLock<Sharded<crate::window::WindowWheel>> = OnceLock::new();
    S.get_or_init(Sharded::new)
}

/// Observed parent→child span pairs, for tree reconstruction.
#[cfg(feature = "obs")]
fn edges() -> &'static Mutex<BTreeSet<(&'static str, &'static str)>> {
    static E: OnceLock<Mutex<BTreeSet<(&'static str, &'static str)>>> = OnceLock::new();
    E.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Monotone generation for the edge set, bumped by [`reset`] so the
/// per-thread seen-edge caches know to forget what they've reported.
#[cfg(feature = "obs")]
static EDGE_GEN: AtomicU64 = AtomicU64::new(0);

#[cfg(feature = "obs")]
thread_local! {
    /// Edges this thread already pushed into the global set (tagged with
    /// the generation they were pushed under). A span open consults this
    /// cache first, so the edge-set mutex is taken once per distinct
    /// parent→child pair per thread, not once per span open — the edge
    /// set is tiny and static after warm-up, while span opens are the
    /// serving hot path.
    static SEEN_EDGES: std::cell::RefCell<(u64, BTreeSet<(&'static str, &'static str)>)> =
        const { std::cell::RefCell::new((0, BTreeSet::new())) };
}

#[cfg(feature = "obs")]
pub(crate) fn span_stat(name: &'static str) -> &'static SpanStat {
    spans().get_or_insert(name, SpanStat::default)
}

#[cfg(feature = "obs")]
pub(crate) fn record_edge(parent: &'static str, child: &'static str) {
    // A generation observed here happens-after the edge-set clear it
    // numbers, so a stale thread cache can never resurrect pre-reset
    // edges: pairs with the Release bump in reset().
    let gen = EDGE_GEN.load(Ordering::Acquire);
    let fresh = SEEN_EDGES.with(|seen| {
        let mut seen = seen.borrow_mut();
        if seen.0 != gen {
            seen.0 = gen;
            seen.1.clear();
        }
        seen.1.insert((parent, child))
    });
    if fresh {
        let mut set = edges().lock().expect("mp-obs edge-set mutex poisoned");
        set.insert((parent, child));
    }
}

#[cfg(feature = "obs")]
pub(crate) fn counter(name: &'static str) -> &'static Counter {
    counters().get_or_insert(name, Counter::new)
}

#[cfg(feature = "obs")]
pub(crate) fn gauge(name: &'static str) -> &'static Gauge {
    gauges().get_or_insert(name, Gauge::new)
}

#[cfg(feature = "obs")]
pub(crate) fn histogram(name: &'static str, bounds: &'static [u64]) -> &'static Histogram {
    let h = histograms().get_or_insert(name, || Histogram::new(bounds));
    debug_assert!(
        h.bounds() == bounds,
        "histogram `{name}` registered twice with different bounds"
    );
    h
}

#[cfg(feature = "obs")]
pub(crate) fn window(
    name: &'static str,
    bounds: &'static [u64],
    slots: usize,
) -> &'static crate::window::WindowWheel {
    let w = windows().get_or_insert(name, || crate::window::WindowWheel::new(bounds, slots));
    debug_assert!(
        w.bounds() == bounds && w.slot_count() == slots.max(1),
        "window `{name}` registered twice with different bounds or slot count"
    );
    w
}

// --- snapshot rows (present in both builds) --------------------------

/// One span's aggregate in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRow {
    /// Span name (`subsystem.verb`).
    pub name: String,
    /// Number of closed occurrences.
    pub count: u64,
    /// Total wall nanoseconds across occurrences.
    pub total_ns: u64,
    /// Total minus time attributed to child spans.
    pub self_ns: u64,
    /// Worst single occurrence, nanoseconds.
    pub max_ns: u64,
}

/// One counter's value in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRow {
    /// Counter name.
    pub name: String,
    /// Accumulated count.
    pub value: u64,
}

/// One gauge's level in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeRow {
    /// Gauge name.
    pub name: String,
    /// Last recorded level.
    pub value: i64,
}

/// One histogram's state in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramRow {
    /// Histogram name.
    pub name: String,
    /// Upper bucket bounds (exclusive of the trailing overflow bucket).
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `bounds.len() + 1` entries.
    pub buckets: Vec<u64>,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Exemplar linkage: per bucket, the [`crate::TraceId`] value of
    /// the latest *traced* request that landed in it (0 = none).
    /// Either empty (no exemplars recorded — e.g. window-merged rows)
    /// or `buckets.len()` entries.
    pub exemplars: Vec<u64>,
}

impl HistogramRow {
    /// An upper bound on the `q`-quantile of the recorded values, read
    /// off the bucket counts: the bound of the first bucket where the
    /// cumulative count reaches `q · count` (the overflow bucket
    /// reports [`max`](Self::max), the tightest bound the row holds).
    /// Returns 0 for an empty histogram; `q` is clamped to `[0, 1]`.
    ///
    /// The estimate is conservative — never below the true quantile,
    /// and off by at most one bucket width. Serving-layer p50/p99
    /// readouts use this on the `LATENCY_US` bounds.
    pub fn approx_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum > 0 && cum as f64 >= target {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
            }
        }
        self.max
    }
}

/// A point-in-time copy of the whole registry, rows sorted by name.
///
/// Produced by [`snapshot`]; rendered by the exporters in
/// [`crate::Snapshot::to_json`] / `render_tree` / `render_flame`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Whether recording was enabled when the snapshot was taken.
    pub enabled: bool,
    /// All registered spans.
    pub spans: Vec<SpanRow>,
    /// All registered counters.
    pub counters: Vec<CounterRow>,
    /// All registered gauges.
    pub gauges: Vec<GaugeRow>,
    /// All registered histograms.
    pub histograms: Vec<HistogramRow>,
    /// All registered window wheels (rolling views).
    pub windows: Vec<WindowRow>,
    /// Observed parent→child span pairs, lexicographically sorted.
    pub edges: Vec<(String, String)>,
}

/// One window wheel's rolling state in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowRow {
    /// Wheel name.
    pub name: String,
    /// Number of slots (the maximum rolling horizon, in ticks).
    pub slots: u64,
    /// Ticks elapsed since registration (or the last reset).
    pub ticks: u64,
    /// All slots merged into one histogram row (`min` is always 0 —
    /// a rolling minimum is not maintained; exemplars are empty).
    pub merged: HistogramRow,
}

/// Copies the registry into a sorted, owned [`Snapshot`].
///
/// Cheap relative to any measured region (a few mutex walks); values
/// recorded concurrently with the walk land in whichever side of the
/// snapshot the interleaving dictates, as with any live-system capture.
#[cfg(feature = "obs")]
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot {
        enabled: crate::is_enabled(),
        ..Snapshot::default()
    };
    spans().for_each(|name, s| {
        snap.spans.push(SpanRow {
            name: name.to_string(),
            count: s.count.load(Ordering::Relaxed),
            total_ns: s.total_ns.load(Ordering::Relaxed),
            self_ns: s.self_ns.load(Ordering::Relaxed),
            max_ns: s.max_ns.load(Ordering::Relaxed),
        });
    });
    counters().for_each(|name, c| {
        snap.counters.push(CounterRow {
            name: name.to_string(),
            value: c.get(),
        });
    });
    gauges().for_each(|name, g| {
        snap.gauges.push(GaugeRow {
            name: name.to_string(),
            value: g.get(),
        });
    });
    histograms().for_each(|name, h| {
        snap.histograms.push(HistogramRow {
            name: name.to_string(),
            bounds: h.bounds().to_vec(),
            buckets: h.bucket_counts(),
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            exemplars: h.exemplar_ids(),
        });
    });
    windows().for_each(|name, w| {
        snap.windows.push(WindowRow {
            name: name.to_string(),
            slots: w.slot_count() as u64,
            ticks: w.ticks(),
            merged: w.rolling(name, w.slot_count()),
        });
    });
    snap.spans.sort_by(|a, b| a.name.cmp(&b.name));
    snap.counters.sort_by(|a, b| a.name.cmp(&b.name));
    snap.gauges.sort_by(|a, b| a.name.cmp(&b.name));
    snap.histograms.sort_by(|a, b| a.name.cmp(&b.name));
    snap.windows.sort_by(|a, b| a.name.cmp(&b.name));
    {
        let set = edges().lock().expect("mp-obs edge-set mutex poisoned");
        snap.edges = set
            .iter()
            .map(|&(p, c)| (p.to_string(), c.to_string()))
            .collect();
    }
    snap
}

/// Copies the registry — always empty in this build (feature `obs` off).
#[cfg(not(feature = "obs"))]
pub fn snapshot() -> Snapshot {
    Snapshot::default()
}

/// Zeroes every registered span, counter, gauge, and histogram in place
/// and clears the edge set. Handles stay registered (macro caches remain
/// valid); names are never forgotten.
#[cfg(feature = "obs")]
pub fn reset() {
    spans().for_each(|_, s| s.reset());
    counters().for_each(|_, c| c.reset());
    gauges().for_each(|_, g| g.reset());
    histograms().for_each(|_, h| h.reset());
    windows().for_each(|_, w| w.reset());
    edges()
        .lock()
        .expect("mp-obs edge-set mutex poisoned")
        .clear();
    // Invalidate every thread's seen-edge cache so re-observed edges
    // repopulate the freshly cleared set.
    // publishes the cleared edge set: pairs with the Acquire load in
    // record_edge(), ordering the clear before the new generation number.
    EDGE_GEN.fetch_add(1, Ordering::Release);
}

/// Zeroes the registry — a no-op in this build (feature `obs` off).
#[cfg(not(feature = "obs"))]
pub fn reset() {}
