//! Counters, gauges, and fixed-bucket histograms.
//!
//! All three record through single relaxed atomic RMWs — safe to call
//! from the `mp-core::par` worker threads with no locks on the hot
//! path. Handles are `&'static`: the registry leaks one small allocation
//! per *name* (bounded by the instrumentation taxonomy, not by load).
//!
//! When the `obs` feature is off every type is a unit struct and every
//! method an empty inlineable body with the identical signature, so
//! call sites compile unchanged.

#[cfg(feature = "obs")]
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

#[cfg(feature = "obs")]
use crate::stripe::StripedU64;

/// A monotone event counter.
///
/// Backed by a [`StripedU64`], so concurrent workers bumping the same
/// counter (every probe increments `probe.attempts`) write disjoint
/// cachelines instead of ping-ponging one; `get()` sums the stripes.
#[cfg(feature = "obs")]
#[derive(Debug, Default)]
pub struct Counter {
    value: StripedU64,
}

#[cfg(feature = "obs")]
impl Counter {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Adds `n` events (relaxed; a no-op while recording is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::is_enabled() {
            self.value.add(n);
        }
    }

    /// Adds one event.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.get()
    }

    pub(crate) fn reset(&self) {
        self.value.reset();
    }
}

/// A signed instantaneous level (set or adjusted, not accumulated).
#[cfg(feature = "obs")]
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

#[cfg(feature = "obs")]
impl Gauge {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::is_enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the level by `delta` (may be negative).
    #[inline]
    pub fn adjust(&self, delta: i64) {
        if crate::is_enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram over `u64` values.
///
/// `bounds` are strictly increasing *upper* bounds: bucket `i` counts
/// values `v` with `bounds[i-1] < v <= bounds[i]`, and one extra
/// overflow bucket at the end counts `v > bounds.last()`. Alongside the
/// buckets it tracks count, sum, min, and max, all atomically.
#[cfg(feature = "obs")]
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    buckets: Vec<AtomicU64>,
    /// Exemplar linkage: per bucket, the raw [`crate::TraceId`] of the
    /// latest traced request that landed in it (0 = none yet).
    exemplars: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

#[cfg(feature = "obs")]
impl Histogram {
    pub(crate) fn new(bounds: &'static [u64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing: {bounds:?}"
        );
        let mut buckets = Vec::with_capacity(bounds.len() + 1);
        buckets.resize_with(bounds.len() + 1, AtomicU64::default);
        let mut exemplars = Vec::with_capacity(bounds.len() + 1);
        exemplars.resize_with(bounds.len() + 1, AtomicU64::default);
        Self {
            bounds,
            buckets,
            exemplars,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation (relaxed atomics; a no-op while
    /// recording is disabled). When a per-request trace is active on
    /// this thread, the bucket's exemplar slot remembers its id — a fat
    /// tail bucket then points straight at a recorded flight.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::is_enabled() {
            return;
        }
        // First bound >= v; past-the-end is the overflow bucket.
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        if let Some(id) = crate::trace::current_trace_id() {
            self.exemplars[idx].store(id.0, Ordering::Relaxed);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The configured upper bounds (excluding the overflow bucket).
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket observation counts (`bounds.len() + 1` entries, the
    /// last being the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Per-bucket exemplar trace ids (`bounds.len() + 1` entries;
    /// 0 = no traced request has landed in that bucket).
    pub fn exemplar_ids(&self) -> Vec<u64> {
        self.exemplars
            .iter()
            .map(|e| e.load(Ordering::Relaxed))
            .collect()
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        for e in &self.exemplars {
            e.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Looks up (or registers) the counter `name`.
///
/// Prefer the caching [`crate::counter!`] macro on hot paths; this free
/// function takes the sharded registry lock on every call.
#[cfg(feature = "obs")]
pub fn counter(name: &'static str) -> &'static Counter {
    crate::registry::counter(name)
}

/// Looks up (or registers) the gauge `name`.
#[cfg(feature = "obs")]
pub fn gauge(name: &'static str) -> &'static Gauge {
    crate::registry::gauge(name)
}

/// Looks up (or registers) the histogram `name`. The first registration
/// fixes the bucket bounds; later calls with different bounds keep the
/// original (and debug-assert against the mismatch).
#[cfg(feature = "obs")]
pub fn histogram(name: &'static str, bounds: &'static [u64]) -> &'static Histogram {
    crate::registry::histogram(name, bounds)
}

// --- no-op twins (feature `obs` compiled out) ------------------------

/// A monotone event counter (no-op build: records nothing).
#[cfg(not(feature = "obs"))]
#[derive(Debug, Default)]
pub struct Counter;

#[cfg(not(feature = "obs"))]
impl Counter {
    /// Adds `n` events — a no-op in this build.
    #[inline]
    pub fn add(&self, _n: u64) {}

    /// Adds one event — a no-op in this build.
    #[inline]
    pub fn incr(&self) {}

    /// Current value — always 0 in this build.
    pub fn get(&self) -> u64 {
        0
    }
}

/// A signed instantaneous level (no-op build: records nothing).
#[cfg(not(feature = "obs"))]
#[derive(Debug, Default)]
pub struct Gauge;

#[cfg(not(feature = "obs"))]
impl Gauge {
    /// Sets the level — a no-op in this build.
    #[inline]
    pub fn set(&self, _v: i64) {}

    /// Adjusts the level — a no-op in this build.
    #[inline]
    pub fn adjust(&self, _delta: i64) {}

    /// Current level — always 0 in this build.
    pub fn get(&self) -> i64 {
        0
    }
}

/// A fixed-bucket histogram (no-op build: records nothing).
#[cfg(not(feature = "obs"))]
#[derive(Debug, Default)]
pub struct Histogram;

#[cfg(not(feature = "obs"))]
impl Histogram {
    /// Records one observation — a no-op in this build.
    #[inline]
    pub fn record(&self, _v: u64) {}

    /// Number of observations — always 0 in this build.
    pub fn count(&self) -> u64 {
        0
    }

    /// Sum of all observations — always 0 in this build.
    pub fn sum(&self) -> u64 {
        0
    }

    /// The configured upper bounds — always empty in this build.
    pub fn bounds(&self) -> &'static [u64] {
        &[]
    }

    /// Per-bucket observation counts — always empty in this build.
    pub fn bucket_counts(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Smallest observation — always 0 in this build.
    pub fn min(&self) -> u64 {
        0
    }

    /// Largest observation — always 0 in this build.
    pub fn max(&self) -> u64 {
        0
    }

    /// Per-bucket exemplar trace ids — always empty in this build.
    pub fn exemplar_ids(&self) -> Vec<u64> {
        Vec::new()
    }
}

#[cfg(not(feature = "obs"))]
static NOOP_COUNTER: Counter = Counter;
#[cfg(not(feature = "obs"))]
static NOOP_GAUGE: Gauge = Gauge;
#[cfg(not(feature = "obs"))]
static NOOP_HISTOGRAM: Histogram = Histogram;

/// Looks up the counter `name` — in this build, the shared no-op.
#[cfg(not(feature = "obs"))]
pub fn counter(_name: &'static str) -> &'static Counter {
    &NOOP_COUNTER
}

/// Looks up the gauge `name` — in this build, the shared no-op.
#[cfg(not(feature = "obs"))]
pub fn gauge(_name: &'static str) -> &'static Gauge {
    &NOOP_GAUGE
}

/// Looks up the histogram `name` — in this build, the shared no-op.
#[cfg(not(feature = "obs"))]
pub fn histogram(_name: &'static str, _bounds: &'static [u64]) -> &'static Histogram {
    &NOOP_HISTOGRAM
}
