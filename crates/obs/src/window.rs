//! Windowed histograms: a fixed-slot ring of histogram deltas.
//!
//! A cumulative histogram can only answer "what was p99 *ever*"; SLO
//! work needs "what is p99 *now*". A [`WindowWheel`] keeps `n` slots of
//! bucket deltas; [`record`](WindowWheel::record) lands in the current
//! slot, and [`advance`](WindowWheel::advance) (called once per tick by
//! the owner — e.g. the serve layer per request batch) rotates to the
//! next slot, zeroing it first. [`rolling`](WindowWheel::rolling) merges
//! the most recent `k ≤ n` slots into one [`HistogramRow`] in
//! O(buckets·k), from which `approx_quantile` reads rolling p50/p99.
//!
//! All cells are relaxed atomics; a record racing an advance can land in
//! the slot being recycled (one sample attributed to the wrong tick) —
//! the usual live-capture semantics, same as any relaxed metric read.
//! With the `obs` feature off the wheel is a unit struct and every
//! method an inlineable no-op with the identical signature.

#[cfg(feature = "obs")]
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::registry::HistogramRow;

/// One tick's worth of histogram deltas.
#[cfg(feature = "obs")]
#[derive(Debug)]
struct WheelSlot {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

#[cfg(feature = "obs")]
impl WheelSlot {
    fn new(n_buckets: usize) -> Self {
        let mut buckets = Vec::with_capacity(n_buckets);
        buckets.resize_with(n_buckets, AtomicU64::default);
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A fixed-slot ring of histogram deltas yielding rolling quantiles.
///
/// Bucket semantics match [`crate::Histogram`]: `bounds` are strictly
/// increasing upper bounds plus one trailing overflow bucket. The wheel
/// does not track a rolling `min` (a windowed minimum cannot be
/// maintained with monotone atomics); merged rows report `min = 0`.
#[cfg(feature = "obs")]
#[derive(Debug)]
pub struct WindowWheel {
    bounds: &'static [u64],
    slots: Vec<WheelSlot>,
    /// Index of the slot currently receiving records.
    cur: AtomicUsize,
    /// Total advances since construction (or the last reset).
    ticks: AtomicU64,
}

#[cfg(feature = "obs")]
impl WindowWheel {
    /// A wheel with `slots` ticks of history over `bounds` (strictly
    /// increasing upper bounds; an overflow bucket is added). At least
    /// one slot is always allocated.
    pub fn new(bounds: &'static [u64], slots: usize) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "window bounds must be strictly increasing: {bounds:?}"
        );
        let n = slots.max(1);
        Self {
            bounds,
            slots: (0..n).map(|_| WheelSlot::new(bounds.len() + 1)).collect(),
            cur: AtomicUsize::new(0),
            ticks: AtomicU64::new(0),
        }
    }

    /// Records one observation into the current slot (relaxed; a no-op
    /// while recording is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::is_enabled() {
            return;
        }
        let slot = &self.slots[self.cur.load(Ordering::Relaxed) % self.slots.len()];
        let idx = self.bounds.partition_point(|&b| b < v);
        slot.buckets[idx].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(v, Ordering::Relaxed);
        slot.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Closes the current tick: zeroes the oldest slot and makes it
    /// current. Call once per tick from the owning layer (concurrent
    /// advances are safe but make ticks meaningless).
    pub fn advance(&self) {
        let cur = self.cur.load(Ordering::Relaxed);
        let next = (cur + 1) % self.slots.len();
        self.slots[next].clear();
        self.ticks.fetch_add(1, Ordering::Relaxed);
        self.cur.store(next, Ordering::Relaxed);
    }

    /// Advances completed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Number of slots (the maximum rolling horizon).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The configured upper bounds (excluding the overflow bucket).
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Merges the most recent `last_n` slots (clamped to `[1, slots]`,
    /// newest first, including the still-open current slot) into one
    /// [`HistogramRow`] named `name`. O(buckets · last_n); `min` is
    /// reported as 0 and exemplars are empty (exemplar linkage lives on
    /// the cumulative histograms).
    pub fn rolling(&self, name: &str, last_n: usize) -> HistogramRow {
        let n_slots = self.slots.len();
        let k = last_n.clamp(1, n_slots);
        let cur = self.cur.load(Ordering::Relaxed) % n_slots;
        let mut buckets = vec![0u64; self.bounds.len() + 1];
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut max = 0u64;
        for back in 0..k {
            let slot = &self.slots[(cur + n_slots - back) % n_slots];
            for (acc, b) in buckets.iter_mut().zip(&slot.buckets) {
                *acc += b.load(Ordering::Relaxed);
            }
            count += slot.count.load(Ordering::Relaxed);
            sum += slot.sum.load(Ordering::Relaxed);
            max = max.max(slot.max.load(Ordering::Relaxed));
        }
        HistogramRow {
            name: name.to_string(),
            bounds: self.bounds.to_vec(),
            buckets,
            count,
            sum,
            min: 0,
            max,
            exemplars: Vec::new(),
        }
    }

    /// Zeroes every slot and rewinds the tick counter.
    pub fn reset(&self) {
        for slot in &self.slots {
            slot.clear();
        }
        self.cur.store(0, Ordering::Relaxed);
        self.ticks.store(0, Ordering::Relaxed);
    }
}

// --- no-op twin (feature `obs` compiled out) -------------------------

/// A fixed-slot rolling histogram (no-op build: records nothing).
#[cfg(not(feature = "obs"))]
#[derive(Debug, Default)]
pub struct WindowWheel;

#[cfg(not(feature = "obs"))]
impl WindowWheel {
    /// A wheel — inert in this build.
    pub fn new(_bounds: &'static [u64], _slots: usize) -> Self {
        WindowWheel
    }

    /// Records one observation — a no-op in this build.
    #[inline]
    pub fn record(&self, _v: u64) {}

    /// Closes the current tick — a no-op in this build.
    #[inline]
    pub fn advance(&self) {}

    /// Advances completed — always 0 in this build.
    pub fn ticks(&self) -> u64 {
        0
    }

    /// Number of slots — always 0 in this build.
    pub fn slot_count(&self) -> usize {
        0
    }

    /// The configured upper bounds — always empty in this build.
    pub fn bounds(&self) -> &'static [u64] {
        &[]
    }

    /// Merges recent slots — always an empty row in this build.
    pub fn rolling(&self, name: &str, _last_n: usize) -> HistogramRow {
        HistogramRow {
            name: name.to_string(),
            bounds: Vec::new(),
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            exemplars: Vec::new(),
        }
    }

    /// Zeroes the wheel — a no-op in this build.
    pub fn reset(&self) {}
}

#[cfg(not(feature = "obs"))]
static NOOP_WINDOW: WindowWheel = WindowWheel;

/// Looks up (or registers) the window wheel `name`. The first
/// registration fixes `bounds` and `slots`; prefer the caching
/// [`crate::window!`] macro on hot paths.
#[cfg(feature = "obs")]
pub fn window(name: &'static str, bounds: &'static [u64], slots: usize) -> &'static WindowWheel {
    crate::registry::window(name, bounds, slots)
}

/// Looks up the window wheel `name` — in this build, the shared no-op.
#[cfg(not(feature = "obs"))]
pub fn window(_name: &'static str, _bounds: &'static [u64], _slots: usize) -> &'static WindowWheel {
    &NOOP_WINDOW
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;

    #[test]
    fn rolling_merges_recent_slots_only() {
        crate::set_enabled(true);
        let w = WindowWheel::new(&[10, 100], 3);
        w.record(5); // tick 0
        w.advance();
        w.record(50); // tick 1
        w.advance();
        w.record(500); // tick 2 (current)
        assert_eq!(w.ticks(), 2);

        let last1 = w.rolling("w", 1);
        assert_eq!(last1.count, 1);
        assert_eq!(last1.buckets, vec![0, 0, 1]);
        assert_eq!(last1.max, 500);

        let last2 = w.rolling("w", 2);
        assert_eq!(last2.count, 2);
        assert_eq!(last2.sum, 550);

        let all = w.rolling("w", 3);
        assert_eq!(all.count, 3);
        assert_eq!(all.sum, 555);
        assert_eq!(all.buckets, vec![1, 1, 1]);
    }

    #[test]
    fn advance_evicts_oldest() {
        crate::set_enabled(true);
        let w = WindowWheel::new(&[10], 2);
        w.record(1); // slot 0
        w.advance();
        w.record(2); // slot 1
        w.advance(); // recycles slot 0, dropping the `1`
        w.record(3);
        let all = w.rolling("w", 2);
        assert_eq!(all.count, 2);
        assert_eq!(all.sum, 5);
    }

    #[test]
    fn reset_rewinds() {
        crate::set_enabled(true);
        let w = WindowWheel::new(&[10], 4);
        w.record(7);
        w.advance();
        w.reset();
        assert_eq!(w.ticks(), 0);
        assert_eq!(w.rolling("w", 4).count, 0);
    }
}
