//! Integration tests for mp-obs.
//!
//! The registry is process-global, so every test serializes on one
//! mutex and starts from `reset()`. Enabled-mode tests are gated on the
//! `obs` feature; the `disabled` module compiles the identical API
//! surface under `--no-default-features` and asserts it is inert.

use std::sync::{Mutex, MutexGuard};

/// Serializes tests that touch the global registry; tolerant of a
/// poisoned lock so one failing test does not cascade.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(feature = "obs")]
mod enabled {
    use super::lock;
    use std::time::{Duration, Instant};

    /// Busy-waits so span durations are nonzero and ordered; sleeping
    /// is too coarse on loaded CI machines.
    fn spin(d: Duration) {
        let start = Instant::now();
        while start.elapsed() < d {
            std::hint::spin_loop();
        }
    }

    fn span_row(snap: &mp_obs::Snapshot, name: &str) -> mp_obs::SpanRow {
        snap.spans
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("span `{name}` missing from snapshot"))
            .clone()
    }

    #[test]
    fn nested_spans_aggregate_self_and_total_time() {
        let _g = lock();
        mp_obs::reset();
        mp_obs::set_enabled(true);
        {
            let _outer = mp_obs::span!("t1.outer");
            spin(Duration::from_millis(2));
            {
                let _inner = mp_obs::span!("t1.inner");
                spin(Duration::from_millis(2));
            }
        }
        let snap = mp_obs::snapshot();
        let outer = span_row(&snap, "t1.outer");
        let inner = span_row(&snap, "t1.inner");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(inner.total_ns >= 2_000_000, "inner ran >= 2ms");
        assert!(
            outer.total_ns >= inner.total_ns + 2_000_000,
            "outer ({}) strictly contains inner ({}) plus its own work",
            outer.total_ns,
            inner.total_ns
        );
        // Self time is exact by construction: total minus child time.
        assert_eq!(outer.self_ns + inner.total_ns, outer.total_ns);
        assert_eq!(inner.self_ns, inner.total_ns);
        assert!(outer.max_ns >= outer.total_ns.min(outer.max_ns));
        assert!(snap
            .edges
            .contains(&("t1.outer".to_string(), "t1.inner".to_string())));
    }

    #[test]
    fn spans_and_counters_under_thread_scope() {
        let _g = lock();
        mp_obs::reset();
        mp_obs::set_enabled(true);
        const THREADS: u64 = 4;
        const REPS: u64 = 8;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..REPS {
                        let _span = mp_obs::span!("t2.worker");
                        mp_obs::counter!("t2.events").add(3);
                        mp_obs::histogram!("t2.sizes", mp_obs::bounds::SMALL).record(5);
                    }
                });
            }
        });
        let snap = mp_obs::snapshot();
        let worker = span_row(&snap, "t2.worker");
        assert_eq!(worker.count, THREADS * REPS);
        assert!(worker.total_ns >= worker.max_ns, "sum dominates the max");
        assert!(
            worker.self_ns <= worker.total_ns,
            "self never exceeds total"
        );
        let events = snap
            .counters
            .iter()
            .find(|c| c.name == "t2.events")
            .expect("counter t2.events must be registered");
        assert_eq!(events.value, THREADS * REPS * 3);
        let sizes = snap
            .histograms
            .iter()
            .find(|h| h.name == "t2.sizes")
            .expect("histogram t2.sizes must be registered");
        assert_eq!(sizes.count, THREADS * REPS);
        assert_eq!(sizes.sum, THREADS * REPS * 5);
        // Worker spans are roots on their own threads: no t2.* edges.
        assert!(snap
            .edges
            .iter()
            .all(|(p, c)| !p.starts_with("t2.") && !c.starts_with("t2.")));
    }

    /// Naive reference: linear scan for the first bound >= v.
    fn naive_bucket(bounds: &[u64], v: u64) -> usize {
        for (i, &b) in bounds.iter().enumerate() {
            if v <= b {
                return i;
            }
        }
        bounds.len()
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(64))]

        #[test]
        fn histogram_matches_naive_reference(
            values in proptest::collection::vec(0u64..5_000, 0..60)
        ) {
            let _g = super::lock();
            mp_obs::reset();
            mp_obs::set_enabled(true);
            const BOUNDS: &[u64] = &[10, 100, 1000];
            let h = mp_obs::histogram("t3.ref", BOUNDS);
            let mut expect = vec![0u64; BOUNDS.len() + 1];
            for &v in &values {
                h.record(v);
                expect[naive_bucket(BOUNDS, v)] += 1;
            }
            proptest::prop_assert_eq!(h.bucket_counts(), expect);
            proptest::prop_assert_eq!(h.count(), values.len() as u64);
            proptest::prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
            proptest::prop_assert_eq!(h.min(), values.iter().copied().min().unwrap_or(0));
            proptest::prop_assert_eq!(h.max(), values.iter().copied().max().unwrap_or(0));
        }
    }

    #[test]
    fn histogram_boundary_values_land_inclusively() {
        let _g = lock();
        mp_obs::reset();
        mp_obs::set_enabled(true);
        const BOUNDS: &[u64] = &[1, 2, 4];
        let h = mp_obs::histogram("t4.edges", BOUNDS);
        // Upper bounds are inclusive: 1→bucket0, 2→bucket1, 3,4→bucket2,
        // 5→overflow. Zero lands in the first bucket.
        for v in [0, 1, 2, 3, 4, 5] {
            h.record(v);
        }
        assert_eq!(h.bucket_counts(), vec![2, 1, 2, 1]);
    }

    #[test]
    fn json_snapshot_is_stable_and_sorted() {
        let _g = lock();
        mp_obs::reset();
        mp_obs::set_enabled(true);
        {
            let _span = mp_obs::span!("t5.zeta");
            let _span2 = mp_obs::span!("t5.alpha");
            mp_obs::counter!("t5.count").incr();
            mp_obs::gauge!("t5.level").set(-7);
            mp_obs::histogram!("t5.h", mp_obs::bounds::POW2).record(33);
        }
        let a = mp_obs::snapshot();
        let b = mp_obs::snapshot();
        assert_eq!(a.to_json(), b.to_json(), "consecutive exports byte-equal");
        let json = a.to_json();
        assert!(json.starts_with(&format!("{{\"schema\":\"{}\"", mp_obs::SCHEMA)));
        assert!(json.contains("\"t5.count\",\"value\":1"));
        assert!(json.contains("\"t5.level\",\"value\":-7"));
        // Sorted rows: alpha strictly before zeta.
        let alpha = json.find("t5.alpha").expect("alpha span present in JSON");
        let zeta = json.find("t5.zeta").expect("zeta span present in JSON");
        assert!(alpha < zeta);
        // The human renderings cover every section without panicking.
        let tree = a.render_tree();
        assert!(tree.contains("t5.zeta") && tree.contains("t5.count"));
        let flame = a.render_flame();
        assert!(flame.contains("t5.alpha"));
    }

    #[test]
    fn runtime_toggle_stops_recording_and_keeps_balance() {
        let _g = lock();
        mp_obs::reset();
        mp_obs::set_enabled(true);
        let c = mp_obs::counter("t6.count");
        c.incr();
        // Open a span, flip recording off mid-flight, then close it: the
        // guard still pops its own frame and the close is recorded.
        {
            let _span = mp_obs::span!("t6.mid");
            mp_obs::set_enabled(false);
        }
        c.incr(); // dropped: recording is off
        {
            let _span = mp_obs::span!("t6.off"); // inert guard
        }
        mp_obs::set_enabled(true);
        let snap = mp_obs::snapshot();
        assert_eq!(
            snap.counters
                .iter()
                .find(|r| r.name == "t6.count")
                .expect("counter t6.count must be registered")
                .value,
            1
        );
        assert_eq!(span_row(&snap, "t6.mid").count, 1);
        assert!(snap.spans.iter().all(|r| r.name != "t6.off"));
    }

    #[test]
    fn missing_or_zero_flags_dead_instrumentation() {
        let _g = lock();
        mp_obs::reset();
        mp_obs::set_enabled(true);
        {
            let _span = mp_obs::span!("t7.live");
        }
        let snap = mp_obs::snapshot();
        assert!(snap.missing_or_zero(&["t7.live"]).is_empty());
        let dead = snap.missing_or_zero(&["t7.live", "t7.never", "t1.outer"]);
        // t1.outer may exist from another test but was reset to zero (or
        // re-recorded under its own lock before our reset); here only
        // names with a nonzero count survive.
        assert!(dead.contains(&"t7.never".to_string()));
        assert!(!dead.contains(&"t7.live".to_string()));
    }

    #[test]
    fn reset_zeroes_values_but_keeps_registrations() {
        let _g = lock();
        mp_obs::reset();
        mp_obs::set_enabled(true);
        let c = mp_obs::counter("t8.count");
        c.add(41);
        {
            let _span = mp_obs::span!("t8.span");
        }
        mp_obs::reset();
        let snap = mp_obs::snapshot();
        assert_eq!(
            snap.counters
                .iter()
                .find(|r| r.name == "t8.count")
                .expect("registration survives reset")
                .value,
            0
        );
        assert_eq!(span_row(&snap, "t8.span").count, 0);
        assert!(snap.edges.is_empty());
        // The pre-reset handle keeps working.
        c.incr();
        assert_eq!(c.get(), 1);
    }
}

/// [`HistogramRow`] is plain data present in both builds, so its
/// quantile math is testable without the registry (and without the
/// global lock).
mod quantiles {
    use mp_obs::HistogramRow;

    fn row(bounds: &[u64], buckets: &[u64], min: u64, max: u64) -> HistogramRow {
        let count = buckets.iter().sum();
        HistogramRow {
            name: "t.q".to_string(),
            bounds: bounds.to_vec(),
            buckets: buckets.to_vec(),
            count,
            sum: 0,
            min,
            max,
            exemplars: Vec::new(),
        }
    }

    #[test]
    fn approx_quantile_reads_bucket_upper_bounds() {
        // 10 observations: 4 in (..=10], 4 in (10..=100], 2 overflow.
        let r = row(&[10, 100], &[4, 4, 2], 3, 950);
        assert_eq!(
            r.approx_quantile(0.0),
            10,
            "q=0 lands in the first nonempty bucket"
        );
        assert_eq!(r.approx_quantile(0.25), 10);
        assert_eq!(
            r.approx_quantile(0.40),
            10,
            "cum 4 >= 4 exactly at the boundary"
        );
        assert_eq!(r.approx_quantile(0.50), 100);
        assert_eq!(r.approx_quantile(0.80), 100);
        assert_eq!(r.approx_quantile(0.99), 950, "overflow bucket reports max");
        assert_eq!(r.approx_quantile(1.0), 950);
    }

    #[test]
    fn approx_quantile_handles_degenerate_rows() {
        let empty = row(&[10, 100], &[0, 0, 0], 0, 0);
        assert_eq!(empty.approx_quantile(0.5), 0, "empty histogram reports 0");

        let only_overflow = row(&[10], &[0, 7], 500, 900);
        assert_eq!(only_overflow.approx_quantile(0.01), 900);
        assert_eq!(only_overflow.approx_quantile(0.99), 900);

        // Out-of-range q clamps instead of panicking or skipping
        // buckets; a bounded bucket reports its bound even when the
        // true max is smaller (conservative by design).
        let r = row(&[10, 100], &[5, 5, 0], 1, 60);
        assert_eq!(r.approx_quantile(-3.0), 10);
        assert_eq!(r.approx_quantile(7.5), 100);
    }

    #[test]
    fn approx_quantile_never_underestimates() {
        // The estimate is an upper bound: for every recorded value v at
        // rank r, approx_quantile(r / count) >= v. Exercise with values
        // placed explicitly in known buckets.
        let bounds = [4u64, 16, 64];
        let values = [1u64, 3, 4, 9, 15, 16, 40, 64, 70, 200];
        let mut buckets = [0u64; 4];
        for &v in &values {
            let i = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
            buckets[i] += 1;
        }
        let r = row(&bounds, &buckets, 1, 200);
        for (rank, &v) in values.iter().enumerate() {
            let q = (rank + 1) as f64 / values.len() as f64;
            assert!(
                r.approx_quantile(q) >= v,
                "q={q}: estimate {} below true value {v}",
                r.approx_quantile(q)
            );
        }
    }
}

#[cfg(not(feature = "obs"))]
mod disabled {
    use super::lock;

    /// With `--no-default-features` the same call sites compile and do
    /// nothing: no registry, no rows, `is_enabled()` pinned false.
    #[test]
    fn full_api_is_inert() {
        let _g = lock();
        assert!(!mp_obs::is_enabled());
        mp_obs::set_enabled(true); // stores a bit; recording stays off
        assert!(!mp_obs::is_enabled());
        {
            let _span = mp_obs::span!("noop.span");
            mp_obs::counter!("noop.count").add(5);
            mp_obs::gauge!("noop.level").set(9);
            mp_obs::histogram!("noop.h", &[1, 2, 3]).record(2);
        }
        assert_eq!(mp_obs::counter("noop.count").get(), 0);
        assert_eq!(mp_obs::histogram("noop.h", &[1, 2, 3]).count(), 0);
        let snap = mp_obs::snapshot();
        assert!(!snap.enabled);
        assert!(snap.spans.is_empty() && snap.counters.is_empty());
        assert!(snap.to_json().contains("\"spans\":[]"));
        mp_obs::reset();
    }
}
