//! Window-wheel behaviour against a naive sliding-window reference, and
//! the `approx_quantile` edge cases the serve layer's rolling p50/p99
//! readouts depend on.
//!
//! The reference model keeps *every* sample of every tick in plain
//! `Vec`s and merges the last `k` ticks by brute force; the wheel must
//! agree exactly on count / sum / max / buckets for every horizon
//! `k ∈ [1, slots]` at every point of an arbitrary record/advance
//! schedule. (Single-threaded here, so the relaxed-atomics race window
//! documented on [`WindowWheel`] never opens.)

#![cfg(feature = "obs")]

use mp_obs::{HistogramRow, TraceId, TraceScope, WindowWheel};
use proptest::prelude::*;
use std::time::Instant;

/// A handful of `'static` bound sets exercising the interesting shapes:
/// overflow-only, single bound, dense low bounds, and wide decades.
const BOUND_SETS: [&[u64]; 4] = [&[], &[10], &[1, 2, 3, 5, 8], &[10, 100, 1_000, 10_000]];

#[derive(Debug, Clone)]
enum Op {
    Record(u64),
    Advance,
}

/// Roughly 1-in-5 advances between records (the vendored proptest has
/// no `prop_oneof`, so the choice is encoded in a drawn selector).
fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u64..5, 0u64..20_000), 0..120).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(sel, v)| if sel == 0 { Op::Advance } else { Op::Record(v) })
            .collect()
    })
}

/// Brute-force sliding window: per-tick sample lists, merged on demand.
struct NaiveWindow {
    bounds: &'static [u64],
    ticks: Vec<Vec<u64>>,
}

impl NaiveWindow {
    fn new(bounds: &'static [u64]) -> Self {
        Self {
            bounds,
            ticks: vec![Vec::new()],
        }
    }

    fn record(&mut self, v: u64) {
        self.ticks.last_mut().expect("never empty").push(v);
    }

    fn advance(&mut self) {
        self.ticks.push(Vec::new());
    }

    /// Merges the samples of the last `k` ticks (newest first,
    /// including the open current tick) — the meaning `rolling`
    /// promises for any `k ≤ slots`.
    fn rolling(&self, k: usize) -> (Vec<u64>, u64, u64, u64) {
        let start = self.ticks.len().saturating_sub(k);
        let mut buckets = vec![0u64; self.bounds.len() + 1];
        let (mut count, mut sum, mut max) = (0u64, 0u64, 0u64);
        for tick in &self.ticks[start..] {
            for &v in tick {
                buckets[self.bounds.partition_point(|&b| b < v)] += 1;
                count += 1;
                sum += v;
                max = max.max(v);
            }
        }
        (buckets, count, sum, max)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_wheel_matches_naive_sliding_window(
        bounds_idx in 0usize..BOUND_SETS.len(),
        slots in 1usize..6,
        ops in arb_ops(),
    ) {
        mp_obs::set_enabled(true);
        let bounds = BOUND_SETS[bounds_idx];
        let wheel = WindowWheel::new(bounds, slots);
        let mut naive = NaiveWindow::new(bounds);
        for op in &ops {
            match *op {
                Op::Record(v) => {
                    wheel.record(v);
                    naive.record(v);
                }
                Op::Advance => {
                    wheel.advance();
                    naive.advance();
                }
            }
            // Agreement at *every* prefix, for every horizon the wheel
            // can serve — not just at the end of the schedule.
            for k in 1..=slots {
                let got = wheel.rolling("w", k);
                let (buckets, count, sum, max) = naive.rolling(k);
                prop_assert_eq!(&got.buckets, &buckets, "buckets at k={}", k);
                prop_assert_eq!(got.count, count, "count at k={}", k);
                prop_assert_eq!(got.sum, sum, "sum at k={}", k);
                prop_assert_eq!(got.max, max, "max at k={}", k);
                prop_assert_eq!(got.min, 0u64, "rolling min is never tracked");
                prop_assert!(got.exemplars.is_empty(), "rolling rows carry no exemplars");
            }
        }
        prop_assert_eq!(
            wheel.ticks(),
            ops.iter().filter(|o| matches!(o, Op::Advance)).count() as u64
        );
    }

    #[test]
    fn prop_horizon_is_clamped_to_the_slot_count(
        slots in 1usize..5,
        ops in arb_ops(),
    ) {
        mp_obs::set_enabled(true);
        let wheel = WindowWheel::new(&[10, 100], slots);
        for op in &ops {
            match *op {
                Op::Record(v) => wheel.record(v),
                Op::Advance => wheel.advance(),
            }
        }
        // 0 means "at least the current slot"; anything past the wheel
        // means "everything it still holds".
        prop_assert_eq!(wheel.rolling("w", 0), wheel.rolling("w", 1));
        prop_assert_eq!(wheel.rolling("w", slots + 7), wheel.rolling("w", slots));
    }
}

fn row(bounds: &[u64], buckets: &[u64], max: u64) -> HistogramRow {
    HistogramRow {
        name: "q".to_string(),
        bounds: bounds.to_vec(),
        buckets: buckets.to_vec(),
        count: buckets.iter().sum(),
        sum: 0,
        min: 0,
        max,
        exemplars: Vec::new(),
    }
}

#[test]
fn approx_quantile_empty_row_is_zero() {
    let empty = row(&[10, 100], &[0, 0, 0], 0);
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(empty.approx_quantile(q), 0);
    }
}

#[test]
fn approx_quantile_single_bucket_reports_its_bound() {
    // Everything in one finite bucket: every quantile is that bound.
    let single = row(&[10], &[4, 0], 7);
    assert_eq!(single.approx_quantile(0.0), 10);
    assert_eq!(single.approx_quantile(0.5), 10);
    assert_eq!(single.approx_quantile(1.0), 10);
}

#[test]
fn approx_quantile_overflow_bucket_reports_max() {
    // Bounds-free row (one overflow bucket) and an over-the-top sample
    // set both fall back to the observed max — the tightest bound held.
    let no_bounds = row(&[], &[3], 512);
    assert_eq!(no_bounds.approx_quantile(0.5), 512);
    let overflow_only = row(&[10, 100], &[0, 0, 5], 123_456);
    assert_eq!(overflow_only.approx_quantile(0.99), 123_456);
}

#[test]
fn approx_quantile_clamps_q() {
    let r = row(&[10, 100], &[2, 2, 0], 60);
    assert_eq!(r.approx_quantile(-3.0), r.approx_quantile(0.0));
    assert_eq!(r.approx_quantile(42.0), r.approx_quantile(1.0));
}

#[test]
fn histogram_exemplars_link_the_latest_traced_request() {
    mp_obs::set_enabled(true);
    // Two traced recordings into the same bucket: the later one wins.
    for id in [7u64, 9] {
        let scope = TraceScope::begin(TraceId(id), Instant::now());
        mp_obs::histogram!("window_test.exemplar_us", &[10, 100]).record(50);
        drop(scope.finish());
    }
    // An untraced recording must not disturb the stored exemplar.
    mp_obs::histogram!("window_test.exemplar_us", &[10, 100]).record(50);
    let snap = mp_obs::snapshot();
    let h = snap
        .histograms
        .iter()
        .find(|h| h.name == "window_test.exemplar_us")
        .expect("histogram registered");
    assert_eq!(h.exemplars.len(), h.buckets.len());
    assert_eq!(
        h.exemplars[1], 9,
        "bucket (10, 100] holds the latest TraceId"
    );
    assert_eq!(h.exemplars[0], 0, "untouched bucket has no exemplar");
}
