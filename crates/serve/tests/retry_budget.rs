//! Satellite (e): retry-budget accounting stays exact under a serving
//! workload.
//!
//! Two *twin* stacks of flaky databases ([`UnreliableDb`] with retries,
//! identical seeds) answer the same query stream — one through the
//! serving layer (1 worker: strict FIFO replay), one through direct
//! sequential [`Metasearcher::search`] calls. Failure injection is
//! deterministic in (seed, call sequence), so the per-database
//! [`ProbeBudget`] counters must agree *exactly*, and turning the
//! result cache on must not add a single physical probe for repeated
//! queries.

use std::sync::Arc;

use mp_core::probing::GreedyPolicy;
use mp_core::{
    AproConfig, CoreConfig, CorrectnessMetric, EdLibrary, IndependenceEstimator, Metasearcher,
    RelevancyDef,
};
use mp_corpus::{Scenario, ScenarioConfig, ScenarioKind};
use mp_hidden::{
    ContentSummary, HiddenWebDatabase, Mediator, ProbeBudget, SimulatedHiddenDb, UnreliableDb,
};
use mp_serve::{ServeConfig, ServeRequest, Server};
use mp_workload::{Query, QueryGenConfig, TrainTestSplit};

const K: usize = 1;
const THRESHOLD: f64 = 0.9;
const FUSE_LIMIT: usize = 10;
const FAILURE_RATE: f64 = 0.3;
const NOISE_RATE: f64 = 0.2;
const NOISE_SPAN: f64 = 0.2;
const RETRIES: u32 = 2;

struct Fixture {
    inner: Vec<Arc<dyn HiddenWebDatabase>>,
    summaries: Vec<ContentSummary>,
    library: EdLibrary,
    queries: Vec<Query>,
}

/// Shared clean substrate: corpus, summaries, a library trained on
/// *reliable* databases (so no injection RNG is consumed before the
/// serving comparison starts), and the query stream.
fn fixture() -> Fixture {
    let scenario = Scenario::generate(ScenarioConfig::tiny(ScenarioKind::Health, 33));
    let (model, parts) = scenario.into_parts();
    let mut inner: Vec<Arc<dyn HiddenWebDatabase>> = Vec::new();
    let mut summaries = Vec::new();
    for (spec, index) in parts {
        summaries.push(ContentSummary::cooperative(&index));
        inner.push(Arc::new(SimulatedHiddenDb::new(spec.name, index)));
    }
    let split = TrainTestSplit::generate(
        &model,
        60,
        40,
        QueryGenConfig {
            window: 12,
            seed: 33 ^ 0xFEED,
            ..QueryGenConfig::default()
        },
    );
    let clean = Mediator::new(inner.clone(), summaries.clone());
    let config = CoreConfig::default().with_threshold(10.0);
    let library = EdLibrary::train(
        &clean,
        &IndependenceEstimator,
        RelevancyDef::DocFrequency,
        split.train.queries(),
        &config,
    );
    let queries = split.test.queries().iter().take(25).cloned().collect();
    Fixture {
        inner,
        summaries,
        library,
        queries,
    }
}

/// One flaky twin: every database wrapped with identically-seeded
/// injection, handles kept so budgets stay observable after the
/// mediator takes ownership.
fn flaky_twin(fx: &Fixture) -> (Arc<Metasearcher>, Vec<Arc<UnreliableDb>>) {
    let mut wrappers = Vec::new();
    let mut dbs: Vec<Arc<dyn HiddenWebDatabase>> = Vec::new();
    for (i, base) in fx.inner.iter().enumerate() {
        let w = Arc::new(
            UnreliableDb::new(
                Arc::clone(base),
                FAILURE_RATE,
                NOISE_RATE,
                NOISE_SPAN,
                1_000 + i as u64,
            )
            .with_retries(RETRIES),
        );
        wrappers.push(Arc::clone(&w));
        dbs.push(w);
    }
    let ms = Metasearcher::with_library(
        Mediator::new(dbs, fx.summaries.clone()),
        Box::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        fx.library.clone(),
    )
    .shared();
    (ms, wrappers)
}

fn budgets(wrappers: &[Arc<UnreliableDb>]) -> Vec<ProbeBudget> {
    wrappers.iter().map(|w| w.budget()).collect()
}

fn apro_config() -> AproConfig {
    AproConfig {
        k: K,
        threshold: THRESHOLD,
        metric: CorrectnessMetric::Partial,
        max_probes: None,
    }
}

#[test]
fn served_probe_budgets_replay_the_sequential_run_exactly() {
    let fx = fixture();

    // Twin A: through the serving layer, 1 worker, caches off — a
    // strict FIFO replay of the stream.
    let (ms_a, wrappers_a) = flaky_twin(&fx);
    ms_a.mediator().reset_probes();
    let server = Server::new(Arc::clone(&ms_a), ServeConfig::new(1, 0));
    let responses = server.serve_batch(
        fx.queries
            .iter()
            .map(|q| ServeRequest::new(q.clone(), K, THRESHOLD)),
    );
    // Captured before twin B runs: the twins share the inner databases,
    // so their physical probe counters accumulate across runs.
    let physical_probes: u64 = (0..wrappers_a.len())
        .map(|i| ms_a.mediator().db(i).probe_count())
        .sum();

    // Twin B: direct sequential calls, same order, same parameters.
    let (ms_b, wrappers_b) = flaky_twin(&fx);
    let mut expected = Vec::new();
    for q in &fx.queries {
        let mut policy = GreedyPolicy;
        expected.push(ms_b.search(q, apro_config(), &mut policy, FUSE_LIMIT));
    }

    for (i, resp) in responses.into_iter().enumerate() {
        let resp = resp.expect("back-pressure submission never rejects");
        assert_eq!(resp.result, expected[i], "query {i} diverged");
    }

    let a = budgets(&wrappers_a);
    let b = budgets(&wrappers_b);
    assert_eq!(a, b, "per-database budgets must replay exactly");

    // The workload is hostile enough that the interesting counters
    // actually move (deterministic: injection is seeded).
    let total: ProbeBudget = a.iter().fold(ProbeBudget::default(), |acc, x| ProbeBudget {
        attempts: acc.attempts + x.attempts,
        retries: acc.retries + x.retries,
        failures: acc.failures + x.failures,
        outages: acc.outages + x.outages,
    });
    assert!(total.attempts > 0, "the stream probed something");
    assert!(total.outages > 0, "outages fired at rate {FAILURE_RATE}");
    assert!(total.retries > 0, "outages were retried");
    assert_eq!(
        total.attempts, physical_probes,
        "every attempt is a physical probe on the wrapped database"
    );
    for db in &a {
        assert!(
            db.attempts <= (db.attempts - db.retries) * u64::from(RETRIES + 1),
            "attempts bounded by 1 + max_retries per logical search"
        );
    }
}

/// Failure-injection twin-replay across worker counts: with the
/// counter-keyed injection stream, a probe's outcome is a pure function
/// of (database seed, query, attempt index) — never of which worker ran
/// it or when. So at *every* worker count the served results must be
/// bit-identical to the sequential replay and the per-database
/// [`ProbeBudget`] counters (attempts, retries, failures, outages) must
/// match it exactly, even though workers interleave probes arbitrarily.
#[test]
fn twin_replay_is_bit_identical_and_budget_exact_at_every_worker_count() {
    let fx = fixture();

    // Sequential reference replay.
    let (ms_seq, wrappers_seq) = flaky_twin(&fx);
    let mut expected = Vec::new();
    for q in &fx.queries {
        let mut policy = GreedyPolicy;
        expected.push(ms_seq.search(q, apro_config(), &mut policy, FUSE_LIMIT));
    }
    let expected_budgets = budgets(&wrappers_seq);
    let total_attempts: u64 = expected_budgets.iter().map(|b| b.attempts).sum();
    let total_retries: u64 = expected_budgets.iter().map(|b| b.retries).sum();
    assert!(
        total_attempts > 0 && total_retries > 0,
        "workload is hostile"
    );

    for workers in [1usize, 2, 4, 8] {
        let (ms, wrappers) = flaky_twin(&fx);
        let server = Server::new(Arc::clone(&ms), ServeConfig::new(workers, 0));
        let responses = server.serve_batch(
            fx.queries
                .iter()
                .map(|q| ServeRequest::new(q.clone(), K, THRESHOLD)),
        );
        for (i, resp) in responses.into_iter().enumerate() {
            let resp = resp.expect("back-pressure submission never rejects");
            assert_eq!(
                resp.result, expected[i],
                "query {i} diverged from sequential replay at {workers} workers"
            );
        }
        assert_eq!(
            budgets(&wrappers),
            expected_budgets,
            "probe budgets diverged from sequential replay at {workers} workers"
        );
    }
}

#[test]
fn result_cache_spends_zero_extra_probes_on_repeats() {
    let fx = fixture();

    // Twin A: unique stream, caches off.
    let (ms_a, wrappers_a) = flaky_twin(&fx);
    let server_a = Server::new(Arc::clone(&ms_a), ServeConfig::new(1, 0));
    for r in server_a.serve_batch(
        fx.queries
            .iter()
            .map(|q| ServeRequest::new(q.clone(), K, THRESHOLD)),
    ) {
        r.expect("no rejection");
    }

    // Twin B: the same stream played three times, result cache on.
    // Repeats must be answered from the cache without touching the
    // flaky databases, so the budgets match the single-pass twin.
    let (ms_b, wrappers_b) = flaky_twin(&fx);
    let server_b = Server::new(Arc::clone(&ms_b), ServeConfig::new(1, 256));
    for r in server_b.serve_batch((0..3).flat_map(|_| {
        fx.queries
            .iter()
            .map(|q| ServeRequest::new(q.clone(), K, THRESHOLD))
    })) {
        r.expect("no rejection");
    }

    assert_eq!(
        budgets(&wrappers_a),
        budgets(&wrappers_b),
        "cached repeats must not probe"
    );
    let stats = server_b.stats();
    assert_eq!(stats.misses, fx.queries.len() as u64);
    assert_eq!(stats.hits, 2 * fx.queries.len() as u64);
}
