//! Trace determinism: per-request waterfalls are a pure function of the
//! request schedule.
//!
//! [`mp_obs::TraceId`]s are session-monotonic (allocated by the server's
//! stats core, no ambient clock or randomness), and with timings
//! redacted a trace's JSON carries only ids, event names, kinds,
//! values, and order — all of which replay exactly for a deterministic
//! workload. Two properties are pinned:
//!
//! 1. **Byte-identical replay** — the same flaky fixture served twice
//!    (1 worker, sequential submit-then-wait, so queue depths are
//!    deterministically 0) yields byte-identical redacted trace JSON.
//! 2. **Exactly-once across merged buffers** — at any worker count,
//!    draining the striped sink returns every submitted request's trace
//!    exactly once, sorted by id, no matter which worker's shard it
//!    landed in.

#![cfg(feature = "obs")]

use std::sync::Arc;

use mp_core::{EdLibrary, IndependenceEstimator, Metasearcher, RelevancyDef};
use mp_corpus::{Scenario, ScenarioConfig, ScenarioKind};
use mp_hidden::{ContentSummary, HiddenWebDatabase, Mediator, SimulatedHiddenDb, UnreliableDb};
use mp_serve::{ServeConfig, ServeRequest, Server, Ticket};
use mp_workload::{Query, QueryGenConfig, TrainTestSplit};

const K: usize = 1;
const THRESHOLD: f64 = 0.9;
const FAILURE_RATE: f64 = 0.3;
const NOISE_RATE: f64 = 0.2;
const NOISE_SPAN: f64 = 0.2;
const RETRIES: u32 = 2;

struct Fixture {
    inner: Vec<Arc<dyn HiddenWebDatabase>>,
    summaries: Vec<ContentSummary>,
    library: EdLibrary,
    queries: Vec<Query>,
}

/// Clean substrate (same shape as the retry-budget twin tests): library
/// trained on reliable databases, flaky wrappers added per run so the
/// injection RNG replays from the same point every time.
fn fixture() -> Fixture {
    let scenario = Scenario::generate(ScenarioConfig::tiny(ScenarioKind::Health, 33));
    let (model, parts) = scenario.into_parts();
    let mut inner: Vec<Arc<dyn HiddenWebDatabase>> = Vec::new();
    let mut summaries = Vec::new();
    for (spec, index) in parts {
        summaries.push(ContentSummary::cooperative(&index));
        inner.push(Arc::new(SimulatedHiddenDb::new(spec.name, index)));
    }
    let split = TrainTestSplit::generate(
        &model,
        60,
        40,
        QueryGenConfig {
            window: 12,
            seed: 33 ^ 0xFEED,
            ..QueryGenConfig::default()
        },
    );
    let clean = Mediator::new(inner.clone(), summaries.clone());
    let config = mp_core::CoreConfig::default().with_threshold(10.0);
    let library = EdLibrary::train(
        &clean,
        &IndependenceEstimator,
        RelevancyDef::DocFrequency,
        split.train.queries(),
        &config,
    );
    let queries = split.test.queries().iter().take(12).cloned().collect();
    Fixture {
        inner,
        summaries,
        library,
        queries,
    }
}

fn flaky_metasearcher(fx: &Fixture) -> Arc<Metasearcher> {
    let dbs: Vec<Arc<dyn HiddenWebDatabase>> = fx
        .inner
        .iter()
        .enumerate()
        .map(|(i, base)| {
            Arc::new(
                UnreliableDb::new(
                    Arc::clone(base),
                    FAILURE_RATE,
                    NOISE_RATE,
                    NOISE_SPAN,
                    1_000 + i as u64,
                )
                .with_retries(RETRIES),
            ) as Arc<dyn HiddenWebDatabase>
        })
        .collect();
    Metasearcher::with_library(
        Mediator::new(dbs, fx.summaries.clone()),
        Box::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        fx.library.clone(),
    )
    .shared()
}

fn traced_server(fx: &Fixture, workers: usize) -> Server {
    Server::new(
        flaky_metasearcher(fx),
        ServeConfig::new(workers, 256).with_trace(true),
    )
}

/// One serving session over the fixture's query stream; `sequential`
/// waits for each response before submitting the next request (the
/// deterministic-schedule mode the byte-compare relies on).
fn run_traced(fx: &Fixture, workers: usize, sequential: bool) -> Vec<mp_obs::Trace> {
    mp_obs::set_enabled(true);
    let server = traced_server(fx, workers);
    server.run(|client| {
        if sequential {
            for q in &fx.queries {
                let resp = client
                    .submit(ServeRequest::new(q.clone(), K, THRESHOLD))
                    .and_then(Ticket::wait)
                    .expect("request served");
                assert!(resp.latency_us < u64::MAX);
            }
        } else {
            let tickets: Vec<_> = fx
                .queries
                .iter()
                .map(|q| client.submit(ServeRequest::new(q.clone(), K, THRESHOLD)))
                .collect();
            for t in tickets {
                t.and_then(Ticket::wait).expect("request served");
            }
        }
    });
    server.drain_traces()
}

/// Redacted deterministic serialization of a whole run.
fn redacted_json(traces: &mut [mp_obs::Trace]) -> String {
    let mut out = String::new();
    for t in traces.iter_mut() {
        t.redact_timings();
        out.push_str(&t.to_json());
        out.push('\n');
    }
    out
}

#[test]
fn sequential_single_worker_runs_replay_byte_identical_trace_json() {
    let fx = fixture();
    let mut first = run_traced(&fx, 1, true);
    let mut second = run_traced(&fx, 1, true);

    // The traces are substantive, not vacuously equal: every request
    // carries its queue-wait stage, deterministic queue depths, and a
    // cache-status annotation; the unique stream makes them all misses.
    assert_eq!(first.len(), fx.queries.len());
    for t in &first {
        assert!(t.has_event("serve.queue_wait"), "{t:?}");
        assert!(t.has_event("serve.cache_miss"), "{t:?}");
        assert!(t.has_event("serve.request"), "{t:?}");
        assert_eq!(
            t.find("serve.queue_depth_at_submit").map(|e| e.value),
            Some(0),
            "sequential submit sees an empty queue"
        );
    }
    // The flaky wrappers are hostile enough that retry breadcrumbs
    // appear somewhere in the stream (deterministic: injection seeded).
    assert!(
        first.iter().any(|t| t.has_event("probe.retry")),
        "no probe.retry annotation in any waterfall"
    );

    let a = redacted_json(&mut first);
    let b = redacted_json(&mut second);
    assert_eq!(a, b, "redacted trace JSON must replay byte-for-byte");
}

#[test]
fn sink_drain_is_exactly_once_at_every_worker_count() {
    let fx = fixture();
    for workers in [1usize, 2, 4] {
        let traces = run_traced(&fx, workers, false);
        let ids: Vec<u64> = traces.iter().map(|t| t.id.0).collect();
        let expected: Vec<u64> = (1..=fx.queries.len() as u64).collect();
        assert_eq!(
            ids, expected,
            "every request's trace drains exactly once, sorted, at {workers} workers"
        );
    }
}

#[test]
fn drain_is_empty_without_the_trace_flag() {
    let fx = fixture();
    mp_obs::set_enabled(true);
    let server = Server::new(flaky_metasearcher(&fx), ServeConfig::new(1, 256));
    for r in server.serve_batch(
        fx.queries
            .iter()
            .take(3)
            .map(|q| ServeRequest::new(q.clone(), K, THRESHOLD)),
    ) {
        r.expect("request served");
    }
    assert!(server.drain_traces().is_empty());
    assert!(server.flight_recorder().is_empty());
}
