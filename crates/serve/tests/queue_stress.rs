//! Multi-producer/multi-consumer stress tests pinning the
//! `BoundedQueue` condvar discipline: no lost wakeup may strand a
//! waiter while work (or capacity) exists, no accepted item may be
//! dropped or duplicated, and `close` must wake every sleeper.
//!
//! The scenarios deliberately mix *blocking* pushers with *non-blocking*
//! `try_push` thieves and over-subscribe both sides of the queue, which
//! is exactly the satisfied-then-stolen interleaving a broken
//! notification scheme would deadlock or lose items under. A wall-clock
//! bound turns a stranded waiter into a test failure instead of a hang.

use mp_serve::{BoundedQueue, TryPushError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fails the test (rather than hanging CI) if the workers don't finish.
fn join_all_within(handles: Vec<std::thread::JoinHandle<()>>, limit: Duration, what: &str) {
    let deadline = Instant::now() + limit;
    for h in handles {
        while !h.is_finished() {
            assert!(
                Instant::now() < deadline,
                "{what}: worker still blocked after {limit:?} — lost wakeup?"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        h.join().expect("queue stress worker panicked");
    }
}

/// Blocking producers vs blocking consumers, tiny capacity: every item
/// must arrive exactly once even though both sides sleep constantly.
#[test]
fn mpmc_blocking_push_pop_delivers_every_item_exactly_once() {
    const PRODUCERS: u64 = 4;
    const CONSUMERS: usize = 4;
    const PER_PRODUCER: u64 = 500;

    let q = Arc::new(BoundedQueue::<u64>::new(2));
    let sum = Arc::new(AtomicU64::new(0));
    let count = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for p in 0..PRODUCERS {
        let q = Arc::clone(&q);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_PRODUCER {
                q.push_blocking(p * PER_PRODUCER + i)
                    .expect("queue not closed during production");
            }
        }));
    }
    for _ in 0..CONSUMERS {
        let q = Arc::clone(&q);
        let sum = Arc::clone(&sum);
        let count = Arc::clone(&count);
        handles.push(std::thread::spawn(move || {
            while let Some(v) = q.pop() {
                sum.fetch_add(v, Ordering::Relaxed);
                count.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // Producers drain first; closing then releases the consumers.
    let (producers, consumers) = handles.split_at(usize::try_from(PRODUCERS).unwrap());
    let deadline = Instant::now() + Duration::from_secs(30);
    for h in producers {
        while !h.is_finished() {
            assert!(Instant::now() < deadline, "producer stuck — lost wakeup?");
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    q.close();
    let _ = consumers; // joined below with the producers
    join_all_within(handles, Duration::from_secs(30), "mpmc blocking");

    let total = PRODUCERS * PER_PRODUCER;
    assert_eq!(
        count.load(Ordering::Relaxed),
        total,
        "item lost or duplicated"
    );
    assert_eq!(sum.load(Ordering::Relaxed), total * (total - 1) / 2);
}

/// Blocking pushers racing non-blocking `try_push` thieves: a popped
/// slot can be satisfied-then-stolen before the woken pusher reacquires
/// the lock. The woken pusher must re-wait (not fail, not deadlock) and
/// every *accepted* item must still be delivered exactly once.
#[test]
fn stolen_slots_do_not_strand_blocking_pushers() {
    const BLOCKING: u64 = 3;
    const PER_BLOCKING: u64 = 400;
    const THIEVES: u64 = 3;
    const THIEF_ATTEMPTS: u64 = 2_000;

    let q = Arc::new(BoundedQueue::<u64>::new(1));
    let stolen_in = Arc::new(AtomicU64::new(0));
    let received = Arc::new(AtomicU64::new(0));
    let blocking_sum = Arc::new(AtomicU64::new(0));
    let popped_blocking_sum = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    // Blocking pushers send odd numbers, thieves even ones, so the
    // consumer can attribute every delivery.
    for p in 0..BLOCKING {
        let q = Arc::clone(&q);
        let blocking_sum = Arc::clone(&blocking_sum);
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_BLOCKING {
                let v = 2 * (p * PER_BLOCKING + i) + 1;
                q.push_blocking(v).expect("queue open");
                blocking_sum.fetch_add(v, Ordering::Relaxed);
            }
        }));
    }
    for _ in 0..THIEVES {
        let q = Arc::clone(&q);
        let stolen_in = Arc::clone(&stolen_in);
        handles.push(std::thread::spawn(move || {
            for i in 0..THIEF_ATTEMPTS {
                match q.try_push(2 * i) {
                    Ok(()) => {
                        stolen_in.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TryPushError::Full(_)) => std::thread::yield_now(),
                    Err(TryPushError::Closed(_)) => unreachable!("closed mid-production"),
                }
            }
        }));
    }
    for _ in 0..2 {
        let q = Arc::clone(&q);
        let received = Arc::clone(&received);
        let popped_blocking_sum = Arc::clone(&popped_blocking_sum);
        handles.push(std::thread::spawn(move || {
            while let Some(v) = q.pop() {
                received.fetch_add(1, Ordering::Relaxed);
                if v % 2 == 1 {
                    popped_blocking_sum.fetch_add(v, Ordering::Relaxed);
                }
            }
        }));
    }

    let producer_count = usize::try_from(BLOCKING + THIEVES).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    for h in &handles[..producer_count] {
        while !h.is_finished() {
            assert!(
                Instant::now() < deadline,
                "pusher stranded after a stolen slot — lost wakeup?"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    q.close();
    join_all_within(handles, Duration::from_secs(30), "stolen slots");

    let expected = BLOCKING * PER_BLOCKING + stolen_in.load(Ordering::Relaxed);
    assert_eq!(received.load(Ordering::Relaxed), expected);
    assert_eq!(
        popped_blocking_sum.load(Ordering::Relaxed),
        blocking_sum.load(Ordering::Relaxed),
        "a blocking pusher's item vanished"
    );
}

/// Close with sleepers on both condvars: every blocked pusher must get
/// its item back and every blocked popper must see `None`. Two queues
/// keep the two sleeper populations independent (a popper draining the
/// full queue would free a slot and let a pusher through pre-close).
#[test]
fn close_wakes_every_sleeper_on_both_sides() {
    let full = Arc::new(BoundedQueue::<u32>::new(1));
    full.try_push(0).expect("seed item fits");
    let empty = Arc::new(BoundedQueue::<u32>::new(1));

    let mut handles = Vec::new();
    for _ in 0..3 {
        let full = Arc::clone(&full);
        handles.push(std::thread::spawn(move || {
            assert_eq!(
                full.push_blocking(9),
                Err(9),
                "closed queue returns the item"
            );
        }));
    }
    for _ in 0..3 {
        let empty = Arc::clone(&empty);
        handles.push(std::thread::spawn(move || {
            assert_eq!(empty.pop(), None, "closed empty queue ends the popper");
        }));
    }

    // Give the sleepers time to actually park on the condvars, so close
    // exercises waking them rather than pre-empting the wait.
    std::thread::sleep(Duration::from_millis(50));
    full.close();
    empty.close();
    join_all_within(handles, Duration::from_secs(30), "close wakeup");

    // The seed item survived the close (close never drops accepted work).
    assert_eq!(full.pop(), Some(0));
    assert_eq!(full.pop(), None);
}
