//! Served-vs-sequential twin replay across the shards × workers
//! matrix.
//!
//! The shard layer's equivalence contract (`mp-core`'s
//! `shard_equivalence` suite) proves the sharded engine replays the
//! flat engine bit-for-bit *in isolation*; this suite proves the
//! serving tier preserves that through queues, worker pools, and
//! caches. For shards ∈ {1, 2, 3, 8} × workers ∈ {1, 4}:
//!
//! * every served response's [`MetasearchResult`] equals the sequential
//!   flat twin's direct `search` answer exactly (`PartialEq` compares
//!   probe traces, certainties, and fused scores bit-for-bit);
//! * probe accounting — per-database counters *and* the injection
//!   layer's [`ProbeBudget`]s (attempts / retries / failures /
//!   outages) — matches the sequential twin exactly.
//!
//! Twin stacks keep the comparison honest: the served fleet and the
//! sequential fleet are separate database instances built from
//! identical deterministic inputs, so counters never cross-contaminate.

use std::sync::Arc;

use mp_core::{
    AproConfig, CoreConfig, CorrectnessMetric, EdLibrary, IndependenceEstimator, Metasearcher,
    RelevancyDef, ShardAssignment, ShardedMetasearcher,
};
use mp_corpus::{Scenario, ScenarioConfig, ScenarioKind};
use mp_hidden::{
    ContentSummary, HiddenWebDatabase, Mediator, ProbeBudget, SimulatedHiddenDb, UnreliableDb,
};
use mp_serve::{Backend, ServeConfig, ServeRequest, Server, Ticket};
use mp_workload::{Query, QueryGenConfig, TrainTestSplit};

const K: usize = 1;
const THRESHOLD: f64 = 0.9;
const FUSE_LIMIT: usize = 10;
const FAILURE_RATE: f64 = 0.3;
const NOISE_RATE: f64 = 0.2;
const NOISE_SPAN: f64 = 0.2;
const RETRIES: u32 = 2;

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];
const WORKER_COUNTS: [usize; 2] = [1, 4];

struct Fixture {
    /// `(name, index)` per database — each twin stack instantiates its
    /// *own* `SimulatedHiddenDb`s from these, so even the inner probe
    /// counters never cross-contaminate between twins.
    parts: Vec<(String, mp_index::InvertedIndex)>,
    summaries: Vec<ContentSummary>,
    library: EdLibrary,
    queries: Vec<Query>,
}

/// Clean substrate, flaky twins per stack (the retry-budget pattern):
/// the library is trained on reliable databases, and each twin wraps
/// *its own* `UnreliableDb`s so the counter-keyed injection RNG replays
/// from the same point on both sides.
fn fixture() -> Fixture {
    let scenario = Scenario::generate(ScenarioConfig::tiny(ScenarioKind::Health, 33));
    let (model, raw_parts) = scenario.into_parts();
    let mut parts = Vec::new();
    let mut summaries = Vec::new();
    for (spec, index) in raw_parts {
        summaries.push(ContentSummary::cooperative(&index));
        parts.push((spec.name, index));
    }
    let split = TrainTestSplit::generate(
        &model,
        60,
        40,
        QueryGenConfig {
            window: 12,
            seed: 33 ^ 0xFEED,
            ..QueryGenConfig::default()
        },
    );
    let clean_dbs: Vec<Arc<dyn HiddenWebDatabase>> = parts
        .iter()
        .map(|(name, index)| {
            Arc::new(SimulatedHiddenDb::new(name.clone(), index.clone()))
                as Arc<dyn HiddenWebDatabase>
        })
        .collect();
    let clean = Mediator::new(clean_dbs, summaries.clone());
    let config = CoreConfig::default().with_threshold(10.0);
    let library = EdLibrary::train(
        &clean,
        &IndependenceEstimator,
        RelevancyDef::DocFrequency,
        split.train.queries(),
        &config,
    );
    clean.reset_probes();
    let queries = split.test.queries().iter().take(12).cloned().collect();
    Fixture {
        parts,
        summaries,
        library,
        queries,
    }
}

/// One independent flaky stack: concrete wrapper handles (for budget
/// reads) plus the mediator over them.
fn flaky_stack(fx: &Fixture) -> (Vec<Arc<UnreliableDb>>, Mediator) {
    let handles: Vec<Arc<UnreliableDb>> = fx
        .parts
        .iter()
        .enumerate()
        .map(|(i, (name, index))| {
            let base: Arc<dyn HiddenWebDatabase> =
                Arc::new(SimulatedHiddenDb::new(name.clone(), index.clone()));
            Arc::new(
                UnreliableDb::new(base, FAILURE_RATE, NOISE_RATE, NOISE_SPAN, 1_000 + i as u64)
                    .with_retries(RETRIES),
            )
        })
        .collect();
    let dbs: Vec<Arc<dyn HiddenWebDatabase>> = handles
        .iter()
        .map(|h| Arc::clone(h) as Arc<dyn HiddenWebDatabase>)
        .collect();
    (handles, Mediator::new(dbs, fx.summaries.clone()))
}

fn accounting(handles: &[Arc<UnreliableDb>]) -> Vec<(u64, ProbeBudget)> {
    handles
        .iter()
        .map(|h| (h.probe_count(), h.budget()))
        .collect()
}

fn request(q: &Query) -> ServeRequest {
    ServeRequest::new(q.clone(), K, THRESHOLD)
}

fn apro_config() -> AproConfig {
    AproConfig {
        k: K,
        threshold: THRESHOLD,
        metric: CorrectnessMetric::Partial,
        max_probes: None,
    }
}

/// The sequential flat baseline: its own twin stack, searched directly
/// in stream order. Returns the results plus the stack's accounting.
fn sequential_baseline(fx: &Fixture) -> (Vec<mp_core::MetasearchResult>, Vec<(u64, ProbeBudget)>) {
    let (handles, mediator) = flaky_stack(fx);
    let ms = Metasearcher::with_library(
        mediator,
        Box::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        fx.library.clone(),
    );
    let results = fx
        .queries
        .iter()
        .map(|q| {
            let mut policy = mp_core::GreedyPolicy;
            ms.search(q, apro_config(), &mut policy, FUSE_LIMIT)
        })
        .collect();
    (results, accounting(&handles))
}

/// One served session over a sharded twin stack at the given topology,
/// submit-all-then-wait (any interleaving must still replay exactly).
fn served_sharded(
    fx: &Fixture,
    shards: usize,
    workers: usize,
    cache_cap: usize,
) -> (Vec<mp_core::MetasearchResult>, Vec<(u64, ProbeBudget)>) {
    let (handles, mediator) = flaky_stack(fx);
    let sharded = ShardedMetasearcher::with_library(
        &mediator,
        Arc::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        &fx.library,
        &ShardAssignment::RoundRobin(shards),
    )
    .shared();
    let server = Server::new_sharded(sharded, ServeConfig::new(workers, cache_cap));
    let results = server.run(|client| {
        let tickets: Vec<_> = fx
            .queries
            .iter()
            .map(|q| client.submit(request(q)))
            .collect();
        tickets
            .into_iter()
            .map(|t| t.and_then(Ticket::wait).expect("request served").result)
            .collect::<Vec<_>>()
    });
    (results, accounting(&handles))
}

#[test]
fn sharded_serving_replays_sequential_flat_twin_exactly() {
    let fx = fixture();
    let (baseline, base_accounting) = sequential_baseline(&fx);
    for shards in SHARD_COUNTS {
        for workers in WORKER_COUNTS {
            // Cache off: every request computes, so probe accounting is
            // comparable request-for-request with the sequential twin.
            let (served, served_accounting) = served_sharded(&fx, shards, workers, 0);
            assert_eq!(
                served, baseline,
                "served results diverged at {shards} shards × {workers} workers"
            );
            assert_eq!(
                served_accounting, base_accounting,
                "probe accounting diverged at {shards} shards × {workers} workers"
            );
        }
    }
}

#[test]
fn caching_layers_stay_transparent_over_sharded_backends() {
    let fx = fixture();
    let (baseline, _) = sequential_baseline(&fx);
    // Cache on, and the whole stream submitted twice: hits, misses, and
    // dedup joins must all hand back the identical value.
    let (handles, mediator) = flaky_stack(&fx);
    let sharded = ShardedMetasearcher::with_library(
        &mediator,
        Arc::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        &fx.library,
        &ShardAssignment::RoundRobin(3),
    )
    .shared();
    let server = Server::new_sharded(Arc::clone(&sharded), ServeConfig::new(4, 256));
    let twice: Vec<mp_core::MetasearchResult> = server.run(|client| {
        let tickets: Vec<_> = fx
            .queries
            .iter()
            .chain(fx.queries.iter())
            .map(|q| client.submit(request(q)))
            .collect();
        tickets
            .into_iter()
            .map(|t| t.and_then(Ticket::wait).expect("request served").result)
            .collect()
    });
    assert_eq!(&twice[..fx.queries.len()], &baseline[..]);
    assert_eq!(&twice[fx.queries.len()..], &baseline[..]);
    // A fully cached second pass computes nothing new: the fleet served
    // each unique request's probes at most once.
    let total: u64 = handles.iter().map(|h| h.probe_count()).sum();
    assert_eq!(total, sharded.total_probes());
}

/// Regression pin for the pool's scratch-warming fix: the warm target
/// is computed by the backend and spans every shard, not whichever
/// single mediator the server happened to hold. A fleet whose largest
/// database lands in the *last* shard must still warm to its size.
#[test]
fn warm_target_spans_all_shards() {
    let fx = fixture();
    let (_, mediator) = flaky_stack(&fx);
    let flat = Metasearcher::with_library(
        mediator.clone(),
        Box::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        fx.library.clone(),
    )
    .shared();
    let flat_backend = Backend::Flat(Arc::clone(&flat));
    let flat_warm = flat_backend.max_size_hint();
    assert!(flat_warm > 0, "fixture databases advertise their sizes");

    // Every partition — including all-singleton, where the largest
    // database is alone in its own shard — warms to the same target.
    for shards in SHARD_COUNTS {
        let sharded = ShardedMetasearcher::with_library(
            &mediator,
            Arc::new(IndependenceEstimator),
            RelevancyDef::DocFrequency,
            &fx.library,
            &ShardAssignment::RoundRobin(shards),
        );
        let backend = Backend::Sharded(sharded.shared());
        assert_eq!(
            backend.max_size_hint(),
            flat_warm,
            "sharded warm target diverged at {shards} shards"
        );
        assert_eq!(backend.n_databases(), fx.parts.len());
    }
}
