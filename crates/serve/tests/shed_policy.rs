//! The SLO scheduler's shed policy, end to end.
//!
//! The *decision* logic is pure and pinned by unit tests in
//! `mp_serve::batch` (`should_shed`, `edf_order`). This suite drives
//! the policy through a real server: the rolling-latency window is
//! staged via the test hook (no sleeping through a regression), and the
//! assertions cover the full observable surface — the typed
//! [`ServeError::Shed`] response, the `sheds` stats counter, and the
//! flight-recorder entry with the `shed` reason.
//!
//! The rolling p99 that feeds the predicate is obs-gated (a disabled
//! window reads 0, which never sheds), so the end-to-end tests compile
//! only with the `obs` feature; the policy-off and no-deadline
//! invariants hold in every build.

use std::sync::Arc;
use std::time::Duration;

use mp_core::{CoreConfig, EdLibrary, IndependenceEstimator, Metasearcher, RelevancyDef};
use mp_corpus::{Scenario, ScenarioConfig, ScenarioKind};
use mp_hidden::{ContentSummary, HiddenWebDatabase, Mediator, SimulatedHiddenDb};
use mp_serve::{ServeConfig, ServeError, ServeRequest, Server};
use mp_workload::{Query, QueryGenConfig, TrainTestSplit};

const K: usize = 1;
const THRESHOLD: f64 = 0.9;

fn metasearcher() -> (Arc<Metasearcher>, Vec<Query>) {
    let scenario = Scenario::generate(ScenarioConfig::tiny(ScenarioKind::Health, 33));
    let (model, raw_parts) = scenario.into_parts();
    let mut dbs: Vec<Arc<dyn HiddenWebDatabase>> = Vec::new();
    let mut summaries = Vec::new();
    for (spec, index) in raw_parts {
        summaries.push(ContentSummary::cooperative(&index));
        dbs.push(Arc::new(SimulatedHiddenDb::new(spec.name, index)));
    }
    let mediator = Mediator::new(dbs, summaries);
    let split = TrainTestSplit::generate(
        &model,
        60,
        40,
        QueryGenConfig {
            window: 12,
            seed: 33 ^ 0xFEED,
            ..QueryGenConfig::default()
        },
    );
    let config = CoreConfig::default().with_threshold(10.0);
    let library = EdLibrary::train(
        &mediator,
        &IndependenceEstimator,
        RelevancyDef::DocFrequency,
        split.train.queries(),
        &config,
    );
    mediator.reset_probes();
    let queries: Vec<Query> = split.test.queries().iter().take(4).cloned().collect();
    (
        Metasearcher::with_library(
            mediator,
            Box::new(IndependenceEstimator),
            RelevancyDef::DocFrequency,
            library,
        )
        .shared(),
        queries,
    )
}

/// Stages a severe tail-latency regression in the server's rolling
/// window: enough 1-second observations that the rolling p99 lands in
/// the top bucket, far over any millisecond-scale SLO.
fn stage_regression(server: &Server) {
    for _ in 0..100 {
        server.record_window_latency_for_test(1_000_000);
    }
}

/// With no shed limit configured, a deadlined request under a staged
/// regression still computes — shedding is strictly opt-in.
#[test]
fn no_limit_never_sheds() {
    let (ms, queries) = metasearcher();
    let server = Server::new(ms, ServeConfig::new(1, 0));
    stage_regression(&server);
    let responses = server.serve_batch(queries.iter().map(|q| {
        ServeRequest::new(q.clone(), K, THRESHOLD).with_deadline(Duration::from_secs(60))
    }));
    for r in responses {
        r.expect("no shed limit: every request computes");
    }
    assert_eq!(server.stats().sheds, 0);
}

/// Deadline-free requests are never shed, no matter how bad the tail.
#[test]
fn no_deadline_never_sheds() {
    let (ms, queries) = metasearcher();
    let server = Server::new(ms, ServeConfig::new(1, 0).with_shed_p99_ms(Some(5)));
    stage_regression(&server);
    let responses = server.serve_batch(
        queries
            .iter()
            .map(|q| ServeRequest::new(q.clone(), K, THRESHOLD)),
    );
    for r in responses {
        r.expect("deadline-free requests always compute");
    }
    assert_eq!(server.stats().sheds, 0);
}

#[cfg(feature = "obs")]
mod obs_gated {
    use super::*;
    use mp_obs::FlightReason;

    /// The full shed surface: typed error, stats counter, flight
    /// recorder — per-request path (window 1).
    #[test]
    fn violated_slo_sheds_tight_deadlines() {
        mp_obs::set_enabled(true);
        let (ms, queries) = metasearcher();
        let config = ServeConfig::new(1, 0)
            .with_shed_p99_ms(Some(5))
            .with_trace(true);
        let server = Server::new(ms, config);
        stage_regression(&server);
        // Rolling p99 now ~1s: over the 5ms limit, and far more than
        // the 50ms of slack these requests have.
        let responses = server.serve_batch(queries.iter().map(|q| {
            ServeRequest::new(q.clone(), K, THRESHOLD).with_deadline(Duration::from_millis(50))
        }));
        let n = queries.len() as u64;
        for r in responses {
            assert_eq!(r, Err(ServeError::Shed));
        }
        let stats = server.stats();
        assert_eq!(stats.sheds, n);
        assert_eq!(stats.completed, 0, "shed requests never compute");
        let flights = server.flight_recorder().flights();
        assert_eq!(flights.len() as u64, n);
        for flight in &flights {
            assert_eq!(flight.reason, FlightReason::Shed);
            assert!(flight.trace.has_event("serve.queue_wait"));
        }

        // Ample slack survives the same regression: the predicate sheds
        // only requests the current tail would doom anyway.
        let roomy = server.serve_batch(queries.iter().map(|q| {
            ServeRequest::new(q.clone(), K, THRESHOLD).with_deadline(Duration::from_secs(120))
        }));
        for r in roomy {
            r.expect("a deadline beyond the rolling p99 is kept");
        }
        assert_eq!(server.stats().sheds, n, "no further sheds");
    }

    /// Shedding through the batch path: EDF-admitted jobs consult the
    /// same predicate before any compute is spent.
    #[test]
    fn batch_path_sheds_with_the_same_policy() {
        mp_obs::set_enabled(true);
        let (ms, queries) = metasearcher();
        let config = ServeConfig::new(1, 0)
            .with_shed_p99_ms(Some(5))
            .with_batch_window(8);
        let server = Server::new(ms, config);
        stage_regression(&server);
        let responses = server.serve_batch(queries.iter().map(|q| {
            ServeRequest::new(q.clone(), K, THRESHOLD).with_deadline(Duration::from_millis(50))
        }));
        for r in responses {
            assert_eq!(r, Err(ServeError::Shed));
        }
        let stats = server.stats();
        assert_eq!(stats.sheds, queries.len() as u64);
        assert_eq!(stats.completed, 0);
    }

    /// Recovery: once the window forgets the regression, the same
    /// tight-deadline request computes again.
    #[test]
    fn sheds_stop_when_the_window_recovers() {
        mp_obs::set_enabled(true);
        let (ms, queries) = metasearcher();
        let server = Server::new(ms, ServeConfig::new(1, 0).with_shed_p99_ms(Some(5)));
        stage_regression(&server);
        // Advance the rolling window past its horizon: the staged
        // regression ages out and p99 returns to 0.
        for _ in 0..16 {
            server.tick_window();
        }
        let responses = server.serve_batch(queries.iter().map(|q| {
            ServeRequest::new(q.clone(), K, THRESHOLD).with_deadline(Duration::from_millis(50))
        }));
        for r in responses {
            r.expect("recovered window sheds nothing");
        }
        assert_eq!(server.stats().sheds, 0);
    }
}
