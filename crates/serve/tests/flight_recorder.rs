//! The acceptance scenario for the flight recorder: a deterministic
//! serve run drives a deadline-missed request through a busy 1-worker
//! server, and the recorder keeps the full story — the miss itself
//! (with its queue wait) plus the slow completions whose waterfalls
//! show the cache miss, the engine span, and the probe retries — under
//! stable [`mp_obs::TraceId`]s that replay across runs.

#![cfg(feature = "obs")]

use std::sync::Arc;
use std::time::Duration;

use mp_core::{EdLibrary, IndependenceEstimator, Metasearcher, RelevancyDef};
use mp_corpus::{Scenario, ScenarioConfig, ScenarioKind};
use mp_hidden::{ContentSummary, HiddenWebDatabase, Mediator, SimulatedHiddenDb, UnreliableDb};
use mp_obs::FlightReason;
use mp_serve::{ServeConfig, ServeError, ServeRequest, Server, Ticket};
use mp_workload::{Query, QueryGenConfig, TrainTestSplit};

const K: usize = 1;
const THRESHOLD: f64 = 0.9;
const FAILURE_RATE: f64 = 0.3;
const NOISE_RATE: f64 = 0.2;
const NOISE_SPAN: f64 = 0.2;
const RETRIES: u32 = 2;

struct Fixture {
    inner: Vec<Arc<dyn HiddenWebDatabase>>,
    summaries: Vec<ContentSummary>,
    library: EdLibrary,
    queries: Vec<Query>,
}

fn fixture() -> Fixture {
    let scenario = Scenario::generate(ScenarioConfig::tiny(ScenarioKind::Health, 33));
    let (model, parts) = scenario.into_parts();
    let mut inner: Vec<Arc<dyn HiddenWebDatabase>> = Vec::new();
    let mut summaries = Vec::new();
    for (spec, index) in parts {
        summaries.push(ContentSummary::cooperative(&index));
        inner.push(Arc::new(SimulatedHiddenDb::new(spec.name, index)));
    }
    let split = TrainTestSplit::generate(
        &model,
        60,
        40,
        QueryGenConfig {
            window: 12,
            seed: 33 ^ 0xFEED,
            ..QueryGenConfig::default()
        },
    );
    let clean = Mediator::new(inner.clone(), summaries.clone());
    let config = mp_core::CoreConfig::default().with_threshold(10.0);
    let library = EdLibrary::train(
        &clean,
        &IndependenceEstimator,
        RelevancyDef::DocFrequency,
        split.train.queries(),
        &config,
    );
    let queries = split.test.queries().iter().take(12).cloned().collect();
    Fixture {
        inner,
        summaries,
        library,
        queries,
    }
}

fn flaky_metasearcher(fx: &Fixture) -> Arc<Metasearcher> {
    let dbs: Vec<Arc<dyn HiddenWebDatabase>> = fx
        .inner
        .iter()
        .enumerate()
        .map(|(i, base)| {
            Arc::new(
                UnreliableDb::new(
                    Arc::clone(base),
                    FAILURE_RATE,
                    NOISE_RATE,
                    NOISE_SPAN,
                    1_000 + i as u64,
                )
                .with_retries(RETRIES),
            ) as Arc<dyn HiddenWebDatabase>
        })
        .collect();
    Metasearcher::with_library(
        Mediator::new(dbs, fx.summaries.clone()),
        Box::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        fx.library.clone(),
    )
    .shared()
}

/// One run: every fixture query submitted up front (they queue behind a
/// single worker), then one more request with a zero deadline — by the
/// time the worker reaches it, its deadline has passed no matter how
/// the scheduler raced, so the miss is deterministic. Returns the
/// server for inspection after the pool drains.
fn drive(fx: &Fixture) -> Server {
    mp_obs::set_enabled(true);
    let config = ServeConfig {
        flight_recorder_cap: 64, // hold every flight: ids stay stable
        ..ServeConfig::new(1, 256)
    }
    .with_trace(true);
    let server = Server::new(flaky_metasearcher(fx), config);
    server.run(|client| {
        let tickets: Vec<_> = fx
            .queries
            .iter()
            .map(|q| client.submit(ServeRequest::new(q.clone(), K, THRESHOLD)))
            .collect();
        let late = client.submit(
            ServeRequest::new(fx.queries[0].clone(), K, THRESHOLD).with_deadline(Duration::ZERO),
        );
        for t in tickets {
            t.and_then(Ticket::wait).expect("request served");
        }
        assert_eq!(
            late.and_then(Ticket::wait),
            Err(ServeError::DeadlineExceeded),
            "the zero-deadline request must miss"
        );
    });
    server
}

#[test]
fn deadline_missed_flight_records_the_full_waterfall() {
    let fx = fixture();
    let server = drive(&fx);
    let n = fx.queries.len() as u64;

    let stats = server.stats();
    assert_eq!(stats.deadline_misses, 1);
    assert_eq!(stats.completed, n);

    let flights = server.flight_recorder().flights();
    assert_eq!(
        flights.len() as u64,
        n + 1,
        "every completion plus the miss fits under the recorder cap"
    );

    // Report order puts the forced flight first. Its id is the last one
    // allocated (submitted after the whole stream), and its waterfall
    // holds the queue wait that killed it.
    let missed = &flights[0];
    assert_eq!(missed.reason, FlightReason::DeadlineMissed);
    assert_eq!(missed.trace.id, mp_obs::TraceId(n + 1));
    assert!(missed.trace.has_event("serve.queue_wait"));
    assert!(
        !missed.trace.has_event("serve.request"),
        "a missed request is never computed"
    );

    // Every slow completion carries the full story: queue wait, cache
    // miss (the stream is unique), and the engine span.
    for f in &flights[1..] {
        assert_eq!(f.reason, FlightReason::Slow);
        assert!(f.trace.has_event("serve.queue_wait"), "{:?}", f.trace);
        assert!(f.trace.has_event("serve.cache_miss"), "{:?}", f.trace);
        assert!(f.trace.has_event("serve.request"), "{:?}", f.trace);
        assert!(f.trace.has_event("apro.run"), "{:?}", f.trace);
        assert!(f.trace.has_event("apro.probes"), "{:?}", f.trace);
    }
    // And the flaky databases left their retry breadcrumbs somewhere
    // (deterministic: injection is seeded).
    assert!(
        flights.iter().any(|f| f.trace.has_event("probe.retry")),
        "no probe.retry in any kept waterfall"
    );
    assert!(
        flights.iter().any(|f| f.trace.has_event("probe.outage")),
        "no probe.outage in any kept waterfall"
    );

    // The human rendering and the JSON dump agree on the contents.
    let rendered = server.flight_recorder().render();
    assert!(rendered.contains(&format!("flight recorder: {} flight(s)", n + 1)));
    assert!(rendered.contains("[deadline_missed]"));
    let json = server.flight_recorder().to_json();
    assert!(json.starts_with("{\"schema\":\"mp-obs-trace/1\""));
    assert!(json.contains("\"reason\":\"deadline_missed\""));
}

#[test]
fn flight_ids_are_stable_across_runs() {
    let fx = fixture();
    let first = drive(&fx);
    let second = drive(&fx);

    // Id/reason *sets* replay exactly (the Slow flights' report order
    // depends on measured latencies, so compare sorted).
    let key = |server: &Server| {
        let mut ids: Vec<(u64, &'static str)> = server
            .flight_recorder()
            .flights()
            .iter()
            .map(|f| (f.trace.id.0, f.reason.as_str()))
            .collect();
        ids.sort_unstable();
        ids
    };
    assert_eq!(key(&first), key(&second));

    // The deadline-missed flight keeps the same id, and its redacted
    // waterfall replays byte-for-byte.
    let missed_json = |server: &Server| {
        let mut f = server
            .flight_recorder()
            .flights()
            .into_iter()
            .find(|f| f.reason == FlightReason::DeadlineMissed)
            .expect("miss recorded");
        f.trace.redact_timings();
        f.trace.to_json()
    };
    assert_eq!(missed_json(&first), missed_json(&second));
}
