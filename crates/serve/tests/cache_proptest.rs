//! Satellite (b): property tests for the serving cache.
//!
//! * the per-shard [`LruCache`] tracks a naive reference model exactly
//!   (same hits, same evictions) under arbitrary op interleavings;
//! * a [`ShardedCache`] never returns a value inserted under a
//!   different key and never exceeds its capacity;
//! * single-flight deduplication: a joiner observes the leader's exact
//!   result and the compute closure runs exactly once, including across
//!   a panicking leader (followers retry instead of deadlocking).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use mp_serve::{CacheOutcome, LruCache, ShardedCache};
use proptest::prelude::*;

/// A naive LRU reference: a flat vec of `(key, value, last_use)` with
/// the same strictly-increasing tick discipline as the real cache.
struct ModelLru {
    cap: usize,
    tick: u64,
    entries: Vec<(u8, u16, u64)>,
}

impl ModelLru {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            tick: 0,
            entries: Vec::new(),
        }
    }

    fn get(&mut self, key: u8) -> Option<u16> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.iter_mut().find(|e| e.0 == key).map(|e| {
            e.2 = tick;
            e.1
        })
    }

    fn insert(&mut self, key: u8, value: u16) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == key) {
            e.1 = value;
            e.2 = tick;
            return;
        }
        if self.entries.len() >= self.cap {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.2)
                .map(|(i, _)| i)
                .unwrap();
            self.entries.remove(victim);
        }
        self.entries.push((key, value, tick));
    }
}

/// The value legitimately stored under `key` in the wrong-key test:
/// collisions between keys would need f to collide too, and f is
/// injective.
fn keyed_value(key: u16) -> u64 {
    u64::from(key) * 1_000 + 7
}

proptest::proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(64))]

    /// Ops: (selector, key, value); selector even = get, odd = insert.
    #[test]
    fn lru_matches_the_naive_model(
        cap in 0usize..5,
        ops in proptest::collection::vec((0u8..2, 0u8..8, 0u16..1000), 0..60),
    ) {
        let mut real: LruCache<u8, u16> = LruCache::new(cap);
        let mut model = ModelLru::new(cap);
        for (sel, key, value) in ops {
            if sel == 0 {
                prop_assert_eq!(real.get(&key).copied(), model.get(key));
            } else {
                real.insert(key, value);
                model.insert(key, value);
            }
            prop_assert_eq!(real.len(), model.entries.len());
            prop_assert!(real.len() <= cap);
        }
        // Final contents agree key-by-key (one more tick each, same on
        // both sides).
        for key in 0u8..8 {
            prop_assert_eq!(real.get(&key).copied(), model.get(key));
        }
    }

    /// A sharded cache never leaks a value across keys and never holds
    /// more than its capacity, whatever the op sequence.
    #[test]
    fn sharded_cache_is_key_faithful_and_bounded(
        total_cap in 0usize..12,
        n_shards in 1usize..5,
        ops in proptest::collection::vec((0u8..3, 0u16..50), 0..80),
    ) {
        let cache: ShardedCache<u16, u64> = ShardedCache::new(total_cap, n_shards);
        for (sel, key) in ops {
            match sel {
                0 => {
                    if let Some(v) = cache.get(&key) {
                        prop_assert_eq!(v, keyed_value(key), "foreign value under key {}", key);
                    }
                }
                1 => cache.insert(key, keyed_value(key)),
                _ => {
                    let (v, _) = cache.get_or_compute(key, || keyed_value(key));
                    prop_assert_eq!(v, keyed_value(key), "foreign value under key {}", key);
                }
            }
            prop_assert!(cache.len() <= cache.capacity());
            if total_cap == 0 {
                prop_assert_eq!(cache.len(), 0, "capacity 0 stores nothing");
            }
        }
    }
}

/// Deterministic single-flight join: a follower that arrives while the
/// leader's computation is in flight blocks on that flight and gets the
/// leader's exact value — its own closure never runs.
#[test]
fn follower_joins_the_in_flight_leader() {
    let cache: Arc<ShardedCache<u32, String>> = Arc::new(ShardedCache::new(16, 2));
    let (release_tx, release_rx) = mpsc::channel::<()>();

    let leader = {
        let cache = Arc::clone(&cache);
        std::thread::spawn(move || {
            cache.get_or_compute(5, move || {
                release_rx.recv().expect("test driver releases the leader");
                "leader-value".to_string()
            })
        })
    };
    // The leader registers its flight before running compute, so one
    // in-flight entry means it is safely parked inside the closure.
    while cache.inflight_len() != 1 {
        std::thread::sleep(Duration::from_millis(1));
    }

    let follower = {
        let cache = Arc::clone(&cache);
        std::thread::spawn(move || {
            cache.get_or_compute(5, || unreachable!("the follower must join, not compute"))
        })
    };
    // Let the follower park, then release the leader. (The sleep only
    // widens the join window; correctness does not depend on it.)
    std::thread::sleep(Duration::from_millis(20));
    release_tx.send(()).expect("leader is alive and receiving");

    let (lv, lo) = leader.join().expect("leader thread exits cleanly");
    let (fv, fo) = follower.join().expect("follower thread exits cleanly");
    assert_eq!(lo, CacheOutcome::Computed);
    assert_eq!(lv, "leader-value");
    assert!(
        fo == CacheOutcome::Joined || fo == CacheOutcome::Hit,
        "follower never computes: {fo:?}"
    );
    assert_eq!(
        fv, "leader-value",
        "the join observes the leader's exact result"
    );
    assert_eq!(cache.inflight_len(), 0);
}

/// A panicking leader abandons its flight; the waiting follower retries
/// and becomes the next leader instead of deadlocking or caching junk.
#[test]
fn abandoned_leader_hands_off_to_the_follower() {
    let cache: Arc<ShardedCache<u32, u64>> = Arc::new(ShardedCache::new(16, 2));
    let (release_tx, release_rx) = mpsc::channel::<()>();

    let doomed = {
        let cache = Arc::clone(&cache);
        std::thread::spawn(move || {
            cache.get_or_compute(9, move || -> u64 {
                let _ = release_rx.recv();
                panic!("injected leader failure");
            })
        })
    };
    while cache.inflight_len() != 1 {
        std::thread::sleep(Duration::from_millis(1));
    }

    let follower = {
        let cache = Arc::clone(&cache);
        std::thread::spawn(move || cache.get_or_compute(9, || 42u64))
    };
    std::thread::sleep(Duration::from_millis(20));
    release_tx.send(()).expect("doomed leader is alive");

    assert!(doomed.join().is_err(), "the leader panicked by design");
    let (fv, fo) = follower.join().expect("follower survives the hand-off");
    assert_eq!((fv, fo), (42, CacheOutcome::Computed), "follower re-led");
    assert_eq!(cache.get(&9), Some(42), "the retry's value was cached");
    assert_eq!(cache.inflight_len(), 0, "no flight leaks");
}

/// Concurrency stress for the core dedup invariant: across many
/// threads racing on few keys, each key's value is computed by exactly
/// the number of leaders observed, and every returned value is the
/// canonical one for its key.
#[test]
fn racing_threads_agree_on_one_value_per_key() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 25;
    let cache: Arc<ShardedCache<u16, u64>> = Arc::new(ShardedCache::new(64, 4));
    let computes = Arc::new(AtomicUsize::new(0));
    let leaders = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            let leaders = Arc::clone(&leaders);
            s.spawn(move || {
                for r in 0..ROUNDS {
                    let key = ((t + r) % 6) as u16;
                    let computes = Arc::clone(&computes);
                    let (v, outcome) = cache.get_or_compute(key, move || {
                        computes.fetch_add(1, Ordering::Relaxed);
                        keyed_value(key)
                    });
                    assert_eq!(v, keyed_value(key));
                    if outcome == CacheOutcome::Computed {
                        leaders.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    // Every closure run corresponds to exactly one leader, and with a
    // capacity far above the working set nothing is recomputed after
    // first publication: at most one computation per key.
    assert_eq!(
        computes.load(Ordering::Relaxed),
        leaders.load(Ordering::Relaxed)
    );
    assert!(leaders.load(Ordering::Relaxed) <= 6, "one leader per key");
    assert!(leaders.load(Ordering::Relaxed) >= 1);
    assert_eq!(cache.inflight_len(), 0);
}
