//! Satellite (a): the serving layer is a *transparent* concurrency and
//! caching wrapper — for every request, the response equals what a
//! direct sequential [`Metasearcher::search`] call produces, regardless
//! of worker count and whether the caches are on.
//!
//! This is the serving analogue of `mp-core::par`'s bit-identical
//! contract: each answer is a pure function of `(Metasearcher,
//! request)`, so threads can only reorder *which* request computes
//! first, never change what any request computes.

use std::sync::Arc;

use mp_core::probing::GreedyPolicy;
use mp_core::{AproConfig, CorrectnessMetric, IndependenceEstimator, Metasearcher, RelevancyDef};
use mp_eval::testbed::{Testbed, TestbedConfig};
use mp_serve::{CacheStatus, ServeConfig, ServeRequest, Server};
use mp_workload::Query;

const K: usize = 2;
const THRESHOLD: f64 = 0.85;
const FUSE_LIMIT: usize = 10;

fn shared_metasearcher(tb: &Testbed) -> Arc<Metasearcher> {
    Metasearcher::with_library(
        tb.mediator.clone(),
        Box::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        tb.library.clone(),
    )
    .shared()
}

fn request(q: &Query) -> ServeRequest {
    ServeRequest::new(q.clone(), K, THRESHOLD)
}

#[test]
fn serving_is_equivalent_to_sequential_search() {
    let tb = Testbed::build(TestbedConfig::tiny(11));
    let queries: Vec<Query> = tb.split.test.queries().to_vec();
    assert_eq!(queries.len(), 200, "tiny testbed ships 200 test queries");

    let ms = shared_metasearcher(&tb);
    let expected: Vec<_> = queries
        .iter()
        .map(|q| {
            let mut policy = GreedyPolicy;
            ms.search(
                q,
                AproConfig {
                    k: K,
                    threshold: THRESHOLD,
                    metric: CorrectnessMetric::Partial,
                    max_probes: None,
                },
                &mut policy,
                FUSE_LIMIT,
            )
        })
        .collect();

    for workers in [1usize, 4, 8] {
        for cache_cap in [0usize, 256] {
            let server = Server::new(Arc::clone(&ms), ServeConfig::new(workers, cache_cap));
            let responses = server.serve_batch(queries.iter().map(request));
            assert_eq!(responses.len(), queries.len());
            for (i, resp) in responses.into_iter().enumerate() {
                let resp = resp.unwrap_or_else(|e| {
                    panic!("query {i} rejected under workers={workers} cache={cache_cap}: {e}")
                });
                assert_eq!(
                    resp.result, expected[i],
                    "query {i} diverged under workers={workers} cache={cache_cap}"
                );
                if cache_cap == 0 {
                    assert_eq!(resp.cache, CacheStatus::Bypass);
                }
            }
            let stats = server.stats();
            assert_eq!(stats.completed, queries.len() as u64);
            assert_eq!(stats.rejects, 0);
            if cache_cap == 0 {
                assert_eq!(stats.hits + stats.dedup_joins, 0, "cap 0 disables caching");
            }
        }
    }
}

#[test]
fn duplicate_heavy_stream_is_answered_from_the_cache() {
    let tb = Testbed::build(TestbedConfig::tiny(12));
    let ms = shared_metasearcher(&tb);
    let unique: Vec<Query> = tb.split.test.queries().iter().take(10).cloned().collect();
    let repeats = 5usize;

    let server = Server::new(Arc::clone(&ms), ServeConfig::new(4, 256));
    let stream = (0..repeats).flat_map(|_| unique.iter().map(request));
    let responses = server.serve_batch(stream);

    let mut policy = GreedyPolicy;
    for (i, resp) in responses.into_iter().enumerate() {
        let resp = resp.expect("no rejection under back-pressure submission");
        let q = &unique[i % unique.len()];
        let direct = ms.search(
            q,
            AproConfig {
                k: K,
                threshold: THRESHOLD,
                metric: CorrectnessMetric::Partial,
                max_probes: None,
            },
            &mut policy,
            FUSE_LIMIT,
        );
        assert_eq!(resp.result, direct, "stream position {i}");
    }

    // Each unique key is computed exactly once; every repeat either hit
    // the cache or joined the in-flight leader. No eviction at cap 256.
    let stats = server.stats();
    let total = (unique.len() * repeats) as u64;
    assert_eq!(stats.completed, total);
    assert_eq!(stats.misses, unique.len() as u64, "one computation per key");
    assert_eq!(stats.hits + stats.dedup_joins, total - unique.len() as u64);
    assert_eq!(server.cache_len(), unique.len());

    // With one worker the drain is strictly FIFO, so every repeat finds
    // the leader already published: all-hits, zero joins, exactly.
    let server = Server::new(Arc::clone(&ms), ServeConfig::new(1, 256));
    let stream = (0..repeats).flat_map(|_| unique.iter().map(request));
    for resp in server.serve_batch(stream) {
        resp.expect("no rejection under back-pressure submission");
    }
    let stats = server.stats();
    assert_eq!(stats.misses, unique.len() as u64);
    assert_eq!(stats.hits, total - unique.len() as u64);
    assert_eq!(stats.dedup_joins, 0);
}
