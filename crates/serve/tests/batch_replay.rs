//! Batched-vs-sequential twin replay across the window × workers ×
//! backend matrix.
//!
//! `mp-core`'s `batch_equivalence` suite proves the lock-step batch
//! executor replays per-request execution bit-for-bit *in isolation*;
//! this suite proves the serving tier preserves that through queues,
//! batch-draining worker pools, in-batch dedup, and caches. For
//! batch windows ∈ {2, 8} × workers ∈ {1, 4}, on flat and sharded
//! backends, with caching off and on:
//!
//! * every served response's [`MetasearchResult`] equals the sequential
//!   flat twin's direct `search` answer exactly (`PartialEq` compares
//!   probe traces, certainties, and fused scores bit-for-bit);
//! * per-database probe counters match the sequential twin exactly —
//!   term-sharing batches save postings traversals, never probes.
//!
//! Twin stacks keep the comparison honest: the served fleet and the
//! sequential fleet are separate `SimulatedHiddenDb` instances built
//! from identical deterministic inputs. The stacks here are *clean*
//! (no failure injection): batched execution reorders the global
//! interleaving of probes across concurrent requests, so it is only
//! transparent over databases whose answers are pure functions of
//! `(database, query)` — the caveat `mp_core::batch` documents. The
//! per-request path keeps its injection-exactness coverage in
//! `shard_replay.rs`.

use std::sync::Arc;

use mp_core::{
    AproConfig, CoreConfig, CorrectnessMetric, EdLibrary, IndependenceEstimator, Metasearcher,
    RelevancyDef, ShardAssignment, ShardedMetasearcher,
};
use mp_corpus::{Scenario, ScenarioConfig, ScenarioKind};
use mp_hidden::{ContentSummary, HiddenWebDatabase, Mediator, SimulatedHiddenDb};
use mp_serve::{ServeConfig, ServeRequest, Server, Ticket};
use mp_workload::{Query, QueryGenConfig, TrainTestSplit};

const K: usize = 1;
const THRESHOLD: f64 = 0.9;
const FUSE_LIMIT: usize = 10;

const WINDOWS: [usize; 2] = [2, 8];
const WORKER_COUNTS: [usize; 2] = [1, 4];

struct Fixture {
    parts: Vec<(String, mp_index::InvertedIndex)>,
    summaries: Vec<ContentSummary>,
    library: EdLibrary,
    /// The request stream: test queries followed by a repeat of the
    /// same queries, so hot keys (in-batch duplicates and cross-batch
    /// cache hits) occur naturally.
    stream: Vec<Query>,
}

fn fixture() -> Fixture {
    let scenario = Scenario::generate(ScenarioConfig::tiny(ScenarioKind::Health, 33));
    let (model, raw_parts) = scenario.into_parts();
    let mut parts = Vec::new();
    let mut summaries = Vec::new();
    for (spec, index) in raw_parts {
        summaries.push(ContentSummary::cooperative(&index));
        parts.push((spec.name, index));
    }
    let split = TrainTestSplit::generate(
        &model,
        60,
        40,
        QueryGenConfig {
            window: 12,
            seed: 33 ^ 0xFEED,
            ..QueryGenConfig::default()
        },
    );
    let clean_dbs: Vec<Arc<dyn HiddenWebDatabase>> = parts
        .iter()
        .map(|(name, index)| {
            Arc::new(SimulatedHiddenDb::new(name.clone(), index.clone()))
                as Arc<dyn HiddenWebDatabase>
        })
        .collect();
    let clean = Mediator::new(clean_dbs, summaries.clone());
    let config = CoreConfig::default().with_threshold(10.0);
    let library = EdLibrary::train(
        &clean,
        &IndependenceEstimator,
        RelevancyDef::DocFrequency,
        split.train.queries(),
        &config,
    );
    clean.reset_probes();
    let unique: Vec<Query> = split.test.queries().iter().take(10).cloned().collect();
    let stream: Vec<Query> = unique.iter().chain(unique.iter()).cloned().collect();
    Fixture {
        parts,
        summaries,
        library,
        stream,
    }
}

/// One independent clean stack (fresh probe counters per twin).
fn clean_stack(fx: &Fixture) -> (Vec<Arc<SimulatedHiddenDb>>, Mediator) {
    let handles: Vec<Arc<SimulatedHiddenDb>> = fx
        .parts
        .iter()
        .map(|(name, index)| Arc::new(SimulatedHiddenDb::new(name.clone(), index.clone())))
        .collect();
    let dbs: Vec<Arc<dyn HiddenWebDatabase>> = handles
        .iter()
        .map(|h| Arc::clone(h) as Arc<dyn HiddenWebDatabase>)
        .collect();
    (handles, Mediator::new(dbs, fx.summaries.clone()))
}

fn probe_counts(handles: &[Arc<SimulatedHiddenDb>]) -> Vec<u64> {
    handles.iter().map(|h| h.probe_count()).collect()
}

fn request(q: &Query) -> ServeRequest {
    ServeRequest::new(q.clone(), K, THRESHOLD)
}

fn apro_config() -> AproConfig {
    AproConfig {
        k: K,
        threshold: THRESHOLD,
        metric: CorrectnessMetric::Partial,
        max_probes: None,
    }
}

/// The sequential flat baseline over the full (duplicated) stream,
/// computing every request independently — what a cache-off server
/// must replay probe-for-probe.
fn sequential_baseline(fx: &Fixture) -> (Vec<mp_core::MetasearchResult>, Vec<u64>) {
    let (handles, mediator) = clean_stack(fx);
    let ms = Metasearcher::with_library(
        mediator,
        Box::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        fx.library.clone(),
    );
    let results = fx
        .stream
        .iter()
        .map(|q| {
            let mut policy = mp_core::GreedyPolicy;
            ms.search(q, apro_config(), &mut policy, FUSE_LIMIT)
        })
        .collect();
    (results, probe_counts(&handles))
}

fn serve_stream(server: &Server, stream: &[Query]) -> Vec<mp_core::MetasearchResult> {
    server.run(|client| {
        let tickets: Vec<_> = stream.iter().map(|q| client.submit(request(q))).collect();
        tickets
            .into_iter()
            .map(|t| t.and_then(Ticket::wait).expect("request served").result)
            .collect::<Vec<_>>()
    })
}

#[test]
fn batched_serving_replays_sequential_flat_twin_exactly() {
    let fx = fixture();
    let (baseline, base_counts) = sequential_baseline(&fx);
    for window in WINDOWS {
        for workers in WORKER_COUNTS {
            // Cache off: every request computes (duplicates included),
            // so probe accounting is comparable request-for-request.
            let (handles, mediator) = clean_stack(&fx);
            let ms = Metasearcher::with_library(
                mediator,
                Box::new(IndependenceEstimator),
                RelevancyDef::DocFrequency,
                fx.library.clone(),
            )
            .shared();
            let server = Server::new(ms, ServeConfig::new(workers, 0).with_batch_window(window));
            let served = serve_stream(&server, &fx.stream);
            assert_eq!(
                served, baseline,
                "served results diverged at window {window} × {workers} workers"
            );
            assert_eq!(
                probe_counts(&handles),
                base_counts,
                "probe accounting diverged at window {window} × {workers} workers"
            );
        }
    }
}

#[test]
fn batched_serving_replays_over_sharded_backends() {
    let fx = fixture();
    let (baseline, base_counts) = sequential_baseline(&fx);
    for shards in [1usize, 3] {
        for workers in WORKER_COUNTS {
            let (handles, mediator) = clean_stack(&fx);
            let sharded = ShardedMetasearcher::with_library(
                &mediator,
                Arc::new(IndependenceEstimator),
                RelevancyDef::DocFrequency,
                &fx.library,
                &ShardAssignment::RoundRobin(shards),
            )
            .shared();
            let server =
                Server::new_sharded(sharded, ServeConfig::new(workers, 0).with_batch_window(8));
            let served = serve_stream(&server, &fx.stream);
            assert_eq!(
                served, baseline,
                "served results diverged at {shards} shards × {workers} workers"
            );
            assert_eq!(
                probe_counts(&handles),
                base_counts,
                "probe accounting diverged at {shards} shards × {workers} workers"
            );
        }
    }
}

#[test]
fn batched_caching_layers_stay_transparent() {
    let fx = fixture();
    let (baseline, _) = sequential_baseline(&fx);
    let unique = fx.stream.len() / 2;

    // Single-pass baseline accounting: with the cache on, each unique
    // request's probes are served exactly once no matter how the
    // duplicates land (in-batch dedup, flight joins, or cache hits).
    let single_pass_counts = {
        let (handles, mediator) = clean_stack(&fx);
        let ms = Metasearcher::with_library(
            mediator,
            Box::new(IndependenceEstimator),
            RelevancyDef::DocFrequency,
            fx.library.clone(),
        );
        for q in &fx.stream[..unique] {
            let mut policy = mp_core::GreedyPolicy;
            ms.search(q, apro_config(), &mut policy, FUSE_LIMIT);
        }
        probe_counts(&handles)
    };

    let (handles, mediator) = clean_stack(&fx);
    let ms = Metasearcher::with_library(
        mediator,
        Box::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        fx.library.clone(),
    )
    .shared();
    let server = Server::new(ms, ServeConfig::new(4, 256).with_batch_window(8));
    let served = serve_stream(&server, &fx.stream);
    assert_eq!(served, baseline, "cached batched results diverged");
    assert_eq!(
        probe_counts(&handles),
        single_pass_counts,
        "each unique request must compute exactly once under the cache"
    );
    let stats = server.stats();
    assert_eq!(stats.completed, fx.stream.len() as u64);
    assert_eq!(
        stats.hits + stats.misses + stats.dedup_joins,
        stats.completed
    );
    assert_eq!(stats.misses, unique as u64, "one compute per unique key");
}

/// A single-worker server whose driver floods the queue before waiting
/// actually forms multi-request batches (the worker's first blocking
/// pop anchors a batch; everything already queued joins the window).
#[test]
fn batches_actually_form_under_backlog() {
    let fx = fixture();
    let (handles, mediator) = clean_stack(&fx);
    let _ = &handles;
    let ms = Metasearcher::with_library(
        mediator,
        Box::new(IndependenceEstimator),
        RelevancyDef::DocFrequency,
        fx.library.clone(),
    )
    .shared();
    let server = Server::new(ms, ServeConfig::new(1, 0).with_batch_window(8));
    let served = serve_stream(&server, &fx.stream);
    assert_eq!(served.len(), fx.stream.len());
    let stats = server.stats();
    assert_eq!(stats.completed, fx.stream.len() as u64);
    // The driver enqueues far faster than a metasearch completes, so a
    // single worker must have drained at least one multi-request batch.
    assert!(
        stats.batches >= 1,
        "expected at least one multi-request batch, stats: {stats:?}"
    );
    assert!(stats.batched_requests >= 2 * stats.batches);
}
