//! Serving counters and the latency histogram behind [`ServeStats`].
//!
//! The core is a block of relaxed atomics owned by the [`crate::Server`]
//! — *local* to the server instance, so tests and multi-tenant
//! processes never read each other's numbers — mirrored into the global
//! `mp-obs` registry (counters `serve.*`, histogram `serve.latency_us`)
//! so `--obs-json` exports the same picture. The local block exists in
//! both builds; only the mirror vanishes when the `obs` feature is off.
//!
//! Latency quantiles reuse the bucket layout
//! [`mp_obs::bounds::LATENCY_US`] and the quantile estimator on
//! [`mp_obs::HistogramRow`], so a p99 read from [`ServeStats`] and one
//! read from an obs snapshot agree bucket-for-bucket.

use std::sync::atomic::{AtomicU64, Ordering};

use mp_obs::{StripedU64, TraceId, WindowWheel};

use crate::server::CacheStatus;

const BOUNDS: &[u64] = mp_obs::bounds::LATENCY_US;

/// Ticks of rolling-latency history the per-server window wheel keeps.
/// Eight matches the stripe width used elsewhere and bounds the merge
/// cost of a rolling read at O(8 · buckets).
pub(crate) const WINDOW_SLOTS: usize = 8;

/// A point-in-time snapshot of one server's counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests answered (with a result; rejections excluded).
    pub completed: u64,
    /// Result-cache hits.
    pub hits: u64,
    /// Result-cache misses that computed (includes cache-off bypasses).
    pub misses: u64,
    /// Requests that joined another request's in-flight computation.
    pub dedup_joins: u64,
    /// RD-vector cache hits (the query-keyed first-level cache).
    pub rd_hits: u64,
    /// RD-vector cache misses.
    pub rd_misses: u64,
    /// Admission-control rejections (queue full → `Overload`).
    pub rejects: u64,
    /// Requests dropped because their deadline had passed.
    pub deadline_misses: u64,
    /// Requests shed by the SLO scheduler: the rolling p99 violated the
    /// configured limit and the request's remaining deadline slack was
    /// below that p99 (see [`crate::batch::should_shed`]).
    pub sheds: u64,
    /// Multi-request batches executed (batches of one are just the
    /// per-request path and are not counted).
    pub batches: u64,
    /// Requests that arrived at a worker inside a multi-request batch.
    pub batched_requests: u64,
    /// Completed-request latencies: observation count.
    pub latency_count: u64,
    /// Sum of latencies, microseconds.
    pub latency_sum_us: u64,
    /// Worst completed-request latency, microseconds.
    pub latency_max_us: u64,
    /// Median latency (bucket upper bound), microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency (bucket upper bound), microseconds.
    pub p99_us: u64,
    /// Rolling median over the last [`WINDOW_SLOTS`] ticks (bucket
    /// upper bound), microseconds. Obs-gated telemetry: 0 when the
    /// `obs` feature is off or recording is disabled.
    pub rolling_p50_us: u64,
    /// Rolling 99th percentile over the window, microseconds (obs-gated
    /// like [`rolling_p50_us`](Self::rolling_p50_us)).
    pub rolling_p99_us: u64,
    /// Rolling worst latency over the window, microseconds (obs-gated).
    pub rolling_max_us: u64,
    /// Completions observed inside the rolling window (obs-gated).
    pub rolling_count: u64,
    /// Window ticks elapsed (advances of the wheel; obs-gated).
    pub window_ticks: u64,
}

/// The live counters behind [`ServeStats`].
///
/// Every per-request counter is a cacheline-striped [`StripedU64`]:
/// concurrent workers completing requests write disjoint cachelines
/// instead of serializing on one shared line, and `snapshot()` merges
/// the stripes on export. Only `latency_max_us` stays a plain atomic —
/// `fetch_max` needs the single authoritative cell.
#[derive(Debug)]
pub(crate) struct StatsCore {
    completed: StripedU64,
    hits: StripedU64,
    misses: StripedU64,
    dedup_joins: StripedU64,
    rd_hits: StripedU64,
    rd_misses: StripedU64,
    rejects: StripedU64,
    deadline_misses: StripedU64,
    sheds: StripedU64,
    batches: StripedU64,
    batched_requests: StripedU64,
    latency_sum_us: StripedU64,
    latency_max_us: AtomicU64,
    latency_buckets: Vec<StripedU64>,
    /// Session-monotonic trace-id allocator, local to this server so a
    /// fresh server always hands out ids 1, 2, 3, … — the determinism
    /// the trace tests pin. Relaxed: ids only need uniqueness and
    /// monotonicity of the counter itself, never cross-field ordering.
    trace_seq: AtomicU64,
    /// Rolling latency deltas, advanced by [`crate::Server::tick_window`].
    window: WindowWheel,
}

impl StatsCore {
    pub(crate) fn new() -> Self {
        Self {
            completed: StripedU64::new(),
            hits: StripedU64::new(),
            misses: StripedU64::new(),
            dedup_joins: StripedU64::new(),
            rd_hits: StripedU64::new(),
            rd_misses: StripedU64::new(),
            rejects: StripedU64::new(),
            deadline_misses: StripedU64::new(),
            sheds: StripedU64::new(),
            batches: StripedU64::new(),
            batched_requests: StripedU64::new(),
            latency_sum_us: StripedU64::new(),
            latency_max_us: AtomicU64::new(0),
            latency_buckets: (0..=BOUNDS.len()).map(|_| StripedU64::new()).collect(),
            trace_seq: AtomicU64::new(0),
            window: WindowWheel::new(BOUNDS, WINDOW_SLOTS),
        }
    }

    /// Allocates the next [`TraceId`] for this server (ids start at 1;
    /// 0 stays "no trace"). Pure arithmetic over a process-local
    /// counter — no clocks, no thread ids (L13-clean by construction).
    pub(crate) fn next_trace_id(&self) -> TraceId {
        TraceId(self.trace_seq.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Closes the current rolling-window tick on both the local wheel
    /// and its global `mp-obs` mirror.
    pub(crate) fn tick(&self) {
        self.window.advance();
        mp_obs::window!("serve.latency_window_us", BOUNDS, WINDOW_SLOTS).advance();
    }

    pub(crate) fn reject(&self) {
        self.rejects.incr();
        mp_obs::counter!("serve.rejects").incr();
    }

    pub(crate) fn deadline_miss(&self) {
        self.deadline_misses.incr();
        mp_obs::counter!("serve.deadline_misses").incr();
    }

    pub(crate) fn shed(&self) {
        self.sheds.incr();
        mp_obs::counter!("serve.sheds").incr();
    }

    /// Records one multi-request batch of `size` requests.
    pub(crate) fn batch(&self, size: usize) {
        self.batches.incr();
        self.batched_requests.add(u64::try_from(size).unwrap_or(0));
        mp_obs::counter!("serve.batches").incr();
        mp_obs::counter!("serve.batched_requests").add(u64::try_from(size).unwrap_or(0));
    }

    /// The rolling p99 the shed predicate consults. Obs-gated like all
    /// window reads: 0 (never sheds) when recording is off.
    pub(crate) fn rolling_p99_us(&self) -> u64 {
        self.window
            .rolling("serve.latency_us.rolling", WINDOW_SLOTS)
            .approx_quantile(0.99)
    }

    /// Test hook: feeds one latency observation into the rolling window
    /// (and only the window — no completion counters), so shed-policy
    /// tests can stage a tail-latency regression without sleeping.
    #[doc(hidden)]
    pub(crate) fn record_window_latency(&self, latency_us: u64) {
        self.window.record(latency_us);
    }

    pub(crate) fn rd_lookup(&self, hit: bool) {
        if hit {
            self.rd_hits.incr();
            mp_obs::counter!("serve.rd_cache_hits").incr();
        } else {
            self.rd_misses.incr();
            mp_obs::counter!("serve.rd_cache_misses").incr();
        }
    }

    pub(crate) fn complete(&self, status: CacheStatus, latency_us: u64) {
        self.completed.incr();
        match status {
            CacheStatus::Hit => {
                self.hits.incr();
                mp_obs::counter!("serve.cache_hits").incr();
            }
            CacheStatus::Joined => {
                self.dedup_joins.incr();
                mp_obs::counter!("serve.dedup_joins").incr();
            }
            CacheStatus::Miss | CacheStatus::Bypass => {
                self.misses.incr();
                mp_obs::counter!("serve.cache_misses").incr();
            }
        }
        self.latency_sum_us.add(latency_us);
        self.latency_max_us.fetch_max(latency_us, Ordering::Relaxed);
        let idx = BOUNDS.partition_point(|&b| b < latency_us);
        self.latency_buckets[idx].incr();
        self.window.record(latency_us);
        // The cumulative mirror records exemplars: called while the
        // request's TraceScope is still active, so the bucket remembers
        // this TraceId.
        mp_obs::histogram!("serve.latency_us", BOUNDS).record(latency_us);
        mp_obs::window!("serve.latency_window_us", BOUNDS, WINDOW_SLOTS).record(latency_us);
    }

    pub(crate) fn snapshot(&self) -> ServeStats {
        let buckets: Vec<u64> = self.latency_buckets.iter().map(|b| b.get()).collect();
        let latency_count: u64 = buckets.iter().sum();
        let latency_max_us = self.latency_max_us.load(Ordering::Relaxed);
        // Reuse mp-obs's bucket-quantile estimator so ServeStats and an
        // obs snapshot of `serve.latency_us` can never disagree.
        let row = mp_obs::HistogramRow {
            name: "serve.latency_us".to_string(),
            bounds: BOUNDS.to_vec(),
            buckets,
            count: latency_count,
            sum: self.latency_sum_us.get(),
            min: 0,
            max: latency_max_us,
            exemplars: Vec::new(),
        };
        let rolling = self
            .window
            .rolling("serve.latency_us.rolling", WINDOW_SLOTS);
        ServeStats {
            completed: self.completed.get(),
            hits: self.hits.get(),
            misses: self.misses.get(),
            dedup_joins: self.dedup_joins.get(),
            rd_hits: self.rd_hits.get(),
            rd_misses: self.rd_misses.get(),
            rejects: self.rejects.get(),
            deadline_misses: self.deadline_misses.get(),
            sheds: self.sheds.get(),
            batches: self.batches.get(),
            batched_requests: self.batched_requests.get(),
            latency_count,
            latency_sum_us: row.sum,
            latency_max_us,
            p50_us: row.approx_quantile(0.5),
            p99_us: row.approx_quantile(0.99),
            rolling_p50_us: rolling.approx_quantile(0.5),
            rolling_p99_us: rolling.approx_quantile(0.99),
            rolling_max_us: rolling.max,
            rolling_count: rolling.count,
            window_ticks: self.window.ticks(),
        }
    }
}

impl ServeStats {
    /// Cache hit rate over completed requests (0 when none completed).
    pub fn hit_rate(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.hits as f64 / self.completed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_identity() {
        let core = StatsCore::new();
        core.complete(CacheStatus::Miss, 100);
        core.complete(CacheStatus::Hit, 10);
        core.complete(CacheStatus::Joined, 20);
        core.complete(CacheStatus::Bypass, 30);
        core.reject();
        core.deadline_miss();
        core.shed();
        core.batch(3);
        let s = core.snapshot();
        assert_eq!(s.completed, 4);
        assert_eq!(s.hits + s.misses + s.dedup_joins, s.completed);
        assert_eq!((s.hits, s.misses, s.dedup_joins), (1, 2, 1));
        assert_eq!((s.rejects, s.deadline_misses, s.sheds), (1, 1, 1));
        assert_eq!((s.batches, s.batched_requests), (1, 3));
        assert_eq!(s.latency_count, 4);
        assert_eq!(s.latency_sum_us, 160);
        assert_eq!(s.latency_max_us, 100);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn rolling_window_forgets_old_ticks() {
        mp_obs::set_enabled(true);
        let core = StatsCore::new();
        core.complete(CacheStatus::Miss, 400_000);
        // Push the slow completion past the window horizon.
        for _ in 0..WINDOW_SLOTS {
            core.tick();
        }
        core.complete(CacheStatus::Miss, 40);
        let s = core.snapshot();
        assert_eq!(s.window_ticks, WINDOW_SLOTS as u64);
        assert_eq!(s.rolling_count, 1, "old tick evicted from the window");
        assert_eq!(s.rolling_max_us, 40);
        assert!(s.rolling_p99_us <= BOUNDS[0]);
        // The cumulative view still remembers everything.
        assert_eq!(s.latency_count, 2);
        assert_eq!(s.latency_max_us, 400_000);
    }

    #[test]
    fn trace_ids_are_sequential_from_one() {
        let core = StatsCore::new();
        assert_eq!(core.next_trace_id(), TraceId(1));
        assert_eq!(core.next_trace_id(), TraceId(2));
        assert_eq!(core.next_trace_id(), TraceId(3));
    }

    #[test]
    fn quantiles_track_the_buckets() {
        let core = StatsCore::new();
        for _ in 0..99 {
            core.complete(CacheStatus::Miss, 40); // ≤ first bound
        }
        core.complete(CacheStatus::Miss, 400_000);
        let s = core.snapshot();
        assert_eq!(s.p50_us, BOUNDS[0]);
        assert!(s.p99_us <= BOUNDS[0], "99/100 observations in bucket 0");
        assert_eq!(s.latency_max_us, 400_000);
    }
}
