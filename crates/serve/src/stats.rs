//! Serving counters and the latency histogram behind [`ServeStats`].
//!
//! The core is a block of relaxed atomics owned by the [`crate::Server`]
//! — *local* to the server instance, so tests and multi-tenant
//! processes never read each other's numbers — mirrored into the global
//! `mp-obs` registry (counters `serve.*`, histogram `serve.latency_us`)
//! so `--obs-json` exports the same picture. The local block exists in
//! both builds; only the mirror vanishes when the `obs` feature is off.
//!
//! Latency quantiles reuse the bucket layout
//! [`mp_obs::bounds::LATENCY_US`] and the quantile estimator on
//! [`mp_obs::HistogramRow`], so a p99 read from [`ServeStats`] and one
//! read from an obs snapshot agree bucket-for-bucket.

use std::sync::atomic::{AtomicU64, Ordering};

use mp_obs::StripedU64;

use crate::server::CacheStatus;

const BOUNDS: &[u64] = mp_obs::bounds::LATENCY_US;

/// A point-in-time snapshot of one server's counters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests answered (with a result; rejections excluded).
    pub completed: u64,
    /// Result-cache hits.
    pub hits: u64,
    /// Result-cache misses that computed (includes cache-off bypasses).
    pub misses: u64,
    /// Requests that joined another request's in-flight computation.
    pub dedup_joins: u64,
    /// RD-vector cache hits (the query-keyed first-level cache).
    pub rd_hits: u64,
    /// RD-vector cache misses.
    pub rd_misses: u64,
    /// Admission-control rejections (queue full → `Overload`).
    pub rejects: u64,
    /// Requests dropped because their deadline had passed.
    pub deadline_misses: u64,
    /// Completed-request latencies: observation count.
    pub latency_count: u64,
    /// Sum of latencies, microseconds.
    pub latency_sum_us: u64,
    /// Worst completed-request latency, microseconds.
    pub latency_max_us: u64,
    /// Median latency (bucket upper bound), microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency (bucket upper bound), microseconds.
    pub p99_us: u64,
}

/// The live counters behind [`ServeStats`].
///
/// Every per-request counter is a cacheline-striped [`StripedU64`]:
/// concurrent workers completing requests write disjoint cachelines
/// instead of serializing on one shared line, and `snapshot()` merges
/// the stripes on export. Only `latency_max_us` stays a plain atomic —
/// `fetch_max` needs the single authoritative cell.
#[derive(Debug, Default)]
pub(crate) struct StatsCore {
    completed: StripedU64,
    hits: StripedU64,
    misses: StripedU64,
    dedup_joins: StripedU64,
    rd_hits: StripedU64,
    rd_misses: StripedU64,
    rejects: StripedU64,
    deadline_misses: StripedU64,
    latency_sum_us: StripedU64,
    latency_max_us: AtomicU64,
    latency_buckets: Vec<StripedU64>,
}

impl StatsCore {
    pub(crate) fn new() -> Self {
        Self {
            latency_buckets: (0..=BOUNDS.len()).map(|_| StripedU64::new()).collect(),
            ..Self::default()
        }
    }

    pub(crate) fn reject(&self) {
        self.rejects.incr();
        mp_obs::counter!("serve.rejects").incr();
    }

    pub(crate) fn deadline_miss(&self) {
        self.deadline_misses.incr();
        mp_obs::counter!("serve.deadline_misses").incr();
    }

    pub(crate) fn rd_lookup(&self, hit: bool) {
        if hit {
            self.rd_hits.incr();
            mp_obs::counter!("serve.rd_cache_hits").incr();
        } else {
            self.rd_misses.incr();
            mp_obs::counter!("serve.rd_cache_misses").incr();
        }
    }

    pub(crate) fn complete(&self, status: CacheStatus, latency_us: u64) {
        self.completed.incr();
        match status {
            CacheStatus::Hit => {
                self.hits.incr();
                mp_obs::counter!("serve.cache_hits").incr();
            }
            CacheStatus::Joined => {
                self.dedup_joins.incr();
                mp_obs::counter!("serve.dedup_joins").incr();
            }
            CacheStatus::Miss | CacheStatus::Bypass => {
                self.misses.incr();
                mp_obs::counter!("serve.cache_misses").incr();
            }
        }
        self.latency_sum_us.add(latency_us);
        self.latency_max_us.fetch_max(latency_us, Ordering::Relaxed);
        let idx = BOUNDS.partition_point(|&b| b < latency_us);
        self.latency_buckets[idx].incr();
        mp_obs::histogram!("serve.latency_us", BOUNDS).record(latency_us);
    }

    pub(crate) fn snapshot(&self) -> ServeStats {
        let buckets: Vec<u64> = self.latency_buckets.iter().map(|b| b.get()).collect();
        let latency_count: u64 = buckets.iter().sum();
        let latency_max_us = self.latency_max_us.load(Ordering::Relaxed);
        // Reuse mp-obs's bucket-quantile estimator so ServeStats and an
        // obs snapshot of `serve.latency_us` can never disagree.
        let row = mp_obs::HistogramRow {
            name: "serve.latency_us".to_string(),
            bounds: BOUNDS.to_vec(),
            buckets,
            count: latency_count,
            sum: self.latency_sum_us.get(),
            min: 0,
            max: latency_max_us,
        };
        ServeStats {
            completed: self.completed.get(),
            hits: self.hits.get(),
            misses: self.misses.get(),
            dedup_joins: self.dedup_joins.get(),
            rd_hits: self.rd_hits.get(),
            rd_misses: self.rd_misses.get(),
            rejects: self.rejects.get(),
            deadline_misses: self.deadline_misses.get(),
            latency_count,
            latency_sum_us: row.sum,
            latency_max_us,
            p50_us: row.approx_quantile(0.5),
            p99_us: row.approx_quantile(0.99),
        }
    }
}

impl ServeStats {
    /// Cache hit rate over completed requests (0 when none completed).
    pub fn hit_rate(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.hits as f64 / self.completed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_identity() {
        let core = StatsCore::new();
        core.complete(CacheStatus::Miss, 100);
        core.complete(CacheStatus::Hit, 10);
        core.complete(CacheStatus::Joined, 20);
        core.complete(CacheStatus::Bypass, 30);
        core.reject();
        core.deadline_miss();
        let s = core.snapshot();
        assert_eq!(s.completed, 4);
        assert_eq!(s.hits + s.misses + s.dedup_joins, s.completed);
        assert_eq!((s.hits, s.misses, s.dedup_joins), (1, 2, 1));
        assert_eq!((s.rejects, s.deadline_misses), (1, 1));
        assert_eq!(s.latency_count, 4);
        assert_eq!(s.latency_sum_us, 160);
        assert_eq!(s.latency_max_us, 100);
    }

    #[test]
    fn quantiles_track_the_buckets() {
        let core = StatsCore::new();
        for _ in 0..99 {
            core.complete(CacheStatus::Miss, 40); // ≤ first bound
        }
        core.complete(CacheStatus::Miss, 400_000);
        let s = core.snapshot();
        assert_eq!(s.p50_us, BOUNDS[0]);
        assert!(s.p99_us <= BOUNDS[0], "99/100 observations in bucket 0");
        assert_eq!(s.latency_max_us, 400_000);
    }
}
