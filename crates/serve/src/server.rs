//! The server: shared state, request/response types, and the handler.
//!
//! A [`Server`] owns an `Arc<Metasearcher>` plus two caches and a stats
//! block; worker threads (see [`crate::pool`]) call
//! [`Server::handle`](Server) on jobs drained from the bounded queue.
//! The caches are layered the way the pipeline is:
//!
//! * an **RD cache** keyed by the [`Query`] alone — the relevancy
//!   distributions depend only on the query (estimates + trained EDs),
//!   so every `(k, threshold, policy)` variant of a query shares them;
//! * a **result cache** keyed by the full [`CacheKey`] (query terms,
//!   `k`, threshold bits, metric, probe budget, policy), holding
//!   completed [`MetasearchResult`]s.
//!
//! **Why results are worker-count-invariant.** Each request's answer is
//! a pure function of `(Metasearcher, request)`: the facade is shared
//! immutably, every policy is constructed fresh per computation from
//! its [`PolicySpec`] (a seeded `RandomPolicy` starts from the same
//! seed every time), and the engine underneath is deterministic by the
//! `mp-core::par` contract. Threads only change *which* request
//! computes first; a cache hit or a dedup join therefore hands back a
//! clone of exactly the value the computation would have produced.

use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mp_core::probing::{
    ByEstimatePolicy, GreedyPolicy, ProbePolicy, RandomPolicy, UncertaintyPolicy,
};
use mp_core::{AproConfig, CorrectnessMetric, MetasearchResult, Metasearcher, ShardedMetasearcher};
use mp_stats::Discrete;
use mp_workload::Query;

use crate::cache::{CacheOutcome, Claim, FlightWaiter, ShardedCache};
use crate::pool;
use crate::queue::BoundedQueue;
use crate::stats::{ServeStats, StatsCore};

/// A probing policy *specification* — cheap to clone, hash, and
/// compare, and buildable into a fresh [`ProbePolicy`] per computation.
/// Part of the cache key: two requests share a cached result only when
/// they would have probed identically.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PolicySpec {
    /// The paper's greedy usefulness policy (stateless).
    Greedy,
    /// Uniformly random among unprobed databases, from a fixed seed.
    Random(u64),
    /// Probe the database that currently looks most relevant.
    ByEstimate,
    /// Probe the database with the highest RD variance.
    MaxUncertainty,
}

impl PolicySpec {
    /// Builds a fresh policy instance for one computation.
    pub fn build(&self) -> Box<dyn ProbePolicy> {
        match self {
            PolicySpec::Greedy => Box::new(GreedyPolicy),
            PolicySpec::Random(seed) => Box::new(RandomPolicy::new(*seed)),
            PolicySpec::ByEstimate => Box::new(ByEstimatePolicy),
            PolicySpec::MaxUncertainty => Box::new(UncertaintyPolicy),
        }
    }

    /// Resolves a CLI-style policy name (`random` takes `seed`).
    pub fn parse(name: &str, seed: u64) -> Option<Self> {
        match name {
            "greedy" => Some(PolicySpec::Greedy),
            "random" => Some(PolicySpec::Random(seed)),
            "by-estimate" => Some(PolicySpec::ByEstimate),
            "max-uncertainty" => Some(PolicySpec::MaxUncertainty),
            _ => None,
        }
    }

    /// The stable policy name (matches [`ProbePolicy::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            PolicySpec::Greedy => "greedy",
            PolicySpec::Random(_) => "random",
            PolicySpec::ByEstimate => "by-estimate",
            PolicySpec::MaxUncertainty => "max-uncertainty",
        }
    }
}

/// One query-serving request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// The analyzed keyword query.
    pub query: Query,
    /// Number of databases to select.
    pub k: usize,
    /// Required certainty threshold `t`.
    pub threshold: f64,
    /// Correctness metric the certainty is measured under.
    pub metric: CorrectnessMetric,
    /// Optional probe budget.
    pub max_probes: Option<usize>,
    /// Probing policy specification.
    pub policy: PolicySpec,
    /// Optional deadline, measured from submission; a request still
    /// queued past its deadline is answered `DeadlineExceeded` instead
    /// of computed.
    pub deadline: Option<Duration>,
}

impl ServeRequest {
    /// A request with the common defaults: partial correctness, no
    /// probe budget, greedy policy, no deadline.
    pub fn new(query: Query, k: usize, threshold: f64) -> Self {
        Self {
            query,
            k,
            threshold,
            metric: CorrectnessMetric::Partial,
            max_probes: None,
            policy: PolicySpec::Greedy,
            deadline: None,
        }
    }

    /// Replaces the probing policy.
    pub fn with_policy(mut self, policy: PolicySpec) -> Self {
        self.policy = policy;
        self
    }

    /// Sets a deadline relative to submission.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    fn apro_config(&self) -> AproConfig {
        AproConfig {
            k: self.k,
            threshold: self.threshold,
            metric: self.metric,
            max_probes: self.max_probes,
        }
    }
}

/// The result-cache identity of a request: everything that influences
/// the computed answer. The threshold enters by *bit pattern* so the
/// key is `Eq`-clean without any float comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    query: Query,
    k: usize,
    threshold_bits: u64,
    metric: CorrectnessMetric,
    max_probes: Option<usize>,
    policy: PolicySpec,
}

impl CacheKey {
    fn of(req: &ServeRequest) -> Self {
        Self {
            query: req.query.clone(),
            k: req.k,
            threshold_bits: req.threshold.to_bits(),
            metric: req.metric,
            max_probes: req.max_probes,
            policy: req.policy.clone(),
        }
    }
}

impl Hash for CacheKey {
    fn hash<H: Hasher>(&self, h: &mut H) {
        // The query dominates the key's entropy; its stable FNV-1a
        // fingerprint feeds the hasher instead of term-by-term writes.
        h.write_u64(self.query.fingerprint());
        h.write_usize(self.k);
        h.write_u64(self.threshold_bits);
        h.write_u8(match self.metric {
            CorrectnessMetric::Absolute => 0,
            CorrectnessMetric::Partial => 1,
        });
        self.max_probes.hash(h);
        self.policy.hash(h);
    }
}

/// How a completed request's result was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Computed; the result cache had no entry.
    Miss,
    /// Served from the result cache.
    Hit,
    /// Joined a concurrent identical request's computation.
    Joined,
    /// Computed with caching disabled (capacity 0).
    Bypass,
}

/// A completed request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// The metasearch answer (identical to a direct
    /// [`Metasearcher::search`] call with the same parameters).
    pub result: MetasearchResult,
    /// How the result was obtained.
    pub cache: CacheStatus,
    /// Submission-to-completion latency, microseconds.
    pub latency_us: u64,
}

/// Why a request was not served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control: the request queue was full.
    Overload,
    /// The request's deadline passed before a worker picked it up.
    DeadlineExceeded,
    /// SLO shedding: the rolling p99 violated the configured limit
    /// ([`ServeConfig::shed_p99_ms`]) and this request's remaining
    /// deadline slack was below that p99, so computing it would have
    /// burned capacity on an answer that would arrive too late anyway.
    Shed,
    /// The serving session shut down before the request ran.
    Closed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overload => write!(f, "request queue full (overload)"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded before execution"),
            ServeError::Shed => write!(f, "shed by SLO scheduler (p99 over limit)"),
            ServeError::Closed => write!(f, "serving session closed"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Serving-layer tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads draining the request queue (min 1).
    pub workers: usize,
    /// Bounded request-queue capacity (admission control depth).
    pub queue_cap: usize,
    /// Result-cache capacity in entries; 0 disables caching and
    /// deduplication entirely.
    pub cache_cap: usize,
    /// RD-cache capacity in entries (follows `cache_cap` semantics).
    pub rd_cache_cap: usize,
    /// Shards per cache (contention control).
    pub cache_shards: usize,
    /// Fused hits returned per query.
    pub fuse_limit: usize,
    /// Collect per-request waterfalls: each request runs under a
    /// [`mp_obs::TraceScope`], finished traces drain via
    /// [`Server::drain_traces`], and the worst ones persist in the
    /// flight recorder. Requires the `obs` feature and runtime
    /// recording to actually capture anything.
    pub trace: bool,
    /// Flights (slow / deadline-missed / shed traces) the flight
    /// recorder retains; 0 disables it.
    pub flight_recorder_cap: usize,
    /// Maximum requests a worker drains from the queue into one batch
    /// (min 1; 1 = per-request execution, the classic path). A worker
    /// blocks for the *first* request only — the rest of the window is
    /// whatever is already queued, so an idle server never waits to
    /// fill a batch. Cold misses inside a batch that share query terms
    /// are executed through the batched engine (one postings traversal
    /// per shared term), bit-identical to per-request execution.
    pub batch_window: usize,
    /// SLO shed limit: when set, a request whose remaining deadline
    /// slack is below the rolling p99 latency while that p99 exceeds
    /// this limit is answered [`ServeError::Shed`] instead of computed.
    /// `None` disables shedding. Deadline-free requests are never shed.
    /// The rolling p99 is obs-gated: with recording off it reads 0 and
    /// nothing sheds.
    pub shed_p99_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_cap: 64,
            cache_cap: 1024,
            rd_cache_cap: 1024,
            cache_shards: 8,
            fuse_limit: 10,
            trace: false,
            flight_recorder_cap: 16,
            batch_window: 1,
            shed_p99_ms: None,
        }
    }
}

impl ServeConfig {
    /// A config with `workers` workers and `cache_cap` result-cache
    /// entries (RD cache sized identically); other knobs default.
    pub fn new(workers: usize, cache_cap: usize) -> Self {
        Self {
            workers,
            cache_cap,
            rd_cache_cap: cache_cap,
            ..Self::default()
        }
    }

    /// Toggles per-request trace collection.
    #[must_use]
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the batch window (see [`ServeConfig::batch_window`]).
    #[must_use]
    pub fn with_batch_window(mut self, window: usize) -> Self {
        self.batch_window = window;
        self
    }

    /// Sets the SLO shed limit (see [`ServeConfig::shed_p99_ms`]).
    #[must_use]
    pub fn with_shed_p99_ms(mut self, limit_ms: Option<u64>) -> Self {
        self.shed_p99_ms = limit_ms;
        self
    }
}

/// The write-once response cell a [`Ticket`] waits on.
pub(crate) struct ResponseSlot {
    // mp-lint: allow(L9): per-request write-once cell — caller/worker pair, no sharing
    cell: std::sync::Mutex<Option<Result<ServeResponse, ServeError>>>,
    // mp-lint: allow(L9): signaled exactly once per request, off the probe loop
    ready: std::sync::Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        Self {
            // mp-lint: allow(L9): constructing the per-request slot, not acquiring
            cell: std::sync::Mutex::new(None),
            // mp-lint: allow(L9): constructing the per-request slot, not acquiring
            ready: std::sync::Condvar::new(),
        }
    }

    pub(crate) fn fill(&self, value: Result<ServeResponse, ServeError>) {
        let mut cell = self
            .cell
            .lock()
            .expect("mp-serve response slot mutex poisoned");
        debug_assert!(cell.is_none(), "a response slot is filled exactly once");
        *cell = Some(value);
        drop(cell);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<ServeResponse, ServeError> {
        let mut cell = self
            .cell
            .lock()
            .expect("mp-serve response slot mutex poisoned");
        loop {
            if let Some(value) = cell.take() {
                return value;
            }
            cell = self
                .ready
                .wait(cell)
                .expect("mp-serve response slot mutex poisoned");
        }
    }
}

/// A claim on one submitted request's eventual response.
pub struct Ticket {
    slot: Arc<ResponseSlot>,
}

impl Ticket {
    /// Blocks until the request completes (or is rejected post-queue).
    pub fn wait(self) -> Result<ServeResponse, ServeError> {
        self.slot.wait()
    }
}

/// One queued unit of work.
pub(crate) struct Job {
    pub(crate) req: ServeRequest,
    pub(crate) submitted: Instant,
    pub(crate) slot: Arc<ResponseSlot>,
    /// The request's deterministic id (allocated at submit; see
    /// [`StatsCore::next_trace_id`]).
    pub(crate) trace: mp_obs::TraceId,
    /// Queue depth observed at submit time.
    pub(crate) depth_at_submit: u32,
    /// Queue depth observed when a worker dequeued this job (set by the
    /// pool just before [`Server::handle`]).
    pub(crate) depth_at_dequeue: u32,
}

/// The submission handle available inside [`Server::run`]'s driver.
pub struct Client<'s> {
    server: &'s Server,
    queue: &'s BoundedQueue<Job>,
}

impl<'s> Client<'s> {
    pub(crate) fn new(server: &'s Server, queue: &'s BoundedQueue<Job>) -> Self {
        Self { server, queue }
    }

    fn job(&self, req: ServeRequest) -> (Job, Ticket) {
        let slot = Arc::new(ResponseSlot::new());
        let ticket = Ticket {
            slot: Arc::clone(&slot),
        };
        (
            Job {
                req,
                submitted: Instant::now(),
                slot,
                trace: self.server.stats.next_trace_id(),
                depth_at_submit: u32::try_from(self.queue.len()).unwrap_or(u32::MAX),
                depth_at_dequeue: 0,
            },
            ticket,
        )
    }

    /// Submits without blocking; a full queue is an [`ServeError::Overload`]
    /// rejection (the admission-control path).
    pub fn try_submit(&self, req: ServeRequest) -> Result<Ticket, ServeError> {
        let (job, ticket) = self.job(req);
        match self.queue.try_push(job) {
            Ok(()) => Ok(ticket),
            Err(crate::queue::TryPushError::Full(job)) => {
                self.server.stats.reject();
                if self.server.config.trace {
                    // A shed request never reaches a worker, so build
                    // its (tiny) trace here: the id and the queue state
                    // that caused the rejection.
                    let mut trace = mp_obs::Trace::new(job.trace);
                    trace.annotate("serve.shed", 1);
                    trace.annotate(
                        "serve.queue_depth_at_submit",
                        u64::from(job.depth_at_submit),
                    );
                    self.server
                        .recorder
                        .offer(trace, 0, mp_obs::FlightReason::Shed);
                }
                Err(ServeError::Overload)
            }
            Err(crate::queue::TryPushError::Closed(_)) => Err(ServeError::Closed),
        }
    }

    /// Submits, waiting for queue space (back-pressure instead of
    /// shedding); fails only when the session is closing.
    pub fn submit(&self, req: ServeRequest) -> Result<Ticket, ServeError> {
        let (job, ticket) = self.job(req);
        match self.queue.push_blocking(job) {
            Ok(()) => Ok(ticket),
            Err(_) => Err(ServeError::Closed),
        }
    }

    /// The server this client submits to.
    pub fn server(&self) -> &Server {
        self.server
    }
}

/// The selection engine behind a [`Server`]: one flat facade or a
/// partitioned fleet. The two answer every request bit-identically
/// (the shard layer's cross-topology equivalence contract), so the
/// serving tier treats the choice as a deployment knob, not a semantic
/// one — caches, dedup, and stats are backend-agnostic. Cloning is
/// cheap: both variants hold the engine behind an `Arc`.
#[derive(Clone)]
pub enum Backend {
    /// The unsharded [`Metasearcher`] facade.
    Flat(Arc<Metasearcher>),
    /// The scatter-gather [`ShardedMetasearcher`] over a partitioned
    /// fleet, probes routed to the owning shard.
    Sharded(Arc<ShardedMetasearcher>),
}

impl Backend {
    // mp-lint: allow(L6): pure dispatch — both engines assert normalization at derivation
    fn rds(&self, query: &Query) -> Vec<Discrete> {
        match self {
            Backend::Flat(ms) => ms.rds(query),
            Backend::Sharded(sms) => sms.rds(query),
        }
    }

    fn search_with_rds(
        &self,
        query: &Query,
        rds: Vec<Discrete>,
        config: AproConfig,
        policy: &mut dyn mp_core::probing::ProbePolicy,
        fuse_limit: usize,
    ) -> MetasearchResult {
        match self {
            Backend::Flat(ms) => ms.search_with_rds(query, rds, config, policy, fuse_limit),
            Backend::Sharded(sms) => sms.search_with_rds(query, rds, config, policy, fuse_limit),
        }
    }

    fn search_batch_with_rds(
        &self,
        items: Vec<mp_core::BatchQuery<'_>>,
        fuse_limit: usize,
    ) -> Vec<MetasearchResult> {
        match self {
            Backend::Flat(ms) => ms.search_batch_with_rds(items, fuse_limit),
            Backend::Sharded(sms) => sms.search_batch_with_rds(items, fuse_limit),
        }
    }

    /// The fleet-wide scratch warm target: the largest advertised
    /// database size across *every* shard. The pool once read a single
    /// global mediator here — a latent single-owner assumption that
    /// would under-warm workers serving multi-shard fleets.
    pub fn max_size_hint(&self) -> usize {
        match self {
            Backend::Flat(ms) => ms.mediator().max_size_hint(),
            Backend::Sharded(sms) => sms.max_size_hint(),
        }
    }

    /// Total databases behind this backend.
    pub fn n_databases(&self) -> usize {
        match self {
            Backend::Flat(ms) => ms.mediator().len(),
            Backend::Sharded(sms) => sms.n_databases(),
        }
    }
}

/// A concurrent, cache-backed serving front-end over a shared
/// [`Metasearcher`] (or its sharded twin — see [`Backend`]).
pub struct Server {
    ms: Backend,
    config: ServeConfig,
    results: ShardedCache<CacheKey, MetasearchResult>,
    rds: ShardedCache<Query, Vec<Discrete>>,
    pub(crate) stats: StatsCore,
    /// Finished per-request waterfalls, striped per worker thread (no
    /// cross-worker lock on the completion path).
    sink: mp_obs::TraceSink,
    /// The worst traces (slow / deadline-missed / shed), bounded.
    pub(crate) recorder: mp_obs::FlightRecorder,
}

impl Server {
    /// Builds a server over a shared trained facade.
    pub fn new(ms: Arc<Metasearcher>, config: ServeConfig) -> Self {
        Self::with_backend(Backend::Flat(ms), config)
    }

    /// Builds a server over a partitioned fleet (see [`Backend`]):
    /// responses stay bit-identical to [`Server::new`] over the
    /// unsharded twin at every worker count.
    pub fn new_sharded(sms: Arc<ShardedMetasearcher>, config: ServeConfig) -> Self {
        Self::with_backend(Backend::Sharded(sms), config)
    }

    /// Builds a server over an explicit backend.
    pub fn with_backend(ms: Backend, config: ServeConfig) -> Self {
        let shards = config.cache_shards.max(1);
        Self {
            results: ShardedCache::new(config.cache_cap, shards),
            rds: ShardedCache::new(config.rd_cache_cap, shards),
            ms,
            stats: StatsCore::new(),
            sink: mp_obs::TraceSink::new(),
            recorder: mp_obs::FlightRecorder::new(config.flight_recorder_cap),
            config,
        }
    }

    /// The selection engine behind this server.
    pub fn backend(&self) -> &Backend {
        &self.ms
    }

    /// The shared flat metasearcher; `None` when the backend is
    /// sharded (use [`Server::backend`] for backend-agnostic access).
    pub fn metasearcher(&self) -> Option<&Arc<Metasearcher>> {
        match &self.ms {
            Backend::Flat(ms) => Some(ms),
            Backend::Sharded(_) => None,
        }
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// A snapshot of this server's counters and latency quantiles.
    pub fn stats(&self) -> ServeStats {
        self.stats.snapshot()
    }

    /// Closes the current rolling-latency tick (see
    /// [`ServeStats::rolling_p99_us`]): call once per batch, pass, or
    /// wall-clock interval — whatever "tick" means to the driver.
    pub fn tick_window(&self) {
        self.stats.tick();
    }

    /// Removes and returns every finished per-request trace collected
    /// since the last drain, sorted by [`mp_obs::TraceId`]. Empty
    /// unless [`ServeConfig::trace`] is set (and the `obs` feature is
    /// compiled in with recording enabled).
    pub fn drain_traces(&self) -> Vec<mp_obs::Trace> {
        self.sink.drain()
    }

    /// The flight recorder holding the worst request traces.
    pub fn flight_recorder(&self) -> &mp_obs::FlightRecorder {
        &self.recorder
    }

    /// Entries currently in the result cache.
    pub fn cache_len(&self) -> usize {
        self.results.len()
    }

    /// Drops both caches' entries (stats are kept).
    pub fn clear_cache(&self) {
        self.results.clear();
        self.rds.clear();
    }

    /// Runs a serving session: spawns the worker pool, hands the
    /// driver a [`Client`], and tears the pool down (draining accepted
    /// requests) when the driver returns.
    pub fn run<R>(&self, driver: impl FnOnce(&Client<'_>) -> R) -> R {
        pool::run_scoped(self, driver)
    }

    /// Convenience wrapper: submits every request with back-pressure
    /// and returns the responses in request order.
    pub fn serve_batch(
        &self,
        requests: impl IntoIterator<Item = ServeRequest>,
    ) -> Vec<Result<ServeResponse, ServeError>> {
        self.run(move |client| {
            let tickets: Vec<Result<Ticket, ServeError>> =
                requests.into_iter().map(|r| client.submit(r)).collect();
            tickets
                .into_iter()
                .map(|t| t.and_then(Ticket::wait))
                .collect()
        })
    }

    /// The full per-request computation (both caches cold).
    fn compute(&self, req: &ServeRequest) -> MetasearchResult {
        let (rds, rd_outcome) = self
            .rds
            .get_or_compute(req.query.clone(), || self.ms.rds(&req.query));
        self.stats.rd_lookup(rd_outcome == CacheOutcome::Hit);
        let mut policy = req.policy.build();
        self.ms.search_with_rds(
            &req.query,
            rds,
            req.apro_config(),
            policy.as_mut(),
            self.config.fuse_limit,
        )
    }

    /// Executes one job: deadline check, cache/dedup lookup, compute,
    /// stats, response. Called from worker threads.
    ///
    /// When [`ServeConfig::trace`] is set the whole execution runs
    /// under a [`mp_obs::TraceScope`] anchored at the *submit* instant,
    /// so the waterfall starts with the queue wait; the finished trace
    /// lands in this worker's sink shard and is offered to the flight
    /// recorder (reason `Slow`, or `DeadlineMissed` on the early-out).
    pub(crate) fn handle(&self, job: Job) {
        let Job {
            req,
            submitted,
            slot,
            trace,
            depth_at_submit,
            depth_at_dequeue,
        } = job;
        let queue_wait_ns = u64::try_from(submitted.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let scope = self
            .config
            .trace
            .then(|| mp_obs::TraceScope::begin(trace, submitted));
        if scope.is_some() {
            mp_obs::trace_stage("serve.queue_wait", 0, queue_wait_ns);
            mp_obs::trace_annotate("serve.queue_depth_at_submit", u64::from(depth_at_submit));
            mp_obs::trace_annotate("serve.queue_depth_at_dequeue", u64::from(depth_at_dequeue));
        }
        if let Some(deadline) = req.deadline {
            let elapsed = submitted.elapsed();
            if elapsed > deadline {
                self.stats.deadline_miss();
                if let Some(finished) = scope.and_then(mp_obs::TraceScope::finish) {
                    let latency_us = queue_wait_ns / 1_000;
                    self.sink.push(finished.clone());
                    self.recorder
                        .offer(finished, latency_us, mp_obs::FlightReason::DeadlineMissed);
                }
                slot.fill(Err(ServeError::DeadlineExceeded));
                return;
            }
            if self.config.shed_p99_ms.is_some() {
                let remaining_us =
                    u64::try_from((deadline - elapsed).as_micros()).unwrap_or(u64::MAX);
                if self.should_shed(Some(remaining_us)) {
                    self.shed_job(scope, queue_wait_ns, &slot);
                    return;
                }
            }
        }
        let (result, status) = {
            // Scoped so the span closes (and enters the waterfall)
            // before the trace scope finishes below.
            let _span = mp_obs::span!("serve.request");
            if self.results.is_active() {
                let key = CacheKey::of(&req);
                let (result, outcome) = self.results.get_or_compute(key, || self.compute(&req));
                let status = match outcome {
                    CacheOutcome::Hit => CacheStatus::Hit,
                    CacheOutcome::Computed => CacheStatus::Miss,
                    CacheOutcome::Joined => CacheStatus::Joined,
                };
                (result, status)
            } else {
                (self.compute(&req), CacheStatus::Bypass)
            }
        };
        if scope.is_some() {
            let status_name = match status {
                CacheStatus::Hit => "serve.cache_hit",
                CacheStatus::Miss => "serve.cache_miss",
                CacheStatus::Joined => "serve.dedup_join",
                CacheStatus::Bypass => "serve.cache_bypass",
            };
            mp_obs::trace_annotate(status_name, 1);
        }
        let latency_us = u64::try_from(submitted.elapsed().as_micros()).unwrap_or(u64::MAX);
        // Completion stats record *before* the scope finishes so the
        // latency histogram's exemplar slot sees this TraceId.
        self.stats.complete(status, latency_us);
        if let Some(finished) = scope.and_then(mp_obs::TraceScope::finish) {
            self.sink.push(finished.clone());
            self.recorder
                .offer(finished, latency_us, mp_obs::FlightReason::Slow);
        }
        slot.fill(Ok(ServeResponse {
            result,
            cache: status,
            latency_us,
        }));
    }

    /// Whether the SLO scheduler sheds a request with this much
    /// remaining deadline slack right now (see [`crate::batch`]).
    fn should_shed(&self, remaining_us: Option<u64>) -> bool {
        let Some(limit_ms) = self.config.shed_p99_ms else {
            return false;
        };
        crate::batch::should_shed(
            remaining_us,
            self.stats.rolling_p99_us(),
            Some(limit_ms.saturating_mul(1_000)),
        )
    }

    /// Rejects one job as shed: stats, flight-recorder entry, error.
    fn shed_job(&self, scope: Option<mp_obs::TraceScope>, queue_wait_ns: u64, slot: &ResponseSlot) {
        self.stats.shed();
        if scope.is_some() {
            mp_obs::trace_annotate("serve.shed", 1);
        }
        if let Some(finished) = scope.and_then(mp_obs::TraceScope::finish) {
            self.sink.push(finished.clone());
            self.recorder
                .offer(finished, queue_wait_ns / 1_000, mp_obs::FlightReason::Shed);
        }
        slot.fill(Err(ServeError::Shed));
    }

    /// Test hook: stages a tail-latency observation in the rolling
    /// window (stats counters untouched), so shed-policy tests can
    /// simulate a p99 regression without sleeping through one.
    #[doc(hidden)]
    pub fn record_window_latency_for_test(&self, latency_us: u64) {
        self.stats.record_window_latency(latency_us);
    }

    /// Executes one drained batch of jobs: EDF-ordered admission
    /// (deadline check, SLO shed), cache claims, then every cold miss
    /// in the batch computed through the **batched engine** — misses
    /// sharing query terms share postings traversals — and finally the
    /// per-job responses. Called from worker threads when
    /// [`ServeConfig::batch_window`] > 1.
    ///
    /// Responses are bit-identical to feeding the same jobs through
    /// [`Server::handle`] one at a time: admission decisions are
    /// per-job, dedup joins hand back the leader's exact value, and the
    /// batched engine is bit-identical to per-request execution
    /// (`mp-core`'s batch-equivalence contract).
    ///
    /// **Deadlock freedom.** A worker claims leadership (leases) for
    /// its own cold keys, computes and fulfills them all, and only
    /// *then* blocks on flights led by other workers — it never sleeps
    /// on a foreign flight while holding an unfulfilled lease.
    pub(crate) fn handle_batch(&self, mut jobs: Vec<Job>) {
        if jobs.len() == 1 {
            return self.handle(jobs.pop().expect("len checked"));
        }
        let _span = mp_obs::span!("serve.batch");
        let n = jobs.len();
        self.stats.batch(n);
        // One clock read for the whole batch: every scheduling decision
        // below is pure arithmetic over these slacks (crate::batch).
        let now = Instant::now();
        let remaining_us: Vec<Option<u64>> = jobs
            .iter()
            .map(|job| {
                job.req.deadline.map(|d| {
                    let elapsed = now.duration_since(job.submitted);
                    u64::try_from(d.saturating_sub(elapsed).as_micros()).unwrap_or(u64::MAX)
                })
            })
            .collect();
        let expired: Vec<bool> = jobs
            .iter()
            .map(|job| {
                job.req
                    .deadline
                    .is_some_and(|d| now.duration_since(job.submitted) > d)
            })
            .collect();
        let order = crate::batch::edf_order(&remaining_us);
        let shed_limit_us = self.config.shed_p99_ms.map(|ms| ms.saturating_mul(1_000));
        let rolling_p99_us = if shed_limit_us.is_some() {
            self.stats.rolling_p99_us()
        } else {
            0
        };

        // Per-job resolution state, filled in EDF order.
        let mut errors: Vec<Option<ServeError>> = (0..n).map(|_| None).collect();
        let mut resolved: Vec<Option<(MetasearchResult, CacheStatus)>> =
            (0..n).map(|_| None).collect();
        let mut waiters: Vec<Option<FlightWaiter<MetasearchResult>>> =
            (0..n).map(|_| None).collect();
        let mut leases = Vec::new();
        let mut dup_of: Vec<Option<usize>> = (0..n).map(|_| None).collect();
        let mut cold: Vec<usize> = Vec::new();
        let mut rep_of: std::collections::HashMap<CacheKey, usize> =
            std::collections::HashMap::new();
        for _ in 0..n {
            leases.push(None);
        }
        for &j in &order {
            if expired[j] {
                errors[j] = Some(ServeError::DeadlineExceeded);
                continue;
            }
            if crate::batch::should_shed(remaining_us[j], rolling_p99_us, shed_limit_us) {
                errors[j] = Some(ServeError::Shed);
                continue;
            }
            if !self.results.is_active() {
                // Caching off: no dedup (matching the per-request
                // bypass), but cold computation still batches below.
                cold.push(j);
                continue;
            }
            let key = CacheKey::of(&jobs[j].req);
            if let Some(&rep) = rep_of.get(&key) {
                // In-batch duplicate: resolved from its representative
                // after the cold pass — never a second claim (which
                // would deadlock a worker on its own flight).
                dup_of[j] = Some(rep);
                continue;
            }
            match self.results.get_or_claim(key.clone()) {
                Claim::Cached(v) => resolved[j] = Some((v, CacheStatus::Hit)),
                Claim::Pending(w) => waiters[j] = Some(w),
                Claim::Lease(lease) => {
                    leases[j] = Some(lease);
                    cold.push(j);
                }
            }
            rep_of.insert(key, j);
        }

        // Cold pass: group the misses by shared query terms and run
        // each component through the batched engine. RD vectors come
        // from the query-keyed cache exactly as on the per-request path.
        if !cold.is_empty() {
            let term_refs: Vec<&[_]> = cold.iter().map(|&j| jobs[j].req.query.terms()).collect();
            for group in crate::batch::term_groups(&term_refs) {
                let items: Vec<mp_core::BatchQuery<'_>> = group
                    .iter()
                    .map(|&gi| {
                        let req = &jobs[cold[gi]].req;
                        let (rds, rd_outcome) = self
                            .rds
                            .get_or_compute(req.query.clone(), || self.ms.rds(&req.query));
                        self.stats.rd_lookup(rd_outcome == CacheOutcome::Hit);
                        mp_core::BatchQuery {
                            query: &req.query,
                            rds,
                            config: req.apro_config(),
                            policy: req.policy.build(),
                        }
                    })
                    .collect();
                let results = self.ms.search_batch_with_rds(items, self.config.fuse_limit);
                for (&gi, result) in group.iter().zip(results) {
                    let j = cold[gi];
                    let status = match leases[j].take() {
                        Some(lease) => {
                            lease.fulfill(result.clone());
                            CacheStatus::Miss
                        }
                        None => CacheStatus::Bypass,
                    };
                    resolved[j] = Some((result, status));
                }
            }
        }

        // Only now — every own lease fulfilled — block on flights led
        // by other workers. An abandoned flight (leader panicked) falls
        // back to the ordinary compute-or-join path.
        for j in 0..n {
            let Some(waiter) = waiters[j].take() else {
                continue;
            };
            let (result, status) = match waiter.wait() {
                Some(v) => (v, CacheStatus::Joined),
                None => {
                    let key = CacheKey::of(&jobs[j].req);
                    let (v, outcome) = self
                        .results
                        .get_or_compute(key, || self.compute(&jobs[j].req));
                    let status = match outcome {
                        CacheOutcome::Hit => CacheStatus::Hit,
                        CacheOutcome::Computed => CacheStatus::Miss,
                        CacheOutcome::Joined => CacheStatus::Joined,
                    };
                    (v, status)
                }
            };
            resolved[j] = Some((result, status));
        }

        // In-batch duplicates clone their representative's value: a
        // dedup join in the single-flight sense, except nobody slept.
        for j in 0..n {
            let Some(rep) = dup_of[j] else { continue };
            let (v, rep_status) = resolved[rep]
                .clone()
                .expect("a duplicate's representative always resolves");
            let status = if rep_status == CacheStatus::Hit {
                CacheStatus::Hit
            } else {
                CacheStatus::Joined
            };
            resolved[j] = Some((v, status));
        }

        // Response pass: per-job stats, trace, and slot fill, in queue
        // order. Each traced job gets its own scope anchored at its
        // submit instant, so waterfalls still start with the queue wait.
        let batch_size = u64::try_from(n).unwrap_or(u64::MAX);
        for (j, job) in jobs.into_iter().enumerate() {
            let Job {
                req: _,
                submitted,
                slot,
                trace,
                depth_at_submit,
                depth_at_dequeue,
            } = job;
            let queue_wait_ns =
                u64::try_from(now.duration_since(submitted).as_nanos()).unwrap_or(u64::MAX);
            let scope = self
                .config
                .trace
                .then(|| mp_obs::TraceScope::begin(trace, submitted));
            if scope.is_some() {
                mp_obs::trace_stage("serve.queue_wait", 0, queue_wait_ns);
                mp_obs::trace_annotate("serve.queue_depth_at_submit", u64::from(depth_at_submit));
                mp_obs::trace_annotate("serve.queue_depth_at_dequeue", u64::from(depth_at_dequeue));
                mp_obs::trace_annotate("serve.batch_size", batch_size);
            }
            match errors[j] {
                Some(ServeError::DeadlineExceeded) => {
                    self.stats.deadline_miss();
                    if let Some(finished) = scope.and_then(mp_obs::TraceScope::finish) {
                        self.sink.push(finished.clone());
                        self.recorder.offer(
                            finished,
                            queue_wait_ns / 1_000,
                            mp_obs::FlightReason::DeadlineMissed,
                        );
                    }
                    slot.fill(Err(ServeError::DeadlineExceeded));
                }
                Some(ServeError::Shed) => {
                    self.shed_job(scope, queue_wait_ns, &slot);
                }
                Some(err) => slot.fill(Err(err)),
                None => {
                    let (result, status) = resolved[j].take().expect("every admitted job resolves");
                    if scope.is_some() {
                        let status_name = match status {
                            CacheStatus::Hit => "serve.cache_hit",
                            CacheStatus::Miss => "serve.cache_miss",
                            CacheStatus::Joined => "serve.dedup_join",
                            CacheStatus::Bypass => "serve.cache_bypass",
                        };
                        mp_obs::trace_annotate(status_name, 1);
                    }
                    let latency_us =
                        u64::try_from(submitted.elapsed().as_micros()).unwrap_or(u64::MAX);
                    self.stats.complete(status, latency_us);
                    if let Some(finished) = scope.and_then(mp_obs::TraceScope::finish) {
                        self.sink.push(finished.clone());
                        self.recorder
                            .offer(finished, latency_us, mp_obs::FlightReason::Slow);
                    }
                    slot.fill(Ok(ServeResponse {
                        result,
                        cache: status,
                        latency_us,
                    }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_specs_roundtrip_names() {
        for (name, spec) in [
            ("greedy", PolicySpec::Greedy),
            ("random", PolicySpec::Random(9)),
            ("by-estimate", PolicySpec::ByEstimate),
            ("max-uncertainty", PolicySpec::MaxUncertainty),
        ] {
            assert_eq!(PolicySpec::parse(name, 9), Some(spec.clone()));
            assert_eq!(spec.name(), name);
            assert_eq!(spec.build().name(), name);
        }
        assert_eq!(PolicySpec::parse("optimal-but-wrong", 0), None);
    }

    #[test]
    fn cache_key_separates_parameters() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::BuildHasher;
        let q = Query::new([mp_text::TermId(1), mp_text::TermId(2)]);
        let base = ServeRequest::new(q, 2, 0.9);
        let same = CacheKey::of(&base);
        assert_eq!(CacheKey::of(&base.clone()), same);
        let mut other = base.clone();
        other.threshold = 0.95;
        assert_ne!(CacheKey::of(&other), same);
        let mut other = base.clone();
        other.policy = PolicySpec::Random(1);
        assert_ne!(CacheKey::of(&other), same);
        let mut other = base.clone();
        other.k = 3;
        assert_ne!(CacheKey::of(&other), same);
        // Hash is consistent with Eq for the equal pair.
        let bh = std::hash::BuildHasherDefault::<DefaultHasher>::default();
        assert_eq!(bh.hash_one(CacheKey::of(&base)), bh.hash_one(&same));
    }

    #[test]
    fn serve_error_displays() {
        assert!(ServeError::Overload.to_string().contains("queue full"));
        assert!(ServeError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        assert!(ServeError::Closed.to_string().contains("closed"));
    }
}
