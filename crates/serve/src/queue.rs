//! A bounded MPMC queue with admission control.
//!
//! The serving front door: producers [`try_push`](BoundedQueue::try_push)
//! requests (queue-full → typed rejection, the *admission control* of
//! the serving layer) or [`push_blocking`](BoundedQueue::push_blocking)
//! them (batch drivers that want back-pressure instead of shed load);
//! workers [`pop`](BoundedQueue::pop) until the queue is closed *and*
//! drained. Built on `std::sync::{Mutex, Condvar}` only — no external
//! dependencies, no spinning.
//!
//! FIFO order is total: items pop in exactly the order pushes acquired
//! the lock. With one worker this makes the whole serving pipeline a
//! deterministic replay of the submission order, which the retry-budget
//! regression test relies on.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a non-blocking push was refused.
#[derive(Debug)]
pub enum TryPushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO queue.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `cap` items.
    ///
    /// # Panics
    /// Panics when `cap` is zero — a rendezvous queue cannot provide
    /// admission control semantics.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "queue capacity must be at least 1");
        Self {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(cap),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().expect("mp-serve queue mutex poisoned")
    }

    /// Enqueues without blocking; `Full` is the overload rejection.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut st = self.lock();
        if st.closed {
            return Err(TryPushError::Closed(item));
        }
        if st.items.len() >= self.cap {
            return Err(TryPushError::Full(item));
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, waiting for space when the queue is full. Returns the
    /// item back when the queue is (or becomes) closed.
    pub fn push_blocking(&self, item: T) -> Result<(), T> {
        let mut st = self.lock();
        loop {
            if st.closed {
                return Err(item);
            }
            if st.items.len() < self.cap {
                st.items.push_back(item);
                drop(st);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self
                .not_full
                .wait(st)
                .expect("mp-serve queue mutex poisoned");
        }
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` only when the queue is closed *and* drained, so
    /// closing never drops accepted work.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self
                .not_empty
                .wait(st)
                .expect("mp-serve queue mutex poisoned");
        }
    }

    /// Closes the queue: further pushes fail, poppers drain what was
    /// accepted and then see `None`. Idempotent.
    pub fn close(&self) {
        let mut st = self.lock();
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission-control capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.capacity(), 2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(TryPushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        match q.try_push("b") {
            Err(TryPushError::Closed("b")) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "close is sticky");
    }

    #[test]
    fn push_blocking_fails_after_close() {
        let q = BoundedQueue::new(1);
        q.close();
        assert_eq!(q.push_blocking(7), Err(7));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }
}
