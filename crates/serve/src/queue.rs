//! A bounded MPMC queue with admission control.
//!
//! The serving front door: producers [`try_push`](BoundedQueue::try_push)
//! requests (queue-full → typed rejection, the *admission control* of
//! the serving layer) or [`push_blocking`](BoundedQueue::push_blocking)
//! them (batch drivers that want back-pressure instead of shed load);
//! workers [`pop`](BoundedQueue::pop) until the queue is closed *and*
//! drained. Built on `std::sync::{Mutex, Condvar}` only — no external
//! dependencies, no spinning.
//!
//! FIFO order is total: items pop in exactly the order pushes acquired
//! the lock. With one worker this makes the whole serving pipeline a
//! deterministic replay of the submission order, which the retry-budget
//! regression test relies on.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a non-blocking push was refused.
#[derive(Debug)]
pub enum TryPushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Threads blocked in [`BoundedQueue::pop`] on `not_empty`.
    pop_waiters: usize,
    /// Threads blocked in [`BoundedQueue::push_blocking`] on `not_full`.
    push_waiters: usize,
}

/// A bounded multi-producer multi-consumer FIFO queue.
///
/// ## Condvar discipline (lost-wakeup audit)
///
/// Each condvar has a *homogeneous* waiter class — only poppers wait on
/// `not_empty`, only blocking pushers on `not_full` — and every waiter
/// re-checks its predicate under the mutex before each wait, so a
/// wakeup whose predicate was stolen (a `try_push` grabbing the slot a
/// popper just freed, or a fresh `pop` taking the item a push just
/// added) sends the woken thread back to wait without ever blocking a
/// thread whose predicate holds. Progress is preserved because the
/// thief's own state transition re-notifies: a stolen slot holds an
/// item whose eventual `pop` issues the next `not_full` notification,
/// and a stolen item freed a slot whose eventual refill issues the next
/// `not_empty` one. `close` uses `notify_all` on both condvars, so no
/// waiter can sleep through shutdown.
///
/// Notifications are gated on the waiter counts (maintained under the
/// mutex, read under the mutex before notifying): a state transition
/// with no registered waiter skips the condvar syscall entirely, which
/// keeps the uncontended serving path at one mutex round-trip. A waiter
/// that registers *after* the gate check cannot be missed — it first
/// re-checks the predicate under the same mutex, and the transition it
/// would have been notified about is already visible to it.
pub struct BoundedQueue<T> {
    // mp-lint: allow(L9): the one sanctioned handoff lock — O(1) critical sections
    state: Mutex<State<T>>,
    // mp-lint: allow(L9): waiter-count-gated; skipped entirely when nobody sleeps
    not_empty: Condvar,
    // mp-lint: allow(L9): waiter-count-gated; skipped entirely when nobody sleeps
    not_full: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `cap` items.
    ///
    /// # Panics
    /// Panics when `cap` is zero — a rendezvous queue cannot provide
    /// admission control semantics.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "queue capacity must be at least 1");
        Self {
            // mp-lint: allow(L9): constructing the handoff state, not acquiring
            state: Mutex::new(State {
                items: VecDeque::with_capacity(cap),
                closed: false,
                pop_waiters: 0,
                push_waiters: 0,
            }),
            // mp-lint: allow(L9): constructing the handoff state, not acquiring
            not_empty: Condvar::new(),
            // mp-lint: allow(L9): constructing the handoff state, not acquiring
            not_full: Condvar::new(),
            cap,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().expect("mp-serve queue mutex poisoned")
    }

    /// Enqueues without blocking; `Full` is the overload rejection.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut st = self.lock();
        if st.closed {
            return Err(TryPushError::Closed(item));
        }
        if st.items.len() >= self.cap {
            return Err(TryPushError::Full(item));
        }
        st.items.push_back(item);
        let wake = st.pop_waiters > 0;
        drop(st);
        if wake {
            self.not_empty.notify_one();
        }
        Ok(())
    }

    /// Enqueues, waiting for space when the queue is full. Returns the
    /// item back when the queue is (or becomes) closed.
    pub fn push_blocking(&self, item: T) -> Result<(), T> {
        let mut st = self.lock();
        loop {
            if st.closed {
                return Err(item);
            }
            if st.items.len() < self.cap {
                st.items.push_back(item);
                let wake = st.pop_waiters > 0;
                drop(st);
                if wake {
                    self.not_empty.notify_one();
                }
                return Ok(());
            }
            st.push_waiters += 1;
            st = self
                .not_full
                .wait(st)
                .expect("mp-serve queue mutex poisoned");
            st.push_waiters -= 1;
        }
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` only when the queue is closed *and* drained, so
    /// closing never drops accepted work.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                let wake = st.push_waiters > 0;
                drop(st);
                if wake {
                    self.not_full.notify_one();
                }
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st.pop_waiters += 1;
            st = self
                .not_empty
                .wait(st)
                .expect("mp-serve queue mutex poisoned");
            st.pop_waiters -= 1;
        }
    }

    /// Dequeues the oldest item without blocking: `None` means the
    /// queue is currently empty (closed or not). The batch-draining
    /// worker loop uses this to widen a batch opportunistically — one
    /// blocking [`Self::pop`] anchors the batch, `try_pop` takes
    /// whatever else is already waiting, and nobody sleeps to fill a
    /// window.
    pub fn try_pop(&self) -> Option<T> {
        let mut st = self.lock();
        let item = st.items.pop_front()?;
        let wake = st.push_waiters > 0;
        drop(st);
        if wake {
            self.not_full.notify_one();
        }
        Some(item)
    }

    /// Closes the queue: further pushes fail, poppers drain what was
    /// accepted and then see `None`. Idempotent.
    pub fn close(&self) {
        let mut st = self.lock();
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission-control capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_and_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.capacity(), 2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        match q.try_push(3) {
            Err(TryPushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        match q.try_push("b") {
            Err(TryPushError::Closed("b")) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "close is sticky");
    }

    #[test]
    fn try_pop_never_blocks() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.try_pop(), None);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), None);
        q.try_push(3).unwrap();
        q.close();
        assert_eq!(q.try_pop(), Some(3), "close still drains");
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn push_blocking_fails_after_close() {
        let q = BoundedQueue::new(1);
        q.close();
        assert_eq!(q.push_blocking(7), Err(7));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }
}
