//! Pure batch-scheduling decisions: EDF ordering, the p99 shed
//! predicate, and term-overlap grouping.
//!
//! Everything here is a pure function of its arguments — no clocks, no
//! locks, no randomness (L13-clean by construction). The worker reads
//! the clock **once** per drained batch ([`crate::Server`] computes the
//! per-job remaining-deadline slack), then every scheduling decision is
//! replayable arithmetic over those numbers, which is what lets the
//! shed-policy tests drive the scheduler without a real clock.

use std::collections::HashMap;
use std::hash::Hash;

/// Earliest-deadline-first execution order over a drained batch:
/// indices sorted by remaining slack ascending, requests without a
/// deadline last, ties broken by arrival (queue) order — so a
/// deadline-free workload degenerates to plain FIFO and batching
/// changes nothing about fairness.
pub fn edf_order(remaining_us: &[Option<u64>]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..remaining_us.len()).collect();
    // `None` sorts after every `Some` under Option's derived ordering
    // only for `(bool, _)` keys; map explicitly to keep that intent
    // readable. Stable sort preserves FIFO among ties.
    order.sort_by_key(|&i| match remaining_us[i] {
        Some(rem) => (false, rem),
        None => (true, 0),
    });
    order
}

/// The SLO shedding predicate (evaluated per request, before any
/// compute is spent on it): shed exactly when
///
/// * an SLO is configured (`shed_p99_us`),
/// * the rolling p99 currently **violates** it (`rolling_p99_us >
///   shed_p99_us` — a healthy server sheds nothing), and
/// * this request's remaining deadline slack is smaller than the
///   rolling p99 — i.e. a typical-tail completion would miss its
///   deadline anyway, so computing it would burn capacity the backlog
///   needs.
///
/// Requests without a deadline are never shed: with no SLO of their
/// own, "would finish too late" is undefined for them.
pub fn should_shed(
    remaining_us: Option<u64>,
    rolling_p99_us: u64,
    shed_p99_us: Option<u64>,
) -> bool {
    match (remaining_us, shed_p99_us) {
        (Some(remaining), Some(limit)) => rolling_p99_us > limit && remaining < rolling_p99_us,
        _ => false,
    }
}

/// Partitions a batch of term sets into connected components under
/// "shares at least one term" (transitively closed): the groups whose
/// members the batched engine can serve with shared postings
/// traversals. Queries with no terms in common never land in one
/// group, so grouping never forces unrelated work together.
///
/// Deterministic by construction: union-find with first-seen owners,
/// components emitted in first-member order, members in input order —
/// no hash-map iteration anywhere near the output.
pub fn term_groups<T: Copy + Eq + Hash>(term_sets: &[&[T]]) -> Vec<Vec<usize>> {
    let n = term_sets.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }
    let mut owner: HashMap<T, usize> = HashMap::new();
    for (i, terms) in term_sets.iter().enumerate() {
        for &t in *terms {
            match owner.get(&t) {
                Some(&o) => {
                    let (a, b) = (find(&mut parent, o), find(&mut parent, i));
                    if a != b {
                        // Union toward the smaller root index so the
                        // component representative is its first member.
                        let (lo, hi) = (a.min(b), a.max(b));
                        parent[hi] = lo;
                    }
                }
                None => {
                    owner.insert(t, i);
                }
            }
        }
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_of: HashMap<usize, usize> = HashMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        match group_of.get(&root) {
            Some(&g) => groups[g].push(i),
            None => {
                group_of.insert(root, groups.len());
                groups.push(vec![i]);
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edf_orders_by_slack_with_fifo_ties_and_none_last() {
        let remaining = [Some(50), None, Some(10), Some(50), None, Some(0)];
        assert_eq!(edf_order(&remaining), vec![5, 2, 0, 3, 1, 4]);
        assert_eq!(edf_order(&[]), Vec::<usize>::new());
        assert_eq!(edf_order(&[None, None]), vec![0, 1], "pure FIFO");
    }

    #[test]
    fn shed_requires_limit_deadline_and_violation() {
        // No SLO configured: never shed.
        assert!(!should_shed(Some(1), 1_000_000, None));
        // No deadline on the request: never shed.
        assert!(!should_shed(None, 1_000_000, Some(10)));
        // SLO healthy (p99 at/below limit): never shed.
        assert!(!should_shed(Some(1), 500, Some(500)));
        // SLO violated but this request has slack >= p99: keep it.
        assert!(!should_shed(Some(600), 600, Some(500)));
        // SLO violated and the request cannot make it: shed.
        assert!(should_shed(Some(599), 600, Some(500)));
        assert!(should_shed(Some(0), 600, Some(500)));
    }

    #[test]
    fn groups_partition_by_shared_terms() {
        let sets: [&[u32]; 5] = [&[1, 2], &[3], &[2, 4], &[5], &[4, 3]];
        // 0–2 share 2, 2–4 share 4, 4–1 share 3 → {0,1,2,4}, {3}.
        assert_eq!(term_groups(&sets), vec![vec![0, 1, 2, 4], vec![3]]);
    }

    #[test]
    fn disjoint_and_empty_sets_stay_singletons() {
        let sets: [&[u32]; 4] = [&[1], &[], &[2], &[]];
        assert_eq!(term_groups(&sets), vec![vec![0], vec![1], vec![2], vec![3]]);
        assert_eq!(term_groups::<u32>(&[]), Vec::<Vec<usize>>::new());
    }

    #[test]
    fn identical_sets_form_one_group_in_input_order() {
        let sets: [&[u32]; 3] = [&[7, 8], &[7, 8], &[8, 7]];
        assert_eq!(term_groups(&sets), vec![vec![0, 1, 2]]);
    }
}
