//! # mp-serve — a concurrent, cache-backed query-serving front-end
//!
//! The paper frames the metasearcher as a long-lived mediator answering
//! a query *stream* (Figure 1); this crate is that serving tier. It
//! wraps a shared, immutable [`Arc<Metasearcher>`](mp_core::Metasearcher)
//! in:
//!
//! * a **bounded MPMC request queue** with admission control — a full
//!   queue rejects with a typed [`ServeError::Overload`] instead of
//!   buffering unboundedly — drained by a fixed-size `thread::scope`
//!   worker pool ([`pool`], the crate's only thread source, L4-exempt
//!   like `mp-core::par`);
//! * a **sharded LRU cache** with **single-flight deduplication**
//!   ([`cache`]): repeated queries hit, concurrent identical queries
//!   compute once and everyone else joins the leader's flight. Two
//!   layers mirror the pipeline — RD vectors keyed by query, completed
//!   [`MetasearchResult`](mp_core::MetasearchResult)s keyed by the full
//!   request identity ([`CacheKey`]);
//! * per-request **deadline checks** and a [`ServeStats`] snapshot
//!   (hits / misses / dedup joins / rejects / sheds, p50/p99 latency on
//!   the `mp_obs::bounds::LATENCY_US` buckets), mirrored into `mp-obs`
//!   for the existing `--obs-json` export path;
//! * **term-sharing batched execution** ([`batch`]): with
//!   [`ServeConfig::batch_window`] > 1 a worker drains up to a window
//!   of queued requests at once, dedups identical keys, and runs the
//!   remaining cold misses that share query terms through the batched
//!   engine — one postings traversal per shared term — bit-identical
//!   to per-request execution;
//! * **SLO-aware scheduling**: batches execute earliest-deadline-first,
//!   and with [`ServeConfig::shed_p99_ms`] set, requests whose
//!   remaining deadline slack falls below a violated rolling p99 are
//!   answered [`ServeError::Shed`] before any compute is spent on them.
//!
//! **Determinism contract.** Serving is a scheduler, not a computation:
//! for any worker count and any cache configuration, the response to a
//! request is value-identical to a direct sequential
//! `Metasearcher::search` call with the same parameters (policies are
//! rebuilt per computation from their [`PolicySpec`]; the engine below
//! is deterministic by the `mp-core::par` contract). The equivalence
//! test in `tests/equivalence.rs` pins this for 1/4/8 workers × cache
//! on/off against the sequential baseline.
//!
//! ```no_run
//! use mp_serve::{Server, ServeConfig, ServeRequest};
//! # fn demo(ms: mp_core::Metasearcher, queries: Vec<mp_workload::Query>) {
//! let server = Server::new(ms.shared(), ServeConfig::new(4, 1024));
//! let responses = server.serve_batch(
//!     queries.into_iter().map(|q| ServeRequest::new(q, 2, 0.9)),
//! );
//! let stats = server.stats();
//! println!("hits {} misses {} p99 {}µs", stats.hits, stats.misses, stats.p99_us);
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
mod pool;
pub mod queue;
mod server;
mod stats;

pub use cache::{CacheOutcome, Claim, FlightWaiter, Lease, LruCache, ShardedCache};
pub use queue::{BoundedQueue, TryPushError};
pub use server::{
    Backend, CacheKey, CacheStatus, Client, PolicySpec, ServeConfig, ServeError, ServeRequest,
    ServeResponse, Server, Ticket,
};
pub use stats::ServeStats;
