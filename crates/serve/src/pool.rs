//! The fixed-size worker pool — the serving layer's only thread source.
//!
//! Mirrors the `mp-core::par` discipline: this file is the *sole* place
//! in `mp-serve` that creates threads (enforced by mp-lint rule L4,
//! which exempts exactly `crates/core/src/par.rs` and this file), and
//! it uses `std::thread::scope` so workers borrow the server and queue
//! directly — no `'static` bounds, no leaked threads, and the pool
//! cannot outlive the state it serves.
//!
//! Lifecycle: `run_scoped` spawns `workers` threads that loop on
//! [`BoundedQueue::pop`], runs the caller's driver on the *calling*
//! thread with a [`Client`] handle, then closes the queue. Closing lets
//! workers drain every accepted request before exiting, so a batch
//! driver never loses submitted work. A drop guard closes the queue
//! even when the driver panics — otherwise `thread::scope` would
//! block forever joining workers parked in `pop`.

use crate::queue::BoundedQueue;
use crate::server::{Client, Job, Server};

/// Closes the queue on scope exit, panicking or not.
struct CloseOnDrop<'q>(&'q BoundedQueue<Job>);

impl Drop for CloseOnDrop<'_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// Runs one serving session (see module docs).
pub(crate) fn run_scoped<R>(server: &Server, driver: impl FnOnce(&Client<'_>) -> R) -> R {
    let queue: BoundedQueue<Job> = BoundedQueue::new(server.config().queue_cap.max(1));
    let workers = server.config().workers.max(1);
    // Pre-size each worker's thread-local retrieval scratch for the
    // largest mediated collection, so no serve-path query ever grows
    // (= reallocates) the dense accumulator mid-request. The target is
    // computed by the backend so it spans *every* shard of a
    // partitioned fleet — any worker may serve any shard's probes.
    // Databases hiding their size fall back to lazy growth on first
    // contact.
    let warm_docs = server.backend().max_size_hint();
    let window = server.config().batch_window.max(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                mp_index::scratch::warm(warm_docs);
                while let Some(mut job) = queue.pop() {
                    // Queue context at dequeue time: sampled into the
                    // gauges every pop, and onto the job so a traced
                    // flight records the depth it waited behind.
                    let depth = u32::try_from(queue.len()).unwrap_or(u32::MAX);
                    job.depth_at_dequeue = depth;
                    mp_obs::gauge!("serve.queue_depth").set(i64::from(depth));
                    let inflight = mp_obs::gauge!("serve.inflight");
                    if window == 1 {
                        inflight.adjust(1);
                        server.handle(job);
                        inflight.adjust(-1);
                        continue;
                    }
                    // Batch drain: the blocking pop above anchors the
                    // batch; the rest of the window is whatever is
                    // already queued (`try_pop` never sleeps), so an
                    // idle server still answers immediately.
                    let mut batch = vec![job];
                    while batch.len() < window {
                        let Some(mut next) = queue.try_pop() else {
                            break;
                        };
                        next.depth_at_dequeue = u32::try_from(queue.len()).unwrap_or(u32::MAX);
                        batch.push(next);
                    }
                    let size = i64::try_from(batch.len()).unwrap_or(i64::MAX);
                    mp_obs::gauge!("serve.batch_size").set(size);
                    inflight.adjust(size);
                    server.handle_batch(batch);
                    inflight.adjust(-size);
                }
            });
        }
        let _closer = CloseOnDrop(&queue);
        let client = Client::new(server, &queue);
        driver(&client)
        // `_closer` drops here: the queue closes, workers drain what
        // was accepted and exit, then `scope` joins them.
    })
}
