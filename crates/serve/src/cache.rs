//! A sharded LRU cache with single-flight deduplication.
//!
//! Two invariants carry the serving layer's correctness story:
//!
//! * **Key fidelity** — a lookup can only ever observe a value that was
//!   inserted under the *same* key: entries live in per-shard hash maps
//!   keyed by the full key (the shard index is derived from the key's
//!   hash, so one key always lands in one shard), never by a truncated
//!   hash.
//! * **Single flight** — when several requests for one key arrive while
//!   no cached value exists, exactly one caller (the *leader*) runs the
//!   compute closure; the rest block on the leader's flight and observe
//!   a clone of the leader's exact result. If the leader panics, the
//!   flight is marked abandoned by a drop guard and each waiter retries
//!   (typically becoming the next leader) instead of deadlocking.
//!
//! Eviction is least-recently-used per shard, implemented with a
//! monotonic use tick and an `O(shard len)` minimum scan — shards are
//! small (capacity / shard count), and the scan keeps the structure a
//! single `HashMap` with no unsafe pointer juggling. Capacity 0
//! disables the cache entirely: every call computes, nothing is stored,
//! and no deduplication happens (a bypass, not a degenerate cache).

use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault, DefaultHasher, Hash};
use std::sync::{Arc, Condvar, Mutex};

/// How a [`ShardedCache::get_or_compute`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the cache without computing.
    Hit,
    /// This caller was the leader and ran the compute closure.
    Computed,
    /// Joined another caller's in-flight computation.
    Joined,
}

struct Entry<V> {
    value: V,
    last_use: u64,
}

/// A single-threaded LRU map: the per-shard store. Exposed for the
/// property tests that drive it against a naive reference model.
pub struct LruCache<K, V> {
    cap: usize,
    tick: u64,
    map: HashMap<K, Entry<V>>,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `cap` entries (0 = always empty).
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            tick: 0,
            map: HashMap::new(),
        }
    }

    fn touch(tick: &mut u64) -> u64 {
        *tick += 1;
        *tick
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let tick = Self::touch(&mut self.tick);
        self.map.get_mut(key).map(|e| {
            e.last_use = tick;
            &e.value
        })
    }

    /// Inserts or replaces `key`, evicting the least-recently-used
    /// entry when a *new* key would exceed capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.cap == 0 {
            return;
        }
        let tick = Self::touch(&mut self.tick);
        if let Some(e) = self.map.get_mut(&key) {
            e.value = value;
            e.last_use = tick;
            return;
        }
        if self.map.len() >= self.cap {
            // Unique minimum: ticks strictly increase, so no tie-break
            // is needed and eviction order is deterministic.
            if let Some(victim) = self
                .map
                // mp-lint: allow(L10): ticks strictly increase, so the min is unique — scan order cannot change the victim
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                last_use: tick,
            },
        );
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Drops every entry (capacity is kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

enum FlightState<V> {
    Pending,
    Ready(V),
    /// The leader unwound without producing a value.
    Abandoned,
}

/// One in-flight computation that followers can block on.
struct Flight<V> {
    // mp-lint: allow(L9): dedup rendezvous — followers of one identical in-flight query
    state: Mutex<FlightState<V>>,
    // mp-lint: allow(L9): signaled once per flight, never on the per-probe path
    done: Condvar,
}

impl<V: Clone> Flight<V> {
    fn new() -> Self {
        Self {
            // mp-lint: allow(L9): constructing the rendezvous pair, not acquiring
            state: Mutex::new(FlightState::Pending),
            // mp-lint: allow(L9): constructing the rendezvous pair, not acquiring
            done: Condvar::new(),
        }
    }

    /// Blocks until the leader finishes; `None` means abandoned.
    fn wait(&self) -> Option<V> {
        let mut st = self.state.lock().expect("mp-serve flight mutex poisoned");
        loop {
            match &*st {
                FlightState::Pending => {
                    st = self.done.wait(st).expect("mp-serve flight mutex poisoned");
                }
                FlightState::Ready(v) => return Some(v.clone()),
                FlightState::Abandoned => return None,
            }
        }
    }

    fn finish(&self, state: FlightState<V>) {
        if let Ok(mut st) = self.state.lock() {
            *st = state;
        }
        self.done.notify_all();
    }
}

struct Shard<K, V> {
    lru: LruCache<K, V>,
    inflight: HashMap<K, Arc<Flight<V>>>,
}

/// The concurrent cache: `n` mutex-guarded LRU shards plus a
/// single-flight table per shard.
pub struct ShardedCache<K, V> {
    // mp-lint: allow(L9): key-hash-sharded; cap-0 bypass never touches a shard lock
    shards: Vec<Mutex<Shard<K, V>>>,
    hasher: BuildHasherDefault<DefaultHasher>,
    /// Total capacity across shards, fixed at construction. Kept out of
    /// the shards so `is_active()`/`capacity()` — consulted on *every*
    /// request, including the cap-0 bypass — never take a shard lock.
    total_cap: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// A cache of `total_cap` entries spread over `n_shards` shards
    /// (each shard gets `ceil(total_cap / n_shards)`). `total_cap` 0
    /// disables caching *and* deduplication.
    ///
    /// # Panics
    /// Panics when `n_shards` is zero.
    pub fn new(total_cap: usize, n_shards: usize) -> Self {
        assert!(n_shards >= 1, "cache needs at least one shard");
        let per_shard = if total_cap == 0 {
            0
        } else {
            total_cap.div_ceil(n_shards)
        };
        Self {
            shards: (0..n_shards)
                .map(|_| {
                    // mp-lint: allow(L9): constructing the shards, not acquiring
                    Mutex::new(Shard {
                        lru: LruCache::new(per_shard),
                        inflight: HashMap::new(),
                    })
                })
                .collect(),
            hasher: BuildHasherDefault::default(),
            total_cap: per_shard * n_shards,
        }
    }

    /// Whether the cache stores anything at all (capacity > 0).
    /// Lock-free: reads a field fixed at construction.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.total_cap > 0
    }

    /// Total capacity across shards (0 when disabled). Lock-free.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.total_cap
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("mp-serve cache shard mutex poisoned")
                    .lru
                    .len()
            })
            .sum()
    }

    /// Whether no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// In-flight computations across shards (diagnostic; racy by
    /// nature, exact only while no call is active).
    pub fn inflight_len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("mp-serve cache shard mutex poisoned")
                    .inflight
                    .len()
            })
            .sum()
    }

    /// Drops every cached entry (in-flight computations are untouched).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock()
                .expect("mp-serve cache shard mutex poisoned")
                .lru
                .clear();
        }
    }

    // mp-lint: allow(L9): returns the shard handle; acquisition is the caller's
    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let idx = self.hasher.hash_one(key) % (self.shards.len() as u64);
        &self.shards[usize::try_from(idx).unwrap_or(0)]
    }

    /// Looks up `key` without computing.
    pub fn get(&self, key: &K) -> Option<V> {
        if !self.is_active() {
            return None;
        }
        let mut shard = self
            .shard(key)
            .lock()
            .expect("mp-serve cache shard mutex poisoned");
        shard.lru.get(key).cloned()
    }

    /// Inserts a value directly (tests and warm-up; the serving path
    /// goes through [`Self::get_or_compute`]).
    pub fn insert(&self, key: K, value: V) {
        if !self.is_active() {
            return;
        }
        let mut shard = self
            .shard(&key)
            .lock()
            .expect("mp-serve cache shard mutex poisoned");
        shard.lru.insert(key, value);
    }

    /// The decomposed serving primitive behind [`Self::get_or_compute`]:
    /// resolves `key` into a [`Claim`] *without* computing, so a batch
    /// worker can claim leadership of several keys, compute them all in
    /// one batched engine call, fulfill the leases, and only then block
    /// on flights led by other workers. (Claiming before waiting is the
    /// deadlock-freedom argument: a worker never sleeps on a foreign
    /// flight while holding an unfulfilled lease another worker could
    /// be waiting on — leases are always fulfilled first.)
    ///
    /// Callers must check [`Self::is_active`] first: a capacity-0 cache
    /// has no flight table, so there is nothing to claim.
    ///
    /// # Panics
    /// Panics (debug) when the cache is inactive.
    pub fn get_or_claim(&self, key: K) -> Claim<'_, K, V> {
        debug_assert!(self.is_active(), "get_or_claim on a bypassed cache");
        let mut shard = self
            .shard(&key)
            .lock()
            .expect("mp-serve cache shard mutex poisoned");
        if let Some(v) = shard.lru.get(&key) {
            return Claim::Cached(v.clone());
        }
        if let Some(flight) = shard.inflight.get(&key) {
            return Claim::Pending(FlightWaiter {
                flight: Arc::clone(flight),
            });
        }
        let flight = Arc::new(Flight::new());
        shard.inflight.insert(key.clone(), Arc::clone(&flight));
        drop(shard);
        Claim::Lease(Lease {
            guard: LeaderGuard {
                cache: self,
                key: Some(key),
                flight,
            },
        })
    }

    /// The serving primitive: returns the cached value for `key`, joins
    /// an in-flight computation of it, or runs `compute` as the leader
    /// and publishes the result. `compute` is never run under a shard
    /// lock, so it may take arbitrarily long (a full metasearch).
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> (V, CacheOutcome) {
        if !self.is_active() {
            return (compute(), CacheOutcome::Computed);
        }
        let mut compute = Some(compute);
        loop {
            let mut shard = self
                .shard(&key)
                .lock()
                .expect("mp-serve cache shard mutex poisoned");
            if let Some(v) = shard.lru.get(&key) {
                return (v.clone(), CacheOutcome::Hit);
            }
            let joined = if let Some(flight) = shard.inflight.get(&key) {
                let flight = Arc::clone(flight);
                drop(shard);
                // Timed so a dedup-joined request's waterfall shows how
                // long it blocked on the leader's computation.
                let _wait = mp_obs::span!("serve.flight_wait");
                flight.wait()
            } else {
                let flight = Arc::new(Flight::new());
                shard.inflight.insert(key.clone(), Arc::clone(&flight));
                drop(shard);
                // Leader path: compute unlocked, publish, done. The
                // guard survives a panicking `compute` and marks the
                // flight abandoned so waiters retry.
                let mut guard = LeaderGuard {
                    cache: self,
                    key: Some(key.clone()),
                    flight,
                };
                let f = compute
                    .take()
                    .expect("leader path runs at most once per call");
                let value = f();
                guard.publish(value.clone());
                return (value, CacheOutcome::Computed);
            };
            match joined {
                Some(v) => return (v, CacheOutcome::Joined),
                // Leader abandoned (panicked): retry; we will usually
                // become the next leader. `compute` is still unspent
                // because only the leader path takes it.
                None => continue,
            }
        }
    }
}

/// What [`ShardedCache::get_or_claim`] resolved a key into.
pub enum Claim<'a, K: Hash + Eq + Clone, V: Clone> {
    /// The value was cached; no computation needed.
    Cached(V),
    /// Another caller is computing this key; wait on its flight.
    Pending(FlightWaiter<V>),
    /// This caller is the leader: compute the value, then
    /// [`Lease::fulfill`] (dropping the lease unfulfilled abandons the
    /// flight and waiters retry, exactly like a panicking
    /// `get_or_compute` leader).
    Lease(Lease<'a, K, V>),
}

/// A handle on another caller's in-flight computation.
pub struct FlightWaiter<V> {
    flight: Arc<Flight<V>>,
}

impl<V: Clone> FlightWaiter<V> {
    /// Blocks until the leader publishes; `None` means the leader
    /// abandoned the flight (unwound or dropped its lease) and the
    /// caller should fall back to computing.
    pub fn wait(self) -> Option<V> {
        // Timed so a joined request's waterfall shows how long it
        // blocked on the leader's computation (same stage name as the
        // `get_or_compute` join path).
        let _wait = mp_obs::span!("serve.flight_wait");
        self.flight.wait()
    }
}

/// Leadership of one key's single-flight computation.
pub struct Lease<'a, K: Hash + Eq + Clone, V: Clone> {
    guard: LeaderGuard<'a, K, V>,
}

impl<K: Hash + Eq + Clone, V: Clone> Lease<'_, K, V> {
    /// Publishes the computed value: caches it and wakes every waiter.
    pub fn fulfill(mut self, value: V) {
        self.guard.publish(value);
    }
}

/// Cleans up a leader's flight whether it publishes or unwinds.
struct LeaderGuard<'a, K: Hash + Eq + Clone, V: Clone> {
    cache: &'a ShardedCache<K, V>,
    key: Option<K>,
    flight: Arc<Flight<V>>,
}

impl<K: Hash + Eq + Clone, V: Clone> LeaderGuard<'_, K, V> {
    fn publish(&mut self, value: V) {
        let Some(key) = self.key.take() else {
            return;
        };
        {
            let mut shard = self
                .cache
                .shard(&key)
                .lock()
                .expect("mp-serve cache shard mutex poisoned");
            shard.inflight.remove(&key);
            shard.lru.insert(key, value.clone());
        }
        self.flight.finish(FlightState::Ready(value));
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Drop for LeaderGuard<'_, K, V> {
    fn drop(&mut self) {
        // Reached with `key` still present only when `compute` unwound
        // before `publish`. Avoid `expect` here: a second panic during
        // unwind would abort the process.
        let Some(key) = self.key.take() else {
            return;
        };
        if let Ok(mut shard) = self.cache.shard(&key).lock() {
            shard.inflight.remove(&key);
        }
        self.flight.finish(FlightState::Abandoned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // refresh a
        c.insert("c", 3); // evicts b
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_replace_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), Some(&2));
    }

    #[test]
    fn zero_capacity_is_a_bypass() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(0, 4);
        assert!(!c.is_active());
        let (v, outcome) = c.get_or_compute(1, || 42);
        assert_eq!((v, outcome), (42, CacheOutcome::Computed));
        let (v, outcome) = c.get_or_compute(1, || 43);
        assert_eq!((v, outcome), (43, CacheOutcome::Computed), "nothing cached");
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn get_or_compute_hits_after_computing() {
        let c: ShardedCache<u32, String> = ShardedCache::new(8, 2);
        let (v, outcome) = c.get_or_compute(7, || "seven".to_string());
        assert_eq!((v.as_str(), outcome), ("seven", CacheOutcome::Computed));
        let (v, outcome) = c.get_or_compute(7, || unreachable!("must hit"));
        assert_eq!((v.as_str(), outcome), ("seven", CacheOutcome::Hit));
        assert_eq!(c.len(), 1);
        assert_eq!(c.inflight_len(), 0);
    }

    #[test]
    fn claim_lease_fulfill_then_hit() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(8, 2);
        let Claim::Lease(lease) = c.get_or_claim(5) else {
            panic!("empty cache must lease");
        };
        lease.fulfill(50);
        match c.get_or_claim(5) {
            Claim::Cached(50) => {}
            _ => panic!("fulfilled lease must cache"),
        }
        assert_eq!(c.inflight_len(), 0);
        let (v, outcome) = c.get_or_compute(5, || unreachable!("must hit"));
        assert_eq!((v, outcome), (50, CacheOutcome::Hit));
    }

    #[test]
    fn second_claim_pends_on_the_first_lease() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(8, 2);
        let Claim::Lease(lease) = c.get_or_claim(9) else {
            panic!("empty cache must lease");
        };
        let Claim::Pending(waiter) = c.get_or_claim(9) else {
            panic!("claimed key must pend");
        };
        lease.fulfill(90);
        assert_eq!(waiter.wait(), Some(90));
    }

    #[test]
    fn dropped_lease_abandons_the_flight() {
        let c: ShardedCache<u32, u32> = ShardedCache::new(8, 2);
        let Claim::Lease(lease) = c.get_or_claim(3) else {
            panic!("empty cache must lease");
        };
        let Claim::Pending(waiter) = c.get_or_claim(3) else {
            panic!("claimed key must pend");
        };
        drop(lease);
        assert_eq!(waiter.wait(), None, "abandoned flights wake with None");
        assert_eq!(c.inflight_len(), 0);
        // The key is claimable again (the retry-leadership path).
        assert!(matches!(c.get_or_claim(3), Claim::Lease(_)));
    }

    #[test]
    fn capacity_bounds_hold_across_shards() {
        let c: ShardedCache<u64, u64> = ShardedCache::new(8, 4);
        for k in 0..1000u64 {
            c.insert(k, k);
        }
        assert!(c.len() <= c.capacity(), "{} > {}", c.len(), c.capacity());
    }
}
