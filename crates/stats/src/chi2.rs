//! Pearson χ² goodness-of-fit testing.
//!
//! Reproduces the statistical test from the paper's sampling-size study
//! (Section 4.2): a *sample* error distribution `ED_S` (built from `S`
//! sample queries) is compared against the *ideal* error distribution
//! `ED_total` (built from every available query) with a standard Pearson
//! χ² test using 10 bins and 9 degrees of freedom. The returned p-value
//! is the "goodness" of the sampling size — values above 0.5 mean the
//! sample ED is statistically indistinguishable from the ideal ED.

use crate::histogram::Histogram;
use crate::special::gamma_p;
use serde::{Deserialize, Serialize};

/// χ² cumulative distribution function with `dof` degrees of freedom.
///
/// `chi2_cdf(x, k) = P(k/2, x/2)`.
pub fn chi2_cdf(x: f64, dof: f64) -> f64 {
    assert!(dof > 0.0, "degrees of freedom must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    gamma_p(dof / 2.0, x / 2.0)
}

/// Upper-tail χ² probability `P(X ≥ x)` — the test's p-value.
pub fn chi2_sf(x: f64, dof: f64) -> f64 {
    (1.0 - chi2_cdf(x, dof)).clamp(0.0, 1.0)
}

/// Outcome of a Pearson χ² goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Chi2Outcome {
    /// The χ² statistic `Σ (O_i − E_i)² / E_i`.
    pub statistic: f64,
    /// Degrees of freedom actually used (bins contributing − 1).
    pub dof: f64,
    /// Upper-tail p-value; near 1 means "indistinguishable from expected".
    pub p_value: f64,
}

/// Pearson χ² test of observed counts against expected probabilities.
///
/// * `observed` — per-bin counts from the sample.
/// * `expected_probs` — per-bin probabilities of the reference
///   distribution (need not be normalized; rescaled internally).
///
/// Bins whose expected probability is zero are merged into a pooled
/// remainder bin (standard practice: a zero-expectation bin with a
/// nonzero observation would otherwise produce an infinite statistic).
/// Degrees of freedom are `effective_bins − 1`, matching the paper's
/// "10 bins and degree of freedom as 9".
///
/// # Panics
/// Panics if lengths differ or the observed sample is empty.
pub fn pearson_chi2_test(observed: &[u64], expected_probs: &[f64]) -> Chi2Outcome {
    assert_eq!(
        observed.len(),
        expected_probs.len(),
        "observed and expected must have the same number of bins"
    );
    let n: u64 = observed.iter().sum();
    assert!(n > 0, "observed sample is empty");
    let probs_total: f64 = expected_probs.iter().sum();
    assert!(probs_total > 0.0, "expected probabilities are all zero");

    let mut statistic = 0.0;
    let mut used_bins = 0usize;
    let mut pooled_obs = 0u64;
    for (&o, &ep) in observed.iter().zip(expected_probs) {
        let p = ep / probs_total;
        if p <= 0.0 {
            pooled_obs += o;
            continue;
        }
        let e = p * n as f64;
        statistic += (o as f64 - e) * (o as f64 - e) / e;
        used_bins += 1;
    }
    if pooled_obs > 0 {
        // Observations landing in zero-expectation bins: attribute them a
        // vanishing expectation floor of one half-count so the statistic
        // is finite but strongly penalized.
        let e = 0.5;
        statistic += (pooled_obs as f64 - e) * (pooled_obs as f64 - e) / e;
        used_bins += 1;
    }
    let dof = (used_bins.max(2) - 1) as f64;
    Chi2Outcome {
        statistic,
        dof,
        p_value: chi2_sf(statistic, dof),
    }
}

/// Convenience wrapper: tests a sample [`Histogram`] against a reference
/// [`Histogram`] over the same bins (the paper's `ED_S` vs `ED_total`
/// comparison). The reference provides the expected probabilities.
///
/// # Panics
/// Panics if bin specs differ or either histogram is empty.
pub fn histogram_goodness(sample: &Histogram, reference: &Histogram) -> Chi2Outcome {
    assert_eq!(
        sample.spec(),
        reference.spec(),
        "histograms must share one bin spec"
    );
    assert!(reference.total() > 0, "reference histogram is empty");
    pearson_chi2_test(sample.counts(), &reference.probabilities())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::BinSpec;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn chi2_cdf_reference_values() {
        // Quantiles from standard χ² tables.
        assert!((chi2_cdf(3.841, 1.0) - 0.95).abs() < 1e-3);
        assert!((chi2_cdf(16.919, 9.0) - 0.95).abs() < 1e-3);
        assert!((chi2_cdf(8.343, 9.0) - 0.5).abs() < 1e-3);
        assert_eq!(chi2_cdf(0.0, 5.0), 0.0);
        assert_eq!(chi2_cdf(-1.0, 5.0), 0.0);
    }

    #[test]
    fn chi2_sf_complements_cdf() {
        for &x in &[0.5, 3.0, 9.0, 20.0] {
            let s = chi2_cdf(x, 9.0) + chi2_sf(x, 9.0);
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn perfect_match_gives_high_p_value() {
        // Observed exactly proportional to expected → statistic 0, p = 1.
        let observed = [10u64, 20, 30, 40];
        let expected = [0.1, 0.2, 0.3, 0.4];
        let out = pearson_chi2_test(&observed, &expected);
        assert!(out.statistic < 1e-12);
        assert!((out.p_value - 1.0).abs() < 1e-12);
        assert_eq!(out.dof, 3.0);
    }

    #[test]
    fn gross_mismatch_gives_low_p_value() {
        let observed = [100u64, 0, 0, 0];
        let expected = [0.25, 0.25, 0.25, 0.25];
        let out = pearson_chi2_test(&observed, &expected);
        assert!(out.p_value < 1e-6, "p={}", out.p_value);
    }

    #[test]
    fn zero_expectation_bins_are_pooled() {
        let observed = [50u64, 50, 3];
        let expected = [0.5, 0.5, 0.0];
        let out = pearson_chi2_test(&observed, &expected);
        // Finite statistic despite the zero-probability bin.
        assert!(out.statistic.is_finite());
        assert!(out.p_value < 0.05, "stray mass should be penalized");
    }

    #[test]
    fn zero_expectation_zero_observation_is_ignored() {
        let observed = [50u64, 50, 0];
        let expected = [0.5, 0.5, 0.0];
        let out = pearson_chi2_test(&observed, &expected);
        assert!((out.p_value - 1.0).abs() < 1e-12);
        assert_eq!(out.dof, 1.0);
    }

    #[test]
    fn sampled_histogram_against_its_source_is_good() {
        // Draw from a known distribution; a sample histogram should pass
        // the χ² test against the full histogram most of the time. This
        // is exactly the paper's experiment shape.
        let spec = BinSpec::uniform(0.0, 1.0, 9); // ~10 interior bins
        let mut rng = StdRng::seed_from_u64(99);
        let all: Vec<f64> = (0..50_000).map(|_| rng.gen::<f64>().powf(2.0)).collect();
        let reference = Histogram::from_samples(spec.clone(), all.iter().copied());

        let mut goods = 0;
        let trials = 20;
        for t in 0..trials {
            let mut r2 = StdRng::seed_from_u64(1000 + t);
            let sample = Histogram::from_samples(
                spec.clone(),
                (0..500).map(|_| all[r2.gen_range(0..all.len())]),
            );
            let out = histogram_goodness(&sample, &reference);
            if out.p_value > 0.05 {
                goods += 1;
            }
        }
        assert!(goods >= trials * 8 / 10, "only {goods}/{trials} passed");
    }

    #[test]
    fn mismatched_source_is_detected() {
        let spec = BinSpec::uniform(0.0, 1.0, 9);
        let mut rng = StdRng::seed_from_u64(5);
        let reference = Histogram::from_samples(
            spec.clone(),
            (0..50_000).map(|_| rng.gen::<f64>().powf(2.0)),
        );
        let sample = Histogram::from_samples(
            spec,
            (0..2_000).map(|_| rng.gen::<f64>()), // uniform, not x²-skewed
        );
        let out = histogram_goodness(&sample, &reference);
        assert!(out.p_value < 1e-6);
    }

    #[test]
    #[should_panic(expected = "same number of bins")]
    fn mismatched_lengths_panic() {
        pearson_chi2_test(&[1, 2], &[0.5, 0.25, 0.25]);
    }
}
