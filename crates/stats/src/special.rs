//! Special functions: log-gamma, regularized incomplete gamma, erf.
//!
//! Implemented from scratch (Lanczos approximation for `ln Γ`, the
//! classic series / continued-fraction split for the regularized
//! incomplete gamma functions) so the χ² CDF used by the paper's
//! sampling-size study needs no external numerics crate.
//!
//! Accuracy targets (validated in tests against high-precision reference
//! values): absolute error below `1e-10` over the parameter ranges the
//! library uses (`a ≤ 200`, `x ≤ 1e4`).

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation with g = 7, n = 9 coefficients (Boost/Numerical
/// Recipes parameterization); relative error ~1e-15 on `x > 0`.
#[allow(clippy::excessive_precision)] // Lanczos coefficients kept at full published precision
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the approximation in its sweet spot.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Maximum iterations for the series / continued-fraction evaluations.
const MAX_ITER: usize = 500;
/// Convergence tolerance for the incomplete-gamma evaluations.
const EPS: f64 = 1e-14;

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0`, `P(a, ∞) = 1`. Uses the power series for `x < a + 1`
/// and `1 − Q(a, x)` (continued fraction) otherwise, per the standard
/// numerically stable split.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if crate::float::exact_zero(x) {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_q requires x >= 0, got {x}");
    if crate::float::exact_zero(x) {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Power-series evaluation of `P(a, x)`; converges fast for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    (sum.ln() + a * x.ln() - x - ln_gamma(a))
        .exp()
        .clamp(0.0, 1.0)
}

/// Modified-Lentz continued fraction for `Q(a, x)`; converges fast for
/// `x ≥ a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    (h.ln() + a * x.ln() - x - ln_gamma(a))
        .exp()
        .clamp(0.0, 1.0)
}

/// Error function `erf(x)`, via `P(1/2, x²)` with sign handling.
pub fn erf(x: f64) -> f64 {
    if crate::float::exact_zero(x) {
        0.0
    } else if x > 0.0 {
        gamma_p(0.5, x * x)
    } else {
        -gamma_p(0.5, x * x)
    }
}

/// Standard normal CDF `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            let lg = ln_gamma(n as f64);
            assert!(
                (lg - fact.ln()).abs() < 1e-11,
                "n={n}: ln_gamma={lg}, ln (n-1)!={}",
                fact.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π; Γ(3/2) = √π / 2.
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!((ln_gamma(0.5) - sqrt_pi.ln()).abs() < TOL);
        assert!((ln_gamma(1.5) - (sqrt_pi / 2.0).ln()).abs() < TOL);
    }

    #[test]
    fn gamma_p_boundaries() {
        assert_eq!(gamma_p(3.0, 0.0), 0.0);
        assert!((gamma_p(3.0, 1e6) - 1.0).abs() < TOL);
        assert_eq!(gamma_q(3.0, 0.0), 1.0);
    }

    #[test]
    fn gamma_p_plus_q_is_one() {
        for &a in &[0.3, 0.5, 1.0, 2.5, 4.5, 10.0, 50.0, 200.0] {
            for &x in &[0.01, 0.5, 1.0, a, 2.0 * a, 10.0 * a] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert!((s - 1.0).abs() < 1e-12, "a={a} x={x}: {s}");
            }
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}.
        for &x in &[0.1f64, 0.5, 1.0, 2.0, 5.0, 20.0] {
            let expected = 1.0 - (-x).exp();
            assert!((gamma_p(1.0, x) - expected).abs() < TOL, "x={x}");
        }
    }

    #[test]
    fn gamma_p_erlang_special_case() {
        // P(k, x) for integer k is the Erlang CDF:
        // 1 − e^{−x} Σ_{i<k} x^i / i!.
        for &k in &[2u32, 3, 5, 9] {
            for &x in &[0.5, 2.0, 7.5, 15.0] {
                let mut tail = 0.0;
                let mut term = 1.0;
                for i in 0..k {
                    if i > 0 {
                        term *= x / i as f64;
                    }
                    tail += term;
                }
                let expected = 1.0 - (-x).exp() * tail;
                let got = gamma_p(k as f64, x);
                assert!(
                    (got - expected).abs() < 1e-9,
                    "k={k} x={x}: {got} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun.
        let cases = [
            (0.5, 0.520_499_877_8),
            (1.0, 0.842_700_792_9),
            (2.0, 0.995_322_265_0),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 1e-9, "x={x}");
            assert!((erf(-x) + want).abs() < 1e-9, "x=-{x}");
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < TOL);
        for &x in &[0.3, 1.0, 2.5] {
            let s = std_normal_cdf(x) + std_normal_cdf(-x);
            assert!((s - 1.0).abs() < TOL);
        }
        // Φ(1.96) ≈ 0.975.
        assert!((std_normal_cdf(1.959_963_985) - 0.975).abs() < 1e-6);
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let a = 4.5;
        let mut prev = -1.0;
        for i in 0..100 {
            let x = i as f64 * 0.3;
            let p = gamma_p(a, x);
            assert!(p >= prev - 1e-15, "not monotone at x={x}");
            prev = p;
        }
    }
}
