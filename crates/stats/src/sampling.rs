//! Random sampling utilities: Zipf, alias-method categorical sampling,
//! and reservoir sampling.
//!
//! The synthetic corpus generator leans on these: natural-language term
//! frequencies are famously Zipf-distributed, and document generation
//! draws millions of terms from fixed categorical distributions — the
//! alias method makes each draw `O(1)`.

use rand::Rng;

/// A Zipf(s) distribution over ranks `1..=n`: `P(rank) ∝ rank^{-s}`.
///
/// Sampling is `O(log n)` via binary search over the precomputed CDF;
/// construction is `O(n)`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf distribution over `n ≥ 1` ranks with exponent `s ≥ 0`.
    ///
    /// `s = 0` degenerates to the uniform distribution; `s ≈ 1` matches
    /// natural-language term frequencies.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += (rank as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (constructor requires `n ≥ 1`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Probability of a given 0-based index.
    pub fn prob(&self, index: usize) -> f64 {
        let hi = self.cdf[index];
        let lo = if index == 0 { 0.0 } else { self.cdf[index - 1] };
        hi - lo
    }

    /// Samples a 0-based index (rank − 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Walker's alias method: `O(1)` sampling from a fixed categorical
/// distribution after `O(n)` preprocessing.
#[derive(Debug, Clone)]
pub struct AliasSampler {
    prob: Vec<f64>,
    alias: Vec<usize>,
    weights: Vec<f64>,
}

impl AliasSampler {
    /// Builds a sampler from non-negative weights (at least one positive).
    ///
    /// # Panics
    /// Panics on empty input, negative/non-finite weights, or all-zero
    /// weights.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "AliasSampler needs at least one weight"
        );
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");
        let n = weights.len();
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i)
            } else {
                large.push(i)
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] += scaled[s] - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        let norm: Vec<f64> = weights.iter().map(|&w| w / total).collect();
        Self {
            prob,
            alias,
            weights: norm,
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Always false (constructor requires a non-empty input).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The normalized probability of category `i`.
    pub fn prob_of(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Samples a category index in `O(1)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Uniform reservoir sampling: selects `k` items uniformly at random from
/// an iterator of unknown length in one pass (Algorithm R).
pub fn reservoir_sample<T, R: Rng + ?Sized>(
    iter: impl IntoIterator<Item = T>,
    k: usize,
    rng: &mut R,
) -> Vec<T> {
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    for (i, item) in iter.into_iter().enumerate() {
        if reservoir.len() < k {
            reservoir.push(item);
        } else {
            let j = rng.gen_range(0..=i);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn zipf_probabilities_sum_to_one() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (0..100).map(|i| z.prob(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_is_monotone_decreasing() {
        let z = Zipf::new(50, 1.0);
        for i in 1..50 {
            assert!(z.prob(i) <= z.prob(i - 1) + 1e-15);
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.prob(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_empirical_frequencies() {
        let z = Zipf::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let emp = c as f64 / n as f64;
            assert!(
                (emp - z.prob(i)).abs() < 0.01,
                "rank {i}: {emp} vs {}",
                z.prob(i)
            );
        }
    }

    #[test]
    fn alias_empirical_frequencies() {
        let weights = [1.0, 3.0, 0.0, 6.0];
        let a = AliasSampler::new(&weights);
        let mut rng = StdRng::seed_from_u64(23);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[a.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[2], 0, "zero-weight category must never be drawn");
        for i in [0usize, 1, 3] {
            let emp = counts[i] as f64 / n as f64;
            assert!((emp - a.prob_of(i)).abs() < 0.01, "cat {i}: {emp}");
        }
    }

    #[test]
    fn alias_single_category() {
        let a = AliasSampler::new(&[7.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(a.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn alias_rejects_all_zero() {
        AliasSampler::new(&[0.0, 0.0]);
    }

    #[test]
    fn reservoir_exact_when_k_exceeds_n() {
        let mut rng = StdRng::seed_from_u64(3);
        let got = reservoir_sample(0..5, 10, &mut rng);
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn reservoir_is_approximately_uniform() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 20usize;
        let k = 5usize;
        let trials = 40_000;
        let mut hit = vec![0usize; n];
        for _ in 0..trials {
            for x in reservoir_sample(0..n, k, &mut rng) {
                hit[x] += 1;
            }
        }
        let expect = trials as f64 * k as f64 / n as f64;
        for (i, &h) in hit.iter().enumerate() {
            assert!(
                (h as f64 - expect).abs() < expect * 0.1,
                "item {i}: {h} vs {expect}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_alias_probs_match_weights(
            weights in proptest::collection::vec(0.0f64..10.0, 1..20)
        ) {
            prop_assume!(weights.iter().sum::<f64>() > 1e-9);
            let a = AliasSampler::new(&weights);
            let total: f64 = weights.iter().sum();
            for (i, &w) in weights.iter().enumerate() {
                prop_assert!((a.prob_of(i) - w / total).abs() < 1e-12);
            }
        }

        #[test]
        fn prop_zipf_sample_in_range(n in 1usize..200, s in 0.0f64..3.0, seed in 0u64..100) {
            let z = Zipf::new(n, s);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..50 {
                prop_assert!(z.sample(&mut rng) < n);
            }
        }

        #[test]
        fn prop_reservoir_size(n in 0usize..100, k in 0usize..20, seed in 0u64..50) {
            let mut rng = StdRng::seed_from_u64(seed);
            let got = reservoir_sample(0..n, k, &mut rng);
            prop_assert_eq!(got.len(), k.min(n));
        }
    }
}
