//! Deliberate floating-point comparison and conversion helpers.
//!
//! The workspace bans raw float `==`/`!=` outside tests (lint rule L1)
//! and lossy `as` casts on counts and indices (L2). This module is the
//! sanctioned vocabulary for the cases where an exact or approximate
//! comparison *is* the right thing, so every call site names its
//! intent:
//!
//! * [`exact_zero`] / [`exact_one`] — bit-level sentinel checks used by
//!   probability short-circuits (`p == 0.0` ⇒ impossible, `p == 1.0` ⇒
//!   certain). These preserve the exact semantics of the raw
//!   comparison: no epsilon is involved, so `p = 1e-300` is *not* zero
//!   and downstream results stay bit-identical.
//! * [`approx_eq`] — symmetric absolute-tolerance comparison for
//!   configuration-style checks (e.g. "is the noise factor exactly the
//!   default 1.0?").
//! * [`canonical`] — maps `-0.0` to `+0.0` (and is the identity
//!   elsewhere) so that sign-of-zero never leaks into sort keys or
//!   serialized output.
//! * [`total_cmp_desc`] — descending total order for ranking by float
//!   score with deterministic tie handling.
//! * [`round_u32`] / [`round_u64`] — checked float→count conversions
//!   that make the domain error explicit instead of silently saturating
//!   through `as`.

/// True iff `x` is (positively or negatively signed) zero.
///
/// Bit-level, not epsilon-based: this is the L1-compliant spelling of
/// `x == 0.0` for probability short-circuits where only the exact
/// sentinel matters. `-0.0` is accepted because IEEE 754 `==` treats
/// the two zeros as equal and callers rely on that.
#[inline]
pub fn exact_zero(x: f64) -> bool {
    // `to_bits` comparison against both zero payloads avoids the float
    // `==` operator while matching its semantics for zeros exactly
    // (NaN payloads compare unequal to both, as with `==`).
    let b = x.to_bits();
    let pos_zero = 0.0f64.to_bits();
    let neg_zero = (-0.0f64).to_bits();
    b == pos_zero || b == neg_zero
}

/// True iff `x` is exactly `1.0` (bit-level).
///
/// The L1-compliant spelling of `x == 1.0` for certainty
/// short-circuits (`P = 1` ⇒ the event is sure).
#[inline]
pub fn exact_one(x: f64) -> bool {
    let one = 1.0f64.to_bits();
    x.to_bits() == one
}

/// True iff `x` is bit-identical to `y` after [`canonical`]
/// normalization (so `0.0` matches `-0.0`, and NaN never matches).
#[inline]
pub fn exact_eq(x: f64, y: f64) -> bool {
    if x.is_nan() || y.is_nan() {
        return false;
    }
    canonical(x).to_bits() == canonical(y).to_bits()
}

/// Symmetric absolute-tolerance comparison: `|x − y| ≤ tol`.
///
/// NaN inputs always compare unequal. Use for configuration-style
/// checks where "close enough" is intended; use [`exact_zero`] /
/// [`exact_one`] when the comparison is a sentinel test.
#[inline]
pub fn approx_eq(x: f64, y: f64, tol: f64) -> bool {
    (x - y).abs() <= tol
}

/// Maps `-0.0` to `+0.0`; identity on every other value (incl. NaN).
///
/// `f64::max(0.0)` may return either zero when the input is `-0.0`
/// (IEEE 754 leaves the sign unspecified and implementations differ),
/// so clamps that feed sort keys or serialized output canonicalize
/// through this.
#[inline]
pub fn canonical(x: f64) -> f64 {
    if exact_zero(x) {
        0.0
    } else {
        x
    }
}

/// Descending total order on floats with canonical zero handling:
/// larger values sort first, `0.0` and `-0.0` are equal, NaN sorts
/// last (after every real value).
///
/// This is the workspace's ranking comparator: pair it with an index
/// tie-break (`.then(i.cmp(&j))`) for a deterministic selection order.
#[inline]
pub fn total_cmp_desc(x: f64, y: f64) -> std::cmp::Ordering {
    // NaN is handled explicitly: under `total_cmp` a positive NaN is the
    // *maximum*, which would rank it first in a descending sort.
    match (x.is_nan(), y.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => canonical(y).total_cmp(&canonical(x)),
    }
}

/// Rounds a non-negative float to the nearest `u32`, or `None` when the
/// input is NaN, negative (beyond rounding), or too large.
#[inline]
pub fn round_u32(x: f64) -> Option<u32> {
    if !x.is_finite() {
        return None;
    }
    let r = x.round();
    if r < 0.0 || r > f64::from(u32::MAX) {
        return None;
    }
    // mp-lint: allow(L2): domain checked above — integer-valued, in u32 range
    Some(r as u32)
}

/// Rounds a non-negative float to the nearest `u64`, or `None` when the
/// input is NaN, negative (beyond rounding), or too large.
#[inline]
pub fn round_u64(x: f64) -> Option<u64> {
    if !x.is_finite() {
        return None;
    }
    let r = x.round();
    // 2^64 as f64; values at or above it do not fit.
    if !(0.0..18_446_744_073_709_551_616.0).contains(&r) {
        return None;
    }
    // Domain checked above: `r` is integer-valued and within u64 range, so
    // the cast is exact (no `allow` needed — L2 keys on textual float
    // evidence, and a rounded named binding carries none).
    Some(r as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn exact_zero_matches_both_signs_only() {
        assert!(exact_zero(0.0));
        assert!(exact_zero(-0.0));
        assert!(!exact_zero(1e-300));
        assert!(!exact_zero(-1e-300));
        assert!(!exact_zero(f64::NAN));
        assert!(!exact_zero(f64::MIN_POSITIVE));
    }

    #[test]
    fn exact_one_is_bit_exact() {
        assert!(exact_one(1.0));
        assert!(!exact_one(1.0 + f64::EPSILON));
        assert!(!exact_one(1.0 - f64::EPSILON / 2.0));
        assert!(!exact_one(f64::NAN));
    }

    #[test]
    fn exact_eq_handles_zeros_and_nan() {
        assert!(exact_eq(0.0, -0.0));
        assert!(exact_eq(2.5, 2.5));
        // `1.5 + EPSILON` is the next representable value after `1.5`
        // (at 2.5 the same sum would round back to 2.5 exactly).
        assert!(!exact_eq(1.5, 1.5 + f64::EPSILON));
        assert!(!exact_eq(f64::NAN, f64::NAN));
    }

    #[test]
    fn approx_eq_tolerance() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
        assert!(!approx_eq(f64::NAN, f64::NAN, 1e-9));
    }

    #[test]
    fn canonical_folds_negative_zero() {
        assert_eq!(canonical(-0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(canonical(3.0), 3.0);
        assert_eq!(canonical(-3.0), -3.0);
        assert!(canonical(f64::NAN).is_nan());
    }

    #[test]
    fn total_cmp_desc_orders_and_breaks_ties() {
        assert_eq!(total_cmp_desc(2.0, 1.0), Ordering::Less); // 2.0 first
        assert_eq!(total_cmp_desc(1.0, 2.0), Ordering::Greater);
        assert_eq!(total_cmp_desc(1.0, 1.0), Ordering::Equal);
        assert_eq!(total_cmp_desc(0.0, -0.0), Ordering::Equal);
        // NaN sorts after every real value in a descending sort.
        assert_eq!(total_cmp_desc(f64::NAN, -1e308), Ordering::Greater);
    }

    #[test]
    fn round_u32_checks_domain() {
        assert_eq!(round_u32(3.6), Some(4));
        assert_eq!(round_u32(0.4), Some(0));
        assert_eq!(round_u32(-0.4), Some(0));
        assert_eq!(round_u32(-1.0), None);
        assert_eq!(round_u32(f64::NAN), None);
        assert_eq!(round_u32(f64::INFINITY), None);
        assert_eq!(round_u32(4_294_967_295.0), Some(u32::MAX));
        assert_eq!(round_u32(4_294_967_296.0), None);
    }

    #[test]
    fn round_u64_checks_domain() {
        assert_eq!(round_u64(3.6), Some(4));
        assert_eq!(round_u64(-1.0), None);
        assert_eq!(round_u64(f64::NAN), None);
        assert_eq!(round_u64(18_446_744_073_709_551_616.0), None);
        assert_eq!(round_u64(1e18), Some(1_000_000_000_000_000_000));
    }
}
