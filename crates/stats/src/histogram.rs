//! Fixed-edge histograms with per-bin empirical representatives.
//!
//! The paper's *error distributions* (EDs) are "histogram type"
//! distributions (Section 3.1, Figure 4): errors observed on sample
//! queries are bucketed, and each bucket's fraction becomes a
//! probability. We additionally track the empirical mean of the samples
//! inside each bin and use it as the bin's representative value when the
//! histogram is converted to a [`Discrete`] distribution — more faithful
//! than bin midpoints for skewed error data (estimation errors are
//! heavily right-skewed: underestimation is bounded at −100% but
//! overestimation is unbounded).

use crate::discrete::{Discrete, DiscreteError};
use serde::{Deserialize, Serialize};

/// Bin-edge specification for a [`Histogram`].
///
/// `edges` are strictly increasing interior edges `e_1 < … < e_m`; they
/// induce `m + 1` bins: `(-∞, e_1), [e_1, e_2), …, [e_m, +∞)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinSpec {
    edges: Vec<f64>,
}

impl BinSpec {
    /// Builds a spec from strictly increasing, finite interior edges.
    ///
    /// # Panics
    /// Panics on empty, non-finite, or non-increasing edges.
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(!edges.is_empty(), "BinSpec needs at least one edge");
        assert!(edges.iter().all(|e| e.is_finite()), "edges must be finite");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly increasing"
        );
        Self { edges }
    }

    /// `n` equal-width bins spanning `[lo, hi]` (plus the two open tails).
    pub fn uniform(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n >= 1 && lo < hi);
        let step = (hi - lo) / n as f64;
        Self::new((0..=n).map(|i| lo + step * i as f64).collect())
    }

    /// Interior edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Number of bins (`edges.len() + 1`).
    pub fn bin_count(&self) -> usize {
        self.edges.len() + 1
    }

    /// Index of the bin containing `x`.
    pub fn bin_of(&self, x: f64) -> usize {
        // partition_point: number of edges <= x gives the bin index for
        // the half-open convention [e_i, e_{i+1}).
        self.edges.partition_point(|&e| e <= x)
    }

    /// Nominal representative for a bin when it holds no samples: the
    /// midpoint for interior bins, the adjacent edge for the open tails.
    pub fn nominal_center(&self, bin: usize) -> f64 {
        let m = self.edges.len();
        assert!(bin <= m, "bin {bin} out of range for {m} edges");
        if bin == 0 {
            self.edges[0]
        } else if bin == m {
            self.edges[m - 1]
        } else {
            0.5 * (self.edges[bin - 1] + self.edges[bin])
        }
    }
}

/// A histogram over a fixed [`BinSpec`], accumulating counts and per-bin
/// value sums (for empirical bin representatives).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    spec: BinSpec,
    counts: Vec<u64>,
    sums: Vec<f64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram over `spec`.
    pub fn new(spec: BinSpec) -> Self {
        let n = spec.bin_count();
        Self {
            spec,
            counts: vec![0; n],
            sums: vec![0.0; n],
            total: 0,
        }
    }

    /// Builds and fills a histogram in one call.
    pub fn from_samples(spec: BinSpec, samples: impl IntoIterator<Item = f64>) -> Self {
        let mut h = Self::new(spec);
        for s in samples {
            h.add(s);
        }
        h
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "histogram samples must be finite");
        let b = self.spec.bin_of(x);
        self.counts[b] += 1;
        self.sums[b] += x;
        self.total += 1;
    }

    /// Merges another histogram over the *same* spec into this one.
    ///
    /// # Panics
    /// Panics if the bin specs differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.spec, other.spec,
            "cannot merge histograms with different bins"
        );
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
            self.sums[i] += other.sums[i];
        }
        self.total += other.total;
    }

    /// The bin specification.
    pub fn spec(&self) -> &BinSpec {
        &self.spec
    }

    /// Per-bin observation counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bin empirical probability (`count / total`; zeros when empty).
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// The representative value of `bin`: the empirical mean of its
    /// samples, or the nominal center when the bin is empty.
    pub fn representative(&self, bin: usize) -> f64 {
        if self.counts[bin] == 0 {
            self.spec.nominal_center(bin)
        } else {
            self.sums[bin] / self.counts[bin] as f64
        }
    }

    /// Converts the histogram into a [`Discrete`] distribution whose
    /// support is each non-empty bin's representative value.
    ///
    /// Errors if the histogram is empty.
    pub fn to_discrete(&self) -> Result<Discrete, DiscreteError> {
        let pairs: Vec<(f64, f64)> = (0..self.counts.len())
            .filter(|&b| self.counts[b] > 0)
            .map(|b| (self.representative(b), self.counts[b] as f64))
            .collect();
        Discrete::from_weighted(&pairs).inspect(|d| d.debug_assert_normalized())
    }

    /// Mean of all recorded observations (0 when empty).
    pub fn sample_mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sums.iter().sum::<f64>() / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bin_of_respects_half_open_convention() {
        let spec = BinSpec::new(vec![0.0, 1.0, 2.0]);
        assert_eq!(spec.bin_count(), 4);
        assert_eq!(spec.bin_of(-0.5), 0);
        assert_eq!(spec.bin_of(0.0), 1); // [0, 1)
        assert_eq!(spec.bin_of(0.99), 1);
        assert_eq!(spec.bin_of(1.0), 2);
        assert_eq!(spec.bin_of(2.0), 3); // open upper tail
        assert_eq!(spec.bin_of(100.0), 3);
    }

    #[test]
    fn uniform_spec_edges() {
        let spec = BinSpec::uniform(0.0, 10.0, 5);
        assert_eq!(spec.edges(), &[0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        assert_eq!(spec.bin_count(), 7);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_edges() {
        BinSpec::new(vec![1.0, 0.5]);
    }

    #[test]
    fn counts_and_probabilities() {
        let spec = BinSpec::new(vec![0.0, 10.0]);
        let h = Histogram::from_samples(spec, [-5.0, 1.0, 2.0, 3.0, 50.0]);
        assert_eq!(h.counts(), &[1, 3, 1]);
        assert_eq!(h.total(), 5);
        let p = h.probabilities();
        assert!((p[1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn representative_is_empirical_mean() {
        let spec = BinSpec::new(vec![0.0, 10.0]);
        let h = Histogram::from_samples(spec, [1.0, 2.0, 6.0]);
        assert!((h.representative(1) - 3.0).abs() < 1e-12);
        // Empty tail bins fall back to nominal centers.
        assert_eq!(h.representative(0), 0.0);
        assert_eq!(h.representative(2), 10.0);
    }

    #[test]
    fn to_discrete_paper_figure4() {
        // Paper Figure 4: ED of db1 — 40% of sample queries err −50%,
        // 50% err 0%, 10% err +50%.
        let spec = BinSpec::uniform(-0.75, 0.75, 6); // bins of width 0.25
        let mut h = Histogram::new(spec);
        for _ in 0..40 {
            h.add(-0.5);
        }
        for _ in 0..50 {
            h.add(0.0);
        }
        for _ in 0..10 {
            h.add(0.5);
        }
        let d = h.to_discrete().unwrap();
        assert_eq!(d.len(), 3);
        assert!((d.prob_eq(-0.5) - 0.4).abs() < 1e-12);
        assert!((d.prob_eq(0.0) - 0.5).abs() < 1e-12);
        assert!((d.prob_eq(0.5) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let spec = BinSpec::new(vec![0.0]);
        let mut a = Histogram::from_samples(spec.clone(), [-1.0, 1.0]);
        let b = Histogram::from_samples(spec, [2.0, 3.0]);
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.counts(), &[1, 3]);
    }

    #[test]
    fn empty_histogram_to_discrete_errors() {
        let h = Histogram::new(BinSpec::new(vec![0.0]));
        assert!(h.to_discrete().is_err());
    }

    proptest! {
        #[test]
        fn prop_total_equals_sum_of_counts(
            samples in proptest::collection::vec(-100.0f64..100.0, 0..200)
        ) {
            let h = Histogram::from_samples(BinSpec::uniform(-50.0, 50.0, 10), samples.clone());
            prop_assert_eq!(h.total() as usize, samples.len());
            prop_assert_eq!(h.counts().iter().sum::<u64>() as usize, samples.len());
        }

        #[test]
        fn prop_bin_of_in_range(
            edges_n in 1usize..10,
            x in -1e6f64..1e6
        ) {
            let spec = BinSpec::uniform(-100.0, 100.0, edges_n);
            prop_assert!(spec.bin_of(x) < spec.bin_count());
        }

        #[test]
        fn prop_discrete_mean_matches_sample_mean(
            samples in proptest::collection::vec(-100.0f64..100.0, 1..200)
        ) {
            // With empirical bin representatives, the discretized mean
            // equals the sample mean exactly (up to fp error).
            let h = Histogram::from_samples(BinSpec::uniform(-50.0, 50.0, 7), samples.clone());
            let d = h.to_discrete().unwrap();
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            prop_assert!((d.mean() - mean).abs() < 1e-6);
        }
    }
}
