//! # mp-stats — statistics substrate for `metaprobe`
//!
//! Self-contained statistical building blocks used throughout the
//! reproduction of *"A Probabilistic Approach to Metasearching with
//! Adaptive Probing"* (ICDE 2004):
//!
//! * [`Discrete`] — finite discrete probability distributions. Relevancy
//!   distributions (RDs) in the paper are exactly such distributions, and
//!   probing collapses them to impulses.
//! * [`Histogram`] — fixed-edge histograms with per-bin empirical means;
//!   error distributions (EDs) are histograms over estimation-error
//!   ratios.
//! * [`chi2`] — the Pearson χ² goodness-of-fit machinery the paper uses
//!   to validate sampling sizes (Section 4.2: 10 bins, 9 degrees of
//!   freedom).
//! * [`PoissonBinomial`] — exact distribution of the number of successes
//!   of independent, non-identical Bernoulli trials; powers the exact
//!   `P(db ∈ top-k)` computation in `mp-core`.
//! * [`sampling`] — Zipf and alias-method categorical samplers for the
//!   synthetic corpus generator.
//! * [`online`] — Welford-style streaming summary statistics.
//! * [`special`] — log-gamma / incomplete-gamma special functions backing
//!   the χ² CDF, implemented from scratch.
//! * [`float`] — deliberate float comparison/conversion vocabulary
//!   (exact sentinel checks, approximate equality, checked rounding)
//!   that keeps the rest of the workspace compliant with the `mp-lint`
//!   numeric rules L1/L2.
//!
//! Everything is deterministic given a seed; no global state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chi2;
pub mod discrete;
pub mod float;
pub mod histogram;
pub mod online;
pub mod poisson_binomial;
pub mod sampling;
pub mod special;

pub use chi2::{chi2_cdf, pearson_chi2_test, Chi2Outcome};
pub use discrete::Discrete;
pub use histogram::{BinSpec, Histogram};
pub use online::OnlineStats;
pub use poisson_binomial::{IncrementalPoissonBinomial, PoissonBinomial};
pub use sampling::{AliasSampler, Zipf};
