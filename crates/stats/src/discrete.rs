//! Finite discrete probability distributions.
//!
//! A [`Discrete`] is a normalized list of `(value, probability)` support
//! points kept sorted by value. The paper's *relevancy distributions*
//! (RDs) are exactly such objects: a handful of candidate relevancy
//! values, each with a probability derived from the error distribution.
//! Probing a database collapses its RD into an [`impulse`](Discrete::impulse).

use serde::{Deserialize, Serialize};

/// Numerical tolerance used when merging equal support values and when
/// validating that probabilities sum to one.
pub const PROB_EPS: f64 = 1e-9;

/// A finite discrete probability distribution over `f64` values.
///
/// Invariants (enforced by every constructor):
/// * support values are finite, strictly increasing, and deduplicated
///   (probabilities of equal values are merged);
/// * probabilities are non-negative and sum to 1 (±[`PROB_EPS`]);
/// * zero-probability support points are dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Discrete {
    points: Vec<(f64, f64)>,
}

/// Errors raised by [`Discrete`] constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiscreteError {
    /// The support/probability input was empty or all-zero.
    Empty,
    /// A value or probability was NaN/infinite, or a probability negative.
    Invalid,
}

impl std::fmt::Display for DiscreteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiscreteError::Empty => write!(f, "distribution has no support"),
            DiscreteError::Invalid => {
                write!(
                    f,
                    "invalid support point (non-finite value or negative probability)"
                )
            }
        }
    }
}
impl std::error::Error for DiscreteError {}

impl Discrete {
    /// Builds a distribution from raw `(value, weight)` pairs.
    ///
    /// Weights need not be normalized; they are rescaled to sum to 1.
    /// Pairs with equal values (within [`PROB_EPS`]) are merged.
    pub fn from_weighted(pairs: &[(f64, f64)]) -> Result<Self, DiscreteError> {
        if pairs.is_empty() {
            return Err(DiscreteError::Empty);
        }
        for &(v, w) in pairs {
            if !v.is_finite() || !w.is_finite() || w < 0.0 {
                return Err(DiscreteError::Invalid);
            }
        }
        let mut pts: Vec<(f64, f64)> = pairs.iter().copied().filter(|&(_, w)| w > 0.0).collect();
        if pts.is_empty() {
            return Err(DiscreteError::Empty);
        }
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values"));
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(pts.len());
        for (v, w) in pts {
            match merged.last_mut() {
                Some(last) if (v - last.0).abs() <= PROB_EPS => last.1 += w,
                _ => merged.push((v, w)),
            }
        }
        let total: f64 = merged.iter().map(|&(_, w)| w).sum();
        for p in &mut merged {
            p.1 /= total;
        }
        let dist = Self { points: merged };
        dist.debug_assert_normalized();
        Ok(dist)
    }

    /// A distribution concentrated on a single value with probability 1.
    ///
    /// This models the paper's post-probe RD: once a database is probed
    /// its actual relevancy is known exactly (Section 3.4, Figure 5(e)).
    pub fn impulse(value: f64) -> Self {
        assert!(value.is_finite(), "impulse value must be finite");
        let dist = Self {
            points: vec![(value, 1.0)],
        };
        dist.debug_assert_normalized();
        dist
    }

    /// True when the invariant holds: probabilities non-negative and
    /// summing to 1 within [`PROB_EPS`], support strictly increasing.
    pub fn is_normalized(&self) -> bool {
        let total: f64 = self.points.iter().map(|&(_, p)| p).sum();
        self.points.iter().all(|&(v, p)| v.is_finite() && p >= 0.0)
            && (total - 1.0).abs() <= PROB_EPS
            && self.points.windows(2).all(|w| w[0].0 < w[1].0)
    }

    /// Debug-build check of the normalization invariant (lint rule L6:
    /// every pmf constructor must end with this, or an equivalent
    /// `debug_assert`, so invariant drift is caught at the source).
    pub fn debug_assert_normalized(&self) {
        debug_assert!(
            self.is_normalized(),
            "Discrete invariant violated: probabilities must be non-negative, \
             sum to 1, and sit on a strictly increasing finite support"
        );
    }

    /// The support points as `(value, probability)` pairs, sorted by value.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of support points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the distribution is an impulse (single support point).
    pub fn is_impulse(&self) -> bool {
        self.points.len() == 1
    }

    /// Always false: constructors reject empty supports.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Expected value.
    pub fn mean(&self) -> f64 {
        self.points.iter().map(|&(v, p)| v * p).sum()
    }

    /// Variance (population).
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.points
            .iter()
            .map(|&(v, p)| p * (v - m) * (v - m))
            .sum::<f64>()
            .max(0.0)
    }

    /// Smallest support value.
    pub fn min_value(&self) -> f64 {
        self.points[0].0
    }

    /// Largest support value.
    pub fn max_value(&self) -> f64 {
        self.points[self.points.len() - 1].0
    }

    /// `P(X < x)` (strictly less).
    pub fn cdf_lt(&self, x: f64) -> f64 {
        self.points
            .iter()
            .take_while(|&&(v, _)| v < x)
            .map(|&(_, p)| p)
            .sum()
    }

    /// `P(X <= x)`.
    pub fn cdf_le(&self, x: f64) -> f64 {
        self.points
            .iter()
            .take_while(|&&(v, _)| v <= x)
            .map(|&(_, p)| p)
            .sum()
    }

    /// `P(X > x)`.
    pub fn prob_gt(&self, x: f64) -> f64 {
        (1.0 - self.cdf_le(x)).max(0.0)
    }

    /// `P(X = x)` (exact support match within [`PROB_EPS`]).
    pub fn prob_eq(&self, x: f64) -> f64 {
        self.points
            .iter()
            .find(|&&(v, _)| (v - x).abs() <= PROB_EPS)
            .map(|&(_, p)| p)
            .unwrap_or(0.0)
    }

    /// Samples one value using the provided uniform `u ∈ [0, 1)`.
    ///
    /// Exposed in terms of a raw uniform (rather than an `Rng`) so callers
    /// can drive it from any source, including quasi-random sequences in
    /// tests.
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let mut acc = 0.0;
        for &(v, p) in &self.points {
            acc += p;
            if u < acc {
                return v;
            }
        }
        self.max_value()
    }

    /// Samples one value from the distribution.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.gen::<f64>())
    }

    /// Applies `f` to every support value, re-normalizing merged duplicates.
    ///
    /// Used to derive a relevancy distribution from an error distribution:
    /// `RD = r̂ · (1 + err)` maps each error support point to a relevancy
    /// support point (paper Example 3).
    pub fn map_values(&self, mut f: impl FnMut(f64) -> f64) -> Result<Self, DiscreteError> {
        let mapped: Vec<(f64, f64)> = self.points.iter().map(|&(v, p)| (f(v), p)).collect();
        Self::from_weighted(&mapped).inspect(|d| d.debug_assert_normalized())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn d(pairs: &[(f64, f64)]) -> Discrete {
        Discrete::from_weighted(pairs).unwrap()
    }

    #[test]
    fn normalizes_weights() {
        let dist = d(&[(1.0, 2.0), (2.0, 2.0)]);
        assert_eq!(dist.points(), &[(1.0, 0.5), (2.0, 0.5)]);
    }

    #[test]
    fn merges_duplicate_values() {
        let dist = d(&[(1.0, 1.0), (1.0, 1.0), (3.0, 2.0)]);
        assert_eq!(dist.len(), 2);
        assert!((dist.prob_eq(1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn drops_zero_weight_points() {
        let dist = d(&[(1.0, 0.0), (2.0, 1.0)]);
        assert_eq!(dist.len(), 1);
        assert!(dist.is_impulse());
    }

    #[test]
    fn rejects_empty_and_invalid() {
        assert_eq!(Discrete::from_weighted(&[]), Err(DiscreteError::Empty));
        assert_eq!(
            Discrete::from_weighted(&[(1.0, 0.0)]),
            Err(DiscreteError::Empty)
        );
        assert_eq!(
            Discrete::from_weighted(&[(f64::NAN, 1.0)]),
            Err(DiscreteError::Invalid)
        );
        assert_eq!(
            Discrete::from_weighted(&[(1.0, -0.5)]),
            Err(DiscreteError::Invalid)
        );
    }

    #[test]
    fn impulse_properties() {
        let dist = Discrete::impulse(42.0);
        assert!(dist.is_impulse());
        assert_eq!(dist.mean(), 42.0);
        assert_eq!(dist.variance(), 0.0);
        assert_eq!(dist.prob_gt(41.0), 1.0);
        assert_eq!(dist.prob_gt(42.0), 0.0);
    }

    #[test]
    fn paper_figure5_rd_of_db1() {
        // Paper Figure 5(d): RD of db1 has values 50, 100, 150 with
        // probabilities 0.1, 0.5, 0.4 (ED bars -50%, 0%, +50% applied to
        // the estimate 100).
        let rd = d(&[(50.0, 0.1), (100.0, 0.5), (150.0, 0.4)]);
        assert!((rd.mean() - 115.0).abs() < 1e-9);
        assert!((rd.cdf_lt(130.0) - 0.6).abs() < 1e-12);
        assert!((rd.prob_gt(65.0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn cdf_and_tail_are_consistent() {
        let dist = d(&[(1.0, 0.2), (2.0, 0.3), (5.0, 0.5)]);
        for x in [0.0, 1.0, 1.5, 2.0, 4.9, 5.0, 6.0] {
            let total = dist.cdf_lt(x) + dist.prob_eq(x) + dist.prob_gt(x);
            assert!((total - 1.0).abs() < 1e-12, "x={x}: {total}");
        }
    }

    #[test]
    fn quantile_covers_support() {
        let dist = d(&[(1.0, 0.25), (2.0, 0.25), (3.0, 0.5)]);
        assert_eq!(dist.quantile(0.0), 1.0);
        assert_eq!(dist.quantile(0.3), 2.0);
        assert_eq!(dist.quantile(0.99), 3.0);
        assert_eq!(dist.quantile(1.0), 3.0);
    }

    #[test]
    fn map_values_scales_support() {
        // err ∈ {-0.5, 0, +0.5}, estimate 100 → relevancy {50, 100, 150}.
        let ed = d(&[(-0.5, 0.1), (0.0, 0.5), (0.5, 0.4)]);
        let rd = ed.map_values(|e| 100.0 * (1.0 + e)).unwrap();
        assert_eq!(rd.points(), &[(50.0, 0.1), (100.0, 0.5), (150.0, 0.4)]);
    }

    #[test]
    fn map_values_merges_collisions() {
        let ed = d(&[(-1.0, 0.3), (-0.999_999_999_99, 0.2), (1.0, 0.5)]);
        let rd = ed.map_values(|e| 100.0 * (1.0 + e).max(0.0)).unwrap();
        assert_eq!(rd.len(), 2);
        assert!((rd.prob_eq(0.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_probabilities() {
        let dist = d(&[(1.0, 0.2), (2.0, 0.8)]);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let ones = (0..n).filter(|_| dist.sample(&mut rng) == 1.0).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.02, "frac={frac}");
    }

    proptest! {
        #[test]
        fn prop_probabilities_sum_to_one(
            pairs in proptest::collection::vec((-1e6f64..1e6, 1e-6f64..10.0), 1..20)
        ) {
            let dist = Discrete::from_weighted(&pairs).unwrap();
            let total: f64 = dist.points().iter().map(|&(_, p)| p).sum();
            prop_assert!((total - 1.0).abs() < 1e-6);
        }

        #[test]
        fn prop_support_sorted_and_unique(
            pairs in proptest::collection::vec((-1e6f64..1e6, 1e-6f64..10.0), 1..20)
        ) {
            let dist = Discrete::from_weighted(&pairs).unwrap();
            let pts = dist.points();
            for w in pts.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
            }
        }

        #[test]
        fn prop_mean_within_support(
            pairs in proptest::collection::vec((-1e3f64..1e3, 1e-3f64..10.0), 1..20)
        ) {
            let dist = Discrete::from_weighted(&pairs).unwrap();
            let m = dist.mean();
            prop_assert!(m >= dist.min_value() - 1e-9);
            prop_assert!(m <= dist.max_value() + 1e-9);
        }

        #[test]
        fn prop_quantile_in_support(
            pairs in proptest::collection::vec((-1e3f64..1e3, 1e-3f64..10.0), 1..20),
            u in 0.0f64..1.0
        ) {
            let dist = Discrete::from_weighted(&pairs).unwrap();
            let v = dist.quantile(u);
            prop_assert!(dist.points().iter().any(|&(s, _)| s == v));
        }
    }
}
