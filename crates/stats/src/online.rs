//! Streaming (online) summary statistics.
//!
//! Welford's algorithm for numerically stable running mean/variance,
//! plus min/max tracking. The experiment harness aggregates per-query
//! correctness and probe counts over thousands of queries with this.

use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean / variance / min / max.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds an accumulator from a slice in one pass.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "OnlineStats observations must be finite");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).max(0.0)
        }
    }

    /// Sample (Bessel-corrected) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).max(0.0)
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.sample_variance() / self.n as f64).sqrt()
        }
    }

    /// Minimum observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_moments() {
        let s = OnlineStats::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s = OnlineStats::from_slice(&[3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn merge_matches_combined() {
        let a = OnlineStats::from_slice(&[1.0, 2.0, 3.0]);
        let b = OnlineStats::from_slice(&[10.0, 20.0]);
        let mut m = a;
        m.merge(&b);
        let all = OnlineStats::from_slice(&[1.0, 2.0, 3.0, 10.0, 20.0]);
        assert_eq!(m.count(), all.count());
        assert!((m.mean() - all.mean()).abs() < 1e-12);
        assert!((m.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(m.min(), all.min());
        assert_eq!(m.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = OnlineStats::from_slice(&[5.0, 6.0]);
        let mut m = a;
        m.merge(&OnlineStats::new());
        assert_eq!(m, a);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e, a);
    }

    proptest! {
        #[test]
        fn prop_matches_naive(xs in proptest::collection::vec(-1e4f64..1e4, 1..200)) {
            let s = OnlineStats::from_slice(&xs);
            let n = xs.len() as f64;
            let mean = xs.iter().sum::<f64>() / n;
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
            prop_assert!((s.mean() - mean).abs() < 1e-7);
            prop_assert!((s.variance() - var).abs() < 1e-5);
        }

        #[test]
        fn prop_merge_order_invariant(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..50),
            ys in proptest::collection::vec(-1e3f64..1e3, 1..50)
        ) {
            let a = OnlineStats::from_slice(&xs);
            let b = OnlineStats::from_slice(&ys);
            let mut ab = a; ab.merge(&b);
            let mut ba = b; ba.merge(&a);
            prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
            prop_assert!((ab.variance() - ba.variance()).abs() < 1e-7);
        }
    }
}
