//! Exact Poisson-binomial distribution via dynamic programming.
//!
//! Given independent Bernoulli trials with success probabilities
//! `p_1, …, p_n`, the Poisson-binomial distribution describes the number
//! of successes. `mp-core` uses it to compute, exactly, the probability
//! that *at most `k − 1` other databases outrank a candidate database* —
//! the heart of the expected partial correctness `E[Cor_p(DBk)]`
//! (paper Eq. 6): database `i` is in the true top-k iff fewer than `k`
//! of the `n − 1` other databases beat it.
//!
//! The DP is the textbook `O(n²)` convolution, which is exact and far
//! cheaper than the naive `O(2^n)` enumeration; for the paper's `n = 20`
//! databases it is effectively free.

use serde::{Deserialize, Serialize};

/// The exact distribution of the number of successes among independent,
/// non-identical Bernoulli trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoissonBinomial {
    /// `pmf[j] = P(exactly j successes)`, `j = 0..=n`.
    pmf: Vec<f64>,
}

impl PoissonBinomial {
    /// Computes the distribution for the given success probabilities.
    ///
    /// # Panics
    /// Panics if any probability is outside `[0, 1]` or non-finite.
    pub fn new(probs: &[f64]) -> Self {
        for &p in probs {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "Bernoulli probability out of range: {p}"
            );
        }
        let mut pmf = vec![0.0; probs.len() + 1];
        pmf[0] = 1.0;
        for (i, &p) in probs.iter().enumerate() {
            // Iterate downward so each trial is folded in exactly once.
            for j in (0..=i + 1).rev() {
                let stay = if j <= i { pmf[j] * (1.0 - p) } else { 0.0 };
                let from_below = if j > 0 { pmf[j - 1] * p } else { 0.0 };
                pmf[j] = stay + from_below;
            }
        }
        Self { pmf }
    }

    /// Number of trials `n`.
    pub fn trials(&self) -> usize {
        self.pmf.len() - 1
    }

    /// `P(exactly j successes)`; zero for `j > n`.
    pub fn pmf(&self, j: usize) -> f64 {
        self.pmf.get(j).copied().unwrap_or(0.0)
    }

    /// `P(at most j successes)`.
    pub fn cdf(&self, j: usize) -> f64 {
        let hi = j.min(self.pmf.len() - 1);
        self.pmf[..=hi].iter().sum::<f64>().min(1.0)
    }

    /// Expected number of successes.
    pub fn mean(&self) -> f64 {
        self.pmf.iter().enumerate().map(|(j, &p)| j as f64 * p).sum()
    }

    /// The full probability mass function, index = success count.
    pub fn pmf_slice(&self) -> &[f64] {
        &self.pmf
    }
}

/// `P(at most `limit` successes)` among trials with probabilities
/// `probs`, computed with a truncated DP in `O(n · limit)`.
///
/// Equivalent to `PoissonBinomial::new(probs).cdf(limit)` but avoids
/// materializing mass above `limit + 1` successes — the common case in
/// top-k membership queries where `limit = k − 1 ≪ n`.
pub fn at_most(probs: &[f64], limit: usize) -> f64 {
    let cap = limit.min(probs.len());
    // state[j] = P(exactly j successes so far), truncated at cap+1 where
    // the overflow bucket absorbs everything above the limit.
    let mut state = vec![0.0f64; cap + 2];
    state[0] = 1.0;
    for &p in probs {
        if p == 0.0 {
            continue;
        }
        for j in (0..=cap + 1).rev() {
            let from_below = if j > 0 { state[j - 1] * p } else { 0.0 };
            let stay = if j <= cap { state[j] * (1.0 - p) } else { state[j] };
            state[j] = stay + from_below;
        }
    }
    state[..=cap].iter().sum::<f64>().clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Brute-force oracle: enumerate all 2^n outcomes.
    fn brute_force_pmf(probs: &[f64]) -> Vec<f64> {
        let n = probs.len();
        let mut pmf = vec![0.0; n + 1];
        for mask in 0u32..(1 << n) {
            let mut p = 1.0;
            let mut successes = 0;
            for (i, &pi) in probs.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    p *= pi;
                    successes += 1;
                } else {
                    p *= 1.0 - pi;
                }
            }
            pmf[successes] += p;
        }
        pmf
    }

    #[test]
    fn matches_binomial_for_identical_probs() {
        // p = 0.5, n = 4 → binomial: 1/16, 4/16, 6/16, 4/16, 1/16.
        let pb = PoissonBinomial::new(&[0.5; 4]);
        let want = [1.0, 4.0, 6.0, 4.0, 1.0].map(|x| x / 16.0);
        for (j, &w) in want.iter().enumerate() {
            assert!((pb.pmf(j) - w).abs() < 1e-12, "j={j}");
        }
    }

    #[test]
    fn degenerate_probabilities() {
        let pb = PoissonBinomial::new(&[1.0, 0.0, 1.0]);
        assert_eq!(pb.pmf(2), 1.0);
        assert_eq!(pb.pmf(0), 0.0);
        assert_eq!(pb.cdf(1), 0.0);
        assert_eq!(pb.cdf(2), 1.0);
    }

    #[test]
    fn empty_trials() {
        let pb = PoissonBinomial::new(&[]);
        assert_eq!(pb.trials(), 0);
        assert_eq!(pb.pmf(0), 1.0);
        assert_eq!(pb.cdf(0), 1.0);
        assert_eq!(pb.mean(), 0.0);
    }

    #[test]
    fn mean_is_sum_of_probs() {
        let probs = [0.1, 0.9, 0.3, 0.5];
        let pb = PoissonBinomial::new(&probs);
        assert!((pb.mean() - probs.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn at_most_matches_full_cdf() {
        let probs = [0.12, 0.7, 0.33, 0.51, 0.08, 0.95];
        let pb = PoissonBinomial::new(&probs);
        for limit in 0..=probs.len() {
            let fast = at_most(&probs, limit);
            assert!(
                (fast - pb.cdf(limit)).abs() < 1e-12,
                "limit={limit}: {fast} vs {}",
                pb.cdf(limit)
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid_probability() {
        PoissonBinomial::new(&[1.5]);
    }

    proptest! {
        #[test]
        fn prop_dp_matches_brute_force(
            probs in proptest::collection::vec(0.0f64..=1.0, 0..10)
        ) {
            let pb = PoissonBinomial::new(&probs);
            let oracle = brute_force_pmf(&probs);
            for (j, &w) in oracle.iter().enumerate() {
                prop_assert!((pb.pmf(j) - w).abs() < 1e-9, "j={}, got {}, want {}", j, pb.pmf(j), w);
            }
        }

        #[test]
        fn prop_pmf_sums_to_one(
            probs in proptest::collection::vec(0.0f64..=1.0, 0..25)
        ) {
            let pb = PoissonBinomial::new(&probs);
            let total: f64 = pb.pmf_slice().iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_truncated_matches_full(
            probs in proptest::collection::vec(0.0f64..=1.0, 0..25),
            limit in 0usize..30
        ) {
            let pb = PoissonBinomial::new(&probs);
            prop_assert!((at_most(&probs, limit) - pb.cdf(limit)).abs() < 1e-9);
        }

        #[test]
        fn prop_cdf_monotone(
            probs in proptest::collection::vec(0.0f64..=1.0, 1..20)
        ) {
            let pb = PoissonBinomial::new(&probs);
            let mut prev = 0.0;
            for j in 0..=probs.len() {
                let c = pb.cdf(j);
                prop_assert!(c + 1e-12 >= prev);
                prev = c;
            }
        }
    }
}
