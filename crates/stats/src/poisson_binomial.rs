//! Exact Poisson-binomial distribution via dynamic programming.
//!
//! Given independent Bernoulli trials with success probabilities
//! `p_1, …, p_n`, the Poisson-binomial distribution describes the number
//! of successes. `mp-core` uses it to compute, exactly, the probability
//! that *at most `k − 1` other databases outrank a candidate database* —
//! the heart of the expected partial correctness `E[Cor_p(DBk)]`
//! (paper Eq. 6): database `i` is in the true top-k iff fewer than `k`
//! of the `n − 1` other databases beat it.
//!
//! The DP is the textbook `O(n²)` convolution, which is exact and far
//! cheaper than the naive `O(2^n)` enumeration; for the paper's `n = 20`
//! databases it is effectively free.

use crate::float::{exact_one, exact_zero};
use serde::{Deserialize, Serialize};

/// The exact distribution of the number of successes among independent,
/// non-identical Bernoulli trials.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoissonBinomial {
    /// `pmf[j] = P(exactly j successes)`, `j = 0..=n`.
    pmf: Vec<f64>,
}

impl PoissonBinomial {
    /// Computes the distribution for the given success probabilities.
    ///
    /// # Panics
    /// Panics if any probability is outside `[0, 1]` or non-finite.
    pub fn new(probs: &[f64]) -> Self {
        for &p in probs {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "Bernoulli probability out of range: {p}"
            );
        }
        let mut pmf = vec![0.0; probs.len() + 1];
        pmf[0] = 1.0;
        for (i, &p) in probs.iter().enumerate() {
            // Iterate downward so each trial is folded in exactly once.
            for j in (0..=i + 1).rev() {
                let stay = if j <= i { pmf[j] * (1.0 - p) } else { 0.0 };
                let from_below = if j > 0 { pmf[j - 1] * p } else { 0.0 };
                pmf[j] = stay + from_below;
            }
        }
        let pb = Self { pmf };
        pb.debug_assert_normalized();
        pb
    }

    /// Debug-build check that the pmf is a probability vector
    /// (non-negative, summing to 1 within `1e-9`) — lint rule L6.
    pub fn debug_assert_normalized(&self) {
        debug_assert!(
            self.pmf.iter().all(|&p| p >= 0.0)
                && (self.pmf.iter().sum::<f64>() - 1.0).abs() <= 1e-9,
            "PoissonBinomial pmf must be non-negative and sum to 1"
        );
    }

    /// Number of trials `n`.
    pub fn trials(&self) -> usize {
        self.pmf.len() - 1
    }

    /// `P(exactly j successes)`; zero for `j > n`.
    pub fn pmf(&self, j: usize) -> f64 {
        self.pmf.get(j).copied().unwrap_or(0.0)
    }

    /// `P(at most j successes)`.
    pub fn cdf(&self, j: usize) -> f64 {
        let hi = j.min(self.pmf.len() - 1);
        self.pmf[..=hi].iter().sum::<f64>().min(1.0)
    }

    /// Expected number of successes.
    pub fn mean(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(j, &p)| j as f64 * p)
            .sum()
    }

    /// The full probability mass function, index = success count.
    pub fn pmf_slice(&self) -> &[f64] {
        &self.pmf
    }
}

/// An *incremental* Poisson-binomial accumulator: the same exact DP as
/// [`PoissonBinomial`], but mutable — trials can be pushed, removed, and
/// swapped in `O(n)` each instead of rebuilding the whole `O(n²)` DP.
///
/// This is the engine behind `mp-core`'s greedy-probing fast path: the
/// per-database "how many rivals beat me" distribution is built once per
/// state, then each hypothetical probe of database `h` only *patches*
/// `h`'s beat-probability — a leave-one-out [`Self::remove`] followed by
/// re-inserting a 0/1 trial — rather than recomputing the full DP.
///
/// Removal is a stable deconvolution of the pmf by one Bernoulli factor:
/// with `f` the current pmf and `q = 1 − p`,
///
/// ```text
/// f[j] = g[j]·q + g[j−1]·p
/// ```
///
/// is solved forward (`g[j] = (f[j] − g[j−1]·p)/q`) when `p ≤ ½` and
/// backward (`g[j−1] = (f[j] − g[j]·q)/p`) when `p > ½`, so the divisor
/// is always ≥ ½ and the recurrence never amplifies rounding error.
/// `p ∈ {0, 1}` are exact shifts.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalPoissonBinomial {
    /// `pmf[j] = P(exactly j successes)`, `j = 0..=n`.
    pmf: Vec<f64>,
    /// The success probability of each live trial, in insertion order.
    probs: Vec<f64>,
}

impl Default for IncrementalPoissonBinomial {
    // mp-lint: allow(L6): pure delegation — `Self::new` runs the normalization debug_assert
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalPoissonBinomial {
    /// An empty accumulator (zero trials: `P(0 successes) = 1`).
    pub fn new() -> Self {
        let acc = Self {
            pmf: vec![1.0],
            probs: Vec::new(),
        };
        acc.debug_assert_normalized();
        acc
    }

    /// Debug-build check that the pmf is a probability vector
    /// (non-negative, summing to 1 within `1e-9`) — lint rule L6.
    pub fn debug_assert_normalized(&self) {
        debug_assert!(
            self.pmf.iter().all(|&p| p >= 0.0)
                && (self.pmf.iter().sum::<f64>() - 1.0).abs() <= 1e-9,
            "IncrementalPoissonBinomial pmf must be non-negative and sum to 1"
        );
    }

    /// Builds the accumulator from `probs` by successive pushes; the
    /// resulting pmf is identical to [`PoissonBinomial::new`]'s.
    pub fn from_probs(probs: &[f64]) -> Self {
        let mut acc = Self {
            pmf: Vec::with_capacity(probs.len() + 1),
            probs: Vec::new(),
        };
        acc.pmf.push(1.0);
        for &p in probs {
            acc.push(p);
        }
        acc.debug_assert_normalized();
        acc
    }

    /// Folds in one more trial with success probability `p`. `O(n)`.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]` or non-finite.
    pub fn push(&mut self, p: f64) {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "Bernoulli probability out of range: {p}"
        );
        self.pmf.push(0.0);
        let m = self.pmf.len() - 1;
        for j in (0..=m).rev() {
            let stay = if j < m { self.pmf[j] * (1.0 - p) } else { 0.0 };
            let from_below = if j > 0 { self.pmf[j - 1] * p } else { 0.0 };
            self.pmf[j] = stay + from_below;
        }
        self.probs.push(p);
    }

    /// Removes the trial at `index` (indices shift down, as in
    /// `Vec::remove`) and returns its probability. `O(n)`.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    pub fn remove(&mut self, index: usize) -> f64 {
        let p = self.probs.remove(index);
        let n = self.pmf.len() - 1;
        let mut out = Vec::with_capacity(n);
        deconvolve(&self.pmf, p, &mut out);
        self.pmf = out;
        p
    }

    /// Replaces the trial at `index` with probability `p_new`, returning
    /// the old probability. `O(n)` — one deconvolution + one fold, with
    /// no reallocation of the trials vector.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds or `p_new` is invalid.
    pub fn swap(&mut self, index: usize, p_new: f64) -> f64 {
        assert!(
            p_new.is_finite() && (0.0..=1.0).contains(&p_new),
            "Bernoulli probability out of range: {p_new}"
        );
        let old = self.probs[index];
        let n = self.pmf.len() - 1;
        let mut out = Vec::with_capacity(n + 1);
        deconvolve(&self.pmf, old, &mut out);
        // Fold the replacement back in (same downward pass as `push`).
        out.push(0.0);
        let m = out.len() - 1;
        for j in (0..=m).rev() {
            let stay = if j < m { out[j] * (1.0 - p_new) } else { 0.0 };
            let from_below = if j > 0 { out[j - 1] * p_new } else { 0.0 };
            out[j] = stay + from_below;
        }
        self.pmf = out;
        self.probs[index] = p_new;
        old
    }

    /// Writes the pmf of the distribution *without* the trial at `index`
    /// into `out` (length `n`), leaving the accumulator untouched — the
    /// leave-one-out query the greedy fast path issues per candidate.
    /// `O(n)`, no allocation beyond `out`'s capacity.
    pub fn excluding_into(&self, index: usize, out: &mut Vec<f64>) {
        deconvolve(&self.pmf, self.probs[index], out);
    }

    /// Number of live trials `n`.
    pub fn trials(&self) -> usize {
        self.probs.len()
    }

    /// The live trial probabilities, in insertion order.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// `P(exactly j successes)`; zero for `j > n`.
    pub fn pmf(&self, j: usize) -> f64 {
        self.pmf.get(j).copied().unwrap_or(0.0)
    }

    /// `P(at most j successes)`.
    pub fn cdf(&self, j: usize) -> f64 {
        let hi = j.min(self.pmf.len() - 1);
        self.pmf[..=hi].iter().sum::<f64>().min(1.0)
    }

    /// Expected number of successes.
    pub fn mean(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(j, &p)| j as f64 * p)
            .sum()
    }

    /// The full probability mass function, index = success count.
    pub fn pmf_slice(&self) -> &[f64] {
        &self.pmf
    }
}

/// Divides the Poisson-binomial pmf `f` (over `n` trials) by the
/// Bernoulli factor `p`, writing the `n − 1`-trial pmf into `out`.
///
/// Direction is chosen so the divisor is `max(p, 1 − p) ≥ ½`; each term
/// is clamped to `[0, 1]` to absorb last-ulp drift (the true values are
/// probabilities, so clamping never moves an exact result).
fn deconvolve(f: &[f64], p: f64, out: &mut Vec<f64>) {
    let n = f.len() - 1;
    assert!(n >= 1, "cannot remove a trial from an empty accumulator");
    out.clear();
    if exact_zero(p) {
        // The trial never fired: f already is g with a trailing zero.
        out.extend_from_slice(&f[..n]);
    } else if exact_one(p) {
        // The trial always fired: g is f shifted down by one success.
        out.extend_from_slice(&f[1..]);
    } else if p <= 0.5 {
        let q = 1.0 - p;
        let mut prev = 0.0;
        for &fj in &f[..n] {
            let g = ((fj - prev * p) / q).clamp(0.0, 1.0);
            out.push(g);
            prev = g;
        }
    } else {
        out.resize(n, 0.0);
        let q = 1.0 - p;
        let mut next = 0.0;
        for j in (0..n).rev() {
            let g = ((f[j + 1] - next * q) / p).clamp(0.0, 1.0);
            out[j] = g;
            next = g;
        }
    }
}

/// `P(at most `limit` successes)` among trials with probabilities
/// `probs`, computed with a truncated DP in `O(n · limit)`.
///
/// Equivalent to `PoissonBinomial::new(probs).cdf(limit)` but avoids
/// materializing mass above `limit + 1` successes — the common case in
/// top-k membership queries where `limit = k − 1 ≪ n`.
pub fn at_most(probs: &[f64], limit: usize) -> f64 {
    let cap = limit.min(probs.len());
    // state[j] = P(exactly j successes so far), truncated at cap+1 where
    // the overflow bucket absorbs everything above the limit.
    let mut state = vec![0.0f64; cap + 2];
    state[0] = 1.0;
    for &p in probs {
        if exact_zero(p) {
            continue;
        }
        for j in (0..=cap + 1).rev() {
            let from_below = if j > 0 { state[j - 1] * p } else { 0.0 };
            let stay = if j <= cap {
                state[j] * (1.0 - p)
            } else {
                state[j]
            };
            state[j] = stay + from_below;
        }
    }
    state[..=cap].iter().sum::<f64>().clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Brute-force oracle: enumerate all 2^n outcomes.
    fn brute_force_pmf(probs: &[f64]) -> Vec<f64> {
        let n = probs.len();
        let mut pmf = vec![0.0; n + 1];
        for mask in 0u32..(1 << n) {
            let mut p = 1.0;
            let mut successes = 0;
            for (i, &pi) in probs.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    p *= pi;
                    successes += 1;
                } else {
                    p *= 1.0 - pi;
                }
            }
            pmf[successes] += p;
        }
        pmf
    }

    #[test]
    fn matches_binomial_for_identical_probs() {
        // p = 0.5, n = 4 → binomial: 1/16, 4/16, 6/16, 4/16, 1/16.
        let pb = PoissonBinomial::new(&[0.5; 4]);
        let want = [1.0, 4.0, 6.0, 4.0, 1.0].map(|x| x / 16.0);
        for (j, &w) in want.iter().enumerate() {
            assert!((pb.pmf(j) - w).abs() < 1e-12, "j={j}");
        }
    }

    #[test]
    fn degenerate_probabilities() {
        let pb = PoissonBinomial::new(&[1.0, 0.0, 1.0]);
        assert_eq!(pb.pmf(2), 1.0);
        assert_eq!(pb.pmf(0), 0.0);
        assert_eq!(pb.cdf(1), 0.0);
        assert_eq!(pb.cdf(2), 1.0);
    }

    #[test]
    fn empty_trials() {
        let pb = PoissonBinomial::new(&[]);
        assert_eq!(pb.trials(), 0);
        assert_eq!(pb.pmf(0), 1.0);
        assert_eq!(pb.cdf(0), 1.0);
        assert_eq!(pb.mean(), 0.0);
    }

    #[test]
    fn mean_is_sum_of_probs() {
        let probs = [0.1, 0.9, 0.3, 0.5];
        let pb = PoissonBinomial::new(&probs);
        assert!((pb.mean() - probs.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn at_most_matches_full_cdf() {
        let probs = [0.12, 0.7, 0.33, 0.51, 0.08, 0.95];
        let pb = PoissonBinomial::new(&probs);
        for limit in 0..=probs.len() {
            let fast = at_most(&probs, limit);
            assert!(
                (fast - pb.cdf(limit)).abs() < 1e-12,
                "limit={limit}: {fast} vs {}",
                pb.cdf(limit)
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_invalid_probability() {
        PoissonBinomial::new(&[1.5]);
    }

    #[test]
    fn incremental_push_is_bitwise_identical_to_batch() {
        // `from_probs` folds trials in the same order with the same
        // arithmetic as the batch DP, so the pmfs are *equal*, not just
        // close.
        let probs = [0.12, 0.7, 0.33, 0.51, 0.08, 0.95, 0.0, 1.0];
        let inc = IncrementalPoissonBinomial::from_probs(&probs);
        let batch = PoissonBinomial::new(&probs);
        assert_eq!(inc.pmf_slice(), batch.pmf_slice());
        assert_eq!(inc.trials(), 8);
        assert!((inc.mean() - batch.mean()).abs() < 1e-15);
    }

    #[test]
    fn remove_inverts_push() {
        let base = [0.2, 0.5, 0.81, 0.4];
        for (idx, _) in base.iter().enumerate() {
            let mut inc = IncrementalPoissonBinomial::from_probs(&base);
            let removed = inc.remove(idx);
            assert_eq!(removed, base[idx]);
            let mut rest = base.to_vec();
            rest.remove(idx);
            let want = PoissonBinomial::new(&rest);
            for j in 0..=rest.len() {
                assert!(
                    (inc.pmf(j) - want.pmf(j)).abs() < 1e-12,
                    "idx={idx} j={j}: {} vs {}",
                    inc.pmf(j),
                    want.pmf(j)
                );
            }
        }
    }

    #[test]
    fn remove_handles_degenerate_trials() {
        // p = 0 and p = 1 take the exact shift paths.
        let mut inc = IncrementalPoissonBinomial::from_probs(&[0.0, 1.0, 0.6]);
        assert_eq!(inc.remove(1), 1.0);
        assert_eq!(inc.remove(0), 0.0);
        let want = PoissonBinomial::new(&[0.6]);
        for j in 0..=1 {
            assert!((inc.pmf(j) - want.pmf(j)).abs() < 1e-12);
        }
    }

    #[test]
    fn swap_replaces_one_trial() {
        let mut inc = IncrementalPoissonBinomial::from_probs(&[0.2, 0.9, 0.4]);
        let old = inc.swap(1, 0.05);
        assert_eq!(old, 0.9);
        assert_eq!(inc.probs(), &[0.2, 0.05, 0.4]);
        let want = PoissonBinomial::new(&[0.2, 0.05, 0.4]);
        for j in 0..=3 {
            assert!((inc.pmf(j) - want.pmf(j)).abs() < 1e-12, "j={j}");
        }
    }

    #[test]
    fn excluding_into_leaves_accumulator_untouched() {
        let probs = [0.3, 0.7, 0.55];
        let inc = IncrementalPoissonBinomial::from_probs(&probs);
        let snapshot = inc.clone();
        let mut buf = Vec::new();
        inc.excluding_into(2, &mut buf);
        assert_eq!(inc, snapshot);
        let want = PoissonBinomial::new(&[0.3, 0.7]);
        assert_eq!(buf.len(), 3);
        for (j, &g) in buf.iter().enumerate() {
            assert!((g - want.pmf(j)).abs() < 1e-12, "j={j}");
        }
    }

    proptest! {
        #[test]
        fn prop_dp_matches_brute_force(
            probs in proptest::collection::vec(0.0f64..=1.0, 0..10)
        ) {
            let pb = PoissonBinomial::new(&probs);
            let oracle = brute_force_pmf(&probs);
            for (j, &w) in oracle.iter().enumerate() {
                prop_assert!((pb.pmf(j) - w).abs() < 1e-9, "j={}, got {}, want {}", j, pb.pmf(j), w);
            }
        }

        #[test]
        fn prop_pmf_sums_to_one(
            probs in proptest::collection::vec(0.0f64..=1.0, 0..25)
        ) {
            let pb = PoissonBinomial::new(&probs);
            let total: f64 = pb.pmf_slice().iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_truncated_matches_full(
            probs in proptest::collection::vec(0.0f64..=1.0, 0..25),
            limit in 0usize..30
        ) {
            let pb = PoissonBinomial::new(&probs);
            prop_assert!((at_most(&probs, limit) - pb.cdf(limit)).abs() < 1e-9);
        }

        #[test]
        fn prop_incremental_ops_match_from_scratch(
            // Each op: (selector, raw probability, index seed). The raw
            // probability is widened past [0, 1] and clamped so the
            // degenerate p ∈ {0, 1} trials get real coverage.
            ops in proptest::collection::vec(
                (0u8..6, -0.25f64..1.25, 0usize..64),
                1..14
            )
        ) {
            let mut inc = IncrementalPoissonBinomial::new();
            let mut shadow: Vec<f64> = Vec::new();
            for (sel, raw, idx_seed) in ops {
                let p = raw.clamp(0.0, 1.0);
                // Bias toward push (4/6) so sequences actually grow.
                match sel {
                    4 if !shadow.is_empty() => {
                        let idx = idx_seed % shadow.len();
                        let removed = inc.remove(idx);
                        prop_assert_eq!(removed, shadow.remove(idx));
                    }
                    5 if !shadow.is_empty() => {
                        let idx = idx_seed % shadow.len();
                        let old = inc.swap(idx, p);
                        prop_assert_eq!(old, shadow[idx]);
                        shadow[idx] = p;
                    }
                    _ => {
                        inc.push(p);
                        shadow.push(p);
                    }
                }
                let scratch = PoissonBinomial::new(&shadow);
                prop_assert_eq!(inc.trials(), shadow.len());
                for j in 0..=shadow.len() {
                    prop_assert!(
                        (inc.pmf(j) - scratch.pmf(j)).abs() < 1e-12,
                        "j={}: incremental {} vs scratch {} (trials {:?})",
                        j, inc.pmf(j), scratch.pmf(j), shadow
                    );
                }
            }
        }

        #[test]
        fn prop_excluding_matches_removed_rebuild(
            probs in proptest::collection::vec(0.0f64..=1.0, 1..20),
            idx_seed in 0usize..64
        ) {
            let idx = idx_seed % probs.len();
            let inc = IncrementalPoissonBinomial::from_probs(&probs);
            let mut buf = Vec::new();
            inc.excluding_into(idx, &mut buf);
            let mut rest = probs.clone();
            rest.remove(idx);
            let want = PoissonBinomial::new(&rest);
            prop_assert_eq!(buf.len(), probs.len());
            for (j, &g) in buf.iter().enumerate() {
                prop_assert!((g - want.pmf(j)).abs() < 1e-12, "j={}", j);
            }
        }

        #[test]
        fn prop_cdf_monotone(
            probs in proptest::collection::vec(0.0f64..=1.0, 1..20)
        ) {
            let pb = PoissonBinomial::new(&probs);
            let mut prev = 0.0;
            for j in 0..=probs.len() {
                let c = pb.cdf(j);
                prop_assert!(c + 1e-12 >= prev);
                prev = c;
            }
        }
    }
}
