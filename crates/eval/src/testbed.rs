//! Testbed assembly: scenario → mediator → training → golden standard.

use crate::golden::GoldenStandard;
use mp_core::{CoreConfig, EdLibrary, IndependenceEstimator, RelevancyDef, RelevancyEstimator};
use mp_corpus::{Scenario, ScenarioConfig, ScenarioKind, TopicModel};
use mp_hidden::{ContentSummary, HiddenWebDatabase, Mediator, SimulatedHiddenDb};
use mp_workload::{QueryGenConfig, TrainTestSplit};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How the metasearcher's content summaries are obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SummaryMode {
    /// Exact df tables exported by cooperative databases.
    Cooperative,
    /// Query-based sampling estimates (ablation A4): `n_queries`
    /// single-term probes, `docs_per_query` downloads each.
    Sampled {
        /// Number of single-term probe queries per database.
        n_queries: usize,
        /// Top documents downloaded per probe query.
        docs_per_query: usize,
    },
}

/// Everything needed to build a [`Testbed`].
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// The corpus scenario to synthesize.
    pub scenario: ScenarioConfig,
    /// 2-term queries per split side.
    pub n_two: usize,
    /// 3-term queries per split side.
    pub n_three: usize,
    /// Probabilistic-model knobs.
    pub core: CoreConfig,
    /// Relevancy definition under evaluation.
    pub relevancy: RelevancyDef,
    /// Summary construction mode.
    pub summaries: SummaryMode,
    /// Workload generation knobs (seed is taken from `scenario.seed`).
    pub workload: QueryGenConfig,
}

impl TestbedConfig {
    /// The paper-shaped configuration: 20 health databases, 1000 + 1000
    /// train and test queries of each arity (Section 6.1).
    pub fn paper(seed: u64) -> Self {
        Self {
            scenario: ScenarioConfig::new(ScenarioKind::Health, seed),
            n_two: 1000,
            n_three: 1000,
            // The coverage threshold is a corpus-scale-dependent knob:
            // the paper's θ = 100 suits databases of 10⁵–10⁶ documents;
            // on this synthetic testbed (500–8000 docs, sparser term
            // statistics) θ = 0.5 separates covered from uncovered
            // queries the way the paper intends. Ablation A2 sweeps it.
            core: CoreConfig::default().with_threshold(0.5),
            relevancy: RelevancyDef::DocFrequency,
            summaries: SummaryMode::Cooperative,
            workload: QueryGenConfig {
                seed: seed ^ 0x51_7e_a5,
                ..QueryGenConfig::default()
            },
        }
    }

    /// A fast configuration for unit and integration tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            scenario: ScenarioConfig::tiny(ScenarioKind::Health, seed),
            n_two: 120,
            n_three: 80,
            core: CoreConfig::default().with_threshold(10.0),
            relevancy: RelevancyDef::DocFrequency,
            summaries: SummaryMode::Cooperative,
            // The query subtopic window tracks the tiny corpus's topic
            // size (60 terms) the way the default tracks 300-term topics.
            workload: QueryGenConfig {
                seed: seed ^ 0x51_7e_a5,
                window: 12,
                ..QueryGenConfig::default()
            },
        }
    }
}

/// A fully assembled evaluation environment.
pub struct Testbed {
    /// The mediated databases with summaries.
    pub mediator: Mediator,
    /// The topic model (shared vocabulary).
    pub model: TopicModel,
    /// Disjoint train/test queries.
    pub split: TrainTestSplit,
    /// ED library trained on `split.train`.
    pub library: EdLibrary,
    /// Actual relevancies of every test query on every database.
    pub golden: GoldenStandard,
    /// The config the testbed was built from.
    pub config: TestbedConfig,
    /// The estimator the library was trained for.
    pub estimator: Box<dyn RelevancyEstimator>,
}

impl Testbed {
    /// Builds the full testbed: generate corpus, wrap databases, build
    /// summaries, generate the query split, train the ED library, and
    /// compute the golden standard. Deterministic in the config seeds.
    pub fn build(config: TestbedConfig) -> Self {
        Self::build_with_estimator(config, Box::new(IndependenceEstimator))
    }

    /// As [`Testbed::build`] with an explicit estimator.
    pub fn build_with_estimator(
        config: TestbedConfig,
        estimator: Box<dyn RelevancyEstimator>,
    ) -> Self {
        let _span = mp_obs::span!("eval.testbed.build");
        let scenario = Scenario::generate(config.scenario.clone());
        let (model, parts) = scenario.into_parts();

        let mut dbs: Vec<Arc<dyn HiddenWebDatabase>> = Vec::with_capacity(parts.len());
        let mut cooperative: Vec<ContentSummary> = Vec::with_capacity(parts.len());
        for (spec, index) in parts {
            cooperative.push(ContentSummary::cooperative(&index));
            // Explicitly without the per-probe query log: testbeds feed
            // throughput benches and multi-worker serving, where probe
            // logging is per-probe work (and once was a global mutex)
            // that no evaluation reads. Probe *counts* are still kept.
            dbs.push(Arc::new(
                SimulatedHiddenDb::new(spec.name, index).without_probe_log(),
            ));
        }

        let summaries = match config.summaries {
            SummaryMode::Cooperative => cooperative,
            SummaryMode::Sampled {
                n_queries,
                docs_per_query,
            } => {
                let mut rng = StdRng::seed_from_u64(config.scenario.seed ^ 0xA11A5);
                dbs.iter()
                    .enumerate()
                    .map(|(i, db)| {
                        // Seed terms: the cooperative summary's term set
                        // (what a crawler would discover incrementally);
                        // contents are still *estimated* via sampling.
                        let seeds: Vec<_> = cooperative[i].iter().map(|(t, _)| t).collect();
                        ContentSummary::from_sampling(
                            db.as_ref(),
                            &seeds,
                            n_queries,
                            docs_per_query,
                            &mut rng,
                        )
                    })
                    .collect()
            }
        };

        let mediator = Mediator::new(dbs, summaries);
        let split = TrainTestSplit::generate(
            &model,
            config.n_two,
            config.n_three,
            config.workload.clone(),
        );
        let library = EdLibrary::train(
            &mediator,
            estimator.as_ref(),
            config.relevancy,
            split.train.queries(),
            &config.core,
        );
        let golden = GoldenStandard::build(
            &mediator,
            split.test.queries(),
            config.relevancy,
            config.core.probe_top_n,
        );
        mediator.reset_probes();

        Self {
            mediator,
            model,
            split,
            library,
            golden,
            config,
            estimator,
        }
    }

    /// Number of mediated databases.
    pub fn n_databases(&self) -> usize {
        self.mediator.len()
    }

    /// Point estimates of a query across every database.
    pub fn estimates(&self, query: &mp_workload::Query) -> Vec<f64> {
        (0..self.mediator.len())
            .map(|i| self.estimator.estimate(self.mediator.summary(i), query))
            .collect()
    }

    /// The query's relevancy distributions across every database.
    // mp-lint: allow(L6): pure delegation to derive_all_rds, which asserts
    pub fn rds(&self, query: &mp_workload::Query) -> Vec<mp_stats::Discrete> {
        mp_core::rd::derive_all_rds(&self.estimates(query), query, &self.library)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_testbed_builds_consistently() {
        let tb = Testbed::build(TestbedConfig::tiny(3));
        assert_eq!(tb.n_databases(), 5);
        assert_eq!(tb.split.test.len(), 200);
        assert_eq!(tb.golden.n_queries(), 200);
        assert_eq!(tb.library.n_databases(), 5);
        // Probe counters were reset after training/golden construction.
        assert_eq!(tb.mediator.total_probes(), 0);
    }

    #[test]
    fn sampled_summaries_differ_from_cooperative() {
        let mut cfg = TestbedConfig::tiny(4);
        cfg.summaries = SummaryMode::Sampled {
            n_queries: 10,
            docs_per_query: 20,
        };
        let sampled = Testbed::build(cfg);
        let coop = Testbed::build(TestbedConfig::tiny(4));
        // Same sizes, but at least one df differs somewhere.
        let mut any_diff = false;
        for i in 0..coop.n_databases() {
            for (t, df) in coop.mediator.summary(i).iter() {
                if sampled.mediator.summary(i).df(t) != df {
                    any_diff = true;
                }
            }
        }
        assert!(any_diff, "sampling should not reproduce exact summaries");
    }
}
