//! # mp-eval — experiment harness for `metaprobe`
//!
//! Reproduces every table and figure of the paper's evaluation
//! (Section 6) plus the ablations listed in `DESIGN.md` §4, against the
//! synthetic testbeds from `mp-corpus`:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`experiments::fig7_sampling`] | Fig. 7 — per-database χ² goodness vs sampling size |
//! | [`experiments::fig8_goodness`] | Fig. 8 — average goodness per sampling size |
//! | [`experiments::fig9_query_types`] | Fig. 9 — per-query-type EDs on one database |
//! | [`experiments::fig15_selection`] | Fig. 15 — baseline vs RD-based correctness (k = 1, 3) |
//! | [`experiments::fig16_probing`] | Fig. 16 — correctness vs number of probes |
//! | [`experiments::fig17_threshold`] | Fig. 17 — probes needed vs certainty threshold `t` |
//! | [`experiments::ablations`] | A1 policies, A2 θ sweep, A3 training size, A4 summaries |
//!
//! Shared machinery: [`Testbed`] (scenario + summaries + trained ED
//! library + golden standard), [`runner`] (parallel per-query
//! evaluation), [`report`] (text tables + JSON reports).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod golden;
pub mod report;
pub mod runner;
pub mod testbed;

pub use golden::GoldenStandard;
pub use report::TextTable;
pub use runner::MethodScores;
pub use testbed::{SummaryMode, Testbed, TestbedConfig};
