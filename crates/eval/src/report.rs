//! Report rendering: aligned text tables and JSON experiment records.

use serde::Serialize;

/// A simple aligned text table for experiment output.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A new table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells stringified by the caller).
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: row from `Display` items.
    pub fn row_display<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let strings: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&strings)
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&self.title);
            out.push('\n');
        }
        let header = fmt_row(&self.headers);
        out.push_str(&header);
        out.push('\n');
        out.push_str(&"-".repeat(header.chars().count()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a probability/correctness with three decimals.
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a count-like average with two decimals.
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

/// Serializes any experiment record to pretty JSON (machine-readable
/// companion to the text tables; consumed by `EXPERIMENTS.md` tooling).
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("experiment records serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("demo", &["method", "score"]);
        t.row(&["baseline".into(), "0.47".into()]);
        t.row(&["rd".into(), "0.65".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5); // title, header, rule, 2 rows
                                    // All data lines share the header width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[1].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(0.8512), "0.851");
        assert_eq!(fmt2(3.456), "3.46");
    }

    #[test]
    fn json_roundtrip() {
        #[derive(serde::Serialize)]
        struct R {
            x: f64,
        }
        let s = to_json(&R { x: 1.5 });
        assert!(s.contains("1.5"));
    }
}
