//! The golden standard: actual relevancies of every test query on every
//! database (paper Section 6.1: "For each query in Q_test, we issue it
//! to the 20 databases, get the number-of-matching-documents of each
//! database, and record the top-k databases DBtopk as the correct
//! answer").

use mp_core::correctness::golden_topk;
use mp_core::RelevancyDef;
use mp_hidden::Mediator;
use mp_workload::Query;
use serde::{Deserialize, Serialize};

/// Actual relevancies, indexed `[query][database]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenStandard {
    actuals: Vec<Vec<f64>>,
}

impl GoldenStandard {
    /// Issues every query to every database and records the actual
    /// relevancies. The probes spent here are evaluation bookkeeping
    /// (the *experimenter's* golden standard), not metasearcher cost —
    /// callers reset the mediator's probe counters afterwards.
    pub fn build(
        mediator: &Mediator,
        queries: &[Query],
        def: RelevancyDef,
        probe_top_n: usize,
    ) -> Self {
        let actuals = queries
            .iter()
            .map(|q| {
                (0..mediator.len())
                    .map(|i| def.probe(mediator.db(i), q, probe_top_n))
                    .collect()
            })
            .collect();
        Self { actuals }
    }

    /// Builds from precomputed relevancies (tests).
    pub fn from_actuals(actuals: Vec<Vec<f64>>) -> Self {
        Self { actuals }
    }

    /// Number of queries covered.
    pub fn n_queries(&self) -> usize {
        self.actuals.len()
    }

    /// Actual relevancy of query `q` on database `db`.
    pub fn actual(&self, q: usize, db: usize) -> f64 {
        self.actuals[q][db]
    }

    /// All actual relevancies for query `q` (index-aligned with the
    /// mediator).
    pub fn actuals(&self, q: usize) -> &[f64] {
        &self.actuals[q]
    }

    /// The true top-k for query `q` under the library tie-break.
    pub fn topk(&self, q: usize, k: usize) -> Vec<usize> {
        golden_topk(&self.actuals[q], k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_uses_actuals() {
        let g = GoldenStandard::from_actuals(vec![vec![5.0, 9.0, 1.0], vec![0.0, 0.0, 2.0]]);
        assert_eq!(g.n_queries(), 2);
        assert_eq!(g.topk(0, 1), vec![1]);
        assert_eq!(g.topk(0, 2), vec![1, 0]);
        assert_eq!(g.topk(1, 1), vec![2]);
        // Ties rank lower index first.
        assert_eq!(g.topk(1, 2), vec![2, 0]);
        assert_eq!(g.actual(0, 2), 1.0);
    }
}
