//! Parallel per-query evaluation machinery shared by all experiments.

use crate::testbed::Testbed;
use mp_core::correctness::CorrectnessMetric;
use mp_core::expected::RdState;
use mp_core::probing::{apro, AproConfig, ProbePolicy};
use mp_core::selection::{baseline_select, best_set};
use serde::{Deserialize, Serialize};

/// Average correctness of one selection method over a test trace
/// (the paper's `Avg(Cor_a)` / `Avg(Cor_p)`, Section 6.1), with
/// standard errors of the means.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MethodScores {
    /// Average absolute correctness.
    pub avg_cor_a: f64,
    /// Average partial correctness.
    pub avg_cor_p: f64,
    /// Standard error of `avg_cor_a`.
    pub se_cor_a: f64,
    /// Standard error of `avg_cor_p`.
    pub se_cor_p: f64,
    /// Number of test queries averaged over.
    pub n_queries: usize,
}

/// Below this many queries a fork-join costs more than the per-query
/// work it spreads (mirrors the old local cutoff of 8 queries).
const QUERY_PAR_MIN: usize = 8;

/// Maps `f` over query indices `0..n`, preserving order. Delegates to
/// [`mp_core::par::par_map_indexed`] — the workspace's single sanctioned
/// fork-join primitive (lint rule L4) — so thread management, the
/// `parallel` feature gate, and the bit-identical sequential fallback
/// all live in one place.
pub fn par_map_queries<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    mp_core::par::par_map_indexed(n, QUERY_PAR_MIN, f)
}

/// Evaluates the term-independence baseline (estimate ranking).
pub fn evaluate_baseline(tb: &Testbed, k: usize) -> MethodScores {
    let _span = mp_obs::span!("eval.baseline");
    let queries = tb.split.test.queries();
    let per_q = par_map_queries(queries.len(), |qi| {
        let selected = baseline_select(&tb.estimates(&queries[qi]), k);
        let golden = tb.golden.topk(qi, k);
        (
            mp_core::absolute_correctness(&selected, &golden),
            mp_core::partial_correctness(&selected, &golden),
        )
    });
    average(per_q)
}

/// Evaluates RD-based selection with no probing (paper Section 6.2).
/// Each metric's score uses the set optimized for that metric.
pub fn evaluate_rd_based(tb: &Testbed, k: usize) -> MethodScores {
    let _span = mp_obs::span!("eval.rd_based");
    let queries = tb.split.test.queries();
    let per_q = par_map_queries(queries.len(), |qi| {
        let rds = tb.rds(&queries[qi]);
        let golden = tb.golden.topk(qi, k);
        let (set_a, _) = best_set(&rds, k, CorrectnessMetric::Absolute);
        let (set_p, _) = best_set(&rds, k, CorrectnessMetric::Partial);
        (
            mp_core::absolute_correctness(&set_a, &golden),
            mp_core::partial_correctness(&set_p, &golden),
        )
    });
    average(per_q)
}

fn average(per_q: Vec<(f64, f64)>) -> MethodScores {
    let mut a = mp_stats::OnlineStats::new();
    let mut p = mp_stats::OnlineStats::new();
    for &(ca, cp) in &per_q {
        a.push(ca);
        p.push(cp);
    }
    MethodScores {
        avg_cor_a: a.mean(),
        avg_cor_p: p.mean(),
        se_cor_a: a.std_err(),
        se_cor_p: p.std_err(),
        n_queries: per_q.len(),
    }
}

/// Average correctness after exactly `p` probes, for `p = 0..=max_probes`
/// (paper Figure 16: APro reports the best `DBk` after each probing even
/// before halting). Once a query's run halts early — certainty 1 with
/// databases unprobed — its correctness is carried forward, since
/// further probes cannot change a certainty-1 selection.
pub fn probing_curve<P>(
    tb: &Testbed,
    k: usize,
    metric: CorrectnessMetric,
    max_probes: usize,
    policy_factory: P,
) -> Vec<f64>
where
    P: Fn(usize) -> Box<dyn ProbePolicy> + Sync,
{
    let _span = mp_obs::span!("eval.probing_curve");
    let queries = tb.split.test.queries();
    let per_q: Vec<Vec<f64>> = par_map_queries(queries.len(), |qi| {
        let q = &queries[qi];
        let mut state = RdState::new(tb.rds(q));
        let mut policy = policy_factory(qi);
        let mut probe_fn = |i: usize| tb.golden.actual(qi, i);
        let out = apro(
            &mut state,
            AproConfig {
                k,
                threshold: 1.0,
                metric,
                max_probes: Some(max_probes),
            },
            policy.as_mut(),
            probe_fn_as_dyn(&mut probe_fn),
        );
        let golden = tb.golden.topk(qi, k);
        let mut scores = Vec::with_capacity(max_probes + 1);
        let mut last = 0.0;
        for p in 0..=max_probes {
            if let Some((sel, _)) = out.after_probes(p) {
                last = metric.score(sel, &golden);
            }
            scores.push(last);
        }
        scores
    });
    // Column-wise average.
    let n = per_q.len() as f64;
    (0..=max_probes)
        .map(|p| per_q.iter().map(|s| s[p]).sum::<f64>() / n)
        .collect()
}

fn probe_fn_as_dyn(f: &mut dyn FnMut(usize) -> f64) -> &mut dyn FnMut(usize) -> f64 {
    f
}

/// Outcome of running APro at one user threshold `t` (paper Figure 17).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdOutcome {
    /// The threshold evaluated.
    pub threshold: f64,
    /// Average number of probes APro used.
    pub avg_probes: f64,
    /// Average realized correctness of the returned sets.
    pub avg_correctness: f64,
    /// Fraction of queries where the threshold was actually reached.
    pub satisfied_rate: f64,
}

/// Runs APro to the threshold `t` on every test query.
pub fn threshold_run<P>(
    tb: &Testbed,
    k: usize,
    metric: CorrectnessMetric,
    threshold: f64,
    policy_factory: P,
) -> ThresholdOutcome
where
    P: Fn(usize) -> Box<dyn ProbePolicy> + Sync,
{
    let _span = mp_obs::span!("eval.threshold_run");
    let queries = tb.split.test.queries();
    let per_q: Vec<(usize, f64, bool)> = par_map_queries(queries.len(), |qi| {
        let q = &queries[qi];
        let mut state = RdState::new(tb.rds(q));
        let mut policy = policy_factory(qi);
        let mut probe_fn = |i: usize| tb.golden.actual(qi, i);
        let out = apro(
            &mut state,
            AproConfig {
                k,
                threshold,
                metric,
                max_probes: None,
            },
            policy.as_mut(),
            probe_fn_as_dyn(&mut probe_fn),
        );
        let golden = tb.golden.topk(qi, k);
        (
            out.n_probes(),
            metric.score(&out.selected, &golden),
            out.satisfied,
        )
    });
    let n = per_q.len() as f64;
    ThresholdOutcome {
        threshold,
        avg_probes: per_q.iter().map(|r| r.0 as f64).sum::<f64>() / n,
        avg_correctness: per_q.iter().map(|r| r.1).sum::<f64>() / n,
        satisfied_rate: per_q.iter().filter(|r| r.2).count() as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::TestbedConfig;
    use mp_core::probing::GreedyPolicy;

    fn tb() -> Testbed {
        Testbed::build(TestbedConfig::tiny(1))
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map_queries(100, |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(par_map_queries(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn baseline_and_rd_scores_are_probabilities() {
        let tb = tb();
        for k in [1usize, 3] {
            for s in [evaluate_baseline(&tb, k), evaluate_rd_based(&tb, k)] {
                assert!((0.0..=1.0).contains(&s.avg_cor_a), "{s:?}");
                assert!((0.0..=1.0).contains(&s.avg_cor_p), "{s:?}");
                assert!(s.avg_cor_a <= s.avg_cor_p + 1e-9, "{s:?}");
                assert_eq!(s.n_queries, 200);
            }
        }
    }

    #[test]
    fn rd_based_not_significantly_worse_than_baseline() {
        // The paper's central claim (Fig. 15) is about the expectation;
        // on one tiny seed either method can lead within noise. This
        // test pins the cheap single-seed guarantee — no statistically
        // significant loss — and leaves the strict averaged win to
        // `fig15_selection::tests::rd_based_improves_on_baseline`.
        let tb = tb();
        let base = evaluate_baseline(&tb, 1);
        let rd = evaluate_rd_based(&tb, 1);
        let se = (base.se_cor_a.powi(2) + rd.se_cor_a.powi(2)).sqrt();
        assert!(
            rd.avg_cor_a >= base.avg_cor_a - 2.0 * se,
            "RD-based {rd:?} significantly loses to baseline {base:?}"
        );
    }

    #[test]
    fn probing_curve_rises_and_ends_high() {
        // APro halts once *model* certainty reaches 1, which can happen
        // with databases unprobed — so the curve approaches but need not
        // hit 1.0 exactly (the paper's Fig. 16 curves do the same).
        let tb = tb();
        let n = tb.n_databases();
        let curve = probing_curve(&tb, 1, CorrectnessMetric::Absolute, n, |_| {
            Box::new(GreedyPolicy)
        });
        assert_eq!(curve.len(), n + 1);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0] - 0.05, "curve dipped: {curve:?}");
        }
        assert!(curve[n] >= curve[0], "probing should help: {curve:?}");
        assert!(curve[n] > 0.9, "curve end too low: {curve:?}");
    }

    #[test]
    fn threshold_one_reaches_near_full_correctness() {
        let tb = tb();
        let out = threshold_run(&tb, 1, CorrectnessMetric::Absolute, 1.0, |_| {
            Box::new(GreedyPolicy)
        });
        // Model certainty 1 is reached on every query; realized
        // correctness is near-perfect (the model can be confidently
        // wrong on a small residue of queries).
        assert!(out.avg_correctness > 0.9, "{out:?}");
        assert_eq!(out.satisfied_rate, 1.0);
        assert!(out.avg_probes <= tb.n_databases() as f64);
    }

    #[test]
    fn higher_threshold_needs_more_probes() {
        let tb = tb();
        let lo = threshold_run(&tb, 1, CorrectnessMetric::Absolute, 0.7, |_| {
            Box::new(GreedyPolicy) as Box<dyn ProbePolicy>
        });
        let hi = threshold_run(&tb, 1, CorrectnessMetric::Absolute, 0.95, |_| {
            Box::new(GreedyPolicy) as Box<dyn ProbePolicy>
        });
        assert!(hi.avg_probes >= lo.avg_probes, "lo={lo:?} hi={hi:?}");
    }
}
