//! Figure 16 — average correctness vs. number of probes
//! (paper Section 6.3): three panels — (a) k = 1, (b) k = 3 absolute,
//! (c) k = 3 partial — each showing the greedy-APro curve against the
//! constant term-independence baseline.

use crate::report::{fmt3, TextTable};
use crate::runner::{evaluate_baseline, probing_curve};
use crate::testbed::Testbed;
use mp_core::probing::GreedyPolicy;
use mp_core::CorrectnessMetric;
use serde::{Deserialize, Serialize};

/// One panel of Figure 16.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig16Panel {
    /// Panel label (e.g. "k=1").
    pub label: String,
    /// `k` for this panel.
    pub k: usize,
    /// Metric for this panel.
    pub metric: CorrectnessMetric,
    /// `curve[p]` = average correctness after `p` probes (greedy APro).
    pub curve: Vec<f64>,
    /// The constant baseline correctness.
    pub baseline: f64,
}

/// The full figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig16Result {
    /// Panels (a), (b), (c).
    pub panels: Vec<Fig16Panel>,
    /// Probes axis upper bound.
    pub max_probes: usize,
}

/// Runs the three panels with the greedy policy.
pub fn run_fig16(tb: &Testbed, max_probes: usize) -> Fig16Result {
    let _span = mp_obs::span!("eval.fig16");
    let max_probes = max_probes.min(tb.n_databases());
    let specs = [
        ("k=1", 1usize, CorrectnessMetric::Absolute),
        ("k=3 absolute", 3, CorrectnessMetric::Absolute),
        ("k=3 partial", 3, CorrectnessMetric::Partial),
    ];
    let panels = specs
        .iter()
        .map(|&(label, k, metric)| {
            let curve = probing_curve(tb, k, metric, max_probes, |_| Box::new(GreedyPolicy));
            let base = evaluate_baseline(tb, k);
            let baseline = match metric {
                CorrectnessMetric::Absolute => base.avg_cor_a,
                CorrectnessMetric::Partial => base.avg_cor_p,
            };
            Fig16Panel {
                label: label.to_string(),
                k,
                metric,
                curve,
                baseline,
            }
        })
        .collect();
    Fig16Result { panels, max_probes }
}

/// Renders the three panels as one table: rows = #probes.
pub fn render_fig16(r: &Fig16Result) -> String {
    let mut headers = vec!["#probes".to_string()];
    for p in &r.panels {
        headers.push(format!("APro {}", p.label));
        headers.push(format!("baseline {}", p.label));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(
        "Fig. 16 — average correctness after each probing (greedy APro vs constant baseline)",
        &header_refs,
    );
    for probes in 0..=r.max_probes {
        let mut row = vec![probes.to_string()];
        for p in &r.panels {
            row.push(fmt3(p.curve[probes]));
            row.push(fmt3(p.baseline));
        }
        table.row(&row);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::TestbedConfig;

    fn result() -> Fig16Result {
        let tb = Testbed::build(TestbedConfig::tiny(1));
        run_fig16(&tb, 5)
    }

    #[test]
    fn three_panels_with_full_curves() {
        let r = result();
        assert_eq!(r.panels.len(), 3);
        for p in &r.panels {
            assert_eq!(p.curve.len(), r.max_probes + 1);
            for &c in &p.curve {
                assert!((0.0..=1.0 + 1e-9).contains(&c));
            }
        }
    }

    #[test]
    fn zero_probe_point_matches_rd_based_and_curve_beats_baseline() {
        let r = result();
        for p in &r.panels {
            // Probing must not end below the no-probing start.
            assert!(
                p.curve[r.max_probes] + 1e-9 >= p.curve[0],
                "{}: {:?}",
                p.label,
                p.curve
            );
            // APro may halt early when *model* certainty hits 1 even
            // though the truth is still uncertain (degenerate EDs at
            // tiny training scale), so the end point approaches 1
            // rather than reaching it — hardest for absolute k = 3,
            // where one swapped member zeroes the correctness.
            assert!(p.curve[r.max_probes] >= 0.8, "{}: {:?}", p.label, p.curve);
            // The paper's claim: the curve dominates the baseline.
            assert!(
                p.curve[r.max_probes] >= p.baseline,
                "{}: end below baseline",
                p.label
            );
        }
    }

    #[test]
    fn renders_rows_per_probe_count() {
        let r = result();
        let s = render_fig16(&r);
        assert_eq!(s.lines().count(), 3 + r.max_probes + 1);
    }
}
