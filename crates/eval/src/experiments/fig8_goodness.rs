//! Figure 8 — average χ² goodness per sampling size, over all databases.
//!
//! The data is computed by the Figure 7 study
//! ([`super::fig7_sampling::run_sampling_study`]); this module renders
//! the one-row summary table the paper prints, with the paper's two
//! observations annotated: every size clears the 0.5 acceptance line,
//! and goodness grows slowly with the sample size — which is why the
//! paper settles on ~500 sample queries per type.

use super::fig7_sampling::SamplingStudyResult;
use crate::report::{fmt3, TextTable};

/// Renders the Fig. 8 average-goodness table.
pub fn render_fig8(result: &SamplingStudyResult) -> String {
    let headers: Vec<String> = result.sizes.iter().map(|s| format!("S={s}")).collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(
        "Fig. 8 — average goodness of each sampling size (over all databases)",
        &header_refs,
    );
    let row: Vec<String> = result.avg_goodness.iter().map(|&g| fmt3(g)).collect();
    table.row(&row);
    table.render()
}

/// The size the study recommends: the smallest size whose goodness is
/// within `tolerance` of the best observed (the paper conservatively
/// picks 500 out of a near-flat curve).
pub fn recommended_size(result: &SamplingStudyResult, tolerance: f64) -> usize {
    let best = result
        .avg_goodness
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    for (i, &g) in result.avg_goodness.iter().enumerate() {
        if g >= best - tolerance {
            return result.sizes[i];
        }
    }
    *result.sizes.last().expect("sizes non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig7_sampling::{run_sampling_study, SamplingStudyConfig};

    #[test]
    fn renders_single_average_row() {
        let result = run_sampling_study(&SamplingStudyConfig::tiny(2));
        let s = render_fig8(&result);
        assert_eq!(s.lines().count(), 4); // title, header, rule, one row
        assert!(s.contains("S=30"));
    }

    #[test]
    fn recommended_size_is_one_of_the_sizes() {
        let result = run_sampling_study(&SamplingStudyConfig::tiny(2));
        let rec = recommended_size(&result, 0.1);
        assert!(result.sizes.contains(&rec));
    }

    #[test]
    fn zero_tolerance_picks_argmax() {
        let result = SamplingStudyResult {
            db_names: vec!["a".into()],
            sizes: vec![10, 20, 30],
            per_db_goodness: vec![vec![0.5, 0.9, 0.8]],
            pool_sizes: vec![100],
            avg_goodness: vec![0.5, 0.9, 0.8],
            focus_high_coverage: true,
        };
        assert_eq!(recommended_size(&result, 0.0), 20);
        assert_eq!(recommended_size(&result, 0.4), 10);
    }
}
