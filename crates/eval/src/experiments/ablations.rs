//! Ablations A1–A4 (DESIGN.md §4): probing policies, the query-type
//! threshold θ, training size, and summary quality.

use crate::report::{fmt2, fmt3, TextTable};
use crate::runner::{
    evaluate_baseline, evaluate_rd_based, par_map_queries, threshold_run, MethodScores,
    ThresholdOutcome,
};
use crate::testbed::Testbed;
use mp_core::probing::{
    ByEstimatePolicy, GreedyPolicy, OptimalPolicy, ProbePolicy, RandomPolicy, UncertaintyPolicy,
};
use mp_core::rd::derive_all_rds;
use mp_core::selection::best_set;
use mp_core::{CorrectnessMetric, EdLibrary};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------
// A1 — probing-policy comparison
// ---------------------------------------------------------------------

/// One policy's row in the A1 comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyRow {
    /// Policy name.
    pub policy: String,
    /// Its threshold-run outcome.
    pub outcome: ThresholdOutcome,
}

/// A named probe-policy factory (per-query instantiation).
type PolicyFactory<'a> = (&'a str, Box<dyn Fn(usize) -> Box<dyn ProbePolicy> + Sync>);

/// A1: compares probing policies at one certainty threshold. The
/// exhaustive [`OptimalPolicy`] is included only when `include_optimal`
/// (exponential — callers must supply a small testbed with coarse ED
/// bins; see [`OptimalPolicy`]'s guards).
pub fn run_policy_ablation(
    tb: &Testbed,
    k: usize,
    metric: CorrectnessMetric,
    threshold: f64,
    include_optimal: bool,
) -> Vec<PolicyRow> {
    let mut rows = Vec::new();
    let factories: Vec<PolicyFactory> = vec![
        ("greedy", Box::new(|_| Box::new(GreedyPolicy))),
        (
            "random",
            Box::new(|qi| Box::new(RandomPolicy::new(qi as u64))),
        ),
        ("by-estimate", Box::new(|_| Box::new(ByEstimatePolicy))),
        ("max-uncertainty", Box::new(|_| Box::new(UncertaintyPolicy))),
    ];
    for (name, factory) in &factories {
        rows.push(PolicyRow {
            policy: name.to_string(),
            outcome: threshold_run(tb, k, metric, threshold, factory),
        });
    }
    if include_optimal {
        rows.push(PolicyRow {
            policy: "optimal".to_string(),
            outcome: threshold_run(tb, k, metric, threshold, |_| {
                Box::new(OptimalPolicy::new(threshold))
            }),
        });
    }
    rows
}

/// Renders the A1 table.
pub fn render_policy_ablation(rows: &[PolicyRow], k: usize, t: f64) -> String {
    let mut table = TextTable::new(
        format!("A1 — probing policies at t={t} (k={k}): probes to reach the threshold"),
        &["policy", "avg #probes", "avg correctness", "satisfied"],
    );
    for r in rows {
        table.row(&[
            r.policy.clone(),
            fmt2(r.outcome.avg_probes),
            fmt3(r.outcome.avg_correctness),
            fmt3(r.outcome.satisfied_rate),
        ]);
    }
    table.render()
}

// ---------------------------------------------------------------------
// A2 — coverage-threshold (θ) sweep
// ---------------------------------------------------------------------

/// One θ's scores in the A2 sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThetaRow {
    /// The coverage threshold θ.
    pub theta: f64,
    /// RD-based scores at k = 1 under this θ.
    pub rd_k1: MethodScores,
}

/// A2: retrains the ED library under each θ and scores RD-based
/// selection (the paper settled on θ = 100 empirically; the extended
/// version studies alternatives).
pub fn run_theta_ablation(tb: &Testbed, thetas: &[f64]) -> Vec<ThetaRow> {
    thetas
        .iter()
        .map(|&theta| {
            let core = tb.config.core.clone().with_threshold(theta);
            let library = EdLibrary::train(
                &tb.mediator,
                tb.estimator.as_ref(),
                tb.config.relevancy,
                tb.split.train.queries(),
                &core,
            );
            tb.mediator.reset_probes();
            ThetaRow {
                theta,
                rd_k1: rd_scores_with_library(tb, 1, &library),
            }
        })
        .collect()
}

/// Renders the A2 table.
pub fn render_theta_ablation(rows: &[ThetaRow]) -> String {
    let mut table = TextTable::new(
        "A2 — query-type coverage threshold sweep (RD-based, k=1)",
        &["theta", "Avg(Cor)"],
    );
    for r in rows {
        table.row(&[format!("{}", r.theta), fmt3(r.rd_k1.avg_cor_a)]);
    }
    table.render()
}

// ---------------------------------------------------------------------
// A3 — training-size sweep
// ---------------------------------------------------------------------

/// One training-size row in A3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingSizeRow {
    /// Number of training queries used.
    pub n_train: usize,
    /// RD-based scores at k = 1.
    pub rd_k1: MethodScores,
}

/// A3: end-to-end effect of the training-trace size (complements the
/// χ²-level sampling study of Figs. 7/8 with task-level correctness).
///
/// Subsets are *stratified by arity* — the train trace is stored
/// 2-term-first, so a naive prefix of size n would train only 2-term
/// leaves and confound the sweep.
pub fn run_training_size_ablation(tb: &Testbed, sizes: &[usize]) -> Vec<TrainingSizeRow> {
    let stratified = |n: usize| -> Vec<mp_workload::Query> {
        let two: Vec<_> = tb.split.train.with_arity(2).cloned().collect();
        let three: Vec<_> = tb.split.train.with_arity(3).cloned().collect();
        let half = (n / 2).min(two.len());
        let rest = (n - half).min(three.len());
        let mut out = two[..half].to_vec();
        out.extend_from_slice(&three[..rest]);
        out
    };
    sizes
        .iter()
        .map(|&n| {
            let n = n.min(tb.split.train.len());
            let subset = stratified(n);
            let library = EdLibrary::train(
                &tb.mediator,
                tb.estimator.as_ref(),
                tb.config.relevancy,
                &subset,
                &tb.config.core,
            );
            tb.mediator.reset_probes();
            TrainingSizeRow {
                n_train: subset.len(),
                rd_k1: rd_scores_with_library(tb, 1, &library),
            }
        })
        .collect()
}

/// Renders the A3 table.
pub fn render_training_size_ablation(rows: &[TrainingSizeRow], baseline: MethodScores) -> String {
    let mut table = TextTable::new(
        "A3 — training-trace size vs RD-based correctness (k=1)",
        &["#train queries", "Avg(Cor)"],
    );
    table.row(&["0 (= baseline)".into(), fmt3(baseline.avg_cor_a)]);
    for r in rows {
        table.row(&[r.n_train.to_string(), fmt3(r.rd_k1.avg_cor_a)]);
    }
    table.render()
}

// ---------------------------------------------------------------------
// A4 — summary quality (cooperative vs sampled)
// ---------------------------------------------------------------------

/// The A4 comparison: identical scenario and queries, different summary
/// construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SummaryAblationResult {
    /// Scores with exact cooperative summaries (baseline / RD, k = 1).
    pub cooperative: (MethodScores, MethodScores),
    /// Scores with sampled summaries.
    pub sampled: (MethodScores, MethodScores),
}

/// A4: runs Fig. 15's k = 1 columns on two testbeds that differ only in
/// [`crate::testbed::SummaryMode`].
pub fn run_summary_ablation(cooperative: &Testbed, sampled: &Testbed) -> SummaryAblationResult {
    SummaryAblationResult {
        cooperative: (
            evaluate_baseline(cooperative, 1),
            evaluate_rd_based(cooperative, 1),
        ),
        sampled: (evaluate_baseline(sampled, 1), evaluate_rd_based(sampled, 1)),
    }
}

/// Renders the A4 table.
pub fn render_summary_ablation(r: &SummaryAblationResult) -> String {
    let mut table = TextTable::new(
        "A4 — content-summary quality (k=1 Avg(Cor))",
        &["summaries", "baseline", "RD-based"],
    );
    table.row(&[
        "cooperative (exact)".into(),
        fmt3(r.cooperative.0.avg_cor_a),
        fmt3(r.cooperative.1.avg_cor_a),
    ]);
    table.row(&[
        "sampled (estimated)".into(),
        fmt3(r.sampled.0.avg_cor_a),
        fmt3(r.sampled.1.avg_cor_a),
    ]);
    table.render()
}

// ---------------------------------------------------------------------

/// RD-based scores at `k` using an explicit (re-trained) library.
fn rd_scores_with_library(tb: &Testbed, k: usize, library: &EdLibrary) -> MethodScores {
    let queries = tb.split.test.queries();
    let per_q = par_map_queries(queries.len(), |qi| {
        let q = &queries[qi];
        let rds = derive_all_rds(&tb.estimates(q), q, library);
        let golden = tb.golden.topk(qi, k);
        let (set_a, _) = best_set(&rds, k, CorrectnessMetric::Absolute);
        let (set_p, _) = best_set(&rds, k, CorrectnessMetric::Partial);
        (
            mp_core::absolute_correctness(&set_a, &golden),
            mp_core::partial_correctness(&set_p, &golden),
        )
    });
    let mut a = mp_stats::OnlineStats::new();
    let mut p = mp_stats::OnlineStats::new();
    for &(ca, cp) in &per_q {
        a.push(ca);
        p.push(cp);
    }
    MethodScores {
        avg_cor_a: a.mean(),
        avg_cor_p: p.mean(),
        se_cor_a: a.std_err(),
        se_cor_p: p.std_err(),
        n_queries: per_q.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{SummaryMode, TestbedConfig};
    use mp_core::CoreConfig;
    use mp_corpus::{ScenarioConfig, ScenarioKind};

    fn tb() -> Testbed {
        Testbed::build(TestbedConfig::tiny(1))
    }

    #[test]
    fn policy_ablation_greedy_not_worse_than_random() {
        let tb = tb();
        let rows = run_policy_ablation(&tb, 1, CorrectnessMetric::Absolute, 0.9, false);
        assert_eq!(rows.len(), 4);
        let probes = |name: &str| {
            rows.iter()
                .find(|r| r.policy == name)
                .unwrap()
                .outcome
                .avg_probes
        };
        assert!(
            probes("greedy") <= probes("random") + 0.5,
            "greedy {} vs random {}",
            probes("greedy"),
            probes("random")
        );
    }

    #[test]
    fn policy_ablation_with_optimal_on_coarse_testbed() {
        // Coarse ED bins keep RD supports within OptimalPolicy's guard.
        let mut cfg = TestbedConfig::tiny(2);
        cfg.scenario = ScenarioConfig {
            n_databases: 4,
            ..ScenarioConfig::tiny(ScenarioKind::Health, 2)
        };
        cfg.n_two = 25;
        cfg.n_three = 15;
        cfg.core = CoreConfig {
            ed_edges: vec![-0.5, 0.05, 1.0],
            ..CoreConfig::default()
        }
        .with_threshold(10.0);
        let tb = Testbed::build(cfg);
        let rows = run_policy_ablation(&tb, 1, CorrectnessMetric::Absolute, 0.9, true);
        assert_eq!(rows.len(), 5);
        let probes = |name: &str| {
            rows.iter()
                .find(|r| r.policy == name)
                .unwrap()
                .outcome
                .avg_probes
        };
        // The optimal policy minimizes *expected* probes under the
        // model; realized averages on actual outcomes can deviate
        // slightly when the model is off, so allow a small tolerance.
        for name in ["greedy", "random", "by-estimate", "max-uncertainty"] {
            assert!(
                probes("optimal") <= probes(name) + 0.35,
                "optimal {} beaten by {name} {}",
                probes("optimal"),
                probes(name)
            );
        }
    }

    #[test]
    fn theta_sweep_produces_rows() {
        let tb = tb();
        let rows = run_theta_ablation(&tb, &[5.0, 10.0, 50.0]);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.rd_k1.avg_cor_a));
        }
    }

    #[test]
    fn training_size_more_is_not_much_worse() {
        let tb = tb();
        let rows = run_training_size_ablation(&tb, &[10, 100]);
        assert_eq!(rows[0].n_train, 10);
        assert_eq!(rows[1].n_train, 100);
        assert!(
            rows[1].rd_k1.avg_cor_a + 0.15 >= rows[0].rd_k1.avg_cor_a,
            "{rows:?}"
        );
    }

    #[test]
    fn summary_ablation_runs() {
        let coop = tb();
        let mut cfg = TestbedConfig::tiny(1);
        cfg.summaries = SummaryMode::Sampled {
            n_queries: 15,
            docs_per_query: 25,
        };
        let sampled = Testbed::build(cfg);
        let r = run_summary_ablation(&coop, &sampled);
        // Exact summaries should not be worse than sampled ones for the
        // baseline estimator (they feed it the true dfs).
        assert!(
            r.cooperative.0.avg_cor_a + 0.2 >= r.sampled.0.avg_cor_a,
            "{r:?}"
        );
        let text = render_summary_ablation(&r);
        assert!(text.contains("cooperative"));
    }

    #[test]
    fn renderers_produce_tables() {
        let tb = tb();
        let rows = run_policy_ablation(&tb, 1, CorrectnessMetric::Absolute, 0.8, false);
        assert!(render_policy_ablation(&rows, 1, 0.8).contains("greedy"));
        let thetas = run_theta_ablation(&tb, &[10.0]);
        assert!(render_theta_ablation(&thetas).contains("theta"));
        let sizes = run_training_size_ablation(&tb, &[20]);
        let base = evaluate_baseline(&tb, 1);
        assert!(render_training_size_ablation(&sizes, base).contains("baseline"));
    }
}

// ---------------------------------------------------------------------
// A5 — relevancy-definition comparison (document-frequency vs
// document-similarity, paper Section 2.1)
// ---------------------------------------------------------------------

/// The A5 comparison: the same pipeline under both relevancy
/// definitions (each testbed is built with the matching estimator —
/// Eq. 1 for document-frequency, the GlOSS-style maximum-similarity
/// estimator for document-similarity).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RelevancyAblationResult {
    /// `(baseline, RD-based)` at k = 1 under document-frequency.
    pub doc_frequency: (MethodScores, MethodScores),
    /// `(baseline, RD-based)` at k = 1 under document-similarity.
    pub doc_similarity: (MethodScores, MethodScores),
}

/// A5: runs the k = 1 comparison on two testbeds differing only in the
/// relevancy definition (and its matching estimator).
pub fn run_relevancy_ablation(
    doc_frequency: &Testbed,
    doc_similarity: &Testbed,
) -> RelevancyAblationResult {
    RelevancyAblationResult {
        doc_frequency: (
            evaluate_baseline(doc_frequency, 1),
            evaluate_rd_based(doc_frequency, 1),
        ),
        doc_similarity: (
            evaluate_baseline(doc_similarity, 1),
            evaluate_rd_based(doc_similarity, 1),
        ),
    }
}

/// Renders the A5 table.
pub fn render_relevancy_ablation(r: &RelevancyAblationResult) -> String {
    let mut table = TextTable::new(
        "A5 — relevancy definitions (k=1 Avg(Cor))",
        &["definition", "baseline", "RD-based"],
    );
    table.row(&[
        "document-frequency".into(),
        fmt3(r.doc_frequency.0.avg_cor_a),
        fmt3(r.doc_frequency.1.avg_cor_a),
    ]);
    table.row(&[
        "document-similarity".into(),
        fmt3(r.doc_similarity.0.avg_cor_a),
        fmt3(r.doc_similarity.1.avg_cor_a),
    ]);
    table.render()
}
