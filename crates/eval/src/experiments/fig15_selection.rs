//! Figure 15 (table) — RD-based selection vs the term-independence
//! baseline, no probing (paper Section 6.2).

use crate::report::{fmt3, TextTable};
use crate::runner::{evaluate_baseline, evaluate_rd_based, MethodScores};
use crate::testbed::Testbed;
use serde::{Deserialize, Serialize};

/// The Figure 15 table contents.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig15Result {
    /// Baseline scores at k = 1.
    pub baseline_k1: MethodScores,
    /// RD-based scores at k = 1.
    pub rd_k1: MethodScores,
    /// Baseline scores at k = 3.
    pub baseline_k3: MethodScores,
    /// RD-based scores at k = 3.
    pub rd_k3: MethodScores,
}

impl Fig15Result {
    /// Relative improvement of RD-based over the baseline on
    /// `Avg(Cor_a)` at k = 1 — the paper reports 38.2% on its testbed.
    pub fn k1_relative_improvement(&self) -> f64 {
        if mp_stats::float::exact_zero(self.baseline_k1.avg_cor_a) {
            return 0.0;
        }
        (self.rd_k1.avg_cor_a - self.baseline_k1.avg_cor_a) / self.baseline_k1.avg_cor_a
    }
}

/// Runs the comparison on a built testbed.
pub fn run_fig15(tb: &Testbed) -> Fig15Result {
    let _span = mp_obs::span!("eval.fig15");
    Fig15Result {
        baseline_k1: evaluate_baseline(tb, 1),
        rd_k1: evaluate_rd_based(tb, 1),
        baseline_k3: evaluate_baseline(tb, 3),
        rd_k3: evaluate_rd_based(tb, 3),
    }
}

/// Renders the Figure 15 table.
pub fn render_fig15(r: &Fig15Result) -> String {
    let mut table = TextTable::new(
        "Fig. 15 — RD-based database selection vs. the term-independence estimator",
        &["method", "k=1 Avg(Cor)", "k=3 Avg(Cor_a)", "k=3 Avg(Cor_p)"],
    );
    let pm = |v: f64, se: f64| format!("{} ±{:.3}", fmt3(v), se);
    table.row(&[
        "term-independence (baseline)".into(),
        pm(r.baseline_k1.avg_cor_a, r.baseline_k1.se_cor_a),
        pm(r.baseline_k3.avg_cor_a, r.baseline_k3.se_cor_a),
        pm(r.baseline_k3.avg_cor_p, r.baseline_k3.se_cor_p),
    ]);
    table.row(&[
        "RD-based, no probing".into(),
        pm(r.rd_k1.avg_cor_a, r.rd_k1.se_cor_a),
        pm(r.rd_k3.avg_cor_a, r.rd_k3.se_cor_a),
        pm(r.rd_k3.avg_cor_p, r.rd_k3.se_cor_p),
    ]);
    let mut s = table.render();
    s.push_str(&format!(
        "k=1 relative improvement: {:+.1}% (paper: +38.2% on its testbed)\n",
        r.k1_relative_improvement() * 100.0
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::TestbedConfig;

    #[test]
    fn rd_based_improves_on_baseline() {
        // The headline result must reproduce in shape: RD-based beats
        // the baseline at k = 1 and on partial correctness at k = 3.
        // The paper's claim is about the *expectation*; on one tiny
        // 5-database testbed a single seed lands within ±1 SE of the
        // baseline on either side, so the claim is asserted on scores
        // averaged over several seeds (the full-scale repro shows
        // per-run wins; see EXPERIMENTS.md).
        const SEEDS: [u64; 4] = [1, 2, 3, 4];
        let (mut base_k1, mut rd_k1, mut base_k3p, mut rd_k3p) = (0.0, 0.0, 0.0, 0.0);
        for &seed in &SEEDS {
            let r = run_fig15(&Testbed::build(TestbedConfig::tiny(seed)));
            base_k1 += r.baseline_k1.avg_cor_a;
            rd_k1 += r.rd_k1.avg_cor_a;
            base_k3p += r.baseline_k3.avg_cor_p;
            rd_k3p += r.rd_k3.avg_cor_p;
        }
        assert!(
            rd_k1 > base_k1,
            "averaged k=1: rd {rd_k1} vs baseline {base_k1}"
        );
        assert!(
            rd_k3p > base_k3p,
            "averaged k=3 partial: rd {rd_k3p} vs baseline {base_k3p}"
        );
    }

    #[test]
    fn k1_metrics_coincide() {
        let tb = Testbed::build(TestbedConfig::tiny(1));
        let r = run_fig15(&tb);
        assert!((r.baseline_k1.avg_cor_a - r.baseline_k1.avg_cor_p).abs() < 1e-12);
        assert!((r.rd_k1.avg_cor_a - r.rd_k1.avg_cor_p).abs() < 1e-12);
    }

    #[test]
    fn table_renders() {
        let tb = Testbed::build(TestbedConfig::tiny(1));
        let s = render_fig15(&run_fig15(&tb));
        assert!(s.contains("RD-based"));
        assert!(s.contains("relative improvement"));
    }
}
