//! Figure 9 — the per-query-type error distributions of one database,
//! i.e. the leaves of the query-type decision tree.

use crate::testbed::Testbed;
use mp_core::query_type::ArityBucket;
use mp_core::QueryType;
use serde::{Deserialize, Serialize};

/// One ED leaf, rendered as labeled probability bars.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdLeaf {
    /// The query type.
    pub label: String,
    /// Sample queries behind the ED.
    pub samples: u64,
    /// `(bin label, probability)` per non-empty bin.
    pub bars: Vec<(String, f64)>,
}

/// The Figure 9 reproduction: the four 2-/3-term leaves of one database.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Result {
    /// The database shown.
    pub db_name: String,
    /// The four leaves (2-term/3-term × low/high coverage).
    pub leaves: Vec<EdLeaf>,
}

/// Extracts the decision-tree leaves for database `db`.
pub fn run_fig9(tb: &Testbed, db: usize) -> Fig9Result {
    let _span = mp_obs::span!("eval.fig9");
    let edges = &tb.config.core.ed_edges;
    let bin_label = |bin: usize| -> String {
        let pct = |e: f64| format!("{:+.0}%", e * 100.0);
        if bin == 0 {
            format!("<{}", pct(edges[0]))
        } else if bin == edges.len() {
            format!(">={}", pct(edges[edges.len() - 1]))
        } else {
            format!("[{},{})", pct(edges[bin - 1]), pct(edges[bin]))
        }
    };

    let n_thresholds = u8::try_from(tb.config.core.coverage_thresholds.len())
        .expect("coverage ladders have far fewer than 256 rungs");
    let mut wanted = Vec::new();
    for arity in [ArityBucket::Two, ArityBucket::ThreeUp] {
        for coverage in 0..=n_thresholds {
            wanted.push(QueryType { arity, coverage });
        }
    }
    let leaves = wanted
        .iter()
        .map(|&qt| match tb.library.ed(db, qt) {
            Some(ed) => {
                let probs = ed.histogram().probabilities();
                let bars = probs
                    .iter()
                    .enumerate()
                    .filter(|&(_, &p)| p > 0.0)
                    .map(|(b, &p)| (bin_label(b), p))
                    .collect();
                EdLeaf {
                    label: qt.to_string(),
                    samples: ed.samples(),
                    bars,
                }
            }
            None => EdLeaf {
                label: qt.to_string(),
                samples: 0,
                bars: Vec::new(),
            },
        })
        .collect();

    Fig9Result {
        db_name: tb.mediator.db(db).name().to_string(),
        leaves,
    }
}

/// Renders the leaves as text bars.
pub fn render_fig9(result: &Fig9Result) -> String {
    let mut out = format!(
        "Fig. 9 — per-query-type EDs on database `{}` (decision-tree leaves)\n",
        result.db_name
    );
    for leaf in &result.leaves {
        out.push_str(&format!("\n  {} ({} samples)\n", leaf.label, leaf.samples));
        if leaf.bars.is_empty() {
            out.push_str("    (untrained leaf — falls back to sibling ED)\n");
        }
        for (label, p) in &leaf.bars {
            let bar_len = mp_stats::float::round_u64((p * 40.0).clamp(0.0, 40.0))
                .expect("clamped bar length is a small finite value");
            let bar = "#".repeat(usize::try_from(bar_len).expect("bar length is at most 40"));
            out.push_str(&format!("    {label:>14} {p:>6.3} {bar}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::TestbedConfig;

    #[test]
    fn leaves_cover_the_four_paper_types() {
        let tb = Testbed::build(TestbedConfig::tiny(1));
        let r = run_fig9(&tb, 0);
        assert_eq!(r.leaves.len(), 4);
        let total_samples: u64 = r.leaves.iter().map(|l| l.samples).sum();
        // Every training query contributed to exactly one leaf on db 0.
        assert_eq!(total_samples, tb.split.train.len() as u64);
        // Bars are probabilities.
        for leaf in &r.leaves {
            let sum: f64 = leaf.bars.iter().map(|&(_, p)| p).sum();
            if leaf.samples > 0 {
                assert!((sum - 1.0).abs() < 1e-9, "{leaf:?}");
            }
        }
    }

    #[test]
    fn renders_bars() {
        let tb = Testbed::build(TestbedConfig::tiny(1));
        let s = render_fig9(&run_fig9(&tb, 0));
        assert!(s.contains("2-term"));
        assert!(s.contains("samples"));
    }

    #[test]
    fn different_databases_have_different_eds() {
        // The whole point of per-database EDs: at least two databases
        // disagree on some leaf's distribution.
        let tb = Testbed::build(TestbedConfig::tiny(1));
        let a = run_fig9(&tb, 0);
        let b = run_fig9(&tb, 1);
        assert_ne!(
            a.leaves.iter().map(|l| &l.bars).collect::<Vec<_>>(),
            b.leaves.iter().map(|l| &l.bars).collect::<Vec<_>>()
        );
    }
}
