//! One module per paper table/figure plus the ablations (DESIGN.md §4).

pub mod ablations;
pub mod fig15_selection;
pub mod fig16_probing;
pub mod fig17_threshold;
pub mod fig7_sampling;
pub mod fig8_goodness;
pub mod fig9_query_types;

pub use fig15_selection::{run_fig15, Fig15Result};
pub use fig16_probing::{run_fig16, Fig16Result};
pub use fig17_threshold::{run_fig17, Fig17Result};
pub use fig7_sampling::{run_sampling_study, SamplingStudyConfig, SamplingStudyResult};
pub use fig8_goodness::render_fig8;
pub use fig9_query_types::{run_fig9, Fig9Result};
