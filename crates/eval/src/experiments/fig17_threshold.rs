//! Figure 17 — probes needed per user-required certainty threshold
//! (paper Section 6.4): `t ∈ {0.70, 0.75, 0.80, 0.85, 0.90, 0.95}`.

use crate::report::{fmt2, fmt3, TextTable};
use crate::runner::{threshold_run, ThresholdOutcome};
use crate::testbed::Testbed;
use mp_core::probing::GreedyPolicy;
use mp_core::CorrectnessMetric;
use serde::{Deserialize, Serialize};

/// The thresholds the paper evaluates.
pub const PAPER_THRESHOLDS: [f64; 6] = [0.70, 0.75, 0.80, 0.85, 0.90, 0.95];

/// The Figure 17 data: one row per threshold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig17Result {
    /// `k` the selections were made at.
    pub k: usize,
    /// The metric certainty was measured under.
    pub metric: CorrectnessMetric,
    /// Outcomes per threshold, ascending.
    pub rows: Vec<ThresholdOutcome>,
}

/// Runs APro (greedy policy) at every paper threshold.
pub fn run_fig17(tb: &Testbed, k: usize, metric: CorrectnessMetric) -> Fig17Result {
    let _span = mp_obs::span!("eval.fig17");
    let rows = PAPER_THRESHOLDS
        .iter()
        .map(|&t| threshold_run(tb, k, metric, t, |_| Box::new(GreedyPolicy)))
        .collect();
    Fig17Result { k, metric, rows }
}

/// Renders the threshold table.
pub fn render_fig17(r: &Fig17Result) -> String {
    let mut table = TextTable::new(
        format!(
            "Fig. 17 — probes used by APro per certainty threshold (k={}, {} metric)",
            r.k, r.metric
        ),
        &["t", "avg #probes", "avg correctness", "satisfied"],
    );
    for row in &r.rows {
        table.row(&[
            format!("{:.2}", row.threshold),
            fmt2(row.avg_probes),
            fmt3(row.avg_correctness),
            fmt3(row.satisfied_rate),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::TestbedConfig;

    #[test]
    fn probes_grow_with_threshold_and_correctness_tracks_t() {
        let tb = Testbed::build(TestbedConfig::tiny(1));
        let r = run_fig17(&tb, 1, CorrectnessMetric::Absolute);
        assert_eq!(r.rows.len(), 6);
        // The paper's finding: the probe count is non-decreasing in t.
        for w in r.rows.windows(2) {
            assert!(
                w[1].avg_probes + 1e-9 >= w[0].avg_probes,
                "probes dropped: {:?}",
                r.rows
            );
        }
        // Thresholds are always reachable (probing everything gives 1).
        for row in &r.rows {
            assert_eq!(row.satisfied_rate, 1.0, "{row:?}");
            // Realized average correctness should be in the vicinity of
            // (or above) the promised certainty.
            assert!(
                row.avg_correctness >= row.threshold - 0.15,
                "correctness {} far below promised {}",
                row.avg_correctness,
                row.threshold
            );
        }
    }

    #[test]
    fn renders_six_rows() {
        let tb = Testbed::build(TestbedConfig::tiny(1));
        let s = render_fig17(&run_fig17(&tb, 1, CorrectnessMetric::Absolute));
        assert_eq!(s.lines().count(), 3 + 6);
        assert!(s.contains("0.95"));
    }
}
