//! Figure 7 — the sampling-size study (paper Section 4.2).
//!
//! For each database, an *ideal* error distribution `ED_total` is built
//! from every pool query of the focus type; then for each sampling size
//! `S` the study repeatedly draws `S` of those queries, builds `ED_S`,
//! and scores it against `ED_total` with the Pearson χ² test (10 bins).
//! The average p-value over repetitions is the "goodness" of `S`.
//! The paper's finding: goodness clears the 0.5 acceptance line even at
//! `S = 100` and inches up with larger samples.

use mp_core::error::relative_error;
use mp_core::query_type::ArityBucket;
use mp_core::{CoreConfig, IndependenceEstimator, QueryType, RelevancyDef, RelevancyEstimator};
use mp_corpus::{Scenario, ScenarioConfig, ScenarioKind};
use mp_hidden::{ContentSummary, HiddenWebDatabase, SimulatedHiddenDb};
use mp_stats::chi2::histogram_goodness;
use mp_stats::Histogram;
use mp_workload::{QueryGenConfig, QueryGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of the sampling-size study.
#[derive(Debug, Clone)]
pub struct SamplingStudyConfig {
    /// The newsgroup-style scenario to build.
    pub scenario: ScenarioConfig,
    /// Size of the query pool that defines `ED_total` (the paper's
    /// `Q_total` per type held 50k–60k; we default to thousands, scaled
    /// with the corpus).
    pub pool_size: usize,
    /// Sampling sizes to score (paper: 100, 200, 500, 1000, 2000).
    pub sizes: Vec<usize>,
    /// Repetitions per size (paper: 10).
    pub repetitions: usize,
    /// Arity of pool queries (paper focuses on 2-term).
    pub arity: usize,
    /// Model knobs (ED bins, θ).
    pub core: CoreConfig,
    /// Study seed.
    pub seed: u64,
}

impl SamplingStudyConfig {
    /// The paper-shaped study (20 newsgroups, sizes 100..2000, 10 reps).
    ///
    /// The pool is large enough that each database's focus-type subset
    /// comfortably exceeds the largest sampling size (the paper's
    /// `Q_total` per type held 50k–60k out of a 4.7M-query trace); the
    /// coverage threshold matches the synthetic corpus's estimate scale
    /// (see `TestbedConfig::paper`).
    pub fn paper(seed: u64) -> Self {
        Self {
            scenario: ScenarioConfig::new(ScenarioKind::Newsgroup, seed),
            pool_size: 60_000,
            sizes: vec![100, 200, 500, 1_000, 2_000],
            repetitions: 10,
            arity: 2,
            core: CoreConfig::default().with_threshold(0.5),
            seed,
        }
    }

    /// A tiny study for tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            scenario: ScenarioConfig::tiny(ScenarioKind::Newsgroup, seed),
            pool_size: 300,
            sizes: vec![30, 60, 120],
            repetitions: 4,
            arity: 2,
            core: CoreConfig::default().with_threshold(0.5),
            seed,
        }
    }
}

/// Study output: goodness per database per size, and the Fig. 8 average.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SamplingStudyResult {
    /// Database names.
    pub db_names: Vec<String>,
    /// The sampling sizes evaluated.
    pub sizes: Vec<usize>,
    /// `per_db_goodness[db][size]` — average χ² p-value; `NaN`-free:
    /// databases whose focus-type pool was smaller than the size are
    /// scored on the full pool (goodness 1.0 by construction) and
    /// flagged in `pool_sizes`.
    pub per_db_goodness: Vec<Vec<f64>>,
    /// Focus-type pool size per database.
    pub pool_sizes: Vec<usize>,
    /// Fig. 8: goodness averaged over databases, per size.
    pub avg_goodness: Vec<f64>,
    /// The focus query type evaluated (high-coverage bucket).
    pub focus_high_coverage: bool,
}

/// Runs the study. The focus type is `arity`-term queries with
/// `r̂ ≥ θ` (the type the paper details; Section 4.2 reports similar
/// results for the others).
pub fn run_sampling_study(config: &SamplingStudyConfig) -> SamplingStudyResult {
    let _span = mp_obs::span!("eval.fig7");
    let scenario = Scenario::generate(config.scenario.clone());
    let (model, parts) = scenario.into_parts();
    let mut dbs: Vec<Arc<dyn HiddenWebDatabase>> = Vec::new();
    let mut summaries = Vec::new();
    let mut names = Vec::new();
    for (spec, index) in parts {
        names.push(spec.name.clone());
        summaries.push(ContentSummary::cooperative(&index));
        dbs.push(Arc::new(SimulatedHiddenDb::new(spec.name, index)));
    }

    // Pool of distinct queries.
    let mut gen = QueryGenerator::new(
        &model,
        QueryGenConfig {
            seed: config.seed ^ 0xF00D,
            ..QueryGenConfig::default()
        },
    );
    let mut pool = Vec::with_capacity(config.pool_size);
    let mut seen = std::collections::HashSet::new();
    let mut guard = 0usize;
    while pool.len() < config.pool_size && guard < config.pool_size * 50 {
        let q = gen.generate(config.arity);
        if seen.insert(q.clone()) {
            pool.push(q);
        }
        guard += 1;
    }

    let estimator = IndependenceEstimator;
    let def = RelevancyDef::DocFrequency;
    let focus_arity = ArityBucket::of(config.arity);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5A17);

    let mut per_db_goodness = Vec::with_capacity(dbs.len());
    let mut pool_sizes = Vec::with_capacity(dbs.len());
    for (i, db) in dbs.iter().enumerate() {
        // Errors of the focus type on this database.
        let mut errors = Vec::new();
        for q in &pool {
            let est = estimator.estimate(&summaries[i], q);
            let qt = QueryType::classify(q.len(), est, &config.core.coverage_thresholds);
            if qt.arity == focus_arity && qt.high_coverage() {
                let actual = def.probe(db.as_ref(), q, 0);
                errors.push(relative_error(actual, est, config.core.est_floor));
            }
        }
        pool_sizes.push(errors.len());

        let ideal = Histogram::from_samples(config.core.ed_bins(), errors.iter().copied());
        let mut row = Vec::with_capacity(config.sizes.len());
        for &size in &config.sizes {
            if errors.is_empty() {
                row.push(0.0);
                continue;
            }
            let s_eff = size.min(errors.len());
            let mut acc = 0.0;
            for _ in 0..config.repetitions {
                // Partial Fisher–Yates: S_eff distinct pool queries.
                let mut idx: Vec<usize> = (0..errors.len()).collect();
                for j in 0..s_eff {
                    let pick = rng.gen_range(j..idx.len());
                    idx.swap(j, pick);
                }
                let sample = Histogram::from_samples(
                    config.core.ed_bins(),
                    idx[..s_eff].iter().map(|&j| errors[j]),
                );
                acc += histogram_goodness(&sample, &ideal).p_value;
            }
            row.push(acc / config.repetitions as f64);
        }
        per_db_goodness.push(row);
    }

    let avg_goodness = (0..config.sizes.len())
        .map(|s| {
            per_db_goodness.iter().map(|row| row[s]).sum::<f64>() / per_db_goodness.len() as f64
        })
        .collect();

    SamplingStudyResult {
        db_names: names,
        sizes: config.sizes.clone(),
        per_db_goodness,
        pool_sizes,
        avg_goodness,
        focus_high_coverage: true,
    }
}

/// Renders the Fig. 7 per-database table (a few representative rows plus
/// the average).
pub fn render_fig7(result: &SamplingStudyResult, max_rows: usize) -> String {
    let mut headers: Vec<String> = vec!["database".into(), "pool".into()];
    headers.extend(result.sizes.iter().map(|s| format!("S={s}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = crate::report::TextTable::new(
        "Fig. 7 — avg chi^2 goodness of sample EDs vs the ideal ED (2-term, high-coverage)",
        &header_refs,
    );
    for (i, name) in result.db_names.iter().take(max_rows).enumerate() {
        let mut row = vec![name.clone(), result.pool_sizes[i].to_string()];
        row.extend(
            result.per_db_goodness[i]
                .iter()
                .map(|&g| crate::report::fmt3(g)),
        );
        table.row(&row);
    }
    let mut avg_row = vec!["AVERAGE (Fig. 8)".to_string(), "-".to_string()];
    avg_row.extend(result.avg_goodness.iter().map(|&g| crate::report::fmt3(g)));
    table.row(&avg_row);
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_study_runs_and_is_sane() {
        let result = run_sampling_study(&SamplingStudyConfig::tiny(2));
        assert_eq!(result.db_names.len(), 5);
        assert_eq!(result.avg_goodness.len(), 3);
        for row in &result.per_db_goodness {
            for &g in row {
                assert!((0.0..=1.0).contains(&g), "goodness {g}");
            }
        }
        // The paper's core finding at miniature scale: sample EDs are
        // statistically acceptable (well above the 0.05 rejection line,
        // and typically above the 0.5 acceptance level).
        let last = *result.avg_goodness.last().unwrap();
        assert!(last > 0.3, "largest-size goodness too low: {last}");
    }

    #[test]
    fn goodness_tends_upward_with_size() {
        let result = run_sampling_study(&SamplingStudyConfig::tiny(5));
        let first = result.avg_goodness[0];
        let last = *result.avg_goodness.last().unwrap();
        assert!(
            last >= first - 0.15,
            "goodness should not collapse with more samples: {:?}",
            result.avg_goodness
        );
    }

    #[test]
    fn render_produces_rows() {
        let result = run_sampling_study(&SamplingStudyConfig::tiny(2));
        let s = render_fig7(&result, 3);
        assert!(s.contains("AVERAGE"));
        assert!(s.lines().count() >= 6);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_sampling_study(&SamplingStudyConfig::tiny(9));
        let b = run_sampling_study(&SamplingStudyConfig::tiny(9));
        assert_eq!(a.avg_goodness, b.avg_goodness);
    }
}
