//! Summary-based relevancy estimators.

use mp_hidden::ContentSummary;
use mp_stats::float::exact_zero;
use mp_workload::Query;

/// A relevancy estimator: predicts `r̂(db, q)` from a locally stored
/// [`ContentSummary`], without contacting the database.
pub trait RelevancyEstimator: Send + Sync {
    /// Short stable name (for reports).
    fn name(&self) -> &str;

    /// The estimated relevancy `r̂(db, q)`.
    fn estimate(&self, summary: &ContentSummary, query: &Query) -> f64;
}

/// The term-independence estimator of paper Eq. 1:
///
/// ```text
/// r̂(db, q) = |db| · Π_{t ∈ q} ( df(db, t) / |db| )
/// ```
///
/// the expected number of documents matching *all* query terms if the
/// terms were independently distributed — the assumption whose failures
/// (Section 2.3) the probabilistic relevancy model exists to absorb.
///
/// Edge cases: an empty database estimates 0 for every query; a query
/// term absent from the summary zeroes the product (callers apply the
/// [`crate::config::EST_FLOOR`] before computing relative errors).
#[derive(Debug, Clone, Copy, Default)]
pub struct IndependenceEstimator;

impl RelevancyEstimator for IndependenceEstimator {
    fn name(&self) -> &str {
        "term-independence"
    }

    fn estimate(&self, summary: &ContentSummary, query: &Query) -> f64 {
        let n = f64::from(summary.size());
        if exact_zero(n) {
            return 0.0;
        }
        let mut est = n;
        for &t in query.terms() {
            est *= f64::from(summary.df(t)) / n;
            if exact_zero(est) {
                return 0.0;
            }
        }
        est
    }
}

/// A GlOSS-style estimator for the document-similarity relevancy
/// definition: predicts the best achievable query-document cosine
/// similarity from summary statistics alone.
///
/// The estimate is the similarity the query would have with an *ideal
/// matching document* — one containing exactly the query's
/// summary-covered terms once each:
///
/// ```text
/// est = sqrt( Σ_{t ∈ q, df(t) > 0} w_t² )  /  sqrt( Σ_{t ∈ q} w_t² )
/// ```
///
/// with `w_t = ln(1 + |db| / (1 + df(t)))` (the same smoothed idf the
/// engine uses). The estimate is 1 when every query term occurs in the
/// database and decays as high-idf terms are missing. Like Eq. 1 it
/// ignores co-occurrence — no summary can see it — so it exhibits the
/// same non-uniform error behaviour the probabilistic model corrects.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxSimilarityEstimator;

impl RelevancyEstimator for MaxSimilarityEstimator {
    fn name(&self) -> &str {
        "max-similarity"
    }

    fn estimate(&self, summary: &ContentSummary, query: &Query) -> f64 {
        let n = f64::from(summary.size());
        if exact_zero(n) {
            return 0.0;
        }
        let mut covered = 0.0;
        let mut total = 0.0;
        for &t in query.terms() {
            let df = f64::from(summary.df(t));
            let w = (1.0 + n / (1.0 + df)).ln();
            total += w * w;
            if df > 0.0 {
                covered += w * w;
            }
        }
        if exact_zero(total) {
            0.0
        } else {
            (covered / total).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_text::TermId;
    use std::collections::HashMap;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    fn summary(size: u32, dfs: &[(u32, u32)]) -> ContentSummary {
        let map: HashMap<TermId, u32> = dfs.iter().map(|&(i, d)| (t(i), d)).collect();
        ContentSummary::new(map, size)
    }

    #[test]
    fn paper_example1_db1() {
        // db1: 20,000 docs; breast in 2,000; cancer in 1,000.
        // r̂(db1, "breast cancer") = 20000 · (2000/20000) · (1000/20000) = 100.
        let s = summary(20_000, &[(0, 2_000), (1, 1_000)]);
        let est = IndependenceEstimator.estimate(&s, &Query::new([t(0), t(1)]));
        assert!((est - 100.0).abs() < 1e-9, "est={est}");
    }

    #[test]
    fn paper_example1_db2() {
        // db2: 20,000 docs; breast in 2,600; cancer in 5,000 → 650.
        let s = summary(20_000, &[(0, 2_600), (1, 5_000)]);
        let est = IndependenceEstimator.estimate(&s, &Query::new([t(0), t(1)]));
        assert!((est - 650.0).abs() < 1e-9, "est={est}");
    }

    #[test]
    fn single_term_estimate_is_df() {
        let s = summary(1_000, &[(0, 42)]);
        let est = IndependenceEstimator.estimate(&s, &Query::new([t(0)]));
        assert!((est - 42.0).abs() < 1e-12);
    }

    #[test]
    fn missing_term_zeroes_estimate() {
        let s = summary(1_000, &[(0, 500)]);
        let est = IndependenceEstimator.estimate(&s, &Query::new([t(0), t(9)]));
        assert_eq!(est, 0.0);
    }

    #[test]
    fn empty_database_estimates_zero() {
        let s = summary(0, &[]);
        assert_eq!(IndependenceEstimator.estimate(&s, &Query::new([t(0)])), 0.0);
        assert_eq!(
            MaxSimilarityEstimator.estimate(&s, &Query::new([t(0)])),
            0.0
        );
    }

    #[test]
    fn estimate_never_exceeds_min_df() {
        // Π df_i/n × n ≤ min df (each extra factor ≤ 1).
        let s = summary(100, &[(0, 60), (1, 10)]);
        let est = IndependenceEstimator.estimate(&s, &Query::new([t(0), t(1)]));
        assert!(est <= 10.0 + 1e-12);
        assert!(est > 0.0);
    }

    #[test]
    fn max_similarity_full_coverage_is_one() {
        let s = summary(100, &[(0, 5), (1, 30)]);
        let est = MaxSimilarityEstimator.estimate(&s, &Query::new([t(0), t(1)]));
        assert!((est - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_similarity_decays_with_missing_rare_terms() {
        let s = summary(100, &[(0, 90)]); // t1 missing entirely
        let est = MaxSimilarityEstimator.estimate(&s, &Query::new([t(0), t(1)]));
        assert!(est > 0.0 && est < 0.7, "est={est}");
        // Missing a *rare* (high-idf) term hurts more than it would to
        // miss a common one, so est is well below 1.
    }

    #[test]
    fn estimator_names() {
        assert_eq!(IndependenceEstimator.name(), "term-independence");
        assert_eq!(MaxSimilarityEstimator.name(), "max-similarity");
    }
}
