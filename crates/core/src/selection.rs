//! Database selection methods: the estimation baseline and the
//! RD-based method (paper Sections 2.2 and 3.3).

use crate::correctness::CorrectnessMetric;
use crate::expected::{expected_correctness, marginal_topk_prob};
use crate::par::par_map_indexed;
use mp_stats::float::total_cmp_desc;
use mp_stats::Discrete;

/// Below this many databases a marginal fan-out costs more in fork-join
/// overhead than the `O(n · s̄ · k)` marginals themselves.
const MARGINAL_PAR_MIN: usize = 32;

/// Every database's marginal top-k probability, ranked descending with
/// ties to the lower index — the shared first step of [`best_set`] and
/// [`best_set_score_quick`]. The per-database marginals are independent,
/// so they fan out across cores ([`par_map_indexed`]) once `n` is large
/// enough to pay for the fork-join; order-preserving collection keeps the
/// result bit-identical to the sequential evaluation.
fn ranked_marginals(rds: &[Discrete], k: usize) -> Vec<(usize, f64)> {
    let mut marginals: Vec<(usize, f64)> = par_map_indexed(rds.len(), MARGINAL_PAR_MIN, |i| {
        marginal_topk_prob(rds, i, k)
    })
    .into_iter()
    .enumerate()
    .collect();
    marginals.sort_by(|a, b| total_cmp_desc(a.1, b.1).then(a.0.cmp(&b.0)));
    marginals
}

/// Baseline selection: rank databases by point estimate, descending,
/// ties to the lower index — exactly what summary-based metasearchers
/// do without a probabilistic model (paper Section 2.2).
pub fn baseline_select(estimates: &[f64], k: usize) -> Vec<usize> {
    assert!(k >= 1 && k <= estimates.len(), "k out of range");
    let mut order: Vec<usize> = (0..estimates.len()).collect();
    order.sort_by(|&a, &b| total_cmp_desc(estimates[a], estimates[b]).then(a.cmp(&b)));
    order.truncate(k);
    order
}

/// Finds the k-subset maximizing the expected correctness, returning
/// `(set, E[Cor(set)])` (paper Section 3.3: "returns the DBk that has
/// the highest certainty").
///
/// * **Partial metric** — the exact optimum: `E[Cor_p]` is `(1/k) Σ`
///   of per-database marginal top-k probabilities, so the best set is
///   the k databases with the largest marginals.
/// * **Absolute metric** — seeded with the marginal ranking, then
///   improved by first-improvement swap local search. With unimodal
///   RD overlap structures (ours, and the paper's) the marginal ranking
///   is already optimal in practice; the local search guards the rest.
pub fn best_set(rds: &[Discrete], k: usize, metric: CorrectnessMetric) -> (Vec<usize>, f64) {
    assert!(k >= 1 && k <= rds.len(), "k out of range");
    let _span = mp_obs::span!("selection.best_set");
    let marginals = ranked_marginals(rds, k);
    let mut set: Vec<usize> = marginals[..k].iter().map(|&(i, _)| i).collect();
    set.sort_unstable();

    // k = 1 short-circuit: Cor_a and Cor_p coincide (paper Section 3.2
    // footnote), and the best single database is exactly the marginal
    // argmax — its marginal *is* its expected correctness. This is the
    // hot case inside the greedy policy's usefulness evaluation.
    if k == 1 {
        return (set, marginals[0].1);
    }

    match metric {
        CorrectnessMetric::Partial => {
            let score = expected_correctness(rds, &set, metric);
            (set, score)
        }
        CorrectnessMetric::Absolute => {
            let mut score = expected_correctness(rds, &set, metric);
            // First-improvement swap local search.
            let mut improved = true;
            while improved {
                improved = false;
                'outer: for pos in 0..set.len() {
                    for cand in 0..rds.len() {
                        if set.contains(&cand) {
                            continue;
                        }
                        let mut trial = set.clone();
                        trial[pos] = cand;
                        trial.sort_unstable();
                        let s = expected_correctness(rds, &trial, metric);
                        if s > score + 1e-12 {
                            set = trial;
                            score = s;
                            improved = true;
                            break 'outer;
                        }
                    }
                }
            }
            (set, score)
        }
    }
}

/// RD-based selection (paper Section 3.3): the set with the highest
/// expected correctness, no probing involved.
pub fn rd_based_select(rds: &[Discrete], k: usize, metric: CorrectnessMetric) -> Vec<usize> {
    best_set(rds, k, metric).0
}

/// The *score* of the marginal-ranking candidate set, without the
/// absolute-metric local search — a fast, tight lower bound on
/// [`best_set`]'s score (and exactly equal for `k = 1` and the partial
/// metric). The greedy probing policy evaluates thousands of
/// hypothetical states per probe; it uses this instead of the full
/// search, which only ever changes *which database gets probed*, never
/// the correctness semantics of the returned answer.
pub fn best_set_score_quick(rds: &[Discrete], k: usize, metric: CorrectnessMetric) -> f64 {
    assert!(k >= 1 && k <= rds.len(), "k out of range");
    let marginals = ranked_marginals(rds, k);
    match metric {
        // Partial: E[Cor_p] is the mean of the chosen marginals.
        CorrectnessMetric::Partial => {
            marginals[..k].iter().map(|&(_, m)| m).sum::<f64>() / k as f64
        }
        CorrectnessMetric::Absolute if k == 1 => marginals[0].1,
        CorrectnessMetric::Absolute => {
            let set: Vec<usize> = marginals[..k].iter().map(|&(i, _)| i).collect();
            expected_correctness(rds, &set, metric)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn d(pairs: &[(f64, f64)]) -> Discrete {
        Discrete::from_weighted(pairs).unwrap()
    }

    fn paper_rds() -> Vec<Discrete> {
        vec![
            d(&[(50.0, 0.4), (100.0, 0.5), (150.0, 0.1)]),
            d(&[(65.0, 0.1), (130.0, 0.9)]),
        ]
    }

    #[test]
    fn baseline_ranks_by_estimate() {
        assert_eq!(baseline_select(&[10.0, 50.0, 30.0], 2), vec![1, 2]);
        assert_eq!(baseline_select(&[5.0, 5.0, 1.0], 1), vec![0]); // tie → lower idx
    }

    #[test]
    fn paper_example4_rd_beats_baseline() {
        // Estimates: db1 = 100, db2 = 65 → baseline selects db1.
        assert_eq!(baseline_select(&[100.0, 65.0], 1), vec![0]);
        // RD-based selection sees db2's consistent underestimation and
        // selects db2 with certainty 0.85 (the paper's headline example).
        let (set, score) = best_set(&paper_rds(), 1, CorrectnessMetric::Absolute);
        assert_eq!(set, vec![1]);
        assert!((score - 0.85).abs() < 1e-12);
    }

    #[test]
    fn partial_best_set_takes_top_marginals() {
        let rds = vec![
            d(&[(100.0, 1.0)]),
            d(&[(10.0, 1.0)]),
            d(&[(50.0, 0.5), (120.0, 0.5)]),
        ];
        let (set, score) = best_set(&rds, 2, CorrectnessMetric::Partial);
        assert_eq!(set, vec![0, 2]);
        assert_eq!(score, 1.0); // dbs 0 and 2 are always the top two
    }

    #[test]
    fn impulse_rds_reduce_to_exact_ranking() {
        let rds = vec![
            Discrete::impulse(5.0),
            Discrete::impulse(50.0),
            Discrete::impulse(20.0),
        ];
        for metric in [CorrectnessMetric::Absolute, CorrectnessMetric::Partial] {
            let (set, score) = best_set(&rds, 2, metric);
            assert_eq!(set, vec![1, 2]);
            assert_eq!(score, 1.0);
        }
    }

    #[test]
    fn k_equals_n_selects_everything() {
        let rds = paper_rds();
        let (set, score) = best_set(&rds, 2, CorrectnessMetric::Absolute);
        assert_eq!(set, vec![0, 1]);
        assert_eq!(score, 1.0);
    }

    /// Exhaustive oracle over all k-subsets.
    fn brute_best(rds: &[Discrete], k: usize, metric: CorrectnessMetric) -> f64 {
        fn subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
            let mut out = Vec::new();
            let mut cur = Vec::new();
            fn rec(
                start: usize,
                n: usize,
                k: usize,
                cur: &mut Vec<usize>,
                out: &mut Vec<Vec<usize>>,
            ) {
                if cur.len() == k {
                    out.push(cur.clone());
                    return;
                }
                for i in start..n {
                    cur.push(i);
                    rec(i + 1, n, k, cur, out);
                    cur.pop();
                }
            }
            rec(0, n, k, &mut cur, &mut out);
            out
        }
        subsets(rds.len(), k)
            .into_iter()
            .map(|s| crate::expected::expected_correctness(rds, &s, metric))
            .fold(0.0, f64::max)
    }

    fn arb_rds() -> impl Strategy<Value = Vec<Discrete>> {
        proptest::collection::vec(
            proptest::collection::vec((0.0f64..40.0, 0.05f64..1.0), 1..4),
            2..6,
        )
        .prop_map(|dbs| {
            dbs.into_iter()
                .map(|pts| Discrete::from_weighted(&pts).unwrap())
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_best_set_matches_exhaustive(
            rds in arb_rds(),
            k_raw in 1usize..4
        ) {
            let k = k_raw.min(rds.len());
            for metric in [CorrectnessMetric::Absolute, CorrectnessMetric::Partial] {
                let (_, score) = best_set(&rds, k, metric);
                let oracle = brute_best(&rds, k, metric);
                prop_assert!((score - oracle).abs() < 1e-9,
                    "{:?}: got {}, oracle {}", metric, score, oracle);
            }
        }

        #[test]
        fn prop_selected_set_is_valid(rds in arb_rds(), k_raw in 1usize..4) {
            let k = k_raw.min(rds.len());
            let set = rd_based_select(&rds, k, CorrectnessMetric::Partial);
            prop_assert_eq!(set.len(), k);
            let distinct: std::collections::HashSet<_> = set.iter().collect();
            prop_assert_eq!(distinct.len(), k);
            prop_assert!(set.iter().all(|&i| i < rds.len()));
        }
    }
}
