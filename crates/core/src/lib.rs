//! # mp-core — probabilistic metasearching with adaptive probing
//!
//! The reproduction of the paper's primary contribution
//! (*A Probabilistic Approach to Metasearching with Adaptive Probing*,
//! Liu, Luo, Cho, Chu — ICDE 2004):
//!
//! 1. **Relevancy estimation** ([`estimator`]) — the term-independence
//!    estimator (Eq. 1) and a similarity-based alternative, computed
//!    from per-database content summaries.
//! 2. **Probabilistic relevancy model** ([`error`], [`ed`], [`rd`],
//!    [`query_type`]) — estimation errors (Eq. 2) learned per database
//!    and per query type as *error distributions* (EDs), converted at
//!    query time into *relevancy distributions* (RDs).
//! 3. **Expected correctness** ([`correctness`], [`expected`]) — exact
//!    `E[Cor_a]` / `E[Cor_p]` (Eqs. 3–6) over the RDs.
//! 4. **Selection** ([`selection`]) — the estimation-ranking baseline
//!    and the RD-based method (Section 3.3).
//! 5. **Adaptive probing** ([`probing`]) — the `APro` algorithm
//!    (Fig. 11) with the paper's greedy policy (Section 5.4) plus
//!    random / by-estimate / max-uncertainty / exhaustive-optimal
//!    comparison policies.
//! 6. **The metasearcher facade** ([`metasearcher`], [`fusion`]) —
//!    train-then-serve pipeline with certainty-controlled selection and
//!    result fusion.
//! 7. **The shard layer** ([`shard`]) — scatter-gather selection over a
//!    partitioned fleet, bit-identical to the unsharded engine for
//!    every topology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod config;
pub mod correctness;
pub mod ed;
pub mod engine;
pub mod error;
pub mod estimator;
pub mod expected;
pub mod fusion;
pub mod metasearcher;
pub mod par;
pub mod persist;
pub mod probing;
pub mod query_type;
pub mod rd;
pub mod relevancy;
pub mod selection;
pub mod shard;

pub use batch::BatchQuery;
pub use config::CoreConfig;
pub use correctness::{absolute_correctness, partial_correctness, rank_order, CorrectnessMetric};
pub use ed::{EdLibrary, ErrorDistribution};
pub use estimator::{IndependenceEstimator, MaxSimilarityEstimator, RelevancyEstimator};
pub use expected::{expected_absolute, expected_partial, marginal_topk_prob, RdState};
pub use metasearcher::{MetasearchResult, Metasearcher};
pub use persist::{library_from_json, library_to_json, load_library, save_library};
pub use probing::{apro, AproConfig, AproOutcome, GreedyPolicy, ProbePolicy};
pub use query_type::QueryType;
pub use relevancy::RelevancyDef;
pub use selection::{baseline_select, best_set, rd_based_select};
pub use shard::{Shard, ShardAssignment, ShardPlan, ShardScatter, ShardedMetasearcher};
