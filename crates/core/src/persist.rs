//! Persistence of trained models.
//!
//! Training an ED library probes every mediated database with every
//! training query — expensive against real Hidden-Web sites. A
//! metasearcher therefore trains offline, persists the library, and
//! loads it at serving time (the paper's framework implicitly assumes
//! exactly this split: Section 4 samples the databases "before we
//! accept user queries").
//!
//! Libraries serialize to a versioned JSON envelope so future format
//! changes fail loudly instead of deserializing garbage.

use crate::ed::EdLibrary;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current persistence format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors from persistence operations.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Malformed JSON or schema mismatch.
    Format(serde_json::Error),
    /// The envelope's version is not supported by this build.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build writes/reads.
        supported: u32,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format(e) => write!(f, "format error: {e}"),
            PersistError::Version { found, supported } => {
                write!(
                    f,
                    "unsupported library version {found} (this build reads {supported})"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(e) => Some(e),
            PersistError::Version { .. } => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

/// The on-disk envelope.
#[derive(Serialize, Deserialize)]
struct Envelope {
    version: u32,
    library: EdLibrary,
}

/// Serializes a trained library to a JSON string.
pub fn library_to_json(library: &EdLibrary) -> Result<String, PersistError> {
    Ok(serde_json::to_string(&Envelope {
        version: FORMAT_VERSION,
        library: library.clone(),
    })?)
}

/// Deserializes a library from its JSON envelope.
pub fn library_from_json(json: &str) -> Result<EdLibrary, PersistError> {
    let envelope: Envelope = serde_json::from_str(json)?;
    if envelope.version != FORMAT_VERSION {
        return Err(PersistError::Version {
            found: envelope.version,
            supported: FORMAT_VERSION,
        });
    }
    Ok(envelope.library)
}

/// Writes a trained library to `path`.
pub fn save_library(library: &EdLibrary, path: impl AsRef<Path>) -> Result<(), PersistError> {
    std::fs::write(path, library_to_json(library)?)?;
    Ok(())
}

/// Loads a trained library from `path`.
pub fn load_library(path: impl AsRef<Path>) -> Result<EdLibrary, PersistError> {
    library_from_json(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;
    use crate::query_type::{ArityBucket, QueryType};

    fn trained_library() -> EdLibrary {
        let mut lib = EdLibrary::empty(3, CoreConfig::default().with_threshold(5.0));
        lib.record(0, 2, 50.0, 100.0);
        lib.record(0, 2, 2.0, 0.0);
        lib.record(1, 3, 10.0, 40.0);
        lib.record(2, 2, 8.0, 8.0);
        lib
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let lib = trained_library();
        let json = library_to_json(&lib).unwrap();
        let back = library_from_json(&json).unwrap();
        assert_eq!(back.n_databases(), 3);
        assert_eq!(back.config(), lib.config());
        for db in 0..3 {
            assert_eq!(back.sample_counts(db), lib.sample_counts(db));
            for qt in QueryType::all(1) {
                match (lib.ed(db, qt), back.ed(db, qt)) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.histogram().counts(), b.histogram().counts());
                        assert_eq!(a.to_discrete(), b.to_discrete());
                    }
                    (None, None) => {}
                    other => panic!("mismatch at db {db} {qt}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn file_roundtrip() {
        let lib = trained_library();
        let dir = std::env::temp_dir().join("metaprobe-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("library.json");
        save_library(&lib, &path).unwrap();
        let back = load_library(&path).unwrap();
        assert_eq!(back.n_databases(), lib.n_databases());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let lib = trained_library();
        let json = library_to_json(&lib).unwrap();
        let bumped = json.replacen("\"version\":1", "\"version\":99", 1);
        match library_from_json(&bumped) {
            Err(PersistError::Version {
                found: 99,
                supported: 1,
            }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_a_format_error() {
        assert!(matches!(
            library_from_json("not json at all"),
            Err(PersistError::Format(_))
        ));
        assert!(matches!(
            library_from_json("{\"version\":1}"),
            Err(PersistError::Format(_))
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_library("/nonexistent/metaprobe/library.json"),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn loaded_library_classifies_like_the_original() {
        let lib = trained_library();
        let back = library_from_json(&library_to_json(&lib).unwrap()).unwrap();
        for (n_terms, est) in [(2usize, 3.0f64), (2, 50.0), (3, 0.2)] {
            assert_eq!(lib.classify(n_terms, est), back.classify(n_terms, est));
        }
        // And derives identical RDs through the public path.
        let qt = QueryType {
            arity: ArityBucket::Two,
            coverage: 1,
        };
        assert_eq!(
            lib.ed_or_fallback(0, qt).map(|e| e.to_discrete()),
            back.ed_or_fallback(0, qt).map(|e| e.to_discrete())
        );
    }
}
