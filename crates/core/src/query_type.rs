//! Query-type classification (paper Section 4.1, Figure 9).
//!
//! The estimator's error behaviour depends on the query, so EDs are
//! learned per *query type*, not globally. The paper's decision tree
//! splits on (a) the number of query terms — more terms compound the
//! independence error — and (b) whether the initial estimate clears a
//! coverage threshold θ: `r̂ < θ` suggests the database does not cover
//! the query topic (actual relevancy typically ~0, errors negative),
//! `r̂ ≥ θ` suggests real coverage where correlated terms make the
//! actual count blow past the estimate (errors positive).
//!
//! We generalize the paper's single threshold to an ordered *ladder* of
//! thresholds (the paper's extended version studies alternative
//! thresholds; a ladder of one reproduces the published tree exactly).
//! A query's *coverage bucket* is the number of thresholds its estimate
//! clears, so `[θ]` yields the paper's two buckets and `[θ₁, θ₂]`
//! yields three — useful when estimates span several orders of
//! magnitude, as they do on heterogeneous database sets.
//!
//! Classification is **database-dependent**: the same query may be
//! high-coverage on one database and low-coverage on another.

use serde::{Deserialize, Serialize};

/// Bucketed query arity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ArityBucket {
    /// Single-term queries (not the paper's focus but handled).
    One,
    /// Two-term queries.
    Two,
    /// Three-or-more-term queries.
    ThreeUp,
}

impl ArityBucket {
    /// Buckets a distinct-term count.
    pub fn of(n_terms: usize) -> Self {
        match n_terms {
            0 | 1 => ArityBucket::One,
            2 => ArityBucket::Two,
            _ => ArityBucket::ThreeUp,
        }
    }

    /// All arity buckets in order.
    pub fn all() -> [ArityBucket; 3] {
        [ArityBucket::One, ArityBucket::Two, ArityBucket::ThreeUp]
    }
}

/// A leaf of the query-type decision tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryType {
    /// The query's arity bucket.
    pub arity: ArityBucket,
    /// Coverage bucket: the number of coverage thresholds the estimate
    /// clears (0 = below every threshold). With the paper's single
    /// threshold this is 0 or 1.
    pub coverage: u8,
}

impl QueryType {
    /// Classifies a query for one database from its term count and its
    /// initial estimate there, against an ascending threshold ladder.
    ///
    /// # Panics
    /// Panics if `thresholds` is empty or not strictly ascending.
    pub fn classify(n_terms: usize, estimate: f64, thresholds: &[f64]) -> Self {
        assert!(
            !thresholds.is_empty(),
            "need at least one coverage threshold"
        );
        debug_assert!(
            thresholds.windows(2).all(|w| w[0] < w[1]),
            "thresholds must be strictly ascending"
        );
        let cleared = thresholds.iter().filter(|&&t| estimate >= t).count();
        let coverage =
            u8::try_from(cleared).expect("coverage ladders have far fewer than 256 rungs");
        Self {
            arity: ArityBucket::of(n_terms),
            coverage,
        }
    }

    /// Whether the estimate cleared at least one threshold (the paper's
    /// "`r̂ ≥ θ`" branch).
    pub fn high_coverage(&self) -> bool {
        self.coverage > 0
    }

    /// All query types for a ladder of `n_thresholds`, in stable order.
    pub fn all(n_thresholds: usize) -> Vec<QueryType> {
        let max_cov =
            u8::try_from(n_thresholds).expect("coverage ladders have far fewer than 256 rungs");
        let mut out = Vec::new();
        for arity in ArityBucket::all() {
            for coverage in 0..=max_cov {
                out.push(QueryType { arity, coverage });
            }
        }
        out
    }

    /// The fallback chain used when a leaf has no learned ED: nearest
    /// coverage buckets of the same arity first (closest informative
    /// leaf), then the other arities in the same spread order.
    pub fn fallbacks(&self, n_thresholds: usize) -> Vec<QueryType> {
        let max_cov =
            u8::try_from(n_thresholds).expect("coverage ladders have far fewer than 256 rungs");
        let coverage_order = |base: u8| -> Vec<u8> {
            let mut order = Vec::new();
            for d in 1..=max_cov {
                if base >= d {
                    order.push(base - d);
                }
                if base + d <= max_cov {
                    order.push(base + d);
                }
            }
            order
        };
        let mut out: Vec<QueryType> = coverage_order(self.coverage)
            .into_iter()
            .map(|coverage| QueryType {
                arity: self.arity,
                coverage,
            })
            .collect();
        for arity in ArityBucket::all() {
            if arity == self.arity {
                continue;
            }
            out.push(QueryType {
                arity,
                coverage: self.coverage,
            });
            out.extend(
                coverage_order(self.coverage)
                    .into_iter()
                    .map(|coverage| QueryType { arity, coverage }),
            );
        }
        out
    }
}

impl std::fmt::Display for QueryType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let arity = match self.arity {
            ArityBucket::One => "1-term",
            ArityBucket::Two => "2-term",
            ArityBucket::ThreeUp => "3-term",
        };
        write!(f, "{arity}/cov{}", self.coverage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_paper_tree() {
        // Paper Figure 9 with the single threshold θ = 100.
        let qt = QueryType::classify(2, 12.0, &[100.0]);
        assert_eq!(qt.arity, ArityBucket::Two);
        assert!(!qt.high_coverage());
        assert_eq!(qt.coverage, 0);

        let qt = QueryType::classify(3, 250.0, &[100.0]);
        assert_eq!(qt.arity, ArityBucket::ThreeUp);
        assert!(qt.high_coverage());
        assert_eq!(qt.coverage, 1);
    }

    #[test]
    fn threshold_boundary_is_inclusive_above() {
        assert_eq!(QueryType::classify(2, 100.0, &[100.0]).coverage, 1);
        assert_eq!(QueryType::classify(2, 99.999, &[100.0]).coverage, 0);
    }

    #[test]
    fn ladder_buckets() {
        let ladder = [1.0, 10.0, 100.0];
        assert_eq!(QueryType::classify(2, 0.5, &ladder).coverage, 0);
        assert_eq!(QueryType::classify(2, 5.0, &ladder).coverage, 1);
        assert_eq!(QueryType::classify(2, 50.0, &ladder).coverage, 2);
        assert_eq!(QueryType::classify(2, 5000.0, &ladder).coverage, 3);
    }

    #[test]
    fn arity_bucketing() {
        assert_eq!(ArityBucket::of(1), ArityBucket::One);
        assert_eq!(ArityBucket::of(2), ArityBucket::Two);
        assert_eq!(ArityBucket::of(3), ArityBucket::ThreeUp);
        assert_eq!(ArityBucket::of(7), ArityBucket::ThreeUp);
    }

    #[test]
    fn all_types_are_distinct_and_complete() {
        let all = QueryType::all(2);
        assert_eq!(all.len(), 9); // 3 arities × 3 buckets
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn fallbacks_start_with_nearest_coverage_same_arity() {
        let qt = QueryType {
            arity: ArityBucket::Two,
            coverage: 1,
        };
        let fb = qt.fallbacks(2);
        assert_eq!(
            fb[0],
            QueryType {
                arity: ArityBucket::Two,
                coverage: 0
            }
        );
        assert_eq!(
            fb[1],
            QueryType {
                arity: ArityBucket::Two,
                coverage: 2
            }
        );
        assert!(!fb.contains(&qt));
        // Every other leaf is reachable.
        let total = QueryType::all(2).len() - 1;
        let distinct: std::collections::HashSet<_> = fb.iter().collect();
        assert_eq!(distinct.len(), total);
    }

    #[test]
    fn single_threshold_fallback_is_the_sibling() {
        let qt = QueryType {
            arity: ArityBucket::Two,
            coverage: 1,
        };
        let fb = qt.fallbacks(1);
        assert_eq!(
            fb[0],
            QueryType {
                arity: ArityBucket::Two,
                coverage: 0
            }
        );
    }

    #[test]
    #[should_panic(expected = "at least one coverage threshold")]
    fn empty_ladder_rejected() {
        QueryType::classify(2, 1.0, &[]);
    }

    #[test]
    fn display_is_readable() {
        let qt = QueryType {
            arity: ArityBucket::Two,
            coverage: 0,
        };
        assert_eq!(qt.to_string(), "2-term/cov0");
    }
}
