//! The shard layer: scatter-gather selection over a partitioned
//! database fleet.
//!
//! The paper's metasearcher assumes one process owns every database's
//! ED/RD state; at fleet scale the databases are partitioned across N
//! independent shards, each owning its members' summaries, trained EDs,
//! and probe accounting. Selection then runs in two phases:
//!
//! * **Scatter** — every shard computes, for its own members only, the
//!   query's estimates and relevancy distributions (plus a local
//!   candidate preview and per-member certainty bits). No shard reads
//!   another shard's state, so the phase parallelizes shared-nothing
//!   via [`crate::par`].
//! * **Gather** — the per-shard RD summaries are reassembled in global
//!   index order and the *global* `E[Cor(DBk)]` machinery
//!   ([`crate::selection::best_set`], [`crate::probing::apro`]) runs on
//!   the composed vector, with probes routed back to the owning shard.
//!
//! **Why the merge is exact.** Estimates, query-type classification,
//! ED lookup, and RD derivation are all functions of *one* database's
//! summary and trained leaves ([`crate::rd::derive_all_rds`] is a
//! per-element map), so a shard computes bit-identical RDs to the
//! unsharded engine for the databases it owns. What is *not* shard-local
//! is the correctness marginal — `P(db ∈ top-k)` depends on every rival
//! fleet-wide — which is why gather re-runs the canonical global
//! ranking (descending total order, lower index breaks ties) over the
//! composed RD vector rather than merging per-shard top-k lists
//! heuristically. The composed vector is the *same multiset of
//! `(index, RD)` pairs* the unsharded engine sees, and every downstream
//! step is a deterministic function of it, so selections, probe
//! sequences, and budgets replay bit-for-bit across topologies — the
//! property `tests/shard_equivalence.rs` proves by proptest for
//! shards ∈ {1, 2, 3, 8} including adversarial partitions.
//!
//! Lock inventory: none. A [`ShardedMetasearcher`] is immutable after
//! construction (shards hold `Arc`s to databases plus owned ED slices);
//! the probe path touches only the owning database's own counters.

use std::sync::Arc;

use crate::config::CoreConfig;
use crate::correctness::CorrectnessMetric;
use crate::ed::EdLibrary;
use crate::estimator::RelevancyEstimator;
use crate::expected::RdState;
use crate::fusion::fuse;
use crate::metasearcher::MetasearchResult;
use crate::probing::{apro, AproConfig, AproOutcome, ProbePolicy};
use crate::rd::derive_all_rds;
use crate::relevancy::RelevancyDef;
use crate::selection::{baseline_select, best_set};
use mp_hidden::{HiddenWebDatabase, Mediator};
use mp_stats::Discrete;
use mp_workload::Query;

/// How a fleet of `n` databases maps onto shards.
///
/// Every variant is a pure function of the mediator's (ordered,
/// authoritative) database list — no clocks, no randomness — so the
/// same fleet always partitions the same way (mp-lint L13 territory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardAssignment {
    /// FNV-1a over the database *name*, modulo the shard count — the
    /// deployment-stable default: a database keeps its shard when the
    /// fleet grows as long as the shard count is unchanged.
    ByNameFnv(usize),
    /// `global index % shards` — the balanced assignment benches use.
    RoundRobin(usize),
    /// An explicit owner table (`owner[global] = shard`). Shards that
    /// never appear stay empty — the adversarial-partition tests use
    /// this for empty / one-giant / all-singleton topologies.
    Explicit {
        /// Total shard count (may exceed the owners actually used).
        shards: usize,
        /// Owning shard per global database index.
        owner: Vec<usize>,
    },
}

/// FNV-1a (64-bit) — the same stable fingerprint discipline as
/// [`Query::fingerprint`], over arbitrary bytes.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl ShardAssignment {
    /// The shard count this assignment targets.
    pub fn n_shards(&self) -> usize {
        match self {
            ShardAssignment::ByNameFnv(s) | ShardAssignment::RoundRobin(s) => *s,
            ShardAssignment::Explicit { shards, .. } => *shards,
        }
    }

    /// The owner table for `mediator`'s databases.
    ///
    /// # Panics
    /// Panics on a zero shard count, an explicit table of the wrong
    /// length, or an explicit owner out of range.
    pub fn assign(&self, mediator: &Mediator) -> Vec<usize> {
        let shards = self.n_shards();
        assert!(shards > 0, "shard count must be at least 1");
        let owner: Vec<usize> = match self {
            ShardAssignment::ByNameFnv(_) => (0..mediator.len())
                .map(|i| (fnv1a_64(mediator.db(i).name().as_bytes()) % shards as u64) as usize)
                .collect(),
            ShardAssignment::RoundRobin(_) => (0..mediator.len()).map(|i| i % shards).collect(),
            ShardAssignment::Explicit { owner, .. } => {
                assert_eq!(
                    owner.len(),
                    mediator.len(),
                    "explicit owner table must cover every database"
                );
                owner.clone()
            }
        };
        assert!(
            owner.iter().all(|&s| s < shards),
            "shard owner out of range"
        );
        owner
    }
}

/// The partition: who owns which database, both directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// `owner[global] = shard`.
    owner: Vec<usize>,
    /// `local[global]` = position within the owning shard's member list.
    local: Vec<usize>,
    /// `members[shard]` = owned global indices, strictly ascending.
    members: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Builds the plan for `mediator` under `assignment`.
    pub fn new(assignment: &ShardAssignment, mediator: &Mediator) -> Self {
        let owner = assignment.assign(mediator);
        let mut members = vec![Vec::new(); assignment.n_shards()];
        let mut local = vec![0usize; owner.len()];
        for (global, &shard) in owner.iter().enumerate() {
            local[global] = members[shard].len();
            members[shard].push(global);
        }
        Self {
            owner,
            local,
            members,
        }
    }

    /// Number of shards (including empty ones).
    pub fn n_shards(&self) -> usize {
        self.members.len()
    }

    /// Number of partitioned databases.
    pub fn n_databases(&self) -> usize {
        self.owner.len()
    }

    /// The shard owning global database `global`.
    pub fn shard_of(&self, global: usize) -> usize {
        self.owner[global]
    }

    /// `global`'s position within its owning shard's member list.
    pub fn local_of(&self, global: usize) -> usize {
        self.local[global]
    }

    /// The global indices shard `shard` owns, ascending.
    pub fn members(&self, shard: usize) -> &[usize] {
        &self.members[shard]
    }
}

/// One shard: the members' databases/summaries plus the slice of the
/// ED library they own. Empty shards carry no mediator.
pub struct Shard {
    globals: Vec<usize>,
    mediator: Option<Mediator>,
    library: EdLibrary,
}

impl Shard {
    fn build(plan: &ShardPlan, shard: usize, fleet: &Mediator, library: &EdLibrary) -> Self {
        let globals = plan.members(shard).to_vec();
        let mediator = (!globals.is_empty()).then(|| {
            Mediator::new(
                globals.iter().map(|&g| fleet.db_arc(g)).collect(),
                globals.iter().map(|&g| fleet.summary(g).clone()).collect(),
            )
        });
        Self {
            mediator,
            library: library.subset(&globals),
            globals,
        }
    }

    /// The owned global indices, ascending.
    pub fn globals(&self) -> &[usize] {
        &self.globals
    }

    /// The shard's mediator; `None` when the shard owns no databases.
    pub fn mediator(&self) -> Option<&Mediator> {
        self.mediator.as_ref()
    }

    /// The shard's slice of the ED library (locally indexed).
    pub fn library(&self) -> &EdLibrary {
        &self.library
    }

    /// Number of owned databases.
    pub fn len(&self) -> usize {
        self.globals.len()
    }

    /// Whether the shard owns no databases.
    pub fn is_empty(&self) -> bool {
        self.globals.is_empty()
    }

    /// Probes served by this shard's databases since the last reset.
    pub fn probes(&self) -> u64 {
        self.mediator.as_ref().map_or(0, Mediator::total_probes)
    }
}

/// One shard's scatter-phase answer for a query: everything the gather
/// phase needs (the full local RD vector), plus the candidate preview a
/// bandwidth-limited transport would ship first.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardScatter {
    /// The answering shard.
    pub shard: usize,
    /// Member global indices, ascending (parallel to the vectors below).
    pub globals: Vec<usize>,
    /// Point estimates `r̂(db, q)` per member.
    pub estimates: Vec<f64>,
    /// Relevancy distributions per member — bit-identical to what the
    /// unsharded engine derives for the same databases.
    pub rds: Vec<Discrete>,
    /// The shard's local candidate preview: up to k′ members (global
    /// indices) in the canonical estimate ranking. Diagnostic — gather
    /// consumes the full RD vectors, never this list, because global
    /// top-k marginals depend on every rival fleet-wide.
    pub top_local: Vec<usize>,
    /// Per-member certainty bit: the RD is already an impulse, so no
    /// probe of this member can move the global ranking.
    pub certain: Vec<bool>,
}

/// A trained metasearcher over a partitioned fleet: the sharded twin of
/// [`crate::Metasearcher`], answering every query bit-identically.
pub struct ShardedMetasearcher {
    plan: ShardPlan,
    shards: Vec<Shard>,
    estimator: Arc<dyn RelevancyEstimator>,
    def: RelevancyDef,
    config: CoreConfig,
}

impl std::fmt::Debug for ShardedMetasearcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedMetasearcher")
            .field("databases", &self.plan.n_databases())
            .field("shards", &self.plan.n_shards())
            .field("estimator", &self.estimator.name())
            .field("relevancy", &self.def.to_string())
            .finish()
    }
}

impl ShardedMetasearcher {
    /// Partitions `fleet` under `assignment` and hands each shard its
    /// slice of the pre-trained `library`.
    pub fn with_library(
        fleet: &Mediator,
        estimator: Arc<dyn RelevancyEstimator>,
        def: RelevancyDef,
        library: &EdLibrary,
        assignment: &ShardAssignment,
    ) -> Self {
        assert_eq!(
            fleet.len(),
            library.n_databases(),
            "library does not cover the partitioned databases"
        );
        let plan = ShardPlan::new(assignment, fleet);
        let shards = (0..plan.n_shards())
            .map(|s| Shard::build(&plan, s, fleet, library))
            .collect();
        Self {
            shards,
            plan,
            estimator,
            def,
            config: library.config().clone(),
        }
    }

    /// Trains shard-locally: each shard samples *its own* databases with
    /// the training queries. Training records each observation under one
    /// database only, so this equals slicing a flat-trained library —
    /// the shard layer adds no training skew (pinned by tests).
    pub fn train(
        fleet: &Mediator,
        estimator: Arc<dyn RelevancyEstimator>,
        def: RelevancyDef,
        train_queries: &[Query],
        config: CoreConfig,
        assignment: &ShardAssignment,
    ) -> Self {
        let plan = ShardPlan::new(assignment, fleet);
        let shards: Vec<Shard> = (0..plan.n_shards())
            .map(|s| {
                let globals = plan.members(s).to_vec();
                let mediator = (!globals.is_empty()).then(|| {
                    Mediator::new(
                        globals.iter().map(|&g| fleet.db_arc(g)).collect(),
                        globals.iter().map(|&g| fleet.summary(g).clone()).collect(),
                    )
                });
                let library = match &mediator {
                    Some(m) => EdLibrary::train(m, estimator.as_ref(), def, train_queries, &config),
                    None => EdLibrary::empty(0, config.clone()),
                };
                Shard {
                    mediator,
                    library,
                    globals,
                }
            })
            .collect();
        fleet.reset_probes();
        Self {
            shards,
            plan,
            estimator,
            def,
            config,
        }
    }

    /// Wraps the facade in an [`Arc`] for the serving tier (immutable
    /// after construction; every field is `Send + Sync`).
    pub fn shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// The partition.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The shards, including empty ones.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Total partitioned databases (the global `n`).
    pub fn n_databases(&self) -> usize {
        self.plan.n_databases()
    }

    /// The relevancy definition in force.
    pub fn relevancy_def(&self) -> RelevancyDef {
        self.def
    }

    /// The core configuration shared by every shard's library slice.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// The largest advertised database size across every shard — the
    /// fleet-wide scratch-warming target for serving tiers (a single
    /// shard's maximum would under-warm the others' workers).
    pub fn max_size_hint(&self) -> usize {
        self.shards
            .iter()
            .filter_map(|s| s.mediator().map(Mediator::max_size_hint))
            .max()
            .unwrap_or(0)
    }

    /// The owning shard's handle for global database `global`.
    fn db(&self, global: usize) -> &dyn HiddenWebDatabase {
        let shard = &self.shards[self.plan.shard_of(global)];
        shard
            .mediator
            .as_ref()
            .expect("owning shard is non-empty by construction")
            .db(self.plan.local_of(global))
    }

    /// Scatter phase: every shard answers for its own members (see the
    /// module docs). Shards run via [`crate::par`] — shared-nothing, so
    /// the fan-out is bit-deterministic by the par contract.
    pub fn scatter(&self, query: &Query, k_prime: usize) -> Vec<ShardScatter> {
        crate::par::par_map_indexed(self.shards.len(), 1, |s| {
            let shard = &self.shards[s];
            let (estimates, rds): (Vec<f64>, Vec<Discrete>) = match shard.mediator() {
                Some(m) => {
                    let estimates: Vec<f64> = (0..m.len())
                        .map(|i| self.estimator.estimate(m.summary(i), query))
                        .collect();
                    let rds = derive_all_rds(&estimates, query, &shard.library);
                    (estimates, rds)
                }
                None => (Vec::new(), Vec::new()),
            };
            // The preview is best-effort: clamp k′ to what the shard
            // owns (an empty shard previews nothing).
            let kp = k_prime.min(shard.globals.len());
            let top_local = if kp == 0 {
                Vec::new()
            } else {
                baseline_select(&estimates, kp)
                    .into_iter()
                    .map(|l| shard.globals[l])
                    .collect()
            };
            let certain = rds.iter().map(Discrete::is_impulse).collect();
            ShardScatter {
                shard: s,
                globals: shard.globals.clone(),
                estimates,
                rds,
                top_local,
                certain,
            }
        })
    }

    /// Gather phase: reassembles per-shard RD vectors into the global
    /// index order the selection machinery runs on. Exactness argument
    /// in the module docs; coverage is asserted.
    pub fn gather(&self, scatters: &[ShardScatter]) -> Vec<Discrete> {
        let n = self.n_databases();
        let mut slots: Vec<Option<Discrete>> = vec![None; n];
        for sc in scatters {
            assert_eq!(
                sc.globals.len(),
                sc.rds.len(),
                "scatter members and RDs must align"
            );
            for (&g, rd) in sc.globals.iter().zip(&sc.rds) {
                assert!(
                    slots[g].is_none(),
                    "database {g} answered by more than one shard"
                );
                slots[g] = Some(rd.clone());
            }
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(g, rd)| rd.unwrap_or_else(|| panic!("database {g} missing from scatter")))
            .inspect(Discrete::debug_assert_normalized)
            .collect()
    }

    /// Point estimates in global index order (scatter reassembled).
    pub fn estimates(&self, query: &Query) -> Vec<f64> {
        let mut out = vec![0.0; self.n_databases()];
        for sc in self.scatter(query, 0) {
            for (&g, &e) in sc.globals.iter().zip(&sc.estimates) {
                out[g] = e;
            }
        }
        out
    }

    /// The query's relevancy distributions, global index order — the
    /// full scatter → gather round trip.
    // mp-lint: allow(L6): every element comes from derive_rd via scatter, which asserts
    pub fn rds(&self, query: &Query) -> Vec<Discrete> {
        self.gather(&self.scatter(query, 0))
    }

    /// Baseline selection over the gathered estimates.
    pub fn select_baseline(&self, query: &Query, k: usize) -> Vec<usize> {
        baseline_select(&self.estimates(query), k)
    }

    /// RD-based selection with no probing over the gathered RDs.
    pub fn select_rd(
        &self,
        query: &Query,
        k: usize,
        metric: CorrectnessMetric,
    ) -> (Vec<usize>, f64) {
        best_set(&self.rds(query), k, metric)
    }

    /// Adaptive selection: gathered RDs, then `APro` with probes routed
    /// to — and counted by — the owning shard.
    pub fn select_adaptive(
        &self,
        query: &Query,
        config: AproConfig,
        policy: &mut dyn ProbePolicy,
    ) -> AproOutcome {
        self.select_adaptive_with_rds(query, self.rds(query), config, policy)
    }

    /// [`Self::select_adaptive`] with caller-supplied RDs (the serving
    /// layer's RD cache); `rds` must be what [`Self::rds`] returns.
    pub fn select_adaptive_with_rds(
        &self,
        query: &Query,
        rds: Vec<Discrete>,
        config: AproConfig,
        policy: &mut dyn ProbePolicy,
    ) -> AproOutcome {
        assert_eq!(
            rds.len(),
            self.n_databases(),
            "RD vector does not cover the partitioned databases"
        );
        let mut state = RdState::new(rds);
        let probe_top_n = self.config.probe_top_n;
        let mut probe_fn = |i: usize| self.def.probe(self.db(i), query, probe_top_n);
        apro(&mut state, config, policy, &mut probe_fn)
    }

    /// End-to-end metasearch over the partitioned fleet; the fused
    /// answer is bit-identical to the unsharded
    /// [`crate::Metasearcher::search`].
    pub fn search(
        &self,
        query: &Query,
        config: AproConfig,
        policy: &mut dyn ProbePolicy,
        fuse_limit: usize,
    ) -> MetasearchResult {
        self.search_with_rds(query, self.rds(query), config, policy, fuse_limit)
    }

    /// [`Self::search`] with caller-supplied RDs.
    pub fn search_with_rds(
        &self,
        query: &Query,
        rds: Vec<Discrete>,
        config: AproConfig,
        policy: &mut dyn ProbePolicy,
        fuse_limit: usize,
    ) -> MetasearchResult {
        let outcome = self.select_adaptive_with_rds(query, rds, config, policy);
        let top_n = self.config.probe_top_n.max(fuse_limit);
        // Same fan-out discipline as the unsharded facade: index order
        // preserved, each dispatch routed to the owning shard.
        let responses: Vec<_> = crate::par::par_map_indexed(outcome.selected.len(), 4, |j| {
            let i = outcome.selected[j];
            (i, self.db(i).search(query.terms(), top_n))
        });
        let hits = fuse(&responses, fuse_limit);
        MetasearchResult {
            probes_used: outcome.n_probes(),
            outcome,
            hits,
        }
    }

    /// Answers a batch of requests with the lock-step batch executor,
    /// probes routed to — and counted by — the owning shard. Each
    /// result is bit-identical to [`Self::search_with_rds`] on that
    /// request alone (and therefore to the flat engine's).
    pub fn search_batch_with_rds(
        &self,
        items: Vec<crate::batch::BatchQuery<'_>>,
        fuse_limit: usize,
    ) -> Vec<MetasearchResult> {
        for it in &items {
            assert_eq!(
                it.rds.len(),
                self.n_databases(),
                "RD vector does not cover the partitioned databases"
            );
        }
        let probe_top_n = self.config.probe_top_n;
        crate::batch::search_batch_impl(&|i| self.db(i), self.def, probe_top_n, fuse_limit, items)
    }

    /// Probes served per shard since the last reset (owning-shard
    /// accounting: a probe of database `g` lands on `shard_of(g)`).
    pub fn shard_probes(&self) -> Vec<u64> {
        self.shards.iter().map(Shard::probes).collect()
    }

    /// Fleet-wide probe total (the sum over [`Self::shard_probes`]).
    pub fn total_probes(&self) -> u64 {
        self.shard_probes().iter().sum()
    }

    /// Resets every shard's probe counters.
    pub fn reset_probes(&self) {
        for s in &self.shards {
            if let Some(m) = s.mediator() {
                m.reset_probes();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::IndependenceEstimator;
    use crate::probing::GreedyPolicy;
    use crate::Metasearcher;
    use mp_hidden::{ContentSummary, SimulatedHiddenDb};
    use mp_index::{Document, IndexBuilder};
    use mp_text::TermId;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    /// A 6-database fleet with varied term correlations so RDs differ
    /// across databases and probing does real work.
    fn fleet() -> Mediator {
        let mut dbs: Vec<Arc<dyn HiddenWebDatabase>> = Vec::new();
        for d in 0..6u32 {
            let mut b = IndexBuilder::new();
            for i in 0..(40 + 10 * d) {
                let mut doc = Document::new();
                if i % (d + 2) == 0 {
                    doc.add_term(t(0), 1);
                }
                if i % 3 == d % 3 {
                    doc.add_term(t(1), 1);
                }
                doc.add_term(t(2), 1);
                b.add(doc);
            }
            dbs.push(Arc::new(SimulatedHiddenDb::new(
                format!("db-{d}"),
                b.build(),
            )));
        }
        let summaries = dbs
            .iter()
            .map(|d| {
                ContentSummary::new(
                    (0..3u32)
                        .map(|i| (t(i), d.search(&[t(i)], 0).match_count))
                        .collect(),
                    d.size_hint().unwrap(),
                )
            })
            .collect();
        let m = Mediator::new(dbs, summaries);
        m.reset_probes();
        m
    }

    fn train_queries() -> Vec<Query> {
        let mut qs = Vec::new();
        for _ in 0..4 {
            qs.push(Query::new([t(0), t(1)]));
            qs.push(Query::new([t(0), t(2)]));
            qs.push(Query::new([t(1), t(2)]));
        }
        qs
    }

    fn flat() -> Metasearcher {
        Metasearcher::train(
            fleet(),
            Box::new(IndependenceEstimator),
            RelevancyDef::DocFrequency,
            &train_queries(),
            CoreConfig::default().with_threshold(20.0),
        )
    }

    #[test]
    fn plan_round_robin_partitions_and_inverts() {
        let m = fleet();
        let plan = ShardPlan::new(&ShardAssignment::RoundRobin(4), &m);
        assert_eq!(plan.n_shards(), 4);
        assert_eq!(plan.n_databases(), 6);
        for g in 0..6 {
            let s = plan.shard_of(g);
            assert_eq!(s, g % 4);
            assert_eq!(plan.members(s)[plan.local_of(g)], g);
        }
        assert_eq!(plan.members(0), &[0, 4]);
        assert_eq!(plan.members(3), &[3]);
    }

    #[test]
    fn fnv_assignment_is_stable_and_name_keyed() {
        let m = fleet();
        let a = ShardAssignment::ByNameFnv(3);
        // Pure function of the names: two evaluations agree exactly.
        assert_eq!(a.assign(&m), a.assign(&m));
        // Keyed by name, not index: a fleet listing the same databases
        // in reverse order assigns each *name* to the same shard.
        let owners = a.assign(&m);
        let rev = Mediator::new(
            (0..m.len()).rev().map(|i| m.db_arc(i)).collect(),
            (0..m.len()).rev().map(|i| m.summary(i).clone()).collect(),
        );
        let rev_owners = a.assign(&rev);
        for i in 0..m.len() {
            assert_eq!(owners[i], rev_owners[m.len() - 1 - i]);
        }
    }

    #[test]
    #[should_panic(expected = "owner out of range")]
    fn explicit_owner_out_of_range_is_rejected() {
        let m = fleet();
        ShardAssignment::Explicit {
            shards: 2,
            owner: vec![0, 1, 2, 0, 0, 0],
        }
        .assign(&m);
    }

    #[test]
    fn empty_shards_scatter_nothing_and_gather_still_covers() {
        let m = fleet();
        let ms = flat();
        // Shard 1 of 3 owns nothing.
        let sharded = ShardedMetasearcher::with_library(
            &m,
            Arc::new(IndependenceEstimator),
            RelevancyDef::DocFrequency,
            ms.library(),
            &ShardAssignment::Explicit {
                shards: 3,
                owner: vec![0, 0, 2, 2, 0, 2],
            },
        );
        assert!(sharded.shards()[1].is_empty());
        assert_eq!(sharded.shards()[1].probes(), 0);
        let q = Query::new([t(0), t(1)]);
        let scatters = sharded.scatter(&q, 2);
        assert!(scatters[1].rds.is_empty() && scatters[1].top_local.is_empty());
        assert_eq!(sharded.gather(&scatters).len(), 6);
        assert_eq!(sharded.rds(&q), ms.rds(&q));
    }

    #[test]
    fn scatter_preview_ranks_members_by_canonical_estimate_order() {
        let m = fleet();
        let ms = flat();
        let sharded = ShardedMetasearcher::with_library(
            &m,
            Arc::new(IndependenceEstimator),
            RelevancyDef::DocFrequency,
            ms.library(),
            &ShardAssignment::RoundRobin(2),
        );
        let q = Query::new([t(0), t(1)]);
        for sc in sharded.scatter(&q, 2) {
            assert!(sc.top_local.len() <= 2);
            // Preview entries are members, ranked by their estimates
            // under the canonical descending order.
            let est_of = |g: usize| {
                let l = sc.globals.iter().position(|&x| x == g).unwrap();
                sc.estimates[l]
            };
            for w in sc.top_local.windows(2) {
                assert!(est_of(w[0]) >= est_of(w[1]));
            }
            assert_eq!(sc.certain.len(), sc.globals.len());
        }
    }

    #[test]
    fn shard_trained_equals_flat_trained_slices() {
        let m = fleet();
        let ms = flat();
        for assignment in [
            ShardAssignment::RoundRobin(3),
            ShardAssignment::ByNameFnv(2),
        ] {
            let sharded = ShardedMetasearcher::train(
                &m,
                Arc::new(IndependenceEstimator),
                RelevancyDef::DocFrequency,
                &train_queries(),
                CoreConfig::default().with_threshold(20.0),
                &assignment,
            );
            for (s, shard) in sharded.shards().iter().enumerate() {
                assert_eq!(
                    shard.library(),
                    &ms.library().subset(sharded.plan().members(s)),
                    "shard {s} training diverged from the flat library slice"
                );
            }
            // Shard-local training probes were reset.
            assert_eq!(sharded.total_probes(), 0);
        }
    }

    #[test]
    fn adaptive_selection_routes_probes_to_owning_shards() {
        let m = fleet();
        let ms = flat();
        let sharded = ShardedMetasearcher::with_library(
            &m,
            Arc::new(IndependenceEstimator),
            RelevancyDef::DocFrequency,
            ms.library(),
            &ShardAssignment::RoundRobin(3),
        );
        sharded.reset_probes();
        let q = Query::new([t(0), t(1)]);
        let mut policy = GreedyPolicy;
        let outcome = sharded.select_adaptive(
            &q,
            AproConfig {
                k: 2,
                threshold: 1.0,
                metric: CorrectnessMetric::Partial,
                max_probes: None,
            },
            &mut policy,
        );
        assert!(outcome.n_probes() >= 1);
        // Owning-shard accounting: per-shard totals reconstruct the
        // probe trace exactly.
        let mut expect = vec![0u64; 3];
        for p in &outcome.probes {
            expect[sharded.plan().shard_of(p.db)] += 1;
        }
        assert_eq!(sharded.shard_probes(), expect);
        assert_eq!(sharded.total_probes(), outcome.n_probes() as u64);
    }

    #[test]
    fn search_matches_flat_facade_bit_for_bit() {
        // The twin-stack comparison lives in tests/shard_equivalence.rs;
        // this in-module smoke shares one fleet (so probe counters
        // double-accrue — not asserted here) and checks the value path.
        let m = fleet();
        let ms = flat();
        let sharded = ShardedMetasearcher::with_library(
            &m,
            Arc::new(IndependenceEstimator),
            RelevancyDef::DocFrequency,
            ms.library(),
            &ShardAssignment::ByNameFnv(8),
        );
        let config = AproConfig {
            k: 2,
            threshold: 0.9,
            metric: CorrectnessMetric::Partial,
            max_probes: None,
        };
        for q in [
            Query::new([t(0), t(1)]),
            Query::new([t(1), t(2)]),
            Query::new([t(0), t(2)]),
        ] {
            let mut p1 = GreedyPolicy;
            let mut p2 = GreedyPolicy;
            let a = ms.search(&q, config, &mut p1, 5);
            let b = sharded.search(&q, config, &mut p2, 5);
            assert_eq!(a, b, "sharded answer diverged for {q:?}");
        }
    }
}
