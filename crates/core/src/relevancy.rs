//! The two relevancy definitions and their live measurement via probing.

use mp_hidden::{HiddenWebDatabase, SearchResponse};
use mp_text::TermId;
use mp_workload::Query;
use serde::{Deserialize, Serialize};

/// Which notion of database relevancy is in force (paper Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RelevancyDef {
    /// Document-frequency-based: the number of documents matching *all*
    /// query keywords. Used by the paper's experiments.
    DocFrequency,
    /// Document-similarity-based: the tf-idf cosine similarity of the
    /// most relevant document.
    DocSimilarity,
}

impl RelevancyDef {
    /// Measures the **actual** relevancy `r(db, q)` by probing the
    /// database with the live query (paper Section 3.4). Costs one
    /// probe.
    ///
    /// Under [`RelevancyDef::DocFrequency`] the answer page's match
    /// count is the relevancy; under [`RelevancyDef::DocSimilarity`] the
    /// top `top_n` documents are downloaded and the best similarity is
    /// the relevancy.
    pub fn probe(&self, db: &dyn HiddenWebDatabase, query: &Query, top_n: usize) -> f64 {
        match self {
            RelevancyDef::DocFrequency => db.search(query.terms(), 0).match_count as f64,
            RelevancyDef::DocSimilarity => db.search(query.terms(), top_n.max(1)).top_similarity(),
        }
    }

    /// Batched [`Self::probe`]: measures the actual relevancy of
    /// several concurrent queries against one database through its
    /// batched search entry point. Costs one probe per query; each
    /// answer is identical to a per-query `probe` call.
    pub fn probe_batch(
        &self,
        db: &dyn HiddenWebDatabase,
        queries: &[&[TermId]],
        top_n: usize,
    ) -> Vec<f64> {
        match self {
            RelevancyDef::DocFrequency => db
                .search_batch(queries, 0)
                .iter()
                .map(|r| r.match_count as f64)
                .collect(),
            RelevancyDef::DocSimilarity => db
                .search_batch(queries, top_n.max(1))
                .iter()
                .map(SearchResponse::top_similarity)
                .collect(),
        }
    }
}

impl std::fmt::Display for RelevancyDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelevancyDef::DocFrequency => write!(f, "document-frequency"),
            RelevancyDef::DocSimilarity => write!(f, "document-similarity"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_hidden::SimulatedHiddenDb;
    use mp_index::{Document, IndexBuilder};
    use mp_text::TermId;

    fn db() -> SimulatedHiddenDb {
        let mut b = IndexBuilder::new();
        b.add(Document::from_terms([TermId(1), TermId(2)]));
        b.add(Document::from_terms([TermId(1)]));
        SimulatedHiddenDb::new("db", b.build())
    }

    #[test]
    fn doc_frequency_probe_counts_matches() {
        let db = db();
        let q = Query::new([TermId(1)]);
        assert_eq!(RelevancyDef::DocFrequency.probe(&db, &q, 0), 2.0);
        let q2 = Query::new([TermId(1), TermId(2)]);
        assert_eq!(RelevancyDef::DocFrequency.probe(&db, &q2, 0), 1.0);
        assert_eq!(db.probe_count(), 2);
    }

    #[test]
    fn doc_similarity_probe_scores_best_doc() {
        let db = db();
        let q = Query::new([TermId(1), TermId(2)]);
        let sim = RelevancyDef::DocSimilarity.probe(&db, &q, 5);
        assert!(sim > 0.9, "exact match should score near 1: {sim}");
        let none = RelevancyDef::DocSimilarity.probe(&db, &Query::new([TermId(9)]), 5);
        assert_eq!(none, 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(RelevancyDef::DocFrequency.to_string(), "document-frequency");
        assert_eq!(
            RelevancyDef::DocSimilarity.to_string(),
            "document-similarity"
        );
    }
}
