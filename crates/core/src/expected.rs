//! Exact expected correctness over relevancy distributions
//! (paper Section 5.1, Eqs. 5 and 6).
//!
//! Databases' RDs are independent discrete distributions. Under the
//! library's deterministic tie-break (equal relevancies rank the lower
//! index first — see DESIGN.md) the realized relevancies always induce a
//! *total* order, so "the top-k set" is well-defined in every outcome
//! and both expectations below are exact, not approximations:
//!
//! * **`E[Cor_p(DBk)]`** (Eq. 6) decomposes into per-database marginal
//!   top-k membership probabilities: database `i` is in the true top-k
//!   iff at most `k − 1` other databases beat it. With independent RDs
//!   the count of beating databases is Poisson-binomial — computed
//!   exactly by [`mp_stats::poisson_binomial::at_most`].
//! * **`E[Cor_a(DBk)]`** (Eq. 5) is the probability that *every*
//!   selected database beats *every* unselected one, i.e. that the
//!   selected set's minimum beats the complement's maximum. We partition
//!   on which complement database attains the maximum and at which of
//!   its support values — a finite, exact sum.
//!
//! A seeded Monte-Carlo estimator ([`monte_carlo_expected`]) serves as
//! an independent oracle in tests.

use crate::correctness::{golden_topk, CorrectnessMetric};
use mp_stats::float::{canonical, exact_zero};
use mp_stats::poisson_binomial::at_most;
use mp_stats::Discrete;
use rand::Rng;

/// The per-query probabilistic state: one RD per database, with probed
/// databases collapsed to impulses (paper Figure 10's two groups).
#[derive(Debug, Clone)]
pub struct RdState {
    rds: Vec<Discrete>,
    probed: Vec<bool>,
}

impl RdState {
    /// Builds the state from initial (unprobed) RDs.
    pub fn new(rds: Vec<Discrete>) -> Self {
        assert!(!rds.is_empty(), "need at least one database");
        let support = mp_obs::histogram!("rd.support_size", mp_obs::bounds::POW2);
        for rd in &rds {
            support.record(u64::try_from(rd.points().len()).unwrap_or(u64::MAX));
        }
        let probed = vec![false; rds.len()];
        Self { rds, probed }
    }

    /// Number of databases.
    pub fn len(&self) -> usize {
        self.rds.len()
    }

    /// Always false (constructor rejects empty input).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The current RDs.
    pub fn rds(&self) -> &[Discrete] {
        &self.rds
    }

    /// Whether database `i` has been probed.
    pub fn is_probed(&self, i: usize) -> bool {
        self.probed[i]
    }

    /// Indices of databases not yet probed.
    pub fn unprobed(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| !self.probed[i]).collect()
    }

    /// Number of probed databases.
    pub fn n_probed(&self) -> usize {
        self.probed.iter().filter(|&&p| p).count()
    }

    /// Records a probe outcome: database `i`'s RD becomes an impulse at
    /// the observed actual relevancy (paper Section 3.4, Figure 5(e)).
    ///
    /// Input policy (deliberately `Result`-free): every probe outcome in
    /// the library flows from a [`crate::relevancy::RelevancyDef`]
    /// measurement, which is finite and non-negative by construction, so
    /// a `Result` here would force error plumbing through `APro`, every
    /// probing policy, and the experiment harness for a state that
    /// cannot arise from correct callers. Instead:
    ///
    /// * **Negative values** are clamped to `0.0` — relevancy is a count
    ///   (documents matched / top-n sum), so a caller-fabricated
    ///   negative means "nothing matched", and clamping keeps every
    ///   downstream expectation a probability.
    /// * **NaN** is a programming error, not a data condition: it is
    ///   rejected by a debug assertion, and release builds degrade it to
    ///   the same `0.0` floor rather than silently poisoning every
    ///   subsequent `E[Cor]` comparison (NaN breaks the total rank
    ///   order).
    pub fn probe(&mut self, i: usize, actual: f64) {
        debug_assert!(
            !actual.is_nan(),
            "probe outcome for database {i} is NaN; relevancies are finite by construction"
        );
        // `canonical` folds a caller-supplied `-0.0` to `+0.0`:
        // `f64::max` leaves the sign of a zero result unspecified, and a
        // negative zero in an RD support would make the serialized state
        // and the rank order's `total_cmp` tie-breaking platform-dependent.
        let floored = if actual.is_nan() {
            0.0
        } else {
            canonical(actual.max(0.0))
        };
        self.rds[i] = Discrete::impulse(floored);
        self.probed[i] = true;
    }

    /// A copy of the state with database `i` hypothetically probed at
    /// `value` — the what-if primitive the greedy policy evaluates.
    pub fn with_hypothetical(&self, i: usize, value: f64) -> Self {
        let mut c = self.clone();
        c.probe(i, value);
        c
    }
}

/// P(database `j`'s relevancy beats the fixed outcome `(v, i)`) under
/// the library-wide rank order ([`crate::correctness::rank_order`]):
/// `j` beats `(v, i)` at value `u` iff `(j, u)` ranks ahead of `(v, i)`,
/// i.e. `u > v`, or `u = v` and `j < i`. Shared by the exact formulas
/// here and by the probing engine's leave-one-out patches, so every
/// consumer breaks ties identically to [`crate::correctness::golden_topk`].
pub(crate) fn prob_beats(rds: &[Discrete], j: usize, v: f64, i: usize) -> f64 {
    debug_assert_ne!(j, i);
    use std::cmp::Ordering;
    let d = &rds[j];
    // A tie at `v` counts as a win for `j` exactly when the rank order
    // places `(j, v)` ahead of `(i, v)`.
    if crate::correctness::rank_order(j, v, i, v) == Ordering::Less {
        (d.prob_gt(v) + d.prob_eq(v)).min(1.0)
    } else {
        d.prob_gt(v)
    }
}

/// Exact `P(database i ∈ true top-k)`.
///
/// Decomposition over `i`'s support: `i` is in the top-k at outcome `v`
/// iff at most `k − 1` of the other databases beat `(v, i)`; with
/// independent RDs the beat-count is Poisson-binomial.
pub fn marginal_topk_prob(rds: &[Discrete], i: usize, k: usize) -> f64 {
    assert!(i < rds.len(), "database index out of range");
    assert!(k >= 1 && k <= rds.len(), "k out of range");
    let mut total = 0.0;
    let mut beat_probs = Vec::with_capacity(rds.len() - 1);
    for &(v, p) in rds[i].points() {
        beat_probs.clear();
        for j in 0..rds.len() {
            if j != i {
                beat_probs.push(prob_beats(rds, j, v, i));
            }
        }
        total += p * at_most(&beat_probs, k - 1);
    }
    total.clamp(0.0, 1.0)
}

/// Exact expected partial correctness `E[Cor_p(set)]` (Eq. 6):
/// the mean of the member databases' marginal top-k probabilities, with
/// `k = set.len()`.
pub fn expected_partial(rds: &[Discrete], set: &[usize]) -> f64 {
    assert!(!set.is_empty(), "selection must be non-empty");
    let k = set.len();
    let sum: f64 = set.iter().map(|&i| marginal_topk_prob(rds, i, k)).sum();
    (sum / k as f64).clamp(0.0, 1.0)
}

/// Exact expected absolute correctness `E[Cor_a(set)]` (Eq. 5):
/// `P(set is exactly the true top-k)` = `P(min over set beats max over
/// complement)`.
///
/// Partition on the complement database `j` attaining the complement's
/// maximum and its value `v`: every other complement database must fail
/// to beat `(v, j)` and every selected database must beat `(v, j)`.
pub fn expected_absolute(rds: &[Discrete], set: &[usize]) -> f64 {
    assert!(!set.is_empty(), "selection must be non-empty");
    let in_set = {
        let mut m = vec![false; rds.len()];
        for &i in set {
            assert!(i < rds.len(), "database index out of range");
            assert!(!m[i], "duplicate database in selection");
            m[i] = true;
        }
        m
    };
    let complement: Vec<usize> = (0..rds.len()).filter(|&j| !in_set[j]).collect();
    if complement.is_empty() {
        return 1.0; // selecting everything is vacuously the top-n
    }
    let mut total = 0.0;
    for &j in &complement {
        for &(v, pj) in rds[j].points() {
            // P(j attains the complement max at value v):
            let mut p = pj;
            for &j2 in &complement {
                if j2 != j {
                    p *= 1.0 - prob_beats(rds, j2, v, j);
                }
                if exact_zero(p) {
                    break;
                }
            }
            if exact_zero(p) {
                continue;
            }
            // Every selected database must beat (v, j).
            for &i in set {
                p *= prob_beats(rds, i, v, j);
                if exact_zero(p) {
                    break;
                }
            }
            total += p;
        }
    }
    total.clamp(0.0, 1.0)
}

/// Expected correctness under either metric.
pub fn expected_correctness(rds: &[Discrete], set: &[usize], metric: CorrectnessMetric) -> f64 {
    match metric {
        CorrectnessMetric::Absolute => expected_absolute(rds, set),
        CorrectnessMetric::Partial => expected_partial(rds, set),
    }
}

/// Monte-Carlo estimate of the expected correctness — the independent
/// oracle the exact formulas are validated against. Samples each RD,
/// derives the realized top-k under the same tie-break, and scores the
/// candidate set.
pub fn monte_carlo_expected<R: Rng + ?Sized>(
    rds: &[Discrete],
    set: &[usize],
    metric: CorrectnessMetric,
    samples: usize,
    rng: &mut R,
) -> f64 {
    assert!(samples > 0);
    let k = set.len();
    let mut acc = 0.0;
    let mut realized = vec![0.0; rds.len()];
    for _ in 0..samples {
        for (i, rd) in rds.iter().enumerate() {
            realized[i] = rd.sample(rng);
        }
        let golden = golden_topk(&realized, k);
        acc += metric.score(set, &golden);
    }
    acc / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn d(pairs: &[(f64, f64)]) -> Discrete {
        Discrete::from_weighted(pairs).unwrap()
    }

    /// The paper's Example 4 RDs (Figure 5(d)), reconstructed from the
    /// Example 3 derivation: db1 ~ {50: .4, 100: .5, 150: .1},
    /// db2 ~ {65: .1, 130: .9}.
    fn paper_rds() -> Vec<Discrete> {
        vec![
            d(&[(50.0, 0.4), (100.0, 0.5), (150.0, 0.1)]),
            d(&[(65.0, 0.1), (130.0, 0.9)]),
        ]
    }

    #[test]
    fn paper_example4_db2_certainty() {
        // The paper concludes db2 is the most relevant with probability
        // 0.85: r2=130 beats r1 ∈ {50, 100} (.9 × .9 = .81) plus r2=65
        // beats r1 = 50 (.1 × .4 = .04).
        let rds = paper_rds();
        let e = expected_absolute(&rds, &[1]);
        assert!((e - 0.85).abs() < 1e-12, "E[Cor(db2)] = {e}");
        // And db1's certainty is the complement.
        let e1 = expected_absolute(&rds, &[0]);
        assert!((e1 - 0.15).abs() < 1e-12, "E[Cor(db1)] = {e1}");
    }

    #[test]
    fn paper_section34_post_probe_certainty() {
        // Figure 5(e): probing db1 yields relevancy 50; db2 is then
        // always more relevant, so the certainty of returning db2 is 1.
        let mut state = RdState::new(paper_rds());
        state.probe(0, 50.0);
        assert!(state.is_probed(0));
        assert_eq!(expected_absolute(state.rds(), &[1]), 1.0);
        assert_eq!(expected_absolute(state.rds(), &[0]), 0.0);
    }

    #[test]
    fn k1_absolute_equals_partial() {
        let rds = paper_rds();
        for i in 0..2 {
            let a = expected_absolute(&rds, &[i]);
            let p = expected_partial(&rds, &[i]);
            assert!((a - p).abs() < 1e-12, "db{i}: {a} vs {p}");
        }
    }

    #[test]
    fn marginals_sum_to_k() {
        // Σ_i P(i ∈ top-k) = k (exactly k databases are in the top-k in
        // every outcome).
        let rds = vec![
            d(&[(10.0, 0.5), (30.0, 0.5)]),
            d(&[(20.0, 1.0)]),
            d(&[(5.0, 0.3), (25.0, 0.7)]),
            d(&[(15.0, 0.2), (18.0, 0.8)]),
        ];
        for k in 1..=4usize {
            let sum: f64 = (0..4).map(|i| marginal_topk_prob(&rds, i, k)).sum();
            assert!((sum - k as f64).abs() < 1e-9, "k={k}: {sum}");
        }
    }

    #[test]
    fn tie_break_prefers_lower_index() {
        // Both databases always have relevancy 7; db0 wins the tie.
        let rds = vec![d(&[(7.0, 1.0)]), d(&[(7.0, 1.0)])];
        assert_eq!(expected_absolute(&rds, &[0]), 1.0);
        assert_eq!(expected_absolute(&rds, &[1]), 0.0);
        assert_eq!(marginal_topk_prob(&rds, 0, 1), 1.0);
        assert_eq!(marginal_topk_prob(&rds, 1, 1), 0.0);
    }

    #[test]
    fn all_probed_implies_certainty_one() {
        let mut state = RdState::new(vec![
            d(&[(1.0, 0.5), (9.0, 0.5)]),
            d(&[(4.0, 1.0)]),
            d(&[(2.0, 0.9), (6.0, 0.1)]),
        ]);
        state.probe(0, 9.0);
        state.probe(1, 4.0);
        state.probe(2, 6.0);
        // Realized order: db0 (9) > db2 (6) > db1 (4).
        assert_eq!(expected_absolute(state.rds(), &[0, 2]), 1.0);
        assert_eq!(expected_partial(state.rds(), &[0, 2]), 1.0);
        assert_eq!(expected_absolute(state.rds(), &[0, 1]), 0.0);
        assert!((expected_partial(state.rds(), &[0, 1]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn selecting_everything_is_certain() {
        let rds = paper_rds();
        assert_eq!(expected_absolute(&rds, &[0, 1]), 1.0);
        assert!((expected_partial(&rds, &[0, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probe_floors_negative_outcomes_at_zero() {
        // The documented clamp policy: a (caller-fabricated) negative
        // relevancy means "nothing matched" and lands at exactly 0.
        let mut state = RdState::new(paper_rds());
        state.probe(0, -3.5);
        assert!(state.rds()[0].is_impulse());
        assert_eq!(state.rds()[0].mean(), 0.0);
        // -0.0 normalizes to the same impulse — *bit-identically* (the
        // regression this pins: `f64::max` may preserve the sign of a
        // zero, which would leak into serialized RDs and tie-breaking).
        let mut state = RdState::new(paper_rds());
        state.probe(0, -0.0);
        assert_eq!(state.rds()[0].mean(), 0.0);
        assert_eq!(state.rds()[0].points()[0].0.to_bits(), 0.0f64.to_bits());
        let mut state = RdState::new(paper_rds());
        state.probe(1, 0.0);
        assert_eq!(state.rds()[1].mean(), 0.0);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "NaN"))]
    fn probe_rejects_nan_in_debug() {
        let mut state = RdState::new(paper_rds());
        state.probe(0, f64::NAN);
        // Release builds degrade NaN to the 0.0 floor instead.
        assert_eq!(state.rds()[0].mean(), 0.0);
    }

    #[test]
    fn hypothetical_probe_does_not_mutate() {
        let state = RdState::new(paper_rds());
        let hyp = state.with_hypothetical(0, 150.0);
        assert!(!state.is_probed(0));
        assert!(hyp.is_probed(0));
        assert_eq!(state.unprobed(), vec![0, 1]);
        assert_eq!(hyp.unprobed(), vec![1]);
        assert_eq!(hyp.n_probed(), 1);
    }

    #[test]
    fn exact_matches_monte_carlo_on_paper_example() {
        let rds = paper_rds();
        let mut rng = StdRng::seed_from_u64(42);
        let mc = monte_carlo_expected(&rds, &[1], CorrectnessMetric::Absolute, 200_000, &mut rng);
        assert!((mc - 0.85).abs() < 0.01, "mc={mc}");
    }

    /// Random small RD fixtures for property tests.
    fn arb_rds() -> impl Strategy<Value = Vec<Discrete>> {
        proptest::collection::vec(
            proptest::collection::vec((0.0f64..50.0, 0.05f64..1.0), 1..4),
            2..5,
        )
        .prop_map(|dbs| {
            dbs.into_iter()
                .map(|pts| Discrete::from_weighted(&pts).unwrap())
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn prop_exact_absolute_matches_monte_carlo(
            rds in arb_rds(),
            k_raw in 1usize..3,
            seed in 0u64..1000
        ) {
            let k = k_raw.min(rds.len());
            let set: Vec<usize> = (0..k).collect();
            let exact = expected_absolute(&rds, &set);
            let mut rng = StdRng::seed_from_u64(seed);
            let mc = monte_carlo_expected(&rds, &set, CorrectnessMetric::Absolute, 20_000, &mut rng);
            prop_assert!((exact - mc).abs() < 0.02, "exact={}, mc={}", exact, mc);
        }

        #[test]
        fn prop_exact_partial_matches_monte_carlo(
            rds in arb_rds(),
            k_raw in 1usize..3,
            seed in 0u64..1000
        ) {
            let k = k_raw.min(rds.len());
            let set: Vec<usize> = (rds.len() - k..rds.len()).collect();
            let exact = expected_partial(&rds, &set);
            let mut rng = StdRng::seed_from_u64(seed);
            let mc = monte_carlo_expected(&rds, &set, CorrectnessMetric::Partial, 20_000, &mut rng);
            prop_assert!((exact - mc).abs() < 0.02, "exact={}, mc={}", exact, mc);
        }

        #[test]
        fn prop_tie_break_exact_matches_monte_carlo(
            // Integer-valued supports on a 4-value grid, so cross-database
            // value ties occur in most sampled outcomes: this pins the
            // shared `rank_order` tie-break ("equal value → lower index
            // wins") used by both the exact formulas and `golden_topk`
            // inside the Monte-Carlo oracle.
            grids in proptest::collection::vec(
                proptest::collection::vec((0u8..4, 0.05f64..1.0), 1..4),
                2..5
            ),
            k_raw in 1usize..3,
            seed in 0u64..1000
        ) {
            let rds: Vec<Discrete> = grids
                .into_iter()
                .map(|pts| {
                    let pts: Vec<(f64, f64)> =
                        pts.into_iter().map(|(v, p)| (v as f64, p)).collect();
                    Discrete::from_weighted(&pts).unwrap()
                })
                .collect();
            let k = k_raw.min(rds.len());
            let set: Vec<usize> = (0..k).collect();
            let mut rng = StdRng::seed_from_u64(seed);
            for metric in [CorrectnessMetric::Absolute, CorrectnessMetric::Partial] {
                let exact = expected_correctness(&rds, &set, metric);
                let mc = monte_carlo_expected(&rds, &set, metric, 20_000, &mut rng);
                prop_assert!(
                    (exact - mc).abs() < 0.02,
                    "{:?}: exact={}, mc={}", metric, exact, mc
                );
            }
        }

        #[test]
        fn prop_absolute_at_most_partial(rds in arb_rds(), k_raw in 1usize..4) {
            // Being exactly right implies every member is right, so
            // E[Cor_a] <= E[Cor_p] always.
            let k = k_raw.min(rds.len());
            let set: Vec<usize> = (0..k).collect();
            let a = expected_absolute(&rds, &set);
            let p = expected_partial(&rds, &set);
            prop_assert!(a <= p + 1e-9, "a={} p={}", a, p);
        }

        #[test]
        fn prop_marginals_sum_to_k(rds in arb_rds(), k_raw in 1usize..5) {
            let k = k_raw.min(rds.len());
            let sum: f64 = (0..rds.len()).map(|i| marginal_topk_prob(&rds, i, k)).sum();
            prop_assert!((sum - k as f64).abs() < 1e-6, "sum={}", sum);
        }

        #[test]
        fn prop_probing_yields_impulse(rds in arb_rds(), value in 0.0f64..100.0) {
            let mut state = RdState::new(rds);
            state.probe(0, value);
            prop_assert!(state.rds()[0].is_impulse());
            prop_assert_eq!(state.rds()[0].mean(), value);
        }
    }
}
