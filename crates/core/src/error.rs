//! Estimation-error computation (paper Eq. 2).

use serde::{Deserialize, Serialize};

/// One observed estimation error on a sample query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorRecord {
    /// The estimated relevancy `r̂(db, q)` (pre-floor).
    pub estimate: f64,
    /// The actual relevancy `r(db, q)` learned by probing.
    pub actual: f64,
    /// The relative error per Eq. 2 (with the floored estimate).
    pub error: f64,
}

/// The paper's relative error (Eq. 2):
///
/// ```text
/// err(db, q) = ( r(db, q) − r̂(db, q) ) / r̂(db, q)
/// ```
///
/// with the denominator floored at `est_floor` so the error stays
/// defined when the estimator returns 0 (any query term missing from
/// the summary). −1 means the estimate was pure overestimation
/// (actual 0); large positive values mean correlated terms made the
/// actual relevancy blow past the estimate.
pub fn relative_error(actual: f64, estimate: f64, est_floor: f64) -> f64 {
    assert!(actual.is_finite() && estimate.is_finite());
    assert!(est_floor > 0.0, "est_floor must be positive");
    let denom = estimate.max(est_floor);
    (actual - denom) / denom
}

/// Builds an [`ErrorRecord`].
pub fn record(actual: f64, estimate: f64, est_floor: f64) -> ErrorRecord {
    ErrorRecord {
        estimate,
        actual,
        error: relative_error(actual, estimate, est_floor),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_figure3b_example() {
        // Figure 3(b): estimate 650, actual 1300 → +100% error.
        // (The paper's text derives (1300 − 650)/650 = 100%.)
        assert!((relative_error(1300.0, 650.0, 0.1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn underestimation_is_negative() {
        // Figure 3(a): actual 120, estimate 100 → +20%? No: uniform
        // *underestimation by 10%* means actual = est / 0.9; here test
        // the simple direction: actual below estimate → negative error.
        assert!(relative_error(50.0, 100.0, 0.1) < 0.0);
        assert!((relative_error(50.0, 100.0, 0.1) + 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_actual_gives_minus_one() {
        assert!((relative_error(0.0, 200.0, 0.1) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_estimate_uses_floor() {
        // est = 0, actual = 5, floor = 0.1 → (5 − 0.1)/0.1 = 49.
        assert!((relative_error(5.0, 0.0, 0.1) - 49.0).abs() < 1e-9);
        // est = 0, actual = 0 → −1? (0 − 0.1)/0.1 = −1.
        assert!((relative_error(0.0, 0.0, 0.1) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_estimate_is_zero_error() {
        assert_eq!(relative_error(42.0, 42.0, 0.1), 0.0);
    }

    proptest! {
        #[test]
        fn prop_error_at_least_minus_one_for_nonneg_actual(
            actual in 0.0f64..1e6,
            estimate in 0.0f64..1e6
        ) {
            prop_assert!(relative_error(actual, estimate, 0.1) >= -1.0);
        }

        #[test]
        fn prop_error_sign_matches_direction(
            actual in 0.0f64..1e6,
            estimate in 0.5f64..1e6
        ) {
            let e = relative_error(actual, estimate, 0.1);
            if actual > estimate {
                prop_assert!(e > 0.0);
            } else if actual < estimate {
                prop_assert!(e < 0.0);
            }
        }

        #[test]
        fn prop_roundtrip_recovers_actual(
            actual in 0.0f64..1e6,
            estimate in 0.5f64..1e6
        ) {
            // RD derivation inverts Eq. 2: actual = est · (1 + err).
            let e = relative_error(actual, estimate, 0.1);
            prop_assert!((estimate * (1.0 + e) - actual).abs() < 1e-6);
        }
    }
}
