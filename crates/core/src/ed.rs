//! Error distributions (EDs) and their training via database sampling
//! (paper Sections 3.1 and 4).

use crate::config::CoreConfig;
use crate::error::relative_error;
use crate::estimator::RelevancyEstimator;
use crate::query_type::QueryType;
use crate::relevancy::RelevancyDef;
use mp_hidden::Mediator;
use mp_stats::{Discrete, Histogram};
use mp_workload::Query;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An error distribution: the histogram of relative estimation errors a
/// given estimator exhibits on one database for one query type
/// (paper Figure 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorDistribution {
    hist: Histogram,
}

impl ErrorDistribution {
    /// An empty ED over the config's bins.
    pub fn new(config: &CoreConfig) -> Self {
        let ed = Self {
            hist: Histogram::new(config.ed_bins()),
        };
        debug_assert!(ed.samples() == 0, "a fresh ED must start with zero samples");
        ed
    }

    /// Records one observed error.
    pub fn add(&mut self, error: f64) {
        self.hist.add(error);
    }

    /// Number of sample queries behind this ED.
    pub fn samples(&self) -> u64 {
        self.hist.total()
    }

    /// The underlying histogram (for χ² goodness testing).
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// The ED as a discrete distribution over representative error
    /// values; `None` when no samples were recorded.
    pub fn to_discrete(&self) -> Option<Discrete> {
        self.hist.to_discrete().ok().inspect(|d| {
            d.debug_assert_normalized();
            // Occupied-bucket count: how concentrated this ED is.
            mp_obs::histogram!("ed.bucket_occupancy", mp_obs::bounds::POW2)
                .record(u64::try_from(d.points().len()).unwrap_or(u64::MAX));
        })
    }

    /// Merges another ED over the same bins.
    pub fn merge(&mut self, other: &ErrorDistribution) {
        self.hist.merge(&other.hist);
    }
}

/// The learned library of EDs: one per `(database, query type)` leaf.
///
/// Built offline from a training trace (the paper draws its sample
/// queries "randomly chosen from previous query traces", Example 2) and
/// consulted at query time to turn a point estimate into an RD.
///
/// `PartialEq` is exact (bin edges and counts compare bit-for-bit) —
/// persistence round-trip tests rely on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdLibrary {
    /// `per_db[i]` maps query types to their ED on database `i`.
    /// Maps serialize as sorted `[key, value]` pair arrays (JSON object
    /// keys must be strings, and [`QueryType`] is a struct), so the
    /// output is deterministic without an adapter.
    per_db: Vec<HashMap<QueryType, ErrorDistribution>>,
    config: CoreConfig,
}

impl EdLibrary {
    /// An empty library for `n_databases` databases.
    pub fn empty(n_databases: usize, config: CoreConfig) -> Self {
        Self {
            per_db: vec![HashMap::new(); n_databases],
            config,
        }
    }

    /// Trains EDs by sampling every mediated database with every
    /// training query (paper Section 4): estimate, probe for the actual
    /// relevancy, record the Eq. 2 error under the query's type.
    ///
    /// Probing here is *offline training cost*, not query-time probing;
    /// callers usually `mediator.reset_probes()` afterwards.
    pub fn train(
        mediator: &Mediator,
        estimator: &dyn RelevancyEstimator,
        def: RelevancyDef,
        queries: &[Query],
        config: &CoreConfig,
    ) -> Self {
        let mut lib = Self::empty(mediator.len(), config.clone());
        for q in queries {
            for i in 0..mediator.len() {
                let est = estimator.estimate(mediator.summary(i), q);
                let actual = def.probe(mediator.db(i), q, config.probe_top_n);
                lib.record(i, q.len(), est, actual);
            }
        }
        lib
    }

    /// Records a single observation for database `i`.
    pub fn record(&mut self, db: usize, n_terms: usize, estimate: f64, actual: f64) {
        let qt = QueryType::classify(n_terms, estimate, &self.config.coverage_thresholds);
        let err = relative_error(actual, estimate, self.config.est_floor);
        self.per_db[db]
            .entry(qt)
            .or_insert_with(|| ErrorDistribution::new(&self.config))
            .add(err);
    }

    /// The configuration the library was trained under.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Number of databases covered.
    pub fn n_databases(&self) -> usize {
        self.per_db.len()
    }

    /// The ED for `(db, query type)` if trained.
    pub fn ed(&self, db: usize, qt: QueryType) -> Option<&ErrorDistribution> {
        self.per_db[db].get(&qt).filter(|ed| ed.samples() > 0)
    }

    /// The ED to *use* for a query of type `qt` on `db`: the exact leaf
    /// when trained, else the first trained fallback
    /// ([`QueryType::fallbacks`]), else `None` (caller degrades to an
    /// impulse RD at the estimate).
    pub fn ed_or_fallback(&self, db: usize, qt: QueryType) -> Option<&ErrorDistribution> {
        if let Some(ed) = self.ed(db, qt) {
            return Some(ed);
        }
        qt.fallbacks(self.config.coverage_thresholds.len())
            .into_iter()
            .find_map(|fb| self.ed(db, fb))
    }

    /// Classifies a query for database `db` given its estimate there.
    pub fn classify(&self, n_terms: usize, estimate: f64) -> QueryType {
        QueryType::classify(n_terms, estimate, &self.config.coverage_thresholds)
    }

    /// The library restricted to `databases` (global indices), in the
    /// given order. A shard of a partitioned fleet consults exactly the
    /// slice of the global library its members own: because training
    /// records each observation under one database only, slicing a
    /// flat-trained library and training the shard in isolation produce
    /// bit-identical EDs (pinned by the shard-layer tests).
    pub fn subset(&self, databases: &[usize]) -> Self {
        Self {
            per_db: databases.iter().map(|&i| self.per_db[i].clone()).collect(),
            config: self.config.clone(),
        }
    }

    /// Per-type sample counts for one database (diagnostics / reports).
    pub fn sample_counts(&self, db: usize) -> Vec<(QueryType, u64)> {
        let mut v: Vec<(QueryType, u64)> = self.per_db[db]
            .iter()
            .map(|(&qt, ed)| (qt, ed.samples()))
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_type::ArityBucket;

    fn config() -> CoreConfig {
        CoreConfig::default()
    }

    #[test]
    fn ed_accumulates_and_discretizes() {
        let mut ed = ErrorDistribution::new(&config());
        for _ in 0..4 {
            ed.add(-0.5);
        }
        for _ in 0..5 {
            ed.add(0.0);
        }
        ed.add(0.5);
        assert_eq!(ed.samples(), 10);
        let d = ed.to_discrete().unwrap();
        // Paper Figure 4 shape: 0.4 / 0.5 / 0.1.
        assert!((d.prob_eq(-0.5) - 0.4).abs() < 1e-12);
        assert!((d.prob_eq(0.0) - 0.5).abs() < 1e-12);
        assert!((d.prob_eq(0.5) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_ed_has_no_discrete() {
        let ed = ErrorDistribution::new(&config());
        assert!(ed.to_discrete().is_none());
        assert_eq!(ed.samples(), 0);
    }

    #[test]
    fn library_records_by_type() {
        let mut lib = EdLibrary::empty(2, config());
        lib.record(0, 2, 50.0, 100.0); // 2-term, low coverage
        lib.record(0, 2, 500.0, 250.0); // 2-term, high coverage
        lib.record(1, 3, 10.0, 0.0); // 3-term, low coverage (db 1)

        let low2 = QueryType {
            arity: ArityBucket::Two,
            coverage: 0,
        };
        let high2 = QueryType {
            arity: ArityBucket::Two,
            coverage: 1,
        };
        let low3 = QueryType {
            arity: ArityBucket::ThreeUp,
            coverage: 0,
        };

        assert_eq!(lib.ed(0, low2).unwrap().samples(), 1);
        assert_eq!(lib.ed(0, high2).unwrap().samples(), 1);
        assert!(lib.ed(0, low3).is_none());
        assert_eq!(lib.ed(1, low3).unwrap().samples(), 1);
        assert!(lib.ed(1, low2).is_none());
    }

    #[test]
    fn fallback_chain_finds_sibling() {
        let mut lib = EdLibrary::empty(1, config());
        lib.record(0, 2, 500.0, 250.0); // only the high-coverage leaf trained
        let low2 = QueryType {
            arity: ArityBucket::Two,
            coverage: 0,
        };
        assert!(lib.ed(0, low2).is_none());
        assert!(lib.ed_or_fallback(0, low2).is_some());
    }

    #[test]
    fn no_training_no_fallback() {
        let lib = EdLibrary::empty(1, config());
        let qt = QueryType {
            arity: ArityBucket::Two,
            coverage: 0,
        };
        assert!(lib.ed_or_fallback(0, qt).is_none());
    }

    #[test]
    fn subset_reindexes_and_preserves_leaves() {
        let mut lib = EdLibrary::empty(3, config());
        lib.record(0, 2, 50.0, 100.0);
        lib.record(2, 3, 10.0, 0.0);
        let sub = lib.subset(&[2, 0]);
        assert_eq!(sub.n_databases(), 2);
        let low3 = QueryType {
            arity: ArityBucket::ThreeUp,
            coverage: 0,
        };
        let low2 = QueryType {
            arity: ArityBucket::Two,
            coverage: 0,
        };
        // Global db 2 is now local 0, global 0 is local 1; the EDs
        // compare bit-for-bit against the originals.
        assert_eq!(sub.ed(0, low3), lib.ed(2, low3));
        assert_eq!(sub.ed(1, low2), lib.ed(0, low2));
        assert!(sub.ed(0, low2).is_none());
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = ErrorDistribution::new(&config());
        a.add(0.0);
        let mut b = ErrorDistribution::new(&config());
        b.add(1.5);
        b.add(1.5);
        a.merge(&b);
        assert_eq!(a.samples(), 3);
    }
}
