//! Central configuration for the probabilistic metasearching machinery.

use mp_stats::BinSpec;
use serde::{Deserialize, Serialize};

/// Floor applied to estimates before dividing in Eq. 2 and before
/// deriving RDs: the independence estimator yields 0 whenever any query
/// term is absent from a summary, and the paper's relative error is
/// undefined there. See `DESIGN.md` ("r̂ = 0 handling").
pub const EST_FLOOR: f64 = 0.1;

/// All knobs of the probabilistic relevancy model in one place.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// The query-type coverage threshold ladder on the estimated
    /// relevancy, ascending (paper Section 4.1 uses the single
    /// threshold θ = 100: queries with `r̂ < 100` behave differently
    /// from queries with `r̂ ≥ 100`; a ladder of several thresholds
    /// generalizes the tree — see [`crate::query_type`]).
    pub coverage_thresholds: Vec<f64>,
    /// Interior bin edges for error distributions, in relative-error
    /// units (−1 = −100%). Ten bins by default, matching the paper's
    /// χ² setup (10 bins, 9 degrees of freedom).
    pub ed_edges: Vec<f64>,
    /// Estimate floor for Eq. 2 (see [`EST_FLOOR`]).
    pub est_floor: f64,
    /// How many top documents a probe downloads when measuring
    /// similarity-based relevancy.
    pub probe_top_n: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            coverage_thresholds: vec![100.0],
            // Ten bins matching the paper's χ² setup: fine around zero
            // error, geometric on the unbounded underestimation side
            // (errors are bounded below by −100% but unbounded above).
            // (−∞,−0.6), [−0.6,−0.2), [−0.2,0.2), [0.2,0.7), [0.7,1.5),
            // [1.5,3), [3,6), [6,12), [12,30), [30,∞).
            ed_edges: vec![-0.6, -0.2, 0.2, 0.7, 1.5, 3.0, 6.0, 12.0, 30.0],
            est_floor: EST_FLOOR,
            probe_top_n: 10,
        }
    }
}

impl CoreConfig {
    /// The [`BinSpec`] for error-distribution histograms.
    pub fn ed_bins(&self) -> BinSpec {
        BinSpec::new(self.ed_edges.clone())
    }

    /// A config with a single coverage threshold (ablation A2; the
    /// paper's published tree shape).
    pub fn with_threshold(mut self, theta: f64) -> Self {
        self.coverage_thresholds = vec![theta];
        self
    }

    /// A config with a full threshold ladder (ascending).
    pub fn with_thresholds(mut self, thetas: Vec<f64>) -> Self {
        assert!(!thetas.is_empty(), "need at least one threshold");
        assert!(
            thetas.windows(2).all(|w| w[0] < w[1]),
            "thresholds must ascend"
        );
        self.coverage_thresholds = thetas;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_ten_bins() {
        let c = CoreConfig::default();
        assert_eq!(c.ed_bins().bin_count(), 10);
        assert_eq!(c.coverage_thresholds, vec![100.0]);
    }

    #[test]
    fn with_threshold_overrides() {
        let c = CoreConfig::default().with_threshold(50.0);
        assert_eq!(c.coverage_thresholds, vec![50.0]);
        let c = CoreConfig::default().with_thresholds(vec![1.0, 10.0]);
        assert_eq!(c.coverage_thresholds.len(), 2);
    }
}
