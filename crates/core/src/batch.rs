//! Lock-step batched metasearch: many adaptive-probing sessions advance
//! in rounds, and probes that land on the same database in one round
//! are issued through the database's batched search entry point
//! ([`mp_hidden::HiddenWebDatabase::search_batch`]) — one postings
//! traversal per shared list in `mp-index`'s batched kernel. The final
//! result dispatch is grouped the same way.
//!
//! **Exactness.** Each session's probe sequence is a pure function of
//! its own RD state, policy, and the probe answers it receives, and
//! `search_batch` answers each query exactly as `search` would answer
//! it alone — so interleaving sessions cannot change any session's
//! `(database, actual)` sequence. Every request's outcome, probe trace,
//! fused hits, and probe accounting are bit-identical to running
//! [`crate::Metasearcher::search_with_rds`] per request in isolation
//! (`tests/batch_equivalence.rs` pins this on flat and sharded
//! backends). Grouping is fully deterministic: demands are dispatched
//! in ascending `(database, request)` order, never hash order.
//!
//! Databases whose answers depend on *global* probe order (failure
//! injection keyed off shared counters) see a different interleaving
//! than sequential per-request execution would produce; batched
//! serving, like concurrent serving, is only transparent over
//! databases whose answers are functions of `(database, query)`.

use crate::expected::RdState;
use crate::fusion::fuse;
use crate::metasearcher::MetasearchResult;
use crate::probing::{AproConfig, AproOutcome, AproSession, ProbePolicy};
use crate::relevancy::RelevancyDef;
use mp_hidden::{HiddenWebDatabase, SearchResponse};
use mp_stats::Discrete;
use mp_text::TermId;
use mp_workload::Query;

/// One request in a batched metasearch — the per-request inputs of
/// [`crate::Metasearcher::search_with_rds`].
pub struct BatchQuery<'a> {
    /// The analyzed query.
    pub query: &'a Query,
    /// Its relevancy distributions (what `rds(query)` returns).
    pub rds: Vec<Discrete>,
    /// Per-request `APro` parameters.
    pub config: AproConfig,
    /// A fresh probe-policy instance for this request.
    pub policy: Box<dyn ProbePolicy>,
}

/// Runs the lock-step executor over `items`. `db_at` routes a global
/// database index to its handle (flat mediator or sharded plan).
pub(crate) fn search_batch_impl<'e>(
    db_at: &dyn Fn(usize) -> &'e (dyn HiddenWebDatabase + 'e),
    def: RelevancyDef,
    probe_top_n: usize,
    fuse_limit: usize,
    items: Vec<BatchQuery<'_>>,
) -> Vec<MetasearchResult> {
    let _span = mp_obs::span!("apro.batch");
    mp_obs::counter!("core.batch_searches").incr();
    mp_obs::counter!("core.batched_requests").add(u64::try_from(items.len()).unwrap_or(0));
    let mut states: Vec<RdState> = Vec::with_capacity(items.len());
    let mut policies: Vec<Box<dyn ProbePolicy>> = Vec::with_capacity(items.len());
    let mut queries: Vec<&Query> = Vec::with_capacity(items.len());
    let mut configs: Vec<AproConfig> = Vec::with_capacity(items.len());
    for it in items {
        states.push(RdState::new(it.rds));
        policies.push(it.policy);
        queries.push(it.query);
        configs.push(it.config);
    }
    let mut sessions: Vec<AproSession<'_>> = states
        .iter_mut()
        .zip(policies.iter_mut())
        .zip(configs.iter())
        .map(|((state, policy), &config)| AproSession::begin(state, policy.as_mut(), config))
        .collect();

    // Probe rounds: collect one demand per live session, group demands
    // by database, and answer each database's group in one batched
    // search (a lone demand keeps the plain per-query probe).
    loop {
        let mut demands: Vec<(usize, usize)> = Vec::new(); // (db, request)
        for (i, session) in sessions.iter_mut().enumerate() {
            if let Some(db) = session.next_probe() {
                demands.push((db, i));
            }
        }
        if demands.is_empty() {
            break;
        }
        demands.sort_unstable();
        let mut s = 0;
        while s < demands.len() {
            let db = demands[s].0;
            let mut e = s;
            while e < demands.len() && demands[e].0 == db {
                e += 1;
            }
            if e - s == 1 {
                let i = demands[s].1;
                let actual = def.probe(db_at(db), queries[i], probe_top_n);
                sessions[i].apply(db, actual);
            } else {
                let shared: Vec<&[TermId]> = demands[s..e]
                    .iter()
                    .map(|&(_, i)| queries[i].terms())
                    .collect();
                let actuals = def.probe_batch(db_at(db), &shared, probe_top_n);
                for (&(_, i), actual) in demands[s..e].iter().zip(actuals) {
                    sessions[i].apply(db, actual);
                }
            }
            s = e;
        }
    }
    let outcomes: Vec<AproOutcome> = sessions.into_iter().map(AproSession::finish).collect();

    // Final dispatch: the selected databases answer the full queries.
    // Again grouped per database so several requests selecting the same
    // database share one batched search.
    let top_n = probe_top_n.max(fuse_limit);
    let mut dispatch: Vec<(usize, usize, usize)> = Vec::new(); // (db, request, position)
    for (i, out) in outcomes.iter().enumerate() {
        for (pos, &db) in out.selected.iter().enumerate() {
            dispatch.push((db, i, pos));
        }
    }
    dispatch.sort_unstable();
    let mut responses: Vec<Vec<Option<(usize, SearchResponse)>>> = outcomes
        .iter()
        .map(|o| vec![None; o.selected.len()])
        .collect();
    let mut s = 0;
    while s < dispatch.len() {
        let db = dispatch[s].0;
        let mut e = s;
        while e < dispatch.len() && dispatch[e].0 == db {
            e += 1;
        }
        if e - s == 1 {
            let (_, i, pos) = dispatch[s];
            responses[i][pos] = Some((db, db_at(db).search(queries[i].terms(), top_n)));
        } else {
            let shared: Vec<&[TermId]> = dispatch[s..e]
                .iter()
                .map(|&(_, i, _)| queries[i].terms())
                .collect();
            let answers = db_at(db).search_batch(&shared, top_n);
            for (&(_, i, pos), answer) in dispatch[s..e].iter().zip(answers) {
                responses[i][pos] = Some((db, answer));
            }
        }
        s = e;
    }
    outcomes
        .into_iter()
        .zip(responses)
        .map(|(outcome, resp)| {
            let resp: Vec<(usize, SearchResponse)> = resp
                .into_iter()
                .map(|r| r.expect("every selected database was dispatched"))
                .collect();
            let hits = fuse(&resp, fuse_limit);
            MetasearchResult {
                probes_used: outcome.n_probes(),
                outcome,
                hits,
            }
        })
        .collect()
}
