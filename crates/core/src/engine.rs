//! The incremental greedy-probing evaluation engine.
//!
//! `GreedyPolicy::select_db` must score every unprobed candidate `h` by
//! its expected usefulness — the expectation over `h`'s RD of the
//! post-probe best-set score. The naive evaluation re-derives every
//! database's marginal top-k probability from scratch for every
//! `(candidate, outcome)` pair: `O(n³ · s̄² · k)` per selection step
//! (`n` databases, `s̄` mean RD support size).
//!
//! The engine exploits the structure of a hypothetical probe: impulsing
//! database `h` at outcome `w` changes exactly **one** Bernoulli trial in
//! every other database's "how many rivals beat me" Poisson-binomial —
//! `h`'s beat-probability becomes 0 or 1. So per base state we build,
//! once, an [`IncrementalPoissonBinomial`] over the beat-probabilities of
//! each `(database, support point)` pair; per candidate we *remove* `h`'s
//! trial (stable `O(n)` deconvolution, [`IncrementalPoissonBinomial::excluding_into`]),
//! and per outcome the patched membership probability is then a single
//! precomputed prefix-CDF read:
//!
//! ```text
//! P(i in top-k | r_h = w) = P(≤ k−1 beat)            if h loses to (v, i)
//!                         = P(≤ k−2 beat)            if h beats (v, i)
//! ```
//!
//! Total: `O(n³ · s̄)` per selection step — a factor `s̄ · k` less work —
//! and the per-candidate scan additionally fans out across cores via
//! [`crate::par::par_map_indexed`].
//!
//! The fast path is exact for the **partial** metric at any `k` and the
//! **absolute** metric at `k = 1` (where the quick score is the marginal
//! max). For absolute `k > 1` the quick score is a genuine `E[Cor_a]` of
//! the marginal-ranked set, which does not decompose per database; those
//! calls keep the reference evaluation, still parallelized per candidate.

use crate::correctness::{rank_order, CorrectnessMetric};
use crate::expected::{prob_beats, RdState};
use crate::par::par_map_indexed;
use crate::selection::best_set_score_quick;
use mp_stats::poisson_binomial::{at_most, IncrementalPoissonBinomial};
use mp_stats::Discrete;
use std::cmp::Ordering;

/// One support point of one database, with the Poisson-binomial over the
/// base-state beat-probabilities of all rivals (trials ordered by rival
/// index, skipping the owner).
struct PointDp {
    /// The support value.
    v: f64,
    /// Its probability mass.
    p: f64,
    /// Beat-count distribution of the `n − 1` rivals.
    ipb: IncrementalPoissonBinomial,
}

/// Per-state precomputation shared (read-only) by every candidate scan.
struct BaseDp {
    /// `points[i]` — the DP for each support point of database `i`.
    points: Vec<Vec<PointDp>>,
}

impl BaseDp {
    fn build(rds: &[Discrete]) -> Self {
        let n = rds.len();
        let points = rds
            .iter()
            .enumerate()
            .map(|(i, rd)| {
                rd.points()
                    .iter()
                    .map(|&(v, p)| {
                        let mut beat = Vec::with_capacity(n - 1);
                        for j in 0..n {
                            if j != i {
                                beat.push(prob_beats(rds, j, v, i));
                            }
                        }
                        PointDp {
                            v,
                            p,
                            ipb: IncrementalPoissonBinomial::from_probs(&beat),
                        }
                    })
                    .collect()
            })
            .collect();
        Self { points }
    }
}

/// Whether the incremental fast path computes the exact quick score for
/// this `(k, metric)` combination.
fn fast_path_applies(k: usize, metric: CorrectnessMetric) -> bool {
    metric == CorrectnessMetric::Partial || k == 1
}

/// The usefulness of every unprobed candidate, in ascending index order —
/// the whole per-candidate scan of one `select_db` step, fanned across
/// cores. Values match [`crate::probing::GreedyPolicy::usefulness`]
/// within floating-point reassociation noise (≪ 1e-12 at testbed sizes).
pub fn usefulness_all(state: &RdState, k: usize, metric: CorrectnessMetric) -> Vec<(usize, f64)> {
    let _span = mp_obs::span!("engine.usefulness_all");
    let candidates = state.unprobed();
    if candidates.is_empty() {
        return Vec::new();
    }
    mp_obs::histogram!("engine.candidates", mp_obs::bounds::POW2)
        .record(u64::try_from(candidates.len()).unwrap_or(u64::MAX));
    if !fast_path_applies(k, metric) {
        // Reference evaluation per candidate (absolute, k > 1), still
        // parallel across candidates.
        let _ref_span = mp_obs::span!("engine.reference");
        mp_obs::counter!("engine.reference_fallbacks").incr();
        return par_map_indexed(candidates.len(), 2, |c| {
            let h = candidates[c];
            (h, naive_usefulness(state, h, k, metric))
        });
    }
    let base = {
        let _dp_span = mp_obs::span!("engine.base_dp");
        BaseDp::build(state.rds())
    };
    let _scan_span = mp_obs::span!("engine.scan");
    par_map_indexed(candidates.len(), 2, |c| {
        let h = candidates[c];
        (h, fast_usefulness(state.rds(), &base, h, k, metric))
    })
}

/// The reference usefulness evaluation: one cloned state, re-probed in
/// place per outcome (identical to `GreedyPolicy::usefulness`).
pub(crate) fn naive_usefulness(
    state: &RdState,
    i: usize,
    k: usize,
    metric: CorrectnessMetric,
) -> f64 {
    let mut hyp = state.clone();
    let mut total = 0.0;
    for &(v, p) in state.rds()[i].points() {
        hyp.probe(i, v);
        total += p * best_set_score_quick(hyp.rds(), k, metric);
    }
    total
}

/// Incremental usefulness of probing `h`: every rival's marginal under
/// every outcome of `h` via leave-one-out prefix-CDF patches.
fn fast_usefulness(
    rds: &[Discrete],
    base: &BaseDp,
    h: usize,
    k: usize,
    metric: CorrectnessMetric,
) -> f64 {
    let n = rds.len();
    let outcomes = rds[h].points();
    // m[w_idx][i] = P(i in top-k | r_h = outcome w).
    let mut m = vec![vec![0.0f64; n]; outcomes.len()];
    let mut buf: Vec<f64> = Vec::with_capacity(n);
    for (i, pds) in base.points.iter().enumerate() {
        if i == h {
            continue;
        }
        // `h`'s trial slot inside `i`'s rival ordering.
        let t = if h < i { h } else { h - 1 };
        for pd in pds {
            pd.ipb.excluding_into(t, &mut buf);
            // P(at most k−1 / k−2 of the *other* rivals beat (v, i)).
            let lim1 = (k - 1).min(buf.len() - 1);
            let cl1 = buf[..=lim1].iter().sum::<f64>().min(1.0);
            let cl2 = if k >= 2 {
                let lim2 = (k - 2).min(buf.len() - 1);
                buf[..=lim2].iter().sum::<f64>().min(1.0)
            } else {
                0.0
            };
            for (w_idx, &(w, _)) in outcomes.iter().enumerate() {
                // Mirror `RdState::probe`'s clamp of the impulse value.
                let w_eff = w.max(0.0);
                let h_beats = rank_order(h, w_eff, i, pd.v) == Ordering::Less;
                m[w_idx][i] += pd.p * if h_beats { cl2 } else { cl1 };
            }
        }
    }
    // `h`'s own marginal per outcome: an impulse at the outcome value,
    // beaten or not by each unchanged rival RD.
    let mut beat = Vec::with_capacity(n - 1);
    for (w_idx, &(w, _)) in outcomes.iter().enumerate() {
        let w_eff = w.max(0.0);
        beat.clear();
        for j in 0..n {
            if j != h {
                beat.push(prob_beats(rds, j, w_eff, h));
            }
        }
        m[w_idx][h] = at_most(&beat, k - 1);
    }
    // Reduce: expected best-set quick score over `h`'s outcomes.
    let mut total = 0.0;
    let mut ranked: Vec<f64> = Vec::with_capacity(n);
    for (w_idx, &(_, pw)) in outcomes.iter().enumerate() {
        let marg = &mut m[w_idx];
        for x in marg.iter_mut() {
            *x = x.clamp(0.0, 1.0);
        }
        let score = match metric {
            CorrectnessMetric::Absolute => {
                debug_assert_eq!(k, 1);
                marg.iter().copied().fold(0.0, f64::max)
            }
            CorrectnessMetric::Partial => {
                ranked.clear();
                ranked.extend_from_slice(marg);
                ranked.sort_by(|a, b| b.partial_cmp(a).expect("marginals are finite"));
                ranked[..k].iter().sum::<f64>() / k as f64
            }
        };
        total += pw * score;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probing::GreedyPolicy;
    use proptest::prelude::*;

    fn d(pairs: &[(f64, f64)]) -> Discrete {
        Discrete::from_weighted(pairs).unwrap()
    }

    fn paper_state() -> RdState {
        RdState::new(vec![
            d(&[(50.0, 0.4), (100.0, 0.5), (150.0, 0.1)]),
            d(&[(65.0, 0.1), (130.0, 0.9)]),
        ])
    }

    #[test]
    fn matches_paper_example6_exactly() {
        let state = paper_state();
        let all = usefulness_all(&state, 1, CorrectnessMetric::Absolute);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, 0);
        assert_eq!(all[1].0, 1);
        assert!((all[0].1 - 0.95).abs() < 1e-12, "u1={}", all[0].1);
        assert!((all[1].1 - 0.87).abs() < 1e-12, "u2={}", all[1].1);
    }

    #[test]
    fn skips_probed_candidates() {
        let mut state = paper_state();
        state.probe(0, 100.0);
        let all = usefulness_all(&state, 1, CorrectnessMetric::Absolute);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, 1);
        let mut both = paper_state();
        both.probe(0, 100.0);
        both.probe(1, 130.0);
        assert!(usefulness_all(&both, 1, CorrectnessMetric::Absolute).is_empty());
    }

    fn arb_state() -> impl Strategy<Value = RdState> {
        proptest::collection::vec(
            proptest::collection::vec((0.0f64..50.0, 0.05f64..1.0), 1..4),
            2..6,
        )
        .prop_map(|dbs| {
            RdState::new(
                dbs.into_iter()
                    .map(|pts| Discrete::from_weighted(&pts).unwrap())
                    .collect(),
            )
        })
    }

    /// Integer-valued supports so value ties across databases are
    /// common — the case where the patched tie-break must agree with
    /// the reference evaluation exactly.
    fn arb_tied_state() -> impl Strategy<Value = RdState> {
        proptest::collection::vec(
            proptest::collection::vec((0u8..4, 0.05f64..1.0), 1..4),
            2..5,
        )
        .prop_map(|dbs| {
            RdState::new(
                dbs.into_iter()
                    .map(|pts| {
                        let pts: Vec<(f64, f64)> =
                            pts.into_iter().map(|(v, p)| (v as f64, p)).collect();
                        Discrete::from_weighted(&pts).unwrap()
                    })
                    .collect(),
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_engine_matches_reference(state in arb_state(), k_raw in 1usize..4) {
            let k = k_raw.min(state.len());
            for metric in [CorrectnessMetric::Absolute, CorrectnessMetric::Partial] {
                for (h, fast) in usefulness_all(&state, k, metric) {
                    let slow = GreedyPolicy::usefulness(&state, h, k, metric);
                    prop_assert!(
                        (fast - slow).abs() < 1e-12,
                        "{:?} k={} h={}: engine {} vs reference {}",
                        metric, k, h, fast, slow
                    );
                }
            }
        }

        #[test]
        fn prop_engine_matches_reference_under_ties(
            state in arb_tied_state(),
            k_raw in 1usize..3
        ) {
            let k = k_raw.min(state.len());
            for metric in [CorrectnessMetric::Absolute, CorrectnessMetric::Partial] {
                for (h, fast) in usefulness_all(&state, k, metric) {
                    let slow = GreedyPolicy::usefulness(&state, h, k, metric);
                    prop_assert!(
                        (fast - slow).abs() < 1e-12,
                        "{:?} k={} h={}: engine {} vs reference {}",
                        metric, k, h, fast, slow
                    );
                }
            }
        }
    }
}
