//! The metasearcher facade: train once, then answer queries with
//! certainty-controlled database selection and result fusion.
//!
//! Query-time selection ([`Metasearcher::select_rd`],
//! [`Metasearcher::select_adaptive`], [`Metasearcher::search`]) runs on
//! the parallel incremental evaluation engine ([`crate::engine`],
//! [`crate::par`]); the facade adds no threading of its own, so results
//! are identical with or without the `parallel` feature.

use crate::config::CoreConfig;
use crate::correctness::CorrectnessMetric;
use crate::ed::EdLibrary;
use crate::estimator::RelevancyEstimator;
use crate::expected::RdState;
use crate::fusion::{fuse, FusedHit};
use crate::probing::{apro, AproConfig, AproOutcome, ProbePolicy};
use crate::rd::derive_all_rds;
use crate::relevancy::RelevancyDef;
use crate::selection::{baseline_select, best_set};
use mp_hidden::Mediator;
use mp_stats::Discrete;
use mp_workload::Query;

/// The end-to-end result of one metasearch.
///
/// `PartialEq` compares every field exactly (probe traces, fused
/// scores, certainties bit-for-bit) — the serving layer's equivalence
/// tests use it to prove concurrent serving returns value-identical
/// results to sequential search.
#[derive(Debug, Clone, PartialEq)]
pub struct MetasearchResult {
    /// The probing/selection trace.
    pub outcome: AproOutcome,
    /// Fused top documents from the selected databases.
    pub hits: Vec<FusedHit>,
    /// Query-time probes spent (selection probes; fusion queries to the
    /// k selected databases are the unavoidable final dispatch and are
    /// reported separately by the mediator's counters).
    pub probes_used: usize,
}

/// A trained probabilistic metasearcher (paper Figure 1's middle box).
pub struct Metasearcher {
    mediator: Mediator,
    estimator: Box<dyn RelevancyEstimator>,
    def: RelevancyDef,
    library: EdLibrary,
}

impl std::fmt::Debug for Metasearcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metasearcher")
            .field("databases", &self.mediator.len())
            .field("estimator", &self.estimator.name())
            .field("relevancy", &self.def.to_string())
            .finish()
    }
}

impl Metasearcher {
    /// Trains a metasearcher: learns the ED library by sampling every
    /// mediated database with the training queries (offline phase;
    /// probe counters are reset afterwards so query-time accounting
    /// starts clean).
    pub fn train(
        mediator: Mediator,
        estimator: Box<dyn RelevancyEstimator>,
        def: RelevancyDef,
        train_queries: &[Query],
        config: CoreConfig,
    ) -> Self {
        let library = EdLibrary::train(&mediator, estimator.as_ref(), def, train_queries, &config);
        mediator.reset_probes();
        Self {
            mediator,
            estimator,
            def,
            library,
        }
    }

    /// Assembles a metasearcher around a pre-trained library (used by
    /// the experiment harness to share one training pass across runs).
    pub fn with_library(
        mediator: Mediator,
        estimator: Box<dyn RelevancyEstimator>,
        def: RelevancyDef,
        library: EdLibrary,
    ) -> Self {
        assert_eq!(
            mediator.len(),
            library.n_databases(),
            "library does not cover the mediated databases"
        );
        Self {
            mediator,
            estimator,
            def,
            library,
        }
    }

    /// Wraps the facade in an [`Arc`](std::sync::Arc) — the cheap,
    /// cloneable handle concurrent serving tiers share across worker
    /// threads. The facade is immutable after training and every field
    /// is `Send + Sync`, so no locking is involved.
    pub fn shared(self) -> std::sync::Arc<Self> {
        std::sync::Arc::new(self)
    }

    /// The mediated databases.
    pub fn mediator(&self) -> &Mediator {
        &self.mediator
    }

    /// The learned ED library.
    pub fn library(&self) -> &EdLibrary {
        &self.library
    }

    /// The relevancy definition in force.
    pub fn relevancy_def(&self) -> RelevancyDef {
        self.def
    }

    /// Point estimates `r̂(db_i, q)` for every database.
    pub fn estimates(&self, query: &Query) -> Vec<f64> {
        (0..self.mediator.len())
            .map(|i| self.estimator.estimate(self.mediator.summary(i), query))
            .collect()
    }

    /// The query's relevancy distributions across all databases.
    // mp-lint: allow(L6): pure delegation to derive_all_rds, which asserts
    pub fn rds(&self, query: &Query) -> Vec<Discrete> {
        derive_all_rds(&self.estimates(query), query, &self.library)
    }

    /// Baseline selection (pure estimate ranking, paper Section 2.2).
    pub fn select_baseline(&self, query: &Query, k: usize) -> Vec<usize> {
        baseline_select(&self.estimates(query), k)
    }

    /// RD-based selection with no probing (paper Section 3.3), returning
    /// the set and its expected correctness.
    pub fn select_rd(
        &self,
        query: &Query,
        k: usize,
        metric: CorrectnessMetric,
    ) -> (Vec<usize>, f64) {
        best_set(&self.rds(query), k, metric)
    }

    /// Full adaptive selection: RD-based start, then `APro` probing via
    /// `policy` until the certainty threshold is met (paper Section 5).
    pub fn select_adaptive(
        &self,
        query: &Query,
        config: AproConfig,
        policy: &mut dyn ProbePolicy,
    ) -> AproOutcome {
        self.select_adaptive_with_rds(query, self.rds(query), config, policy)
    }

    /// [`Self::select_adaptive`] with the query's RDs supplied by the
    /// caller — the serving layer caches RD vectors per query (they
    /// depend only on the query, not on `k`/threshold/policy) and
    /// replays them here. `rds` must be what [`Self::rds`] returns for
    /// this query; the result is then identical to `select_adaptive`.
    pub fn select_adaptive_with_rds(
        &self,
        query: &Query,
        rds: Vec<Discrete>,
        config: AproConfig,
        policy: &mut dyn ProbePolicy,
    ) -> AproOutcome {
        assert_eq!(
            rds.len(),
            self.mediator.len(),
            "RD vector does not cover the mediated databases"
        );
        let mut state = RdState::new(rds);
        let probe_top_n = self.library.config().probe_top_n;
        let mut probe_fn = |i: usize| self.def.probe(self.mediator.db(i), query, probe_top_n);
        apro(&mut state, config, policy, &mut probe_fn)
    }

    /// End-to-end metasearch (paper Figure 1): adaptive selection, then
    /// dispatch the query to the selected databases and fuse their
    /// results into one ranked list of at most `fuse_limit` hits.
    pub fn search(
        &self,
        query: &Query,
        config: AproConfig,
        policy: &mut dyn ProbePolicy,
        fuse_limit: usize,
    ) -> MetasearchResult {
        self.search_with_rds(query, self.rds(query), config, policy, fuse_limit)
    }

    /// [`Self::search`] with caller-supplied RDs (see
    /// [`Self::select_adaptive_with_rds`] for the contract).
    pub fn search_with_rds(
        &self,
        query: &Query,
        rds: Vec<Discrete>,
        config: AproConfig,
        policy: &mut dyn ProbePolicy,
        fuse_limit: usize,
    ) -> MetasearchResult {
        let outcome = self.select_adaptive_with_rds(query, rds, config, policy);
        let top_n = self.library.config().probe_top_n.max(fuse_limit);
        // Fan the selected-database searches across cores: each search
        // runs the retrieval kernel against an independent index with
        // its own thread-local scratch, and `par_map_indexed` preserves
        // index order, so the fused ranking is bit-identical to the
        // sequential dispatch.
        let responses: Vec<_> = crate::par::par_map_indexed(outcome.selected.len(), 4, |j| {
            let i = outcome.selected[j];
            (i, self.mediator.db(i).search(query.terms(), top_n))
        });
        let hits = fuse(&responses, fuse_limit);
        MetasearchResult {
            probes_used: outcome.n_probes(),
            outcome,
            hits,
        }
    }

    /// Answers a batch of requests with the lock-step batch executor
    /// ([`crate::batch`]): probes — and the final result dispatch —
    /// that land on one database in the same round share a single
    /// batched search. Each result is bit-identical to
    /// [`Self::search_with_rds`] on that request alone.
    pub fn search_batch_with_rds(
        &self,
        items: Vec<crate::batch::BatchQuery<'_>>,
        fuse_limit: usize,
    ) -> Vec<MetasearchResult> {
        for it in &items {
            assert_eq!(
                it.rds.len(),
                self.mediator.len(),
                "RD vector does not cover the mediated databases"
            );
        }
        let probe_top_n = self.library.config().probe_top_n;
        crate::batch::search_batch_impl(
            &|i| self.mediator.db(i),
            self.def,
            probe_top_n,
            fuse_limit,
            items,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::IndependenceEstimator;
    use crate::probing::GreedyPolicy;
    use mp_hidden::{ContentSummary, HiddenWebDatabase, SimulatedHiddenDb};
    use mp_index::{Document, IndexBuilder};
    use mp_text::TermId;
    use std::sync::Arc;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    /// Two tiny databases with *correlated* terms in db1 so the
    /// independence estimator underestimates it, mirroring the paper's
    /// motivating example.
    fn mediator() -> Mediator {
        // db0: terms 0 and 1 anti-correlated (never co-occur).
        let mut b0 = IndexBuilder::new();
        for i in 0..100u32 {
            let mut d = Document::new();
            if i < 50 {
                d.add_term(t(0), 1);
            } else {
                d.add_term(t(1), 1);
            }
            d.add_term(t(2), 1);
            b0.add(d);
        }
        // db1: terms 0 and 1 perfectly correlated (always together in
        // 30 docs); term 3 in docs 25..45 (partially overlapping term 0)
        // so the low-coverage ED on db1 has two distinct error bins and
        // the derived RDs are genuinely uncertain.
        let mut b1 = IndexBuilder::new();
        for i in 0..100u32 {
            let mut d = Document::new();
            if i < 30 {
                d.add_term(t(0), 1);
                d.add_term(t(1), 1);
            }
            if (25..45).contains(&i) {
                d.add_term(t(3), 1);
            }
            d.add_term(t(2), 1);
            b1.add(d);
        }
        let dbs: Vec<Arc<dyn HiddenWebDatabase>> = vec![
            Arc::new(SimulatedHiddenDb::new("anti", b0.build())),
            Arc::new(SimulatedHiddenDb::new("corr", b1.build())),
        ];
        let summaries = dbs
            .iter()
            .map(|d| {
                ContentSummary::new(
                    (0..4u32)
                        .map(|i| (t(i), d.search(&[t(i)], 0).match_count))
                        .collect(),
                    d.size_hint().unwrap(),
                )
            })
            .collect();
        let m = Mediator::new(dbs, summaries);
        m.reset_probes();
        m
    }

    fn train_queries() -> Vec<Query> {
        // 2-term queries over the correlated pair, repeated so EDs have
        // mass, plus single-term queries for the other leaves.
        let mut qs = Vec::new();
        for _ in 0..5 {
            qs.push(Query::new([t(0), t(1)]));
            qs.push(Query::new([t(0), t(2)]));
            qs.push(Query::new([t(1), t(2)]));
            // Low-coverage on both databases, with a *different* error
            // than [t0, t1]'s on db1 — giving that ED two bins.
            qs.push(Query::new([t(0), t(3)]));
        }
        qs
    }

    fn metasearcher() -> Metasearcher {
        let config = CoreConfig::default().with_threshold(20.0);
        Metasearcher::train(
            mediator(),
            Box::new(IndependenceEstimator),
            RelevancyDef::DocFrequency,
            &train_queries(),
            config,
        )
    }

    #[test]
    fn training_resets_probe_counters() {
        let ms = metasearcher();
        assert_eq!(ms.mediator().total_probes(), 0);
    }

    #[test]
    fn estimates_follow_eq1() {
        let ms = metasearcher();
        let q = Query::new([t(0), t(1)]);
        let est = ms.estimates(&q);
        // db0: 100·(50/100)·(50/100) = 25; db1: 100·(30/100)·(30/100) = 9.
        assert!((est[0] - 25.0).abs() < 1e-9);
        assert!((est[1] - 9.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_is_fooled_rd_is_not() {
        // Actual matches: db0 = 0 (anti-correlated), db1 = 30. The
        // baseline ranks db0 first (25 > 9); the trained RD-based
        // method picks db1.
        let ms = metasearcher();
        let q = Query::new([t(0), t(1)]);
        assert_eq!(ms.select_baseline(&q, 1), vec![0]);
        let (set, conf) = ms.select_rd(&q, 1, CorrectnessMetric::Absolute);
        assert_eq!(set, vec![1], "RD-based selection must correct the error");
        assert!(conf > 0.5);
    }

    #[test]
    fn adaptive_probing_reaches_certainty() {
        let ms = metasearcher();
        let q = Query::new([t(0), t(1)]);
        let mut policy = GreedyPolicy;
        let out = ms.select_adaptive(
            &q,
            AproConfig {
                k: 1,
                threshold: 1.0,
                metric: CorrectnessMetric::Absolute,
                max_probes: None,
            },
            &mut policy,
        );
        assert!(out.satisfied);
        assert_eq!(out.selected, vec![1]);
        assert_eq!(out.expected, 1.0);
        assert!(out.n_probes() >= 1);
        // Probes hit the real databases.
        assert_eq!(ms.mediator().total_probes(), out.n_probes() as u64);
    }

    #[test]
    fn end_to_end_search_returns_fused_hits() {
        let ms = metasearcher();
        let q = Query::new([t(0), t(1)]);
        let mut policy = GreedyPolicy;
        let result = ms.search(
            &q,
            AproConfig {
                k: 1,
                threshold: 0.8,
                metric: CorrectnessMetric::Absolute,
                max_probes: None,
            },
            &mut policy,
            5,
        );
        assert!(!result.hits.is_empty(), "db1 has 30 matching docs");
        assert!(result.hits.iter().all(|h| h.db == 1));
        assert!(result.hits.len() <= 5);
    }

    #[test]
    fn with_library_checks_coverage() {
        let ms = metasearcher();
        let lib = ms.library().clone();
        let rebuilt = Metasearcher::with_library(
            mediator(),
            Box::new(IndependenceEstimator),
            RelevancyDef::DocFrequency,
            lib,
        );
        assert_eq!(rebuilt.mediator().len(), 2);
    }
}
