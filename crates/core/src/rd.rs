//! Relevancy distributions (RDs): from point estimate + ED to a
//! distribution over the actual relevancy (paper Section 3.1, Example 3).

use crate::config::CoreConfig;
use crate::ed::{EdLibrary, ErrorDistribution};
use mp_stats::Discrete;
use mp_workload::Query;

/// Derives the RD for one database and query:
///
/// ```text
/// RD support = { r̂_floored · (1 + err)  :  err ∈ ED support }
/// ```
///
/// clamped at 0 (relevancy cannot be negative — colliding support points
/// merge their probability). When the database has no usable ED the RD
/// degrades to an impulse at the estimate, making RD-based selection
/// coincide with the estimation baseline for that database.
pub fn derive_rd(estimate: f64, ed: Option<&ErrorDistribution>, config: &CoreConfig) -> Discrete {
    let base = estimate.max(config.est_floor);
    let rd = match ed.and_then(ErrorDistribution::to_discrete) {
        Some(errors) => errors
            .map_values(|e| (base * (1.0 + e)).max(0.0))
            .expect("non-empty error distribution maps to non-empty RD"),
        None => Discrete::impulse(estimate.max(0.0)),
    };
    rd.debug_assert_normalized();
    rd
}

/// Derives the RDs of a query against every database in one call,
/// classifying the query per database (classification is
/// database-dependent: paper Section 4.1).
///
/// `estimates[i]` must be the estimator output for database `i`.
// mp-lint: allow(L6): every element comes from derive_rd, which asserts
pub fn derive_all_rds(estimates: &[f64], query: &Query, lib: &EdLibrary) -> Vec<Discrete> {
    assert_eq!(
        estimates.len(),
        lib.n_databases(),
        "estimate/library mismatch"
    );
    estimates
        .iter()
        .enumerate()
        .map(|(i, &est)| {
            let qt = lib.classify(query.len(), est);
            derive_rd(est, lib.ed_or_fallback(i, qt), lib.config())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_text::TermId;
    use proptest::prelude::*;

    fn config() -> CoreConfig {
        CoreConfig::default()
    }

    fn ed_from(errors: &[f64]) -> ErrorDistribution {
        let mut ed = ErrorDistribution::new(&config());
        for &e in errors {
            ed.add(e);
        }
        ed
    }

    #[test]
    fn paper_example3_rd_derivation() {
        // ED of db1: −50% (p .4), 0% (p .5), +50% (p .1); estimate 100.
        // RD: 50 (p .4), 100 (p .5), 150 (p .1) — Figure 5(b).
        let mut errs = Vec::new();
        errs.extend(std::iter::repeat_n(-0.5, 4));
        errs.extend(std::iter::repeat_n(0.0, 5));
        errs.push(0.5);
        let ed = ed_from(&errs);
        let rd = derive_rd(100.0, Some(&ed), &config());
        assert_eq!(rd.len(), 3);
        assert!((rd.prob_eq(50.0) - 0.4).abs() < 1e-12);
        assert!((rd.prob_eq(100.0) - 0.5).abs() < 1e-12);
        assert!((rd.prob_eq(150.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn missing_ed_degrades_to_impulse() {
        let rd = derive_rd(42.0, None, &config());
        assert!(rd.is_impulse());
        assert_eq!(rd.mean(), 42.0);
    }

    #[test]
    fn negative_relevancies_clamp_to_zero() {
        // An error of −180% would imply negative relevancy; the bin
        // representative is ≥ −1 (errors are ≥ −1 for non-negative
        // actuals) but clamping is still exercised via the open tail.
        let ed = ed_from(&[-1.0, -1.0, 1.0]);
        let rd = derive_rd(100.0, Some(&ed), &config());
        assert!(rd.min_value() >= 0.0);
        assert!((rd.prob_eq(0.0) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_estimate_uses_floor_for_scaling() {
        // est = 0 → base = floor; a +49 error (actual 5 when floored)
        // reconstructs the actual relevancy 5.
        let ed = ed_from(&[49.0]);
        let rd = derive_rd(0.0, Some(&ed), &config());
        assert!(rd.is_impulse());
        assert!((rd.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn derive_all_uses_per_database_classification() {
        let mut lib = EdLibrary::empty(2, config());
        // db0 trained on high-coverage 2-term with consistent +100%.
        lib.record(0, 2, 500.0, 1000.0);
        // db1 trained on low-coverage 2-term with consistent −100%.
        lib.record(1, 2, 50.0, 0.0);
        let q = mp_workload::Query::new([TermId(0), TermId(1)]);
        let rds = derive_all_rds(&[400.0, 20.0], &q, &lib);
        // db0: estimate 400 × (1 + 1.0) = 800.
        assert!((rds[0].mean() - 800.0).abs() < 1e-9);
        // db1: estimate 20 × (1 − 1.0) = 0.
        assert!((rds[1].mean() - 0.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_rd_mass_sums_to_one(
            errors in proptest::collection::vec(-1.0f64..10.0, 1..50),
            est in 0.0f64..1e4
        ) {
            let ed = ed_from(&errors);
            let rd = derive_rd(est, Some(&ed), &config());
            let total: f64 = rd.points().iter().map(|&(_, p)| p).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(rd.min_value() >= 0.0);
        }

        #[test]
        fn prop_rd_mean_tracks_ed_mean(
            est in 1.0f64..1e4
        ) {
            // A single-bin ED (all samples equal) makes the RD an
            // impulse at est·(1+err) exactly.
            let ed = ed_from(&[0.3, 0.3, 0.3]);
            let rd = derive_rd(est, Some(&ed), &config());
            prop_assert!(rd.is_impulse());
            prop_assert!((rd.mean() - est * 1.3).abs() < 1e-6);
        }
    }
}
