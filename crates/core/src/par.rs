//! The parallel evaluation layer: a tiny order-preserving fork-join map
//! used to fan the APro hot loops — greedy per-candidate usefulness
//! scans and per-database marginal computations — across cores.
//!
//! Gated behind the `parallel` feature (on by default). The sequential
//! fallback is **bit-identical**: both paths evaluate the same closure
//! on the same indices and collect results in index order, so every
//! reduction downstream (argmax, sort, sum) sees the exact same `f64`s
//! regardless of thread count or feature flags. Determinism therefore
//! never depends on scheduling.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The process-wide runtime fan-out switch, seeded from `MP_PAR` on
/// first use (same contract as `MP_OBS`: `0`/`false`/`off`/`no`
/// disables, anything else — including unset — enables).
fn flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        // The fan-out switch cannot change results: the pool's determinism
        // contract (pinned by the twin-replay tests) makes every result
        // bit-identical across thread counts, including 1.
        // mp-lint: allow(L13): on/off switch only; results are thread-count-invariant
        let on = match std::env::var("MP_PAR") {
            Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no"),
            Err(_) => true,
        };
        AtomicBool::new(on)
    })
}

/// True when the fork-join path may be taken: the `parallel` feature is
/// compiled in *and* the runtime switch (`MP_PAR`,
/// [`set_parallel_enabled`]) is on.
pub fn parallel_enabled() -> bool {
    cfg!(feature = "parallel") && flag().load(Ordering::Relaxed)
}

/// Flips the runtime fan-out switch. Overrides the `MP_PAR` environment
/// seeding; benches use this to measure the sequential baseline in a
/// `parallel`-enabled build — results are bit-identical either way, so
/// the switch only affects scheduling, never output.
pub fn set_parallel_enabled(on: bool) {
    flag().store(on, Ordering::Relaxed);
}

/// Maps `f` over `0..n`, preserving order. With the `parallel` feature
/// the work is chunked over scoped threads once it is plausibly worth a
/// fork-join (`n ≥ min_chunk`); small inputs, `--no-default-features`
/// builds, and runs with the fan-out switched off (`MP_PAR=0` or
/// [`set_parallel_enabled`]`(false)`) run the plain sequential loop.
///
/// Panics in `f` propagate (scoped threads re-raise on join).
pub fn par_map_indexed<T, F>(n: usize, min_chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    #[cfg(feature = "parallel")]
    {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        if parallel_enabled() && threads > 1 && n >= min_chunk.max(2) {
            mp_obs::counter!("par.fanouts").incr();
            let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
            let chunk = n.div_ceil(threads);
            // Task-balance accounting happens on the spawner thread so
            // the workers carry zero instrumentation.
            let balance = mp_obs::histogram!("par.chunk_items", mp_obs::bounds::POW2);
            std::thread::scope(|scope| {
                for (c, slot) in results.chunks_mut(chunk).enumerate() {
                    balance.record(u64::try_from(slot.len()).unwrap_or(u64::MAX));
                    let f = &f;
                    scope.spawn(move || {
                        for (off, out) in slot.iter_mut().enumerate() {
                            *out = Some(f(c * chunk + off));
                        }
                    });
                }
            });
            return results
                .into_iter()
                .map(|o| o.expect("all slots filled"))
                .collect();
        }
    }
    let _ = min_chunk;
    mp_obs::counter!("par.sequential").incr();
    (0..n).map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all_indices() {
        for n in [0usize, 1, 7, 8, 100] {
            let out = par_map_indexed(n, 2, |i| i * 3);
            assert_eq!(out, (0..n).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn matches_sequential_bitwise_on_float_work() {
        // The parallel path must return the very same f64 bit patterns
        // as a plain map — the engine's determinism contract.
        let work = |i: usize| {
            let mut acc = 0.0f64;
            for j in 0..50 {
                acc += ((i * 31 + j) as f64).sqrt() * 1e-3;
            }
            acc
        };
        let par = par_map_indexed(64, 2, work);
        let seq: Vec<f64> = (0..64).map(work).collect();
        for (a, b) in par.iter().zip(&seq) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn runtime_switch_forces_sequential_with_identical_results() {
        // Note: the switch is process-wide, so restore it before the
        // test ends regardless of assertion outcome order.
        let work = |i: usize| (i as f64).sin();
        let on = par_map_indexed(32, 2, work);
        set_parallel_enabled(false);
        assert!(!parallel_enabled());
        let off = par_map_indexed(32, 2, work);
        set_parallel_enabled(true);
        for (a, b) in on.iter().zip(&off) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
