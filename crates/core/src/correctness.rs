//! Correctness metrics for a selected database set (paper Section 3.2,
//! Eqs. 3 and 4).

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Which correctness metric is in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorrectnessMetric {
    /// `Cor_a`: 1 iff the selected set equals the true top-k (Eq. 3).
    Absolute,
    /// `Cor_p`: overlap fraction `|DBk ∩ DBtopk| / k` (Eq. 4).
    Partial,
}

impl std::fmt::Display for CorrectnessMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorrectnessMetric::Absolute => write!(f, "absolute"),
            CorrectnessMetric::Partial => write!(f, "partial"),
        }
    }
}

/// Absolute correctness `Cor_a(DBk)` (Eq. 3): 1.0 when `selected` and
/// `golden` contain the same databases (order-insensitive), else 0.0.
pub fn absolute_correctness(selected: &[usize], golden: &[usize]) -> f64 {
    let a: HashSet<usize> = selected.iter().copied().collect();
    let b: HashSet<usize> = golden.iter().copied().collect();
    if a == b {
        1.0
    } else {
        0.0
    }
}

/// Partial correctness `Cor_p(DBk)` (Eq. 4): the fraction of the golden
/// top-k present in the selection. `k` is taken from the golden set's
/// size.
///
/// # Panics
/// Panics when `golden` is empty.
pub fn partial_correctness(selected: &[usize], golden: &[usize]) -> f64 {
    assert!(!golden.is_empty(), "golden top-k must be non-empty");
    let g: HashSet<usize> = golden.iter().copied().collect();
    let overlap = selected.iter().filter(|i| g.contains(i)).count();
    overlap as f64 / g.len() as f64
}

impl CorrectnessMetric {
    /// Scores a selection against the golden standard under this metric.
    pub fn score(&self, selected: &[usize], golden: &[usize]) -> f64 {
        match self {
            CorrectnessMetric::Absolute => absolute_correctness(selected, golden),
            CorrectnessMetric::Partial => partial_correctness(selected, golden),
        }
    }
}

/// The library-wide rank order on `(index, relevancy)` outcomes:
/// `Ordering::Less` when `(i, vi)` ranks strictly ahead of `(j, vj)` —
/// higher relevancy first, equal relevancies rank the lower index first.
///
/// This single helper defines the tie-break **everywhere** it matters —
/// the golden top-k, the exact beat-probabilities behind `E[Cor]`
/// (`expected::prob_beats`), and the probing engine's hypothetical-probe
/// patches — so the realized relevancies always induce one consistent
/// total order and the exact formulas stay aligned with the Monte-Carlo
/// oracle.
///
/// Implemented with [`mp_stats::float::total_cmp_desc`], a *total*
/// order: `0.0` and `-0.0` tie (and fall through to the index
/// tie-break) exactly as IEEE `==` would have it, and a NaN — a
/// programming error upstream, rejected by a debug assertion — ranks
/// after every real value in release builds instead of panicking
/// mid-sort.
pub fn rank_order(i: usize, vi: f64, j: usize, vj: f64) -> std::cmp::Ordering {
    debug_assert!(
        !vi.is_nan() && !vj.is_nan(),
        "relevancies are finite by construction"
    );
    mp_stats::float::total_cmp_desc(vi, vj).then(i.cmp(&j))
}

/// The true top-k databases given every database's actual relevancy,
/// under [`rank_order`].
pub fn golden_topk(actuals: &[f64], k: usize) -> Vec<usize> {
    assert!(k >= 1 && k <= actuals.len(), "k out of range");
    let mut order: Vec<usize> = (0..actuals.len()).collect();
    order.sort_by(|&a, &b| rank_order(a, actuals[a], b, actuals[b]));
    order.truncate(k);
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn absolute_is_all_or_nothing() {
        assert_eq!(absolute_correctness(&[1, 2], &[2, 1]), 1.0);
        assert_eq!(absolute_correctness(&[1, 3], &[1, 2]), 0.0);
        assert_eq!(absolute_correctness(&[], &[]), 1.0);
    }

    #[test]
    fn paper_partial_example() {
        // "if an answer set DB3 contains 2 of the 3 most relevant
        // databases, its partial correctness is 2/3" (Section 3.2).
        let c = partial_correctness(&[0, 1, 9], &[0, 1, 2]);
        assert!((c - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn k1_metrics_coincide() {
        // Paper footnote: at k = 1, Cor_a and Cor_p are the same.
        for (sel, gold) in [(vec![3usize], vec![3usize]), (vec![3], vec![5])] {
            assert_eq!(
                absolute_correctness(&sel, &gold),
                partial_correctness(&sel, &gold)
            );
        }
    }

    #[test]
    fn golden_ranks_by_relevancy_then_index() {
        let actuals = [5.0, 9.0, 9.0, 1.0];
        assert_eq!(golden_topk(&actuals, 1), vec![1]);
        assert_eq!(golden_topk(&actuals, 2), vec![1, 2]); // tie: lower idx
        assert_eq!(golden_topk(&actuals, 3), vec![1, 2, 0]);
    }

    #[test]
    fn rank_order_is_a_strict_total_order() {
        use std::cmp::Ordering;
        assert_eq!(rank_order(0, 9.0, 1, 5.0), Ordering::Less);
        assert_eq!(rank_order(1, 5.0, 0, 9.0), Ordering::Greater);
        // Equal values: lower index wins, never Equal for distinct dbs.
        assert_eq!(rank_order(0, 7.0, 1, 7.0), Ordering::Less);
        assert_eq!(rank_order(1, 7.0, 0, 7.0), Ordering::Greater);
        assert_eq!(rank_order(2, 7.0, 2, 7.0), Ordering::Equal);
    }

    #[test]
    fn rank_order_signed_zeros_tie_on_index() {
        // Regression: with a raw `f64::total_cmp`, `-0.0` would rank
        // *after* `+0.0` and the index tie-break would never fire,
        // making the selection order depend on the sign of a zero. The
        // canonicalizing comparator must treat the zeros as equal.
        use std::cmp::Ordering;
        assert_eq!(rank_order(0, -0.0, 1, 0.0), Ordering::Less);
        assert_eq!(rank_order(0, 0.0, 1, -0.0), Ordering::Less);
        assert_eq!(rank_order(1, -0.0, 0, 0.0), Ordering::Greater);
    }

    #[test]
    fn golden_topk_pins_selection_order_on_exact_ties() {
        // All-equal relevancies (the degenerate exact-tie input): the
        // selection must be the lowest indices, in index order, no
        // matter how the zeros are signed.
        assert_eq!(golden_topk(&[0.0, -0.0, 0.0, -0.0], 2), vec![0, 1]);
        assert_eq!(golden_topk(&[5.0, 5.0, 5.0], 2), vec![0, 1]);
        // A tie below a strict maximum: max first, then lower tied index.
        assert_eq!(golden_topk(&[3.0, 7.0, 3.0], 2), vec![1, 0]);
    }

    #[test]
    fn metric_dispatch() {
        assert_eq!(CorrectnessMetric::Absolute.score(&[1], &[2]), 0.0);
        assert_eq!(CorrectnessMetric::Partial.score(&[1, 2], &[2, 3]), 0.5);
    }

    proptest! {
        #[test]
        fn prop_partial_bounds_and_absolute_consistency(
            selected in proptest::collection::hash_set(0usize..10, 1..5),
            golden in proptest::collection::hash_set(0usize..10, 1..5)
        ) {
            let s: Vec<usize> = selected.iter().copied().collect();
            let g: Vec<usize> = golden.iter().copied().collect();
            let p = partial_correctness(&s, &g);
            prop_assert!((0.0..=1.0).contains(&p));
            let a = absolute_correctness(&s, &g);
            // Absolute correct implies full partial credit.
            if a == 1.0 {
                prop_assert_eq!(p, 1.0);
            }
        }

        #[test]
        fn prop_golden_is_actually_topk(
            actuals in proptest::collection::vec(0.0f64..100.0, 1..12),
            k_raw in 1usize..12
        ) {
            let k = k_raw.min(actuals.len());
            let golden = golden_topk(&actuals, k);
            prop_assert_eq!(golden.len(), k);
            let min_in = golden.iter().map(|&i| actuals[i]).fold(f64::INFINITY, f64::min);
            for (i, &a) in actuals.iter().enumerate() {
                if !golden.contains(&i) {
                    prop_assert!(a <= min_in + 1e-12);
                }
            }
        }
    }
}
